// Quickstart: insert test points into a random-pattern-resistant circuit
// with the paper's DP planner and validate the gain by fault simulation.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "fault/fault_sim.hpp"
#include "gen/arith.hpp"
#include "netlist/transform.hpp"
#include "tpi/planners.hpp"
#include "util/table.hpp"

int main() {
    using namespace tpi;

    // 1. A 32-bit equality comparator: internal compare bits are almost
    //    unobservable under random patterns (observability 2^-31).
    const netlist::Circuit circuit = gen::equality_comparator(32);
    std::cout << "circuit: " << circuit.name() << " ("
              << circuit.gate_count() << " gates)\n";

    // 2. Baseline pseudo-random fault coverage.
    constexpr std::size_t kPatterns = 32768;
    const fault::FaultSimResult before =
        fault::random_pattern_coverage(circuit, kPatterns, /*seed=*/1);
    std::cout << "coverage before TPI: "
              << util::fmt_percent(before.coverage) << "% ("
              << before.undetected << " faults undetected)\n";

    // 3. Plan test points with the dynamic-programming planner.
    DpPlanner planner;
    PlannerOptions options;
    options.budget = 8;
    options.objective.num_patterns = kPatterns;
    const Plan plan = planner.plan(circuit, options);
    std::cout << "planned " << plan.points.size() << " test points:\n";
    for (const auto& tp : plan.points)
        std::cout << "  " << netlist::tp_kind_name(tp.kind) << " @ "
                  << circuit.node_name(tp.node) << "\n";

    // 4. Materialise them and fault-simulate the modified circuit.
    const netlist::TransformResult dft =
        netlist::apply_test_points(circuit, plan.points);
    const fault::FaultSimResult after =
        fault::random_pattern_coverage(dft.circuit, kPatterns, /*seed=*/1);
    std::cout << "coverage after TPI:  "
              << util::fmt_percent(after.coverage) << "% ("
              << after.undetected << " faults undetected)\n";
    return 0;
}
