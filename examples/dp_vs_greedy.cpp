// Side-by-side comparison of the paper's DP planner against the classic
// greedy and random baselines on a random-pattern-resistant circuit,
// with budgets swept and real fault-simulated coverage reported.
//
// Build & run:  ./build/examples/dp_vs_greedy

#include <iostream>

#include "fault/fault_sim.hpp"
#include "gen/chains.hpp"
#include "netlist/transform.hpp"
#include "tpi/planners.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
    using namespace tpi;

    constexpr std::size_t kPatterns = 16384;
    const netlist::Circuit circuit = gen::chained_lanes(8, 14);
    std::cout << "circuit: " << circuit.name() << " ("
              << circuit.gate_count() << " gates)\n"
              << "baseline coverage @" << kPatterns << ": "
              << util::fmt_percent(
                     fault::random_pattern_coverage(circuit, kPatterns, 1)
                         .coverage)
              << "%\n\n";

    util::TextTable table(
        {"budget", "planner", "pts", "coverage%", "plan ms"});
    for (int budget : {2, 4, 8, 12}) {
        PlannerOptions options;
        options.budget = budget;
        options.objective.num_patterns = kPatterns;

        DpPlanner dp;
        GreedyPlanner greedy;
        RandomPlanner random;
        for (Planner* planner :
             std::initializer_list<Planner*>{&dp, &greedy, &random}) {
            util::Timer timer;
            const Plan plan = planner->plan(circuit, options);
            const double ms = timer.millis();
            const auto dft =
                netlist::apply_test_points(circuit, plan.points);
            const double coverage =
                fault::random_pattern_coverage(dft.circuit, kPatterns, 1)
                    .coverage;
            table.add_row({std::to_string(budget),
                           std::string(planner->name()),
                           std::to_string(plan.points.size()),
                           util::fmt_percent(coverage),
                           util::fmt_fixed(ms, 1)});
        }
    }
    table.print(std::cout, "DP vs greedy vs random (measured coverage)");
    return 0;
}
