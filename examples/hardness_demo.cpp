// The NP-completeness half of the paper, constructively: a SET-COVER
// instance is compiled into a reconvergent circuit whose optimal
// observation-point selection *is* the set cover. The demo plants a
// cover, solves the gadget exactly and greedily, inserts the chosen
// observation points, and proves by fault simulation that exactly the
// planted faults become detectable.
//
// Build & run:  ./build/examples/hardness_demo

#include <iostream>

#include "fault/fault_sim.hpp"
#include "netlist/transform.hpp"
#include "tpi/hardness.hpp"
#include "util/rng.hpp"

int main() {
    using namespace tpi;
    using namespace tpi::hardness;

    util::Rng rng(7);
    const SetCoverInstance instance = random_instance(
        /*universe=*/24, /*sets=*/10, /*planted_size=*/4, rng);
    std::cout << "SET-COVER instance: " << instance.universe
              << " elements, " << instance.sets.size()
              << " sets (a cover of size 4 was planted)\n";

    const SetCoverGadget gadget = build_gadget(instance);
    std::cout << "gadget circuit: " << gadget.circuit.gate_count()
              << " gates, " << gadget.candidate_nets.size()
              << " candidate nets; planted faults blocked from all "
                 "primary outputs\n\n";

    const auto exact = solve_gadget_observation(gadget, /*exact=*/true);
    const auto greedy = solve_gadget_observation(gadget, /*exact=*/false);
    std::cout << "exact (branch & bound) cover: " << exact.size()
              << " observation points\n"
              << "greedy H_n approximation:      " << greedy.size()
              << " observation points\n\n";

    // Insert the exact solution's observation points and fault-simulate.
    std::vector<netlist::TestPoint> points;
    for (std::uint32_t s : exact)
        points.push_back({gadget.candidate_nets[s],
                          netlist::TpKind::Observe});
    const auto dft = netlist::apply_test_points(gadget.circuit, points);
    const auto faults = fault::collapse_faults(dft.circuit);
    sim::RandomPatternSource source(3);
    fault::FaultSimOptions options;
    options.max_patterns = 8192;
    const auto result =
        fault::run_fault_simulation(dft.circuit, faults, source, options);

    std::size_t detected = 0;
    for (const auto& planted : gadget.planted_faults) {
        const fault::Fault mapped{dft.node_map[planted.node.v],
                                  planted.stuck_at1};
        const auto cls = faults.class_index(mapped);
        if (cls >= 0 &&
            result.detect_pattern[static_cast<std::size_t>(cls)] >= 0)
            ++detected;
    }
    std::cout << "planted faults detected with the " << exact.size()
              << " chosen observation points: " << detected << "/"
              << gadget.planted_faults.size() << "\n";
    std::cout << "\nBecause minimum-cardinality SET-COVER reduces to this "
                 "selection problem,\noptimal test point insertion in "
                 "reconvergent circuits is NP-complete — the\npaper's "
                 "motivation for an optimal DP restricted to fanout-free "
                 "circuits.\n";
    return 0;
}
