// The complete BIST story end to end:
//
//   1. insert test points (DP planner),
//   2. run a signature-based BIST session — LFSR stimulus, MISR
//      compaction — and measure coverage as the signature comparison
//      would report it (including aliasing),
//   3. generate PODEM cubes for whatever random patterns still miss and
//      pack them into LFSR reseeds.
//
// Build & run:  ./build/examples/signature_bist

#include <iostream>

#include "atpg/podem.hpp"
#include "bist/reseed.hpp"
#include "bist/session.hpp"
#include "fault/fault_sim.hpp"
#include "gen/arith.hpp"
#include "netlist/transform.hpp"
#include "tpi/planners.hpp"
#include "util/table.hpp"

int main() {
    using namespace tpi;

    constexpr std::size_t kPatterns = 4096;
    const netlist::Circuit original = gen::equality_comparator(24);
    std::cout << "circuit: " << original.name() << " ("
              << original.gate_count() << " gates)\n";

    // 1. Test point insertion.
    DpPlanner planner;
    PlannerOptions options;
    options.budget = 2;  // deliberately tight: leftovers for step 3
    options.objective.num_patterns = kPatterns;
    const Plan plan = planner.plan(original, options);
    const auto dft = netlist::apply_test_points(original, plan.points);
    std::cout << plan.points.size() << " test points inserted\n\n";

    // 2. Signature-based BIST session on the DFT netlist.
    const auto faults = fault::collapse_faults(dft.circuit);
    for (unsigned width : {8u, 16u, 32u}) {
        sim::RandomPatternSource source(1);
        bist::SessionOptions session;
        session.patterns = kPatterns;
        session.misr_width = width;
        const auto result =
            bist::run_session(dft.circuit, faults, source, session);
        std::cout << "MISR width " << width << ": signature coverage "
                  << util::fmt_percent(result.signature_coverage(faults))
                  << "% (" << result.aliased << " aliased of "
                  << result.strobe_detected << " detected; signature 0x"
                  << std::hex << result.golden_signature << std::dec
                  << ")\n";
    }

    // 3. Deterministic top-up of the leftovers via reseeding.
    sim::RandomPatternSource source(1);
    fault::FaultSimOptions sim_options;
    sim_options.max_patterns = kPatterns;
    const auto sim = fault::run_fault_simulation(dft.circuit, faults,
                                                 source, sim_options);
    std::vector<atpg::TestCube> cubes;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (sim.detect_pattern[i] >= 0) continue;
        auto cube = atpg::generate_test(dft.circuit,
                                        faults.representatives[i]);
        if (cube.outcome == atpg::Outcome::Detected)
            cubes.push_back(std::move(cube));
    }
    const auto reseed =
        bist::plan_reseeding(dft.circuit.input_count(), cubes);
    std::cout << "\nrandom coverage " << util::fmt_percent(sim.coverage)
              << "%; " << cubes.size()
              << " deterministic cubes packed into " << reseed.seeds.size()
              << " LFSR seeds (width " << reseed.lfsr_width << "):\n";
    for (std::size_t k = 0; k < reseed.seeds.size() && k < 8; ++k)
        std::cout << "  seed 0x" << std::hex << reseed.seeds[k]
                  << std::dec << "\n";
    if (reseed.seeds.size() > 8)
        std::cout << "  ... (" << reseed.seeds.size() - 8 << " more)\n";
    std::cout << "stored bits: " << reseed.seeds.size() * reseed.lfsr_width
              << " vs " << cubes.size() * dft.circuit.input_count()
              << " for raw pattern storage\n";
    return 0;
}
