// Full scan-BIST design flow on a realistic workload — a 2000-gate
// reconvergent random-logic block (the synthetic stand-in for an
// industrial netlist):
//
//   1. build the circuit,
//   2. measure baseline pseudo-random coverage and the test length the
//      hard faults would need,
//   3. insert test points with the DP planner under a TPI-MIN goal,
//   4. fault-simulate the DFT netlist and report the improvement,
//   5. emit the modified netlist as .bench for downstream tools.
//
// Build & run:  ./build/examples/bist_flow

#include <iostream>
#include <sstream>

#include "fault/fault_sim.hpp"
#include "gen/benchmarks.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/transform.hpp"
#include "testability/cop.hpp"
#include "testability/detect.hpp"
#include "tpi/planners.hpp"
#include "tpi/threshold.hpp"
#include "util/table.hpp"

int main() {
    using namespace tpi;

    constexpr std::size_t kPatterns = 32768;
    const netlist::Circuit circuit = gen::suite_entry("dag2000").build();
    std::cout << "=== BIST flow for " << circuit.name() << " ===\n"
              << circuit.gate_count() << " gates, "
              << circuit.input_count() << " inputs, "
              << circuit.output_count() << " outputs\n\n";

    // --- baseline analysis ---------------------------------------------
    const auto faults = fault::singleton_faults(circuit);
    const auto cop = testability::compute_cop(circuit);
    const auto p = testability::detection_probabilities(circuit, faults, cop);
    const double worst = testability::min_detection_probability(p);
    std::cout << "hardest fault detection probability: " << worst << "\n"
              << "test length for 95% confidence on it:  "
              << testability::required_test_length(worst, 0.95)
              << " patterns\n";
    const auto before =
        fault::random_pattern_coverage(circuit, kPatterns, 1);
    std::cout << "measured coverage @" << kPatterns << ": "
              << util::fmt_percent(before.coverage) << "% ("
              << before.undetected << " faults undetected)\n\n";

    // --- TPI-MIN: smallest budget reaching 99.9% estimated coverage -----
    DpPlanner planner;
    PlannerOptions options;
    options.objective.num_patterns = kPatterns;
    ThresholdGoal goal;
    goal.estimated_coverage = 0.999;
    const ThresholdResult result =
        solve_min_points(circuit, planner, options, goal, 16);
    std::cout << (result.feasible ? "goal met" : "goal NOT met within 16")
              << " using " << result.budget_used << " test points:\n";
    for (const auto& tp : result.plan.points)
        std::cout << "  " << netlist::tp_kind_name(tp.kind) << " @ "
                  << circuit.node_name(tp.node) << "\n";

    // --- validate by fault simulation ------------------------------------
    const auto dft = netlist::apply_test_points(circuit, result.plan.points);
    const auto after =
        fault::random_pattern_coverage(dft.circuit, kPatterns, 1);
    std::cout << "\nmeasured coverage after TPI: "
              << util::fmt_percent(after.coverage) << "% ("
              << after.undetected << " undetected)\n";
    const auto n99 = after.patterns_to_coverage(
        0.99, fault::collapse_faults(dft.circuit));
    if (n99 > 0)
        std::cout << "patterns to 99% coverage: " << n99 << " (was "
                  << (before.patterns_to_coverage(
                          0.99, fault::collapse_faults(circuit)) > 0
                          ? "reachable"
                          : "unreachable")
                  << " before)\n";

    // --- emit the DFT netlist -------------------------------------------
    std::ostringstream bench;
    netlist::write_bench(bench, dft.circuit);
    std::cout << "\nDFT netlist: " << dft.circuit.gate_count()
              << " gates (+" << dft.control_inputs.size()
              << " test-control inputs, +" << dft.observed_nets.size()
              << " observation outputs); first lines of .bench output:\n";
    std::istringstream lines(bench.str());
    std::string line;
    for (int i = 0; i < 6 && std::getline(lines, line); ++i)
        std::cout << "  " << line << "\n";
    std::cout << "  ...\n";
    return 0;
}
