// Drop-in flow for real ISCAS85/89 netlists: read a .bench file, run the
// DP test point planner, validate with fault simulation, and write the
// DFT netlist next to the input.
//
//   ./build/examples/iscas_flow path/to/c2670.bench [budget]
//
// Without arguments it runs on the embedded ISCAS85 c17. Full-scan
// ISCAS89 files work too: DFFs become scan boundaries at parse time.

#include <fstream>
#include <iostream>
#include <string>

#include "fault/fault_sim.hpp"
#include "gen/benchmarks.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/transform.hpp"
#include "tpi/planners.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace tpi;

    const netlist::Circuit circuit =
        argc > 1 ? netlist::read_bench_file(argv[1]) : gen::c17();
    const int budget = argc > 2 ? std::stoi(argv[2]) : 8;
    constexpr std::size_t kPatterns = 32768;

    std::cout << "circuit " << circuit.name() << ": "
              << circuit.gate_count() << " gates, "
              << circuit.input_count() << " PIs, "
              << circuit.output_count() << " POs\n";

    const auto before =
        fault::random_pattern_coverage(circuit, kPatterns, 1);
    std::cout << "coverage @" << kPatterns << " before: "
              << util::fmt_percent(before.coverage) << "%\n";

    DpPlanner planner;
    PlannerOptions options;
    options.budget = budget;
    options.objective.num_patterns = kPatterns;
    const Plan plan = planner.plan(circuit, options);
    std::cout << "planned " << plan.points.size()
              << " test points (budget " << budget << "):\n";
    for (const auto& tp : plan.points)
        std::cout << "  " << netlist::tp_kind_name(tp.kind) << " @ "
                  << circuit.node_name(tp.node) << "\n";

    const auto dft = netlist::apply_test_points(circuit, plan.points);
    const auto after =
        fault::random_pattern_coverage(dft.circuit, kPatterns, 1);
    std::cout << "coverage @" << kPatterns << " after:  "
              << util::fmt_percent(after.coverage) << "%\n";

    const std::string out_path = circuit.name() + "_tp.bench";
    std::ofstream out(out_path);
    if (out.good()) {
        netlist::write_bench(out, dft.circuit);
        std::cout << "wrote DFT netlist to " << out_path << "\n";
    }
    return 0;
}
