#pragma once

// Compatibility shim: the ternary 0/1/X machinery moved into the
// whole-netlist static-analysis engine (src/analysis), where the
// implication database builds on it. Existing lint consumers keep the
// tpi::lint spellings.

#include "analysis/ternary.hpp"

namespace tpi::lint {

using analysis::Ternary;
using analysis::ternary_name;
using analysis::is_defined;
using analysis::ternary_bool;
using analysis::to_ternary;
using analysis::eval_ternary;
using analysis::evaluate_ternary;
using analysis::propagate_constants;
using analysis::observable_mask;

}  // namespace tpi::lint
