#include "lint/lint.hpp"

#include <algorithm>
#include <optional>

#include "testability/cop.hpp"
#include "util/error.hpp"

namespace tpi::lint {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

std::string_view severity_name(Severity severity) {
    switch (severity) {
        case Severity::Info: return "info";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

std::size_t LintReport::count(Severity severity) const {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [severity](const Finding& f) {
                          return f.severity == severity;
                      }));
}

std::size_t LintReport::count_rule(std::string_view rule) const {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [rule](const Finding& f) { return f.rule == rule; }));
}

RuleRegistry& RuleRegistry::global() {
    static RuleRegistry registry = [] {
        RuleRegistry seeded;
        register_builtin_rules(seeded);
        return seeded;
    }();
    return registry;
}

void RuleRegistry::add(LintRule rule) {
    require(!rule.id.empty(), "RuleRegistry: empty rule id");
    require(static_cast<bool>(rule.run),
            "RuleRegistry: rule '" + rule.id + "' has no run function");
    require(find(rule.id) == nullptr,
            "RuleRegistry: duplicate rule id '" + rule.id + "'");
    rules_.push_back(std::move(rule));
}

const LintRule* RuleRegistry::find(std::string_view id) const {
    for (const LintRule& rule : rules_)
        if (rule.id == id) return &rule;
    return nullptr;
}

void validate_lint_options(const LintOptions& options) {
    if (options.max_findings_per_rule == 0)
        throw ValidationError(
            "lint options: max_findings_per_rule must be positive (a "
            "zero cap would truncate every rule before its first "
            "finding)");
    if (options.max_reconvergence_work == 0)
        throw ValidationError(
            "lint options: max_reconvergence_work must be positive (a "
            "zero budget cannot sweep any stem)");
    if (options.max_implication_steps == 0)
        throw ValidationError(
            "lint options: max_implication_steps must be positive (a "
            "zero budget cannot run any implication query)");
}

LintReport run_lint(const Circuit& circuit, const LintOptions& options,
                    const RuleRegistry& registry) {
    validate_lint_options(options);
    // Select before analysing so unknown rule ids fail fast.
    std::vector<const LintRule*> selected;
    if (options.rules.empty()) {
        for (const LintRule& rule : registry.rules())
            selected.push_back(&rule);
    } else {
        for (const std::string& id : options.rules) {
            const LintRule* rule = registry.find(id);
            require(rule != nullptr, "run_lint: unknown rule '" + id + "'");
            selected.push_back(rule);
        }
    }
    const auto wants = [&](std::string_view id) {
        return std::any_of(selected.begin(), selected.end(),
                           [id](const LintRule* rule) {
                               return rule->id == id;
                           });
    };

    obs::Sink* sink = options.sink;
    obs::Span run_span(sink, "lint/run");

    LintReport report;
    {
        obs::Span analyse_span(sink, "lint/analyse");
        report.ternary = propagate_constants(circuit);
        report.observable = observable_mask(circuit, report.ternary);
    }
    // The static-analysis facts are computed only when a selected rule
    // consumes them — they cost implication probing over the whole
    // fault universe, which the five structural rules never need.
    std::optional<analysis::AnalysisResult> facts;
    if (wants("untestable-fault") || wants("implication-constant")) {
        analysis::AnalysisOptions aopts;
        aopts.max_implication_nodes = options.max_implication_nodes;
        aopts.max_implication_steps = options.max_implication_steps;
        aopts.max_untestable_faults = options.max_untestable_faults;
        aopts.deadline = options.deadline;
        aopts.sink = sink;
        facts = analysis::run_analysis(circuit, aopts);
        if (facts->truncated) report.truncated = true;
    }
    std::optional<analysis::ObservePruning> observe;
    if (wants("dominated-observe-point")) {
        const testability::CopResult cop = testability::compute_cop(circuit);
        observe = analysis::compute_observe_pruning(
            circuit, cop, options.max_findings_per_rule);
    }
    const netlist::FfrDecomposition ffr = netlist::decompose_ffr(circuit);
    const RuleContext context{circuit,
                              report.ternary,
                              report.observable,
                              ffr,
                              options,
                              facts ? &*facts : nullptr,
                              observe ? &*observe : nullptr};

    for (const LintRule* rule : selected) {
        if (options.deadline != nullptr && options.deadline->expired_now()) {
            report.truncated = true;
            break;
        }
        obs::Span rule_span(sink, "lint/rule/" + rule->id);
        rule->run(context, report);
        obs::add(sink, obs::Counter::LintRulesRun);
    }
    obs::add(sink, obs::Counter::LintFindings, report.findings.size());
    if (report.truncated) obs::add(sink, obs::Counter::DeadlineExpiries);
    return report;
}

LintReport run_lint(const Circuit& circuit, const LintOptions& options) {
    return run_lint(circuit, options, RuleRegistry::global());
}

namespace detail {

std::vector<fault::Fault> derive_redundant_faults(
    const Circuit& circuit, std::span<const Ternary> value,
    const std::vector<bool>& observable) {
    std::vector<fault::Fault> redundant;
    for (NodeId v : circuit.all_nodes()) {
        const Ternary t = value[v.v];
        const GateType type = circuit.type(v);
        if (is_defined(t)) {
            // Stuck at the value the net always carries: never excited.
            // The matching tie-cell faults are already outside the fault
            // universe (all_faults drops them), so skip those.
            const bool trivial =
                (type == GateType::Const0 && t == Ternary::Zero) ||
                (type == GateType::Const1 && t == Ternary::One);
            if (!trivial) redundant.push_back({v, ternary_bool(t)});
            // s-a-(¬t) is NOT claimed: forcing a constant net to the
            // opposite value is not an information refinement, so the
            // blocking constants of the observability proof need not
            // survive in the faulty circuit (see DESIGN.md §10).
        } else if (!observable[v.v]) {
            // Unobservable and unconstant: the faulty circuit refines
            // the X at v, every blocking constant persists, and no
            // difference crosses a blocked edge — both polarities are
            // undetectable.
            redundant.push_back({v, false});
            redundant.push_back({v, true});
        }
    }
    return redundant;
}

}  // namespace detail

Pruning compute_pruning(const Circuit& circuit) {
    Pruning pruning;
    const std::vector<Ternary> value = propagate_constants(circuit);
    const std::vector<bool> observable = observable_mask(circuit, value);
    pruning.drop_candidate.assign(circuit.node_count(), false);
    for (NodeId v : circuit.all_nodes()) {
        if (is_defined(value[v.v]) || !observable[v.v]) {
            pruning.drop_candidate[v.v] = true;
            ++pruning.dropped;
        }
    }
    pruning.redundant_faults =
        detail::derive_redundant_faults(circuit, value, observable);
    return pruning;
}

}  // namespace tpi::lint
