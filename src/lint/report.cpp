#include "lint/report.hpp"

#include <ostream>
#include <sstream>
#include <vector>

namespace tpi::lint {

namespace {

/// Rule ids in order of first appearance, for the per-rule summaries.
std::vector<std::string_view> rules_in_order(const LintReport& report) {
    std::vector<std::string_view> order;
    for (const Finding& finding : report.findings) {
        bool seen = false;
        for (std::string_view id : order)
            if (id == finding.rule) {
                seen = true;
                break;
            }
        if (!seen) order.push_back(finding.rule);
    }
    return order;
}

void write_json_string(std::ostream& os, std::string_view text) {
    os << '"';
    for (const char c : text) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

}  // namespace

void write_text(std::ostream& os, const LintReport& report,
                const netlist::Circuit& circuit) {
    os << "lint: circuit '" << circuit.name() << "' — "
       << report.findings.size() << " finding"
       << (report.findings.size() == 1 ? "" : "s") << " ("
       << report.count(Severity::Error) << " errors, "
       << report.count(Severity::Warning) << " warnings, "
       << report.count(Severity::Info) << " infos)"
       << (report.truncated ? " [truncated]" : "") << "\n";
    for (const Finding& finding : report.findings) {
        os << "  [" << severity_name(finding.severity) << "] "
           << finding.rule << " @ ";
        for (std::size_t i = 0; i < finding.node_names.size(); ++i)
            os << (i > 0 ? "," : "") << finding.node_names[i];
        os << ": " << finding.message << "\n";
        if (!finding.fix_hint.empty())
            os << "      fix: " << finding.fix_hint << "\n";
    }
    const auto order = rules_in_order(report);
    if (!order.empty()) {
        os << "per-rule totals:\n";
        for (std::string_view id : order)
            os << "  " << id << ": " << report.count_rule(id) << "\n";
    }
}

void write_json(std::ostream& os, const LintReport& report,
                const netlist::Circuit& circuit) {
    os << "{\n  \"circuit\": ";
    write_json_string(os, circuit.name());
    os << ",\n  \"nodes\": " << circuit.node_count()
       << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding& finding = report.findings[i];
        os << (i > 0 ? "," : "") << "\n    {\"rule\": ";
        write_json_string(os, finding.rule);
        os << ", \"severity\": ";
        write_json_string(os, severity_name(finding.severity));
        os << ", \"nodes\": [";
        for (std::size_t j = 0; j < finding.nodes.size(); ++j) {
            os << (j > 0 ? ", " : "") << "{\"id\": "
               << finding.nodes[j].v << ", \"name\": ";
            write_json_string(os, finding.node_names[j]);
            os << "}";
        }
        os << "],\n     \"message\": ";
        write_json_string(os, finding.message);
        os << ",\n     \"fix_hint\": ";
        write_json_string(os, finding.fix_hint);
        os << "}";
    }
    os << "\n  ],\n  \"summary\": {\"errors\": "
       << report.count(Severity::Error)
       << ", \"warnings\": " << report.count(Severity::Warning)
       << ", \"infos\": " << report.count(Severity::Info)
       << ", \"truncated\": " << (report.truncated ? "true" : "false")
       << ",\n    \"by_rule\": {";
    const auto order = rules_in_order(report);
    for (std::size_t i = 0; i < order.size(); ++i) {
        os << (i > 0 ? ", " : "");
        write_json_string(os, order[i]);
        os << ": " << report.count_rule(order[i]);
    }
    os << "}}\n}\n";
}

std::string to_text(const LintReport& report,
                    const netlist::Circuit& circuit) {
    std::ostringstream os;
    write_text(os, report, circuit);
    return os.str();
}

std::string to_json(const LintReport& report,
                    const netlist::Circuit& circuit) {
    std::ostringstream os;
    write_json(os, report, circuit);
    return os.str();
}

}  // namespace tpi::lint
