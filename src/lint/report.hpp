#pragma once

#include <iosfwd>
#include <string>

#include "lint/lint.hpp"
#include "netlist/circuit.hpp"

namespace tpi::lint {

/// Human-readable report: one block per finding (severity, rule, nodes,
/// message, fix hint) followed by a per-rule summary. Deterministic:
/// depends only on the report contents.
void write_text(std::ostream& os, const LintReport& report,
                const netlist::Circuit& circuit);

/// Machine-readable JSON report (hand-rolled, no dependencies): circuit
/// metadata, the findings array, and a summary with per-rule counts.
/// Deterministic field and array order.
void write_json(std::ostream& os, const LintReport& report,
                const netlist::Circuit& circuit);

std::string to_text(const LintReport& report,
                    const netlist::Circuit& circuit);
std::string to_json(const LintReport& report,
                    const netlist::Circuit& circuit);

}  // namespace tpi::lint
