// The built-in lint rules. Each rule reads the shared RuleContext
// analyses and appends severity-graded findings; the heavier sweeps
// honour the per-rule finding cap, the work cap, and the deadline.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <utility>

#include "lint/lint.hpp"
#include "util/error.hpp"

namespace tpi::lint {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

/// Append a finding unless the rule's cap is reached (then mark the
/// report truncated instead). Returns false once capped so sweeps can
/// stop building messages early.
bool emit(const RuleContext& context, LintReport& report,
          std::string_view rule, Severity severity,
          std::vector<NodeId> nodes, std::string message,
          std::string fix_hint) {
    if (report.count_rule(rule) >= context.options.max_findings_per_rule) {
        report.truncated = true;
        return false;
    }
    Finding finding;
    finding.rule = std::string(rule);
    finding.severity = severity;
    finding.node_names.reserve(nodes.size());
    for (NodeId v : nodes)
        finding.node_names.emplace_back(context.circuit.node_name(v));
    finding.nodes = std::move(nodes);
    finding.message = std::move(message);
    finding.fix_hint = std::move(fix_hint);
    report.findings.push_back(std::move(finding));
    return true;
}

bool expired(const RuleContext& context, LintReport& report) {
    if (context.options.deadline != nullptr &&
        context.options.deadline->expired_now()) {
        report.truncated = true;
        return true;
    }
    return false;
}

// ---------------------------------------------------------- constant-net

void rule_constant_net(const RuleContext& context, LintReport& report) {
    const Circuit& circuit = context.circuit;
    for (NodeId v : circuit.all_nodes()) {
        const Ternary value = context.ternary[v.v];
        if (!is_defined(value)) continue;
        const GateType type = circuit.type(v);
        if (type == GateType::Const0 || type == GateType::Const1)
            continue;  // tie cells are constant by design
        if (!emit(context, report, "constant-net", Severity::Warning, {v},
                  "net '" + std::string(circuit.node_name(v)) + "' is constant " +
                      std::string(ternary_name(value)) +
                      " under every input assignment",
                  "replace the driver with a tie cell (lenient validation "
                  "then sweeps the dead cone) or fix the tied-off logic"))
            return;
    }
}

// ------------------------------------------------------ unobservable-net

void rule_unobservable_net(const RuleContext& context, LintReport& report) {
    const Circuit& circuit = context.circuit;
    for (NodeId v : circuit.all_nodes()) {
        if (context.observable[v.v]) continue;
        const bool dead_end =
            circuit.fanout_count(v) == 0 && !circuit.is_output(v);
        if (!emit(context, report, "unobservable-net", Severity::Warning,
                  {v},
                  "net '" + std::string(circuit.node_name(v)) + "' has " +
                      (dead_end ? "no consumers and is not an output"
                                : "no sensitisable path to any primary "
                                  "output (every path is blocked by a "
                                  "constant side input)"),
                  "remove the dead logic, or make it reachable; a test "
                  "point here cannot raise functional fault coverage"))
            return;
    }
}

// ------------------------------------------------------- redundant-fault

void rule_redundant_fault(const RuleContext& context, LintReport& report) {
    const Circuit& circuit = context.circuit;
    report.redundant_faults = detail::derive_redundant_faults(
        circuit, context.ternary, context.observable);
    for (const fault::Fault& f : report.redundant_faults) {
        const bool never_excited = is_defined(context.ternary[f.node.v]);
        if (!emit(context, report, "redundant-fault", Severity::Warning,
                  {f.node},
                  "stuck-at-" + std::string(f.stuck_at1 ? "1" : "0") +
                      " on net '" + std::string(circuit.node_name(f.node)) +
                      "' is provably undetectable (" +
                      (never_excited ? "the net always carries the stuck "
                                       "value"
                                     : "no fault effect can reach an "
                                       "output") +
                      ")",
                  "exclude it from the coverage denominator; planners "
                  "drop it under PlannerOptions::prune_via_lint"))
            return;
    }
}

// --------------------------------------------------- reconvergent-fanout

/// Per-stem branch-mask sweep. Each distinct consumer of the stem seeds
/// one bit (capped at 64 branches); masks are OR-propagated through the
/// stem's fanout cone in topological order. The first node where two
/// incoming edges contribute branch sets neither of which contains the
/// other is the stem's reconvergence point.
void rule_reconvergent_fanout(const RuleContext& context,
                              LintReport& report) {
    const Circuit& circuit = context.circuit;
    const std::size_t n = circuit.node_count();
    const auto& topo = circuit.topo_order();
    std::vector<std::uint32_t> topo_pos(n, 0);
    for (std::size_t i = 0; i < topo.size(); ++i)
        topo_pos[topo[i].v] = static_cast<std::uint32_t>(i);

    // Epoch-stamped scratch: one sweep per stem without re-clearing.
    std::vector<std::uint64_t> mask(n, 0);
    std::vector<std::uint32_t> stamp(n, 0);
    std::uint32_t epoch = 0;
    std::size_t work = 0;

    std::vector<NodeId> cone;
    std::vector<NodeId> seeds;
    for (NodeId stem : topo) {
        if (circuit.fanout_count(stem) < 2) continue;
        if (expired(context, report)) return;
        if (work > context.options.max_reconvergence_work) {
            report.truncated = true;
            return;
        }
        ++epoch;

        // Seed one branch bit per distinct consumer.
        seeds.clear();
        for (NodeId g : circuit.fanouts(stem)) {
            if (stamp[g.v] == epoch) continue;  // duplicate fanin slot
            stamp[g.v] = epoch;
            mask[g.v] = std::uint64_t{1}
                        << std::min<std::size_t>(seeds.size(), 63);
            seeds.push_back(g);
        }
        if (seeds.size() < 2) continue;

        // Collect the fanout cone, then visit it in topological order.
        cone = seeds;
        for (std::size_t i = 0; i < cone.size(); ++i) {
            for (NodeId g : circuit.fanouts(cone[i])) {
                if (stamp[g.v] == epoch) continue;
                stamp[g.v] = epoch;
                mask[g.v] = 0;
                cone.push_back(g);
            }
        }
        std::sort(cone.begin(), cone.end(), [&](NodeId a, NodeId b) {
            return topo_pos[a.v] < topo_pos[b.v];
        });
        work += cone.size();

        NodeId reconvergence = netlist::kNullNode;
        int branches = 0;
        for (NodeId v : cone) {
            std::uint64_t merged = mask[v.v];  // seed bit, if any
            bool reconverges = false;
            for (NodeId f : circuit.fanins(v)) {
                if (f == stem || stamp[f.v] != epoch) continue;
                const std::uint64_t incoming = mask[f.v];
                if (incoming == 0) continue;
                // Two contributions, neither containing the other, meet
                // genuinely different branch sets here.
                if (merged != 0 && (incoming & ~merged) != 0 &&
                    (merged & ~incoming) != 0)
                    reconverges = true;
                merged |= incoming;
            }
            mask[v.v] = merged;
            if (reconverges && !reconvergence.valid()) {
                reconvergence = v;
                branches = std::popcount(merged);
            }
        }
        if (!reconvergence.valid()) continue;

        const int depth =
            circuit.level(reconvergence) - circuit.level(stem);
        report.reconvergent_stems.push_back(
            {stem, reconvergence, depth, branches});
        emit(context, report, "reconvergent-fanout", Severity::Info,
             {stem, reconvergence},
             "stem '" + std::string(circuit.node_name(stem)) + "' reconverges at '" +
                 std::string(circuit.node_name(reconvergence)) + "' (depth " +
                 std::to_string(depth) + ", " + std::to_string(branches) +
                 " branches)",
             "COP and the per-region DP treat the branches as "
             "independent here; validate planned gains with fault "
             "simulation");
    }
}

// -------------------------------------------------------- duplicate-gate

void rule_duplicate_gate(const RuleContext& context, LintReport& report) {
    const Circuit& circuit = context.circuit;
    std::vector<NodeId> repr(circuit.node_count(), netlist::kNullNode);
    std::map<std::pair<GateType, std::vector<std::uint32_t>>, NodeId>
        table;
    std::vector<std::uint32_t> key_fanins;
    for (NodeId v : circuit.topo_order()) {
        const GateType type = circuit.type(v);
        if (type == GateType::Input) {
            repr[v.v] = v;  // primary inputs are never duplicates
            continue;
        }
        // Canonical key: gate type plus the sorted class representatives
        // of the fanins (every gate here is commutative; sorting is a
        // no-op for Buf/Not). Remapping through repr makes the match
        // transitive: duplicates of duplicates collapse too.
        key_fanins.clear();
        for (NodeId f : circuit.fanins(v))
            key_fanins.push_back(repr[f.v].v);
        std::sort(key_fanins.begin(), key_fanins.end());
        const auto [it, inserted] =
            table.try_emplace({type, key_fanins}, v);
        if (inserted) {
            repr[v.v] = v;
            continue;
        }
        const NodeId original = it->second;
        repr[v.v] = original;
        ++report.duplicate_gates;
        if (!emit(context, report, "duplicate-gate", Severity::Warning,
                  {v, original},
                  "gate '" + std::string(circuit.node_name(v)) +
                      "' computes the same function as '" +
                      std::string(circuit.node_name(original)) +
                      "' (same type, same fanins)",
                  "merge the gates and re-point the fanout of '" +
                      std::string(circuit.node_name(v)) + "' at '" +
                      std::string(circuit.node_name(original)) + "'"))
            return;
    }
}

// ------------------------------------------------------ untestable-fault

void rule_untestable_fault(const RuleContext& context, LintReport& report) {
    if (context.analysis == nullptr) return;
    const Circuit& circuit = context.circuit;
    for (const fault::Fault& f : context.analysis->untestable) {
        if (!emit(context, report, "untestable-fault", Severity::Warning,
                  {f.node},
                  "stuck-at-" + std::string(f.stuck_at1 ? "1" : "0") +
                      " on net '" + std::string(circuit.node_name(f.node)) +
                      "' is structurally untestable (its mandatory "
                      "assignments conflict under static implications)",
                  "exclude it from the coverage denominator; the "
                  "analysis certificate replays the conflict (tpidp "
                  "analyze --json)"))
            return;
    }
}

// -------------------------------------------------- implication-constant

void rule_implication_constant(const RuleContext& context,
                               LintReport& report) {
    if (context.analysis == nullptr) return;
    const Circuit& circuit = context.circuit;
    for (const analysis::Literal& c : context.analysis->learned_constants) {
        if (!emit(context, report, "implication-constant",
                  Severity::Warning, {c.node},
                  "net '" + std::string(circuit.node_name(c.node)) +
                      "' is provably constant " +
                      std::string(c.value ? "1" : "0") +
                      " (assuming the opposite value propagates to a "
                      "contradiction)",
                  "plain ternary propagation cannot see this constant; "
                  "treat the net as tied and review the driving logic"))
            return;
    }
}

// ----------------------------------------------- dominated-observe-point

void rule_dominated_observe_point(const RuleContext& context,
                                  LintReport& report) {
    if (context.observe_pruning == nullptr) return;
    const Circuit& circuit = context.circuit;
    for (NodeId v : circuit.topo_order()) {
        if (!context.observe_pruning->zero_gain[v.v]) continue;
        if (circuit.is_output(v)) continue;  // observing an output is
                                             // trivially redundant
        if (!emit(context, report, "dominated-observe-point",
                  Severity::Info, {v},
                  "an observe point at net '" + std::string(circuit.node_name(v)) +
                      "' is provably zero-gain (COP observability is "
                      "already exactly 1.0 along a transparent path to "
                      "an output)",
                  "planners drop the candidate under "
                  "PlannerOptions::prune_via_analysis, carrying a "
                  "transparent-chain certificate"))
            return;
    }
}

}  // namespace

void register_builtin_rules(RuleRegistry& registry) {
    registry.add({"constant-net",
                  "nets proven stuck at a constant by ternary propagation",
                  Severity::Warning, rule_constant_net});
    registry.add({"unobservable-net",
                  "nets with no sensitisable path to any primary output",
                  Severity::Warning, rule_unobservable_net});
    registry.add({"redundant-fault",
                  "stuck-at faults provably undetectable from the "
                  "constant and observability analyses",
                  Severity::Warning, rule_redundant_fault});
    registry.add({"reconvergent-fanout",
                  "fanout stems whose branches meet again (the structure "
                  "that makes TPI NP-complete)",
                  Severity::Info, rule_reconvergent_fanout});
    registry.add({"duplicate-gate",
                  "structurally duplicate gates found by hashing",
                  Severity::Warning, rule_duplicate_gate});
    registry.add({"untestable-fault",
                  "faults whose mandatory assignments conflict under "
                  "static implications",
                  Severity::Warning, rule_untestable_fault});
    registry.add({"implication-constant",
                  "constants learned by failed-assumption implication "
                  "probing",
                  Severity::Warning, rule_implication_constant});
    registry.add({"dominated-observe-point",
                  "observe-point sites provably zero-gain behind a "
                  "transparent dominator chain",
                  Severity::Info, rule_dominated_observe_point});
}

}  // namespace tpi::lint
