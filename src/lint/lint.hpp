#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/prune.hpp"
#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "netlist/ffr.hpp"
#include "lint/ternary.hpp"
#include "obs/obs.hpp"
#include "util/deadline.hpp"

namespace tpi::lint {

/// Grading of a lint finding. Lint severities are advisory (nothing here
/// stops a flow); the netlist *validator* owns the hard structural
/// contract.
enum class Severity : std::uint8_t {
    Info,     ///< structural fact worth knowing (e.g. reconvergence)
    Warning,  ///< wasted logic or wasted test budget
    Error,    ///< provably broken intent (reserved for future rules)
};

std::string_view severity_name(Severity severity);
inline constexpr int kSeverityCount = 3;

/// One finding of one rule: the implicated nodes (ids and names resolve
/// against the linted circuit), a human-readable message, and a fix hint.
struct Finding {
    std::string rule;        ///< stable rule id, e.g. "constant-net"
    Severity severity = Severity::Info;
    std::vector<netlist::NodeId> nodes;
    std::vector<std::string> node_names;  ///< parallel to `nodes`
    std::string message;
    std::string fix_hint;
};

/// A reconvergent fanout stem: two or more of its branches meet again at
/// `reconvergence` — the structure that breaks the fanout-free tree
/// property and makes general TPI NP-complete.
struct ReconvergentStem {
    netlist::NodeId stem = netlist::kNullNode;
    netlist::NodeId reconvergence = netlist::kNullNode;
    int depth = 0;     ///< level(reconvergence) - level(stem)
    int branches = 0;  ///< fanout branches participating
};

/// Everything one lint run produced: the graded findings plus the raw
/// per-node analysis artifacts that downstream consumers (planner
/// pruning, tests, reporters) reuse directly.
struct LintReport {
    std::vector<Finding> findings;

    /// Ternary constant propagation result, one value per node; defined
    /// entries are proven constants.
    std::vector<Ternary> ternary;

    /// Structural observability under constant blocking; false entries
    /// provably cannot influence any primary output.
    std::vector<bool> observable;

    /// Faults proven undetectable (see DESIGN.md §10 for the soundness
    /// argument); each is PODEM-redundant on the same circuit.
    std::vector<fault::Fault> redundant_faults;

    /// Reconvergent stems in topological order of the stem. The stem of
    /// entry i is the root of its fanout-free region, so `depth` keyed
    /// by stem is the per-FFR reconvergence depth.
    std::vector<ReconvergentStem> reconvergent_stems;

    /// Nodes structurally identical to an earlier node (same gate type,
    /// same canonicalised fanins, transitively).
    std::size_t duplicate_gates = 0;

    /// True when a per-rule finding cap or the deadline cut the run
    /// short; the artifacts above are still complete for the rules that
    /// ran to completion.
    bool truncated = false;

    std::size_t count(Severity severity) const;
    std::size_t count_rule(std::string_view rule) const;
};

struct LintOptions {
    /// Rule ids to run; empty means every registered rule. Unknown ids
    /// throw tpi::Error.
    std::vector<std::string> rules;

    /// Cap on findings emitted per rule (the analysis itself always
    /// completes); hitting it sets LintReport::truncated.
    std::size_t max_findings_per_rule = 64;

    /// Work cap for the per-stem reconvergence sweep, in node visits;
    /// hitting it sets LintReport::truncated.
    std::size_t max_reconvergence_work = 4'000'000;

    /// Caps forwarded to the static-analysis engine when a rule that
    /// consumes its facts (untestable-fault, implication-constant,
    /// dominated-observe-point) is selected — see AnalysisOptions for
    /// the semantics of each.
    std::size_t max_implication_nodes = 2048;
    std::size_t max_implication_steps = 200'000;
    std::size_t max_untestable_faults = 4096;

    /// Optional cooperative resource budget (not owned), checked between
    /// rules and inside the heavier sweeps. On expiry the report is
    /// returned truncated with every completed rule's findings intact.
    util::Deadline* deadline = nullptr;

    /// Optional observability sink (not owned). run_lint opens a
    /// "lint/run" span, a "lint/analyse" span for the shared analyses,
    /// and one "lint/rule/<id>" span per executed rule, and counts
    /// LintRulesRun / LintFindings. Null (the default) disables all
    /// instrumentation.
    obs::Sink* sink = nullptr;
};

/// Read-only context handed to every rule: the circuit plus the shared
/// analyses computed once per run. The two analysis pointers are
/// populated only when a selected rule consumes them (null otherwise);
/// rules that need them must tolerate null for embedders running them
/// through a custom registry.
struct RuleContext {
    const netlist::Circuit& circuit;
    const std::vector<Ternary>& ternary;
    const std::vector<bool>& observable;
    const netlist::FfrDecomposition& ffr;
    const LintOptions& options;
    const analysis::AnalysisResult* analysis = nullptr;
    const analysis::ObservePruning* observe_pruning = nullptr;
};

/// A registered rule. `run` appends findings (respecting the per-rule
/// cap via RuleSink) and may fill the report's artifact vectors.
struct LintRule {
    std::string id;
    std::string description;
    Severity severity = Severity::Info;
    std::function<void(const RuleContext&, LintReport&)> run;
};

/// Registry of lint rules, seeded with the built-in rules on first use.
/// Additional rules can be added at runtime (ids must be unique).
class RuleRegistry {
public:
    /// The process-wide registry (built-ins pre-registered).
    static RuleRegistry& global();

    /// An empty registry (no built-ins) — for tests and embedders.
    RuleRegistry() = default;

    void add(LintRule rule);
    const LintRule* find(std::string_view id) const;
    const std::vector<LintRule>& rules() const { return rules_; }

private:
    std::vector<LintRule> rules_;
};

/// Register the built-in rules (constant-net, unobservable-net,
/// redundant-fault, reconvergent-fanout, duplicate-gate,
/// untestable-fault, implication-constant, dominated-observe-point)
/// into `registry`.
void register_builtin_rules(RuleRegistry& registry);

/// Validate the option ranges and work caps; throws tpi::ValidationError
/// (CLI exit 4) for unusable values. Called by run_lint, and by the CLI
/// before building a report, so misconfiguration fails loudly instead
/// of being silently clamped.
void validate_lint_options(const LintOptions& options);

/// Run the selected rules of `registry` over `circuit`.
LintReport run_lint(const netlist::Circuit& circuit,
                    const LintOptions& options, const RuleRegistry& registry);

/// Run the selected rules of the global registry.
LintReport run_lint(const netlist::Circuit& circuit,
                    const LintOptions& options = {});

/// The lint facts planners consume, computed without building findings
/// (cheaper than a full run_lint; same analyses).
struct Pruning {
    /// Candidate nets to drop: proven constant or proven unable to
    /// influence any primary output.
    std::vector<bool> drop_candidate;

    /// Faults proven undetectable; planners zero-weight their classes in
    /// the internal optimisation universe.
    std::vector<fault::Fault> redundant_faults;

    /// Number of true entries in drop_candidate.
    std::size_t dropped = 0;
};

Pruning compute_pruning(const netlist::Circuit& circuit);

namespace detail {

/// Shared by the redundant-fault rule and compute_pruning: the faults
/// provably undetectable given the ternary constants and the blocked
/// observability mask. Sound (every returned fault is PODEM-redundant);
/// incomplete by design.
std::vector<fault::Fault> derive_redundant_faults(
    const netlist::Circuit& circuit, std::span<const Ternary> value,
    const std::vector<bool>& observable);

}  // namespace detail

}  // namespace tpi::lint
