#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "util/error.hpp"

namespace tpi::util {

/// Cooperative resource budget shared by the planners, the fault
/// simulator and the ATPG engine: a wall-clock allowance, an optional
/// step allowance, or both. Engines call expired() (or check()) at
/// their natural loop boundaries and degrade gracefully — returning
/// their best-so-far result tagged `truncated` — instead of running
/// unbounded on worst-case instances.
///
/// expired() amortises the clock read: only every kPollStride-th call
/// touches the clock, so it is cheap enough for inner loops. A
/// default-constructed Deadline is unlimited and never expires.
///
/// Thread safety: one Deadline may be polled concurrently from the
/// worker lanes of a parallel engine. The step counter and the sticky
/// expired flag are atomics; the limits are immutable after
/// construction. Expiry is sticky, so the first lane that observes it
/// stops every other lane at its next poll.
class Deadline {
public:
    using Clock = std::chrono::steady_clock;

    /// Unlimited: never expires.
    Deadline() = default;

    /// Copying is allowed while the deadline is not yet shared between
    /// threads (factories, std::optional storage); the copy snapshots
    /// the counter and flag non-atomically.
    Deadline(const Deadline& other)
        : limited_(other.limited_),
          expires_at_(other.expires_at_),
          max_steps_(other.max_steps_) {
        expired_.store(other.expired_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        steps_.store(other.steps_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
    Deadline& operator=(const Deadline& other) {
        limited_ = other.limited_;
        expires_at_ = other.expires_at_;
        max_steps_ = other.max_steps_;
        expired_.store(other.expired_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        steps_.store(other.steps_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        return *this;
    }

    /// Expires `budget_ms` wall-clock milliseconds after construction,
    /// and/or after `max_steps` calls to expired()/check().
    explicit Deadline(double budget_ms,
                      std::uint64_t max_steps =
                          std::numeric_limits<std::uint64_t>::max())
        : limited_(true),
          expires_at_(Clock::now() +
                      std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              budget_ms))),
          max_steps_(max_steps) {}

    /// Step-count-only budget (deterministic across machines).
    static Deadline steps(std::uint64_t max_steps) {
        Deadline d;
        d.limited_ = true;
        d.expires_at_ = Clock::time_point::max();
        d.max_steps_ = max_steps;
        return d;
    }

    bool limited() const { return limited_; }

    /// Count one unit of work; true once the budget is gone. Sticky:
    /// once expired, stays expired. The sticky flag is honoured even on
    /// an unlimited deadline, so cancel() can interrupt engines that
    /// were handed a no-budget deadline (the CLI's SIGINT path).
    bool expired() {
        if (expired_.load(std::memory_order_relaxed)) return true;
        if (!limited_) return false;
        const std::uint64_t step =
            steps_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (step >= max_steps_) return expire();
        if (step % kPollStride == 0 && Clock::now() >= expires_at_)
            return expire();
        return false;
    }

    /// Like expired(), but always polls the clock. For coarse-grained
    /// call sites where one unit of work is expensive (an exact plan
    /// evaluation, one ATPG fault) and the amortised poll would let the
    /// budget overshoot by many work units.
    bool expired_now() {
        if (expired_.load(std::memory_order_relaxed)) return true;
        if (!limited_) return false;
        const std::uint64_t step =
            steps_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (step >= max_steps_ || Clock::now() >= expires_at_)
            return expire();
        return false;
    }

    /// Has the budget already run out, without counting a step or
    /// polling the clock? For cheap has-someone-else-expired-us checks
    /// inside parallel loops.
    bool already_expired() const {
        return expired_.load(std::memory_order_relaxed);
    }

    /// Expire the deadline from outside, immediately and stickily —
    /// works on unlimited deadlines too. A single relaxed atomic store,
    /// so it is async-signal-safe: the CLI's SIGINT/SIGTERM handler
    /// cancels the active run's deadline and every engine polling it
    /// winds down with an honest truncated result.
    void cancel() { expired_.store(true, std::memory_order_relaxed); }

    /// Like expired(), but throws DeadlineError. For call sites with no
    /// meaningful partial result.
    void check(const std::string& where) {
        if (expired())
            throw DeadlineError(where + ": deadline expired after " +
                                std::to_string(steps()) + " steps");
    }

    /// Steps counted so far (diagnostics).
    std::uint64_t steps() const {
        return steps_.load(std::memory_order_relaxed);
    }

private:
    static constexpr std::uint64_t kPollStride = 64;

    bool expire() {
        expired_.store(true, std::memory_order_relaxed);
        return true;
    }

    bool limited_ = false;
    Clock::time_point expires_at_ = Clock::time_point::max();
    std::uint64_t max_steps_ = std::numeric_limits<std::uint64_t>::max();
    std::atomic<bool> expired_{false};
    std::atomic<std::uint64_t> steps_{0};
};

}  // namespace tpi::util
