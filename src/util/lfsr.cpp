#include "util/lfsr.hpp"

#include <array>
#include <bit>

namespace tpi::util {
namespace {

// Maximal-length (primitive polynomial) tap positions per register width,
// 1-indexed from the LSB, terminated by 0. Source: the classic XAPP052
// table of maximum-length LFSR feedback taps.
struct TapSet {
    std::array<unsigned, 7> taps;
};

constexpr TapSet kTaps[65] = {
    {{0}},          {{0}},          {{0}},          {{3, 2, 0}},
    {{4, 3, 0}},    {{5, 3, 0}},    {{6, 5, 0}},    {{7, 6, 0}},
    {{8, 6, 5, 4, 0}},              {{9, 5, 0}},    {{10, 7, 0}},
    {{11, 9, 0}},   {{12, 6, 4, 1, 0}},             {{13, 4, 3, 1, 0}},
    {{14, 5, 3, 1, 0}},             {{15, 14, 0}},  {{16, 15, 13, 4, 0}},
    {{17, 14, 0}},  {{18, 11, 0}},  {{19, 6, 2, 1, 0}},
    {{20, 17, 0}},  {{21, 19, 0}},  {{22, 21, 0}},  {{23, 18, 0}},
    {{24, 23, 22, 17, 0}},          {{25, 22, 0}},  {{26, 6, 2, 1, 0}},
    {{27, 5, 2, 1, 0}},             {{28, 25, 0}},  {{29, 27, 0}},
    {{30, 6, 4, 1, 0}},             {{31, 28, 0}},  {{32, 22, 2, 1, 0}},
    {{33, 20, 0}},  {{34, 27, 2, 1, 0}},            {{35, 33, 0}},
    {{36, 25, 0}},  {{37, 5, 4, 3, 2, 1, 0}},       {{38, 6, 5, 1, 0}},
    {{39, 35, 0}},  {{40, 38, 21, 19, 0}},          {{41, 38, 0}},
    {{42, 41, 20, 19, 0}},          {{43, 42, 38, 37, 0}},
    {{44, 43, 18, 17, 0}},          {{45, 44, 42, 41, 0}},
    {{46, 45, 26, 25, 0}},          {{47, 42, 0}},
    {{48, 47, 21, 20, 0}},          {{49, 40, 0}},
    {{50, 49, 24, 23, 0}},          {{51, 50, 36, 35, 0}},
    {{52, 49, 0}},  {{53, 52, 38, 37, 0}},          {{54, 53, 18, 17, 0}},
    {{55, 31, 0}},  {{56, 55, 35, 34, 0}},          {{57, 50, 0}},
    {{58, 39, 0}},  {{59, 58, 38, 37, 0}},          {{60, 59, 0}},
    {{61, 60, 46, 45, 0}},          {{62, 61, 6, 5, 0}},
    {{63, 62, 0}},  {{64, 63, 61, 60, 0}},
};

}  // namespace

std::uint64_t Lfsr::taps_for_width(unsigned width) {
    require(width >= 3 && width <= 64, "Lfsr: width must be in [3, 64]");
    std::uint64_t mask = 0;
    for (unsigned tap : kTaps[width].taps) {
        if (tap == 0) break;
        mask |= std::uint64_t{1} << (tap - 1);
    }
    return mask;
}

Lfsr::Lfsr(unsigned width, std::uint64_t seed)
    : width_(width), mask_(0), taps_(0), state_(0) {
    // The throwing call runs first and everything else is computed after
    // it: g++ 12.2 -O2 otherwise keeps `seed` in a caller-saved register
    // across the call and computes `seed & mask_` from a clobbered value
    // (verified in the generated assembly; -O1 and UBSan builds are
    // fine). Lfsr.SeedIsTakenVerbatim guards against regressions.
    taps_ = taps_for_width(width);
    mask_ = width == 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << width) - 1;
    state_ = seed & mask_;
    if (state_ == 0) state_ = mask_;  // zero is a fixed point; avoid it
}

std::uint64_t Lfsr::step() {
    const std::uint64_t feedback = std::popcount(state_ & taps_) & 1u;
    state_ = ((state_ << 1) | feedback) & mask_;
    return state_;
}

}  // namespace tpi::util
