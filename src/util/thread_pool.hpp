#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpi::util {

/// Work-stealing thread pool for batch-parallel index loops.
///
/// The pool owns `lanes() - 1` helper threads; the caller of for_each
/// participates as lane 0, so a pool of L lanes runs at most L tasks
/// concurrently. Helpers sleep on a condition variable between batches —
/// an idle pool burns no CPU.
///
/// for_each splits [0, count) into one contiguous index range per lane.
/// Each lane drains its own range front-to-back; a lane that runs dry
/// steals the back half of another lane's remaining range (classic range
/// stealing). Every index is executed exactly once, on exactly one lane.
/// Determinism is the caller's contract: a task may use `lane` to select
/// private scratch (a lane runs one task at a time), but observable
/// results must be written to per-index slots so they are independent of
/// which lane ran which index.
///
/// The first exception thrown by a task cancels the remaining tasks
/// (already-running ones complete) and is rethrown from for_each.
///
/// for_each is not reentrant: tasks must not call for_each on the same
/// pool. Concurrent for_each calls from different threads serialise.
class ThreadPool {
public:
    /// A pool running up to `lanes` tasks concurrently (the calling
    /// thread plus `lanes - 1` helpers). 0 means hardware_threads().
    explicit ThreadPool(unsigned lanes = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Maximum concurrency, including the calling thread.
    unsigned lanes() const {
        return static_cast<unsigned>(helpers_.size()) + 1;
    }

    /// Run fn(index, lane) for every index in [0, count), blocking until
    /// all calls complete. At most min(max_lanes, lanes(), count) lanes
    /// run concurrently; `lane` is in [0, that). max_lanes == 0 means
    /// lanes(). With one effective lane the loop runs inline on the
    /// calling thread, touching no synchronisation at all.
    void for_each(std::size_t count, unsigned max_lanes,
                  const std::function<void(std::size_t index,
                                           unsigned lane)>& fn);

    /// std::thread::hardware_concurrency, clamped to at least 1.
    static unsigned hardware_threads();

    /// Resolve a user-facing thread-count option: 0 -> hardware_threads().
    static unsigned resolve(unsigned requested);

    /// Process-wide shared pool, sized to hardware_threads(). Constructed
    /// on first use; callers that resolved to a single thread should not
    /// touch it (so purely serial runs never spawn threads).
    static ThreadPool& shared();

    /// Cumulative scheduling statistics since construction. These are
    /// diagnostics, not results: steal counts (and, with work-dependent
    /// early exits, task counts) vary run to run with thread timing. The
    /// observability layer snapshots them into a RunReport's "diag"
    /// section, which every differential comparison normalises away.
    struct Stats {
        std::uint64_t batches = 0;  ///< parallel for_each dispatches
        std::uint64_t tasks = 0;    ///< indices executed across batches
        std::uint64_t steals = 0;   ///< range-steal events across lanes
    };
    Stats stats() const {
        return {batches_.load(std::memory_order_relaxed),
                tasks_.load(std::memory_order_relaxed),
                steals_.load(std::memory_order_relaxed)};
    }

private:
    struct Shard;
    struct Batch;

    void helper_loop();
    static void run_lane(Batch& batch, unsigned lane);

    std::vector<std::thread> helpers_;

    std::mutex mutex_;                // guards batch_, epoch_, stop_
    std::condition_variable wake_;
    Batch* batch_ = nullptr;
    std::uint64_t epoch_ = 0;
    bool stop_ = false;

    std::mutex submit_mutex_;         // serialises for_each callers

    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> tasks_{0};
    std::atomic<std::uint64_t> steals_{0};
};

}  // namespace tpi::util
