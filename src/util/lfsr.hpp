#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace tpi::util {

/// Fibonacci linear-feedback shift register with maximal-length taps.
///
/// This is the pseudo-random pattern generator of a classic BIST
/// controller: an n-bit LFSR stepped once per test pattern, with the
/// register contents serving as the stimulus. Widths 3..64 are supported,
/// each with a primitive polynomial so the sequence period is 2^n - 1.
class Lfsr {
public:
    /// Construct an LFSR of `width` bits seeded with `seed` (only the low
    /// `width` bits are used; a zero seed is mapped to the all-ones state
    /// because the zero state is a fixed point).
    explicit Lfsr(unsigned width, std::uint64_t seed = 1);

    /// Advance one step and return the new register contents.
    std::uint64_t step();

    /// Current register contents (low `width` bits).
    std::uint64_t state() const { return state_; }

    unsigned width() const { return width_; }

    /// Feedback mask (primitive-polynomial taps) used for `width` bits.
    static std::uint64_t taps_for_width(unsigned width);

private:
    unsigned width_;
    std::uint64_t mask_;
    std::uint64_t taps_;
    std::uint64_t state_;
};

}  // namespace tpi::util
