#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <limits>

namespace tpi::util {

namespace {
constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();
}  // namespace

/// One lane's share of the index space: [next, end), guarded by its own
/// mutex so the owner pops from the front while thieves clip the back.
struct alignas(64) ThreadPool::Shard {
    std::mutex m;
    std::size_t next = 0;
    std::size_t end = 0;
};

struct ThreadPool::Batch {
    ThreadPool* pool = nullptr;
    const std::function<void(std::size_t, unsigned)>* fn = nullptr;
    std::vector<Shard> shards;  // one per participating lane
    unsigned lanes = 0;
    std::atomic<bool> cancelled{false};

    // Lane tickets for helpers (lane 0 is the submitting thread) and the
    // completion/error channel, all guarded by done_m.
    std::mutex done_m;
    std::condition_variable done_cv;
    unsigned next_lane = 1;
    unsigned running = 0;  // helpers that have not reported done yet
    std::exception_ptr error;
};

ThreadPool::ThreadPool(unsigned lanes) {
    if (lanes == 0) lanes = hardware_threads();
    helpers_.reserve(lanes > 0 ? lanes - 1 : 0);
    for (unsigned i = 1; i < lanes; ++i)
        helpers_.emplace_back([this] { helper_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& t : helpers_) t.join();
}

unsigned ThreadPool::hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

unsigned ThreadPool::resolve(unsigned requested) {
    return requested > 0 ? requested : hardware_threads();
}

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool(hardware_threads());
    return pool;
}

void ThreadPool::helper_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        Batch* batch = nullptr;
        {
            std::unique_lock lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || (batch_ != nullptr && epoch_ != seen);
            });
            if (stop_) return;
            seen = epoch_;
            batch = batch_;
        }
        unsigned lane;
        {
            std::lock_guard lock(batch->done_m);
            lane = batch->next_lane++;
        }
        // Surplus helpers (a batch may use fewer lanes than the pool
        // has) just report done.
        if (lane < batch->lanes) run_lane(*batch, lane);
        {
            std::lock_guard lock(batch->done_m);
            if (--batch->running == 0) batch->done_cv.notify_all();
        }
    }
}

void ThreadPool::run_lane(Batch& batch, unsigned lane) {
    Shard& own = batch.shards[lane];
    const auto& fn = *batch.fn;
    for (;;) {
        if (batch.cancelled.load(std::memory_order_relaxed)) return;
        std::size_t index = kNoIndex;
        {
            std::lock_guard lock(own.m);
            if (own.next < own.end) index = own.next++;
        }
        if (index == kNoIndex) {
            // Own range is dry: steal the back half of a victim's range.
            bool stole = false;
            for (unsigned off = 1; off < batch.lanes && !stole; ++off) {
                Shard& victim = batch.shards[(lane + off) % batch.lanes];
                std::size_t begin = 0, end = 0;
                {
                    std::lock_guard lock(victim.m);
                    const std::size_t left = victim.end - victim.next;
                    if (left == 0) continue;
                    const std::size_t take = (left + 1) / 2;
                    begin = victim.end - take;
                    end = victim.end;
                    victim.end = begin;
                }
                std::lock_guard lock(own.m);
                own.next = begin;
                own.end = end;
                stole = true;
                batch.pool->steals_.fetch_add(1,
                                              std::memory_order_relaxed);
            }
            if (!stole) return;  // no work left anywhere visible
            continue;
        }
        try {
            fn(index, lane);
        } catch (...) {
            std::lock_guard lock(batch.done_m);
            if (!batch.error) batch.error = std::current_exception();
            batch.cancelled.store(true, std::memory_order_relaxed);
        }
    }
}

void ThreadPool::for_each(
    std::size_t count, unsigned max_lanes,
    const std::function<void(std::size_t, unsigned)>& fn) {
    if (count == 0) return;
    unsigned lanes = max_lanes == 0 ? this->lanes() : max_lanes;
    lanes = std::min(lanes, this->lanes());
    if (static_cast<std::size_t>(lanes) > count)
        lanes = static_cast<unsigned>(count);
    if (lanes <= 1) {
        for (std::size_t i = 0; i < count; ++i) fn(i, 0);
        return;
    }

    std::lock_guard submit(submit_mutex_);
    batches_.fetch_add(1, std::memory_order_relaxed);
    tasks_.fetch_add(count, std::memory_order_relaxed);
    Batch batch;
    batch.pool = this;
    batch.fn = &fn;
    batch.lanes = lanes;
    batch.shards = std::vector<Shard>(lanes);
    for (unsigned s = 0; s < lanes; ++s) {
        batch.shards[s].next = count * s / lanes;
        batch.shards[s].end = count * (s + 1) / lanes;
    }
    batch.running = static_cast<unsigned>(helpers_.size());

    {
        std::lock_guard lock(mutex_);
        batch_ = &batch;
        ++epoch_;
    }
    wake_.notify_all();

    run_lane(batch, 0);

    {
        std::unique_lock lock(batch.done_m);
        batch.done_cv.wait(lock, [&] { return batch.running == 0; });
    }
    {
        std::lock_guard lock(mutex_);
        batch_ = nullptr;
    }
    if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace tpi::util
