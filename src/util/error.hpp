#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace tpi {

/// Stable machine-readable error categories. The CLI maps these to its
/// documented exit codes (see `tpidp --help`): usage errors are handled
/// before any tpi::Error is thrown, parse errors exit 3, validation
/// errors exit 4, and limit/deadline errors exit 5.
enum class ErrorCode : int {
    Generic = 1,     ///< contract violation / unclassified failure
    Parse = 3,       ///< malformed input text (.bench / .v)
    Validation = 4,  ///< structurally broken netlist
    Limit = 5,       ///< explicit resource limit exceeded
    Deadline = 5,    ///< cooperative wall-clock / step budget expired
};

/// Base exception for all library errors. Thrown on contract violations,
/// malformed input (e.g. unparsable .bench files), and infeasible
/// requests. Subclasses carry structured context: ParseError knows the
/// source name and line, ValidationError the offending node names.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}

    /// Stable category for exit-code mapping and tests.
    virtual ErrorCode code() const { return ErrorCode::Generic; }
};

/// Malformed input text: the reader could not even build a netlist.
class ParseError : public Error {
public:
    ParseError(std::string source, int line, const std::string& message)
        : Error(source + (line > 0 ? " (line " + std::to_string(line) + ")"
                                   : "") +
                ": " + message),
          source_(std::move(source)),
          line_(line) {}

    ErrorCode code() const override { return ErrorCode::Parse; }

    /// Originating stream: a file path, or a format tag such as ".bench"
    /// for in-memory parses.
    const std::string& source() const { return source_; }

    /// 1-based line of the offending text; 0 when unknown.
    int line() const { return line_; }

private:
    std::string source_;
    int line_ = 0;
};

/// Structurally broken netlist: parsed, but fails the validator in
/// Strict mode (cycles, floating outputs, degenerate gates, ...).
class ValidationError : public Error {
public:
    ValidationError(const std::string& message,
                    std::vector<std::string> nodes = {})
        : Error(message), nodes_(std::move(nodes)) {}

    ErrorCode code() const override { return ErrorCode::Validation; }

    /// Names of the nodes implicated in the violation (may be empty).
    const std::vector<std::string>& nodes() const { return nodes_; }

private:
    std::vector<std::string> nodes_;
};

/// An explicit resource limit was exceeded (instance too large for an
/// exact algorithm, value out of supported range, ...).
class LimitError : public Error {
public:
    explicit LimitError(const std::string& message) : Error(message) {}
    ErrorCode code() const override { return ErrorCode::Limit; }
};

/// A cooperative util::Deadline expired. Engines that degrade
/// gracefully catch this internally and return truncated best-so-far
/// results; it only escapes when no partial result is meaningful.
class DeadlineError : public Error {
public:
    explicit DeadlineError(const std::string& message) : Error(message) {}
    ErrorCode code() const override { return ErrorCode::Deadline; }
};

/// Throw tpi::Error with `message` unless `condition` holds.
/// Used for checking preconditions on public API boundaries.
inline void require(bool condition, const std::string& message) {
    if (!condition) throw Error(message);
}

}  // namespace tpi
