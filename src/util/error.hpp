#pragma once

#include <stdexcept>
#include <string>

namespace tpi {

/// Base exception for all library errors. Thrown on contract violations,
/// malformed input (e.g. unparsable .bench files), and infeasible requests.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throw tpi::Error with `message` unless `condition` holds.
/// Used for checking preconditions on public API boundaries.
inline void require(bool condition, const std::string& message) {
    if (!condition) throw Error(message);
}

}  // namespace tpi
