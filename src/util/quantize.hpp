#pragma once

#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace tpi::util {

/// Quantiser between probabilities and integer log-domain cost buckets.
///
/// The tree dynamic programs work with propagation probabilities that
/// multiply along paths; in log domain these become additive costs, which
/// a DP can enumerate exactly once they are snapped to an integer grid.
/// A probability p in (0, 1] maps to bucket round(-log2(p) / delta),
/// saturating at `max_bucket` (probabilities so small that any benefit is
/// negligible). Bucket d maps back to the representative 2^(-d * delta).
class LogQuantizer {
public:
    /// `delta_bits` is the grid resolution in bits (0.25 = quarter-bit
    /// resolution); `max_bucket` caps the representable cost.
    LogQuantizer(double delta_bits, int max_bucket)
        : delta_(delta_bits), max_bucket_(max_bucket) {
        require(delta_bits > 0.0, "LogQuantizer: delta must be positive");
        require(max_bucket >= 1, "LogQuantizer: max_bucket must be >= 1");
    }

    /// Probability -> bucket index in [0, max_bucket].
    int to_bucket(double probability) const {
        if (probability >= 1.0) return 0;
        if (probability <= 0.0) return max_bucket_;
        const double cost = -std::log2(probability) / delta_;
        const int bucket = static_cast<int>(std::lround(cost));
        return bucket >= max_bucket_ ? max_bucket_ : (bucket < 0 ? 0 : bucket);
    }

    /// Bucket index -> representative probability.
    double to_probability(int bucket) const {
        if (bucket <= 0) return 1.0;
        if (bucket >= max_bucket_) return 0.0;
        return std::exp2(-delta_ * bucket);
    }

    /// Saturating bucket addition (path concatenation in log domain).
    int add(int a, int b) const {
        const int sum = a + b;
        return sum >= max_bucket_ ? max_bucket_ : sum;
    }

    double delta_bits() const { return delta_; }
    int max_bucket() const { return max_bucket_; }
    /// Number of distinct buckets (max_bucket + 1), for sizing DP tables.
    int bucket_count() const { return max_bucket_ + 1; }

private:
    double delta_;
    int max_bucket_;
};

}  // namespace tpi::util
