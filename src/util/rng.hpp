#pragma once

#include <cstdint>
#include <limits>

namespace tpi::util {

/// Deterministic xoshiro256** pseudo-random generator.
///
/// Every stochastic component in the library (pattern sources, random
/// circuit generators, random baselines) takes an explicit seed so that all
/// experiments are reproducible. Satisfies std::uniform_random_bit_generator.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /// Re-initialise the state from a 64-bit seed via splitmix64, which
    /// guarantees a non-zero, well-mixed state for any seed value.
    void reseed(std::uint64_t seed) {
        for (auto& word : state_) word = splitmix64(seed);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() { return next(); }

    /// 64 fresh random bits.
    std::uint64_t next() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be positive.
    std::uint64_t below(std::uint64_t bound) {
        // Lemire-style rejection to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli trial with success probability p.
    bool chance(double p) { return uniform() < p; }

private:
    static std::uint64_t splitmix64(std::uint64_t& x) {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

}  // namespace tpi::util
