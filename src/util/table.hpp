#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tpi::util {

/// Fixed-width text table used by the bench binaries to print the rows of
/// a reproduced paper table. Columns are sized to fit the widest cell;
/// numeric formatting is up to the caller (use format helpers below).
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Append a data row; must have exactly as many cells as the header.
    void add_row(std::vector<std::string> cells);

    /// Render with a title line, a header row, a separator, and all rows.
    void print(std::ostream& os, const std::string& title = "") const;

    std::size_t row_count() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` fractional digits (fixed notation).
std::string fmt_fixed(double value, int digits);

/// Format a fraction as a percentage with `digits` fractional digits.
std::string fmt_percent(double fraction, int digits = 2);

}  // namespace tpi::util
