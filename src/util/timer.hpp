#pragma once

#include <chrono>

namespace tpi::util {

/// Monotonic wall-clock stopwatch used by benches and the experiment
/// harness for coarse CPU-time reporting.
class Timer {
public:
    Timer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction or the last reset().
    double millis() const { return seconds() * 1e3; }

private:
    // steady_clock, never high_resolution_clock: the latter may alias a
    // non-steady wall clock (it does on libstdc++ targets where it is
    // system_clock), and a timer that can go backwards across an NTP
    // step poisons every elapsed-time report. Locked in at compile time;
    // test_util has the runtime regression test.
    using Clock = std::chrono::steady_clock;
    static_assert(Clock::is_steady,
                  "util::Timer requires a steady (monotonic) clock");
    Clock::time_point start_;
};

}  // namespace tpi::util
