#pragma once

#include <chrono>

namespace tpi::util {

/// Monotonic wall-clock stopwatch used by benches and the experiment
/// harness for coarse CPU-time reporting.
class Timer {
public:
    Timer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction or the last reset().
    double millis() const { return seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace tpi::util
