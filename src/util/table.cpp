#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace tpi::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
    require(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
    require(cells.size() == header_.size(),
            "TextTable: row width does not match header");
    rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os, const std::string& title) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    const auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ") << std::left
               << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << " |\n";
    };

    if (!title.empty()) os << title << '\n';
    print_row(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
    }
    os << "-|\n";
    for (const auto& row : rows_) print_row(row);
    os.flush();
}

std::string fmt_fixed(double value, int digits) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(digits) << value;
    return ss.str();
}

std::string fmt_percent(double fraction, int digits) {
    return fmt_fixed(fraction * 100.0, digits);
}

}  // namespace tpi::util
