#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "netlist/ffr.hpp"
#include "netlist/test_point.hpp"
#include "obs/obs.hpp"
#include "testability/incremental_cop.hpp"
#include "tpi/evaluate.hpp"

namespace tpi {

/// Incremental plan-evaluation engine: the planners' replacement for the
/// `apply_test_points` + `compute_cop` + rescore cycle of
/// `evaluate_plan`.
///
/// The engine pairs an IncrementalCop (delta-COP state on the base
/// circuit) with a dense per-fault detection-probability vector and a
/// per-fault benefit cache. Applying a test point updates only the
/// faults whose site's controllability or observability actually moved;
/// the objective is then an ordered weighted sum over the benefit cache
/// — the same values in the same summation order as
/// `Objective::score`, so every score is bit-identical to the
/// `evaluate_plan` oracle on the materialised plan (asserted by
/// tests/test_incremental.cpp).
///
/// Points stack like a DFS: `push` applies a point as an undo frame,
/// `pop` rolls the newest frame back exactly, and `commit` (only at
/// depth 1) absorbs the frame into the committed base state — the shape
/// the greedy step loop (score candidates, commit the winner), the
/// exhaustive recursion (push/recurse/pop), and the DP planner's
/// round-committed state all map onto directly.
///
/// `score_batch` scores many candidates concurrently on per-lane engine
/// clones; each candidate's score is a pure function of the committed
/// state, so results are independent of lane assignment and the caller
/// may reduce them deterministically (the greedy planner replays its
/// sequential argmax loop over the score vector).
class EvalEngine {
public:
    /// `faults` and `circuit` are borrowed for the engine's lifetime.
    /// `epsilon` is the delta-propagation cutoff (0 = exact, the
    /// default; >0 trades bit-exactness for shallower update cones).
    /// `simd_eval` routes committed-state batch scoring through the
    /// lane-parallel block scorer (bit-identical, just faster); off
    /// forces the scalar per-candidate clones.
    EvalEngine(const netlist::Circuit& circuit,
               const fault::CollapsedFaults& faults,
               const Objective& objective, obs::Sink* sink = nullptr,
               double epsilon = 0.0, bool simd_eval = true);
    ~EvalEngine();

    // ---- delta stack ---------------------------------------------------

    void push(const netlist::TestPoint& point);
    void pop();
    void commit();
    std::size_t depth() const { return cop_.depth(); }

    // ---- scoring -------------------------------------------------------

    /// Objective value of the current state (committed + open frames).
    double score() const;

    /// Full evaluation of the current state; field-for-field identical
    /// to `evaluate_plan` on the materialised equivalent plan.
    PlanEvaluation evaluation() const;

    /// Detection probability per fault of the current state.
    std::span<const double> detection_probability() const { return p_; }

    /// Convenience: push + score + pop.
    double score_candidate(const netlist::TestPoint& point);

    /// Score every candidate against the committed state on up to
    /// `threads` worker lanes (per-lane engine clones, synced lazily
    /// after commits). scores[i] is independent of the lane that
    /// computed it. threads <= 1 runs inline without touching the pool.
    std::vector<double> score_batch(
        std::span<const netlist::TestPoint> candidates, unsigned threads);

    /// Lane-parallel batch scoring against the committed state: groups
    /// candidates by FFR/cone locality into blocks of eval_lanes(),
    /// sweeps each block's union frontier once with per-lane masks
    /// (testability::CopLaneSweep), and reduces per lane in the exact
    /// Objective::score order — every score bit-identical to
    /// score_candidate. Requires no open frames; threads block-level
    /// parallelism composes on top of the lanes (threads x lanes).
    std::vector<double> score_block(
        std::span<const netlist::TestPoint> candidates, unsigned threads);

    /// Candidates per block for score_block: 0 (default) resolves to
    /// sim::preferred_eval_lanes() at the first block; explicit values
    /// must satisfy testability::cop_lanes_supported. Changing the
    /// width drops the block scratch (rebuilt lazily).
    void set_eval_lanes(unsigned lanes);
    unsigned eval_lanes() const { return eval_lanes_; }

    bool simd_eval() const { return simd_eval_; }

    // ---- projection ----------------------------------------------------

    const testability::IncrementalCop& cop() const { return cop_; }

    /// See IncrementalCop::export_cop: the transformed circuit's
    /// CopResult without traversing the transformed netlist.
    testability::CopResult export_cop(
        const netlist::TransformResult& dft) const {
        return cop_.export_cop(dft);
    }

private:
    struct FaultUndo {
        std::uint32_t index;
        double p;
        double benefit;
    };

    void refresh_changed_faults(std::vector<FaultUndo>& undo);
    void sync_from(const EvalEngine& other);

    const netlist::Circuit& circuit_;
    const fault::CollapsedFaults& faults_;
    Objective objective_;
    obs::Sink* sink_;
    testability::IncrementalCop cop_;

    std::vector<double> p_;        ///< per-fault detection probability
    std::vector<double> benefit_;  ///< objective.benefit(p_), cached

    // node -> fault indices, CSR (at most two faults per node).
    std::vector<std::uint32_t> fault_offset_;
    std::vector<std::uint32_t> fault_index_;

    std::vector<std::vector<FaultUndo>> fault_frames_;

    // Batch-scoring lanes: clone lane L-1 serves pool lane L (lane 0 is
    // this engine). Synced to `version_` before each parallel batch.
    std::uint64_t version_ = 0;
    std::vector<std::unique_ptr<EvalEngine>> lanes_;
    std::vector<std::uint64_t> lane_version_;

    // Lane-parallel block scorer: one CopLaneSweep + query buffer per
    // pool worker, reused across planner rounds (the sweeps borrow
    // cop_'s committed state in place, so commits need no resync).
    struct BlockScratch;
    bool simd_eval_;
    unsigned eval_lanes_ = 0;  ///< 0 = auto (preferred_eval_lanes)
    std::vector<std::unique_ptr<BlockScratch>> block_scratch_;
    std::vector<std::uint32_t> block_order_;
    std::unique_ptr<netlist::FfrDecomposition> ffr_;  ///< lazy
};

}  // namespace tpi
