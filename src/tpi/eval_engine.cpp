#include "tpi/eval_engine.hpp"

#include <algorithm>

#include "sim/simd.hpp"
#include "testability/cop_lanes.hpp"
#include "testability/detect.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace tpi {

using netlist::NodeId;
using netlist::TestPoint;

/// Per-pool-worker scratch of the block scorer: the lane sweep (which
/// owns all per-block state) plus the fault-query staging buffer.
/// Constructed lazily at the first score_block and reused across every
/// planner round — steady state allocates nothing.
struct EvalEngine::BlockScratch {
    testability::CopLaneSweep sweep;
    std::vector<testability::LaneFaultQuery> queries;
    double scores[testability::kMaxCopLanes] = {};

    BlockScratch(const testability::IncrementalCop& cop, unsigned lanes)
        : sweep(cop, lanes) {}
};

EvalEngine::EvalEngine(const netlist::Circuit& circuit,
                       const fault::CollapsedFaults& faults,
                       const Objective& objective, obs::Sink* sink,
                       double epsilon, bool simd_eval)
    : circuit_(circuit),
      faults_(faults),
      objective_(objective),
      sink_(sink),
      cop_(circuit, epsilon),
      simd_eval_(simd_eval) {
    // CSR of resident faults per node (a node carries at most its s-a-0
    // and s-a-1 representative).
    const std::size_t n = circuit.node_count();
    fault_offset_.assign(n + 1, 0);
    for (const fault::Fault& f : faults.representatives)
        ++fault_offset_[f.node.v + 1];
    for (std::size_t v = 0; v < n; ++v)
        fault_offset_[v + 1] += fault_offset_[v];
    fault_index_.resize(faults.size());
    {
        std::vector<std::uint32_t> cursor(fault_offset_.begin(),
                                          fault_offset_.end() - 1);
        for (std::size_t i = 0; i < faults.size(); ++i)
            fault_index_[cursor[faults.representatives[i].node.v]++] =
                static_cast<std::uint32_t>(i);
    }

    p_.resize(faults.size());
    benefit_.resize(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const fault::Fault f = faults.representatives[i];
        const double excitation = f.stuck_at1 ? (1.0 - cop_.c1(f.node))
                                              : cop_.c1(f.node);
        p_[i] = excitation * cop_.site_obs(f.node);
        benefit_[i] = objective_.benefit(p_[i]);
    }
}

EvalEngine::~EvalEngine() = default;

void EvalEngine::set_eval_lanes(unsigned lanes) {
    require(lanes == 0 || testability::cop_lanes_supported(lanes),
            "EvalEngine: unsupported eval lane count");
    if (lanes == eval_lanes_) return;
    eval_lanes_ = lanes;
    block_scratch_.clear();
}

void EvalEngine::refresh_changed_faults(std::vector<FaultUndo>& undo) {
    for (const std::uint32_t node : cop_.frame_changed_nodes()) {
        for (std::uint32_t k = fault_offset_[node];
             k < fault_offset_[node + 1]; ++k) {
            const std::uint32_t i = fault_index_[k];
            const fault::Fault f = faults_.representatives[i];
            const double excitation = f.stuck_at1
                                          ? (1.0 - cop_.c1(f.node))
                                          : cop_.c1(f.node);
            const double next = excitation * cop_.site_obs(f.node);
            if (next == p_[i]) continue;
            undo.push_back({i, p_[i], benefit_[i]});
            p_[i] = next;
            benefit_[i] = objective_.benefit(next);
        }
    }
}

void EvalEngine::push(const TestPoint& point) {
    cop_.apply(point);
    obs::add(sink_, obs::Counter::EngineNodesTouched, cop_.last_touched());
    fault_frames_.emplace_back();
    refresh_changed_faults(fault_frames_.back());
}

void EvalEngine::pop() {
    require(!fault_frames_.empty(), "EvalEngine: pop with no frame");
    const auto& undo = fault_frames_.back();
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
        p_[it->index] = it->p;
        benefit_[it->index] = it->benefit;
    }
    fault_frames_.pop_back();
    cop_.rollback();
    obs::add(sink_, obs::Counter::EngineRollbacks);
}

void EvalEngine::commit() {
    require(fault_frames_.size() == 1,
            "EvalEngine: commit requires exactly one open frame");
    fault_frames_.pop_back();
    cop_.commit();
    ++version_;
    obs::add(sink_, obs::Counter::EngineCommits);
}

double EvalEngine::score() const {
    // Same accumulation order as Objective::score over the same values
    // (benefit_[i] is objective.benefit(p_[i]) by construction), so the
    // total matches the oracle bit-for-bit.
    double total = 0.0;
    for (std::size_t i = 0; i < benefit_.size(); ++i)
        total += faults_.class_size[i] * benefit_[i];
    return total;
}

PlanEvaluation EvalEngine::evaluation() const {
    PlanEvaluation eval;
    eval.detection_probability = p_;
    eval.score = score();
    eval.estimated_coverage = testability::estimated_coverage(
        p_, faults_.class_size, objective_.num_patterns);
    eval.min_detection_probability =
        testability::min_detection_probability(p_);
    return eval;
}

double EvalEngine::score_candidate(const TestPoint& point) {
    push(point);
    const double s = score();
    pop();
    obs::add(sink_, obs::Counter::EngineEvaluations);
    return s;
}

void EvalEngine::sync_from(const EvalEngine& other) {
    cop_.sync_from(other.cop_);
    p_ = other.p_;
    benefit_ = other.benefit_;
    version_ = other.version_;
}

std::vector<double> EvalEngine::score_batch(
    std::span<const TestPoint> candidates, unsigned threads) {
    if (simd_eval_ && fault_frames_.empty())
        return score_block(candidates, threads);
    std::vector<double> scores(candidates.size());
    const unsigned lanes = std::min<unsigned>(
        util::ThreadPool::resolve(threads),
        static_cast<unsigned>(std::max<std::size_t>(candidates.size(), 1)));
    if (lanes <= 1) {
        for (std::size_t i = 0; i < candidates.size(); ++i)
            scores[i] = score_candidate(candidates[i]);
        return scores;
    }
    require(fault_frames_.empty(),
            "EvalEngine: score_batch with open frames");
    // Materialise and sync the helper-lane clones before going
    // parallel: inside the batch every lane (including lane 0 = this
    // engine) mutates only its own state.
    while (lanes_.size() + 1 < lanes) {
        lanes_.push_back(std::make_unique<EvalEngine>(
            circuit_, faults_, objective_, sink_, cop_.epsilon()));
        lanes_.back()->sync_from(*this);
        lane_version_.push_back(version_);
    }
    for (std::size_t l = 0; l + 1 < lanes; ++l) {
        if (lane_version_[l] != version_) {
            lanes_[l]->sync_from(*this);
            lane_version_[l] = version_;
        }
    }
    util::ThreadPool::shared().for_each(
        candidates.size(), lanes, [&](std::size_t i, unsigned lane) {
            EvalEngine& engine = lane == 0 ? *this : *lanes_[lane - 1];
            scores[i] = engine.score_candidate(candidates[i]);
        });
    return scores;
}

std::vector<double> EvalEngine::score_block(
    std::span<const TestPoint> candidates, unsigned threads) {
    std::vector<double> scores(candidates.size());
    if (candidates.empty()) return scores;
    require(fault_frames_.empty(),
            "EvalEngine: score_block with open frames");
    const unsigned k = eval_lanes_ != 0 ? eval_lanes_
                                        : sim::preferred_eval_lanes();

    // Group candidates by FFR, then level, so block-mates share most of
    // their update cones — the union frontier of a block then costs
    // barely more than one candidate's. The node/kind tie-breaks make
    // the block composition a pure function of the candidate set
    // (stable sort over deterministic keys), independent of threads.
    if (!ffr_)
        ffr_ = std::make_unique<netlist::FfrDecomposition>(
            netlist::decompose_ffr(circuit_));
    const netlist::CsrView csr = circuit_.topology();
    block_order_.resize(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
        block_order_[i] = static_cast<std::uint32_t>(i);
    std::stable_sort(
        block_order_.begin(), block_order_.end(),
        [&](std::uint32_t a, std::uint32_t b) {
            const TestPoint& ta = candidates[a];
            const TestPoint& tb = candidates[b];
            const std::uint32_t ra = ffr_->region_of[ta.node.v];
            const std::uint32_t rb = ffr_->region_of[tb.node.v];
            if (ra != rb) return ra < rb;
            if (csr.level[ta.node.v] != csr.level[tb.node.v])
                return csr.level[ta.node.v] < csr.level[tb.node.v];
            if (ta.node.v != tb.node.v) return ta.node.v < tb.node.v;
            return static_cast<int>(ta.kind) < static_cast<int>(tb.kind);
        });

    const std::size_t blocks = (candidates.size() + k - 1) / k;
    const unsigned pool = std::min<unsigned>(
        util::ThreadPool::resolve(threads),
        static_cast<unsigned>(std::max<std::size_t>(blocks, 1)));
    while (block_scratch_.size() < pool)
        block_scratch_.push_back(
            std::make_unique<BlockScratch>(cop_, k));

    testability::BenefitParams params;
    params.threshold_linear =
        objective_.kind == Objective::Kind::ThresholdLinear;
    params.threshold = objective_.threshold;
    params.num_patterns = objective_.num_patterns;

    auto run_block = [&](std::size_t b, unsigned lane) {
        BlockScratch& bs = *block_scratch_[lane];
        const std::size_t begin = b * k;
        const unsigned used = static_cast<unsigned>(
            std::min<std::size_t>(k, candidates.size() - begin));
        TestPoint points[testability::kMaxCopLanes];
        for (unsigned l = 0; l < used; ++l)
            points[l] = candidates[block_order_[begin + l]];
        bs.sweep.apply_block(std::span<const TestPoint>(points, used));

        // Every fault resident on a node the block touched in any lane;
        // lanes whose state at the site is unchanged reproduce the
        // committed p bitwise and mask themselves out in the kernel.
        // One ascending scan of the (already fault-ordered) universe
        // with an O(1) membership test beats gather-then-sort: the
        // changed set is a large fraction of the circuit on wide
        // blocks, and sorting it was the single hottest step.
        bs.queries.clear();
        const std::size_t n_faults = faults_.representatives.size();
        for (std::size_t i = 0; i < n_faults; ++i) {
            const fault::Fault f = faults_.representatives[i];
            if (!bs.sweep.node_changed(f.node.v)) continue;
            bs.queries.push_back({static_cast<std::uint32_t>(i),
                                  f.node.v, f.stuck_at1, p_[i]});
        }
        bs.sweep.refresh_faults(bs.queries, params);
        bs.sweep.ordered_scores(faults_.class_size, benefit_,
                                bs.scores);
        for (unsigned l = 0; l < used; ++l)
            scores[block_order_[begin + l]] = bs.scores[l];

        obs::add(sink_, obs::Counter::ScoreBlocks);
        obs::add(sink_, obs::Counter::LanesActive, used);
        obs::add(sink_, obs::Counter::FrontierNodesShared,
                 bs.sweep.shared_frontier_nodes());
        obs::add(sink_, obs::Counter::EngineNodesTouched,
                 bs.sweep.last_touched());
        obs::add(sink_, obs::Counter::EngineEvaluations, used);
    };
    if (pool <= 1) {
        for (std::size_t b = 0; b < blocks; ++b) run_block(b, 0);
    } else {
        util::ThreadPool::shared().for_each(blocks, pool, run_block);
    }
    return scores;
}

}  // namespace tpi
