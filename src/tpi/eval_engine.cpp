#include "tpi/eval_engine.hpp"

#include "testability/detect.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace tpi {

using netlist::NodeId;
using netlist::TestPoint;

EvalEngine::EvalEngine(const netlist::Circuit& circuit,
                       const fault::CollapsedFaults& faults,
                       const Objective& objective, obs::Sink* sink,
                       double epsilon)
    : circuit_(circuit),
      faults_(faults),
      objective_(objective),
      sink_(sink),
      cop_(circuit, epsilon) {
    // CSR of resident faults per node (a node carries at most its s-a-0
    // and s-a-1 representative).
    const std::size_t n = circuit.node_count();
    fault_offset_.assign(n + 1, 0);
    for (const fault::Fault& f : faults.representatives)
        ++fault_offset_[f.node.v + 1];
    for (std::size_t v = 0; v < n; ++v)
        fault_offset_[v + 1] += fault_offset_[v];
    fault_index_.resize(faults.size());
    {
        std::vector<std::uint32_t> cursor(fault_offset_.begin(),
                                          fault_offset_.end() - 1);
        for (std::size_t i = 0; i < faults.size(); ++i)
            fault_index_[cursor[faults.representatives[i].node.v]++] =
                static_cast<std::uint32_t>(i);
    }

    p_.resize(faults.size());
    benefit_.resize(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const fault::Fault f = faults.representatives[i];
        const double excitation = f.stuck_at1 ? (1.0 - cop_.c1(f.node))
                                              : cop_.c1(f.node);
        p_[i] = excitation * cop_.site_obs(f.node);
        benefit_[i] = objective_.benefit(p_[i]);
    }
}

void EvalEngine::refresh_changed_faults(std::vector<FaultUndo>& undo) {
    for (const std::uint32_t node : cop_.frame_changed_nodes()) {
        for (std::uint32_t k = fault_offset_[node];
             k < fault_offset_[node + 1]; ++k) {
            const std::uint32_t i = fault_index_[k];
            const fault::Fault f = faults_.representatives[i];
            const double excitation = f.stuck_at1
                                          ? (1.0 - cop_.c1(f.node))
                                          : cop_.c1(f.node);
            const double next = excitation * cop_.site_obs(f.node);
            if (next == p_[i]) continue;
            undo.push_back({i, p_[i], benefit_[i]});
            p_[i] = next;
            benefit_[i] = objective_.benefit(next);
        }
    }
}

void EvalEngine::push(const TestPoint& point) {
    cop_.apply(point);
    obs::add(sink_, obs::Counter::EngineNodesTouched, cop_.last_touched());
    fault_frames_.emplace_back();
    refresh_changed_faults(fault_frames_.back());
}

void EvalEngine::pop() {
    require(!fault_frames_.empty(), "EvalEngine: pop with no frame");
    const auto& undo = fault_frames_.back();
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
        p_[it->index] = it->p;
        benefit_[it->index] = it->benefit;
    }
    fault_frames_.pop_back();
    cop_.rollback();
    obs::add(sink_, obs::Counter::EngineRollbacks);
}

void EvalEngine::commit() {
    require(fault_frames_.size() == 1,
            "EvalEngine: commit requires exactly one open frame");
    fault_frames_.pop_back();
    cop_.commit();
    ++version_;
    obs::add(sink_, obs::Counter::EngineCommits);
}

double EvalEngine::score() const {
    // Same accumulation order as Objective::score over the same values
    // (benefit_[i] is objective.benefit(p_[i]) by construction), so the
    // total matches the oracle bit-for-bit.
    double total = 0.0;
    for (std::size_t i = 0; i < benefit_.size(); ++i)
        total += faults_.class_size[i] * benefit_[i];
    return total;
}

PlanEvaluation EvalEngine::evaluation() const {
    PlanEvaluation eval;
    eval.detection_probability = p_;
    eval.score = score();
    eval.estimated_coverage = testability::estimated_coverage(
        p_, faults_.class_size, objective_.num_patterns);
    eval.min_detection_probability =
        testability::min_detection_probability(p_);
    return eval;
}

double EvalEngine::score_candidate(const TestPoint& point) {
    push(point);
    const double s = score();
    pop();
    obs::add(sink_, obs::Counter::EngineEvaluations);
    return s;
}

void EvalEngine::sync_from(const EvalEngine& other) {
    cop_.sync_from(other.cop_);
    p_ = other.p_;
    benefit_ = other.benefit_;
    version_ = other.version_;
}

std::vector<double> EvalEngine::score_batch(
    std::span<const TestPoint> candidates, unsigned threads) {
    std::vector<double> scores(candidates.size());
    const unsigned lanes = std::min<unsigned>(
        util::ThreadPool::resolve(threads),
        static_cast<unsigned>(std::max<std::size_t>(candidates.size(), 1)));
    if (lanes <= 1) {
        for (std::size_t i = 0; i < candidates.size(); ++i)
            scores[i] = score_candidate(candidates[i]);
        return scores;
    }
    require(fault_frames_.empty(),
            "EvalEngine: score_batch with open frames");
    // Materialise and sync the helper-lane clones before going
    // parallel: inside the batch every lane (including lane 0 = this
    // engine) mutates only its own state.
    while (lanes_.size() + 1 < lanes) {
        lanes_.push_back(std::make_unique<EvalEngine>(
            circuit_, faults_, objective_, sink_, cop_.epsilon()));
        lanes_.back()->sync_from(*this);
        lane_version_.push_back(version_);
    }
    for (std::size_t l = 0; l + 1 < lanes; ++l) {
        if (lane_version_[l] != version_) {
            lanes_[l]->sync_from(*this);
            lane_version_[l] = version_;
        }
    }
    util::ThreadPool::shared().for_each(
        candidates.size(), lanes, [&](std::size_t i, unsigned lane) {
            EvalEngine& engine = lane == 0 ? *this : *lanes_[lane - 1];
            scores[i] = engine.score_candidate(candidates[i]);
        });
    return scores;
}

}  // namespace tpi
