#include "tpi/objective.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tpi {

double Objective::benefit(double p) const {
    p = std::clamp(p, 0.0, 1.0);
    switch (kind) {
        case Kind::ExpectedDetection: {
            if (p >= 1.0) return 1.0;
            // (1 - p)^N by LSB-first square-and-multiply: a fixed
            // sequence of IEEE multiplications, so the value is
            // reproducible across libm versions (exp/log1p differ in
            // the last ulp between platforms) and the lane-parallel
            // scorer can evaluate it with vector multiplies
            // bit-identically to this scalar loop.
            double miss = 1.0;
            double base = 1.0 - p;
            for (std::size_t n = num_patterns; n != 0; n >>= 1) {
                if (n & 1) miss *= base;
                base *= base;
            }
            return 1.0 - miss;
        }
        case Kind::ThresholdLinear:
            return std::min(1.0, p / threshold);
    }
    throw Error("Objective::benefit: invalid kind");
}

double Objective::score(std::span<const double> detection_probability,
                        std::span<const std::uint32_t> weight) const {
    require(detection_probability.size() == weight.size(),
            "Objective::score: size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < weight.size(); ++i)
        total += weight[i] * benefit(detection_probability[i]);
    return total;
}

}  // namespace tpi
