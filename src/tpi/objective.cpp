#include "tpi/objective.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tpi {

double Objective::benefit(double p) const {
    p = std::clamp(p, 0.0, 1.0);
    switch (kind) {
        case Kind::ExpectedDetection: {
            if (p >= 1.0) return 1.0;
            return 1.0 -
                   std::exp(static_cast<double>(num_patterns) *
                            std::log1p(-p));
        }
        case Kind::ThresholdLinear:
            return std::min(1.0, p / threshold);
    }
    throw Error("Objective::benefit: invalid kind");
}

double Objective::score(std::span<const double> detection_probability,
                        std::span<const std::uint32_t> weight) const {
    require(detection_probability.size() == weight.size(),
            "Objective::score: size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < weight.size(); ++i)
        total += weight[i] * benefit(detection_probability[i]);
    return total;
}

}  // namespace tpi
