#include "tpi/hardness.hpp"

#include <algorithm>
#include <limits>

#include "testability/cop.hpp"
#include "testability/profile.hpp"
#include "util/error.hpp"

namespace tpi::hardness {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

std::vector<std::uint32_t> greedy_cover(const SetCoverInstance& instance) {
    std::vector<bool> covered(instance.universe, false);
    std::size_t uncovered = instance.universe;
    std::vector<std::uint32_t> selection;
    while (uncovered > 0) {
        std::size_t best_gain = 0;
        std::uint32_t best_set = 0;
        for (std::uint32_t s = 0; s < instance.sets.size(); ++s) {
            std::size_t gain = 0;
            for (std::uint32_t e : instance.sets[s])
                if (!covered[e]) ++gain;
            if (gain > best_gain) {
                best_gain = gain;
                best_set = s;
            }
        }
        require(best_gain > 0, "greedy_cover: infeasible instance");
        selection.push_back(best_set);
        for (std::uint32_t e : instance.sets[best_set]) {
            if (!covered[e]) {
                covered[e] = true;
                --uncovered;
            }
        }
    }
    return selection;
}

bool is_cover(const SetCoverInstance& instance,
              std::span<const std::uint32_t> selection) {
    std::vector<bool> covered(instance.universe, false);
    for (std::uint32_t s : selection)
        for (std::uint32_t e : instance.sets[s]) covered[e] = true;
    return std::all_of(covered.begin(), covered.end(),
                       [](bool c) { return c; });
}

namespace {

struct CoverSearch {
    const SetCoverInstance& instance;
    std::vector<std::vector<std::uint32_t>> sets_of_element;
    std::size_t max_set_size;
    std::vector<std::uint32_t> current;
    std::vector<std::uint32_t> best;
    std::vector<int> cover_count;  // per element

    void recurse() {
        if (current.size() >= best.size()) return;  // cannot improve
        // Uncovered element with the fewest candidate sets (element
        // branching keeps the tree narrow).
        std::size_t elem = instance.universe;
        std::size_t fewest = std::numeric_limits<std::size_t>::max();
        std::size_t uncovered = 0;
        for (std::size_t e = 0; e < instance.universe; ++e) {
            if (cover_count[e] > 0) continue;
            ++uncovered;
            if (sets_of_element[e].size() < fewest) {
                fewest = sets_of_element[e].size();
                elem = e;
            }
        }
        if (uncovered == 0) {
            best = current;
            return;
        }
        // Lower bound: each extra set covers at most max_set_size elements.
        const std::size_t need =
            (uncovered + max_set_size - 1) / max_set_size;
        if (current.size() + need >= best.size()) return;

        for (std::uint32_t s : sets_of_element[elem]) {
            current.push_back(s);
            for (std::uint32_t e : instance.sets[s]) ++cover_count[e];
            recurse();
            for (std::uint32_t e : instance.sets[s]) --cover_count[e];
            current.pop_back();
        }
    }
};

}  // namespace

std::vector<std::uint32_t> exact_cover(const SetCoverInstance& instance) {
    CoverSearch search{instance, {}, 1, {}, greedy_cover(instance), {}};
    search.sets_of_element.resize(instance.universe);
    for (std::uint32_t s = 0; s < instance.sets.size(); ++s) {
        search.max_set_size =
            std::max(search.max_set_size, instance.sets[s].size());
        for (std::uint32_t e : instance.sets[s])
            search.sets_of_element[e].push_back(s);
    }
    search.cover_count.assign(instance.universe, 0);
    search.recurse();
    return search.best;
}

SetCoverInstance random_instance(std::size_t universe, std::size_t sets,
                                 std::size_t planted_size, util::Rng& rng) {
    require(planted_size >= 1 && planted_size <= sets,
            "random_instance: bad planted size");
    SetCoverInstance instance;
    instance.universe = universe;
    instance.sets.resize(sets);
    // Plant: assign every element to one of the first planted_size sets.
    for (std::uint32_t e = 0; e < universe; ++e)
        instance.sets[rng.below(planted_size)].push_back(e);
    // Decoys and redundancy: each remaining set samples ~universe/planted
    // elements; planted sets get a few extras too.
    const std::size_t sample =
        std::max<std::size_t>(1, universe / (planted_size + 1));
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t extras = s < planted_size ? sample / 2 : sample;
        for (std::size_t k = 0; k < extras; ++k) {
            const auto e = static_cast<std::uint32_t>(rng.below(universe));
            if (std::find(instance.sets[s].begin(), instance.sets[s].end(),
                          e) == instance.sets[s].end())
                instance.sets[s].push_back(e);
        }
        if (instance.sets[s].empty())
            instance.sets[s].push_back(
                static_cast<std::uint32_t>(rng.below(universe)));
        std::sort(instance.sets[s].begin(), instance.sets[s].end());
    }
    return instance;
}

SetCoverInstance greedy_trap_instance(std::size_t k) {
    require(k >= 2, "greedy_trap_instance: k >= 2");
    const std::size_t m = (std::size_t{1} << k) - 1;  // columns per row
    SetCoverInstance instance;
    instance.universe = 2 * m;
    // The two row sets: the optimum cover.
    std::vector<std::uint32_t> row0(m);
    std::vector<std::uint32_t> row1(m);
    for (std::uint32_t c = 0; c < m; ++c) {
        row0[c] = c;
        row1[c] = static_cast<std::uint32_t>(m) + c;
    }
    instance.sets.push_back(std::move(row0));
    instance.sets.push_back(std::move(row1));
    // Bait blocks of 2^(k-1), 2^(k-2), ..., 1 columns, spanning both rows.
    std::size_t column = 0;
    for (std::size_t width = std::size_t{1} << (k - 1); width >= 1;
         width /= 2) {
        std::vector<std::uint32_t> bait;
        for (std::size_t c = column; c < column + width; ++c) {
            bait.push_back(static_cast<std::uint32_t>(c));
            bait.push_back(static_cast<std::uint32_t>(m + c));
        }
        std::sort(bait.begin(), bait.end());
        instance.sets.push_back(std::move(bait));
        column += width;
    }
    return instance;
}

SetCoverGadget build_gadget(const SetCoverInstance& instance) {
    require(instance.universe > 0 && !instance.sets.empty(),
            "build_gadget: empty instance");
    SetCoverGadget gadget;
    Circuit& c = gadget.circuit;
    c.set_name("setcover_gadget");

    for (std::uint32_t e = 0; e < instance.universe; ++e) {
        const NodeId pi = c.add_input("x" + std::to_string(e));
        const NodeId stem =
            c.add_gate(GateType::Buf, {pi}, "elem" + std::to_string(e));
        gadget.element_nets.push_back(stem);
        gadget.planted_faults.push_back({stem, true});
    }
    const NodeId zero = c.add_const(false, "blocker0");
    std::vector<NodeId> blocked;
    for (std::uint32_t s = 0; s < instance.sets.size(); ++s) {
        require(!instance.sets[s].empty(), "build_gadget: empty set");
        std::vector<NodeId> fanins;
        for (std::uint32_t e : instance.sets[s])
            fanins.push_back(gadget.element_nets[e]);
        NodeId cand;
        if (fanins.size() == 1) {
            cand = c.add_gate(GateType::Buf, fanins,
                              "cand" + std::to_string(s));
        } else {
            cand = c.add_gate(GateType::Or, fanins,
                              "cand" + std::to_string(s));
        }
        gadget.candidate_nets.push_back(cand);
        blocked.push_back(c.add_gate(GateType::And, {cand, zero},
                                     "blk" + std::to_string(s)));
    }
    const NodeId po = blocked.size() == 1
                          ? blocked[0]
                          : c.add_gate(GateType::Or, blocked, "sink");
    c.mark_output(po);
    c.validate();
    return gadget;
}

std::vector<std::uint32_t> solve_gadget_observation(
    const SetCoverGadget& gadget, bool exact) {
    // Read the covering structure back out of the circuit through the
    // propagation profile: candidate i covers element j iff j's planted
    // fault can arrive at candidate net i with non-zero probability.
    const fault::CollapsedFaults faults =
        fault::collapse_faults(gadget.circuit);
    const testability::CopResult cop =
        testability::compute_cop(gadget.circuit);
    // The reduction is about detectABILITY, not practical detection
    // probability: keep every non-zero arrival, however small (a wide
    // candidate OR gives arrival probabilities around 2^-|S|).
    const testability::PropagationProfile profile =
        testability::compute_profile(gadget.circuit, cop, faults, 1e-300);

    SetCoverInstance instance;
    instance.universe = gadget.planted_faults.size();
    instance.sets.resize(gadget.candidate_nets.size());
    for (std::uint32_t e = 0; e < gadget.planted_faults.size(); ++e) {
        const std::int32_t cls =
            faults.class_index(gadget.planted_faults[e]);
        require(cls >= 0, "solve_gadget_observation: planted fault missing");
        const auto& row = profile.rows[static_cast<std::size_t>(cls)];
        for (std::uint32_t s = 0; s < gadget.candidate_nets.size(); ++s) {
            const NodeId cand = gadget.candidate_nets[s];
            const bool reaches = std::any_of(
                row.begin(), row.end(),
                [&](const auto& entry) { return entry.node == cand; });
            if (reaches) instance.sets[s].push_back(e);
        }
    }
    return exact ? exact_cover(instance) : greedy_cover(instance);
}

}  // namespace tpi::hardness
