#include "tpi/threshold.hpp"

#include <optional>

#include "fault/fault.hpp"
#include "tpi/eval_engine.hpp"
#include "util/error.hpp"

namespace tpi {

ThresholdResult solve_min_points(const netlist::Circuit& circuit,
                                 Planner& planner,
                                 PlannerOptions base_options,
                                 const ThresholdGoal& goal,
                                 int max_budget) {
    require(max_budget >= 0, "solve_min_points: negative max budget");
    require(goal.min_detection > 0.0 || goal.estimated_coverage > 0.0,
            "solve_min_points: no goal enabled");

    if (goal.min_detection > 0.0) {
        base_options.objective.kind = Objective::Kind::ThresholdLinear;
        base_options.objective.threshold = goal.min_detection;
    }

    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);
    // One engine across the sweep: each budget's plan is checked by
    // pushing its points as a rolled-back delta stack (bit-identical to
    // evaluate_plan) instead of re-transforming the circuit per budget.
    // Constructed after the objective fixup above so thresholds match.
    std::optional<EvalEngine> engine;
    if (base_options.incremental_eval)
        engine.emplace(circuit, faults, base_options.objective,
                       base_options.sink, base_options.eval_epsilon,
                       base_options.simd_eval);
    const auto evaluate = [&](std::span<const netlist::TestPoint> points) {
        if (!engine)
            return evaluate_plan(circuit, faults, points,
                                 base_options.objective);
        for (const netlist::TestPoint& tp : points) engine->push(tp);
        PlanEvaluation eval = engine->evaluation();
        for (std::size_t i = 0; i < points.size(); ++i) engine->pop();
        return eval;
    };
    const auto meets = [&](const PlanEvaluation& eval) {
        if (goal.min_detection > 0.0 &&
            eval.min_detection_probability < goal.min_detection)
            return false;
        if (goal.estimated_coverage > 0.0 &&
            eval.estimated_coverage < goal.estimated_coverage)
            return false;
        return true;
    };

    ThresholdResult result;
    for (int budget = 0; budget <= max_budget; ++budget) {
        base_options.budget = budget;
        Plan plan = budget == 0 ? Plan{} : planner.plan(circuit, base_options);
        PlanEvaluation eval = evaluate(plan.points);
        if (meets(eval)) {
            result.plan = std::move(plan);
            result.feasible = true;
            result.budget_used = result.plan.total_cost(base_options.cost);
            result.evaluation = std::move(eval);
            return result;
        }
        // Keep the best-so-far for reporting when infeasible.
        if (budget == max_budget) {
            result.plan = std::move(plan);
            result.budget_used = result.plan.total_cost(base_options.cost);
            result.evaluation = std::move(eval);
        }
    }
    return result;
}

}  // namespace tpi
