#include <optional>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "tpi/eval_engine.hpp"
#include "tpi/evaluate.hpp"
#include "tpi/planners.hpp"
#include "util/error.hpp"

namespace tpi {

using netlist::NodeId;
using netlist::TestPoint;
using netlist::TpKind;

namespace {

struct Search {
    const netlist::Circuit& circuit;
    const fault::CollapsedFaults& faults;
    const PlannerOptions& options;
    EvalEngine* engine = nullptr;  ///< non-null: incremental scoring
    std::vector<TestPoint> atoms;  ///< candidate (net, kind) placements
    std::vector<TestPoint> current;
    std::vector<TestPoint> best_points;
    double best_score = 0.0;
    bool truncated = false;

    bool out_of_time() {
        if (options.deadline != nullptr && options.deadline->expired())
            truncated = true;
        return truncated;
    }

    void evaluate_current() {
        // The engine's ordered benefit sum is bit-identical to
        // evaluate_plan on the materialised `current`, so both paths
        // keep the same best set under the same tie margin.
        const double score =
            engine != nullptr
                ? (obs::add(options.sink,
                            obs::Counter::EngineEvaluations),
                   engine->score())
                : evaluate_plan(circuit, faults, current,
                                options.objective)
                      .score;
        if (score > best_score + 1e-12) {
            best_score = score;
            best_points = current;
        }
    }

    void recurse(std::size_t start, int budget_left) {
        for (std::size_t i = start; i < atoms.size(); ++i) {
            if (out_of_time()) return;
            const TestPoint atom = atoms[i];
            const int cost = options.cost.cost(atom.kind);
            if (cost > budget_left) continue;
            // At most one control point per net (transform invariant);
            // observation atoms are unique per net by construction.
            bool conflict = false;
            for (const TestPoint& tp : current) {
                if (tp.node == atom.node &&
                    netlist::is_control(tp.kind) ==
                        netlist::is_control(atom.kind)) {
                    conflict = true;
                    break;
                }
            }
            if (conflict) continue;
            current.push_back(atom);
            if (engine != nullptr) engine->push(atom);
            evaluate_current();
            recurse(i + 1, budget_left - cost);
            current.pop_back();
            if (engine != nullptr) engine->pop();
        }
    }
};

}  // namespace

Plan ExhaustivePlanner::plan(const netlist::Circuit& circuit,
                             const PlannerOptions& options) {
    validate_planner_options(options, "ExhaustivePlanner");
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);

    Search search{circuit, faults, options, nullptr, {}, {}, {}, 0.0,
                  false};
    for (NodeId v : circuit.all_nodes()) {
        if (options.allow_observe)
            search.atoms.push_back({v, TpKind::Observe});
        for (TpKind kind : options.control_kinds)
            search.atoms.push_back({v, kind});
    }
    // Keep the oracle honest about its cost: the search space is
    // exponential in the budget; refuse plainly oversized instances.
    if (search.atoms.size() > 256)
        throw LimitError(
            "ExhaustivePlanner: instance too large for exhaustive search "
            "(" +
            std::to_string(search.atoms.size()) +
            " candidate placements, limit 256)");

    std::optional<EvalEngine> engine;
    if (options.incremental_eval) {
        engine.emplace(circuit, faults, options.objective, options.sink,
                       options.eval_epsilon, options.simd_eval);
        search.engine = &*engine;
        search.best_score = engine->score();
    } else {
        search.best_score =
            evaluate_plan(circuit, faults, {}, options.objective).score;
    }
    search.recurse(0, options.budget);

    Plan result;
    result.points = std::move(search.best_points);
    result.truncated = search.truncated;
    result.predicted_score = search.best_score;
    return result;
}

}  // namespace tpi
