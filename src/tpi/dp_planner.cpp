#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>

#include "analysis/prune.hpp"
#include "fault/fault.hpp"
#include "lint/lint.hpp"
#include "netlist/ffr.hpp"
#include "netlist/transform.hpp"
#include "obs/obs.hpp"
#include "testability/cop.hpp"
#include "tpi/eval_engine.hpp"
#include "tpi/evaluate.hpp"
#include "tpi/planners.hpp"
#include "tpi/tree_joint_dp.hpp"
#include "tpi/tree_obs_dp.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace tpi {

using netlist::NodeId;
using netlist::TestPoint;
using netlist::TpKind;

namespace {

/// One region's DP, either variant, behind a common interface.
class RegionDp {
public:
    virtual ~RegionDp() = default;
    virtual double gain(int budget) const = 0;
    virtual std::vector<TestPoint> placements(int budget) const = 0;
    virtual std::uint64_t cells() const = 0;
};

class ObsRegionDp final : public RegionDp {
public:
    template <typename... Args>
    explicit ObsRegionDp(Args&&... args)
        : dp_(std::forward<Args>(args)...) {}

    double gain(int budget) const override {
        return dp_.best(budget) - dp_.baseline();
    }
    std::vector<TestPoint> placements(int budget) const override {
        std::vector<TestPoint> out;
        for (NodeId v : dp_.placements(budget))
            out.push_back({v, TpKind::Observe});
        return out;
    }
    std::uint64_t cells() const override { return dp_.cells(); }

private:
    TreeObsDp dp_;
};

class JointRegionDp final : public RegionDp {
public:
    template <typename... Args>
    explicit JointRegionDp(Args&&... args)
        : dp_(std::forward<Args>(args)...) {}

    double gain(int budget) const override {
        return dp_.best(budget) - dp_.baseline();
    }
    std::vector<TestPoint> placements(int budget) const override {
        return dp_.placements(budget);
    }
    std::uint64_t cells() const override { return dp_.cells(); }

private:
    TreeJointDp dp_;
};

/// One cached per-FFR DP, reusable across planning rounds (observe-only
/// fast path; see PlannerOptions::dp_reuse_regions). The entry owns a
/// copy of the region it was built against — TreeObsDp retains only
/// that reference after construction, so the round's transformed
/// circuit and COP can be dropped while the tables live on.
struct RegionCacheEntry {
    netlist::FanoutFreeRegion region;
    std::unique_ptr<RegionDp> dp;
    int built_cap = 0;  ///< max_budget the tables were solved to
};

/// True when every member of the region has at most two in-region fanins
/// (the joint DP's structural requirement).
bool joint_compatible(const netlist::Circuit& circuit,
                      const netlist::FanoutFreeRegion& region,
                      std::span<const std::uint32_t> region_of) {
    const std::uint32_t rid = region_of[region.root.v];
    for (NodeId v : region.members) {
        int in_region = 0;
        for (NodeId f : circuit.fanins(v))
            if (region_of[f.v] == rid) ++in_region;
        if (in_region > 2) return false;
    }
    return true;
}

}  // namespace

Plan DpPlanner::plan(const netlist::Circuit& circuit,
                     const PlannerOptions& options) {
    validate_planner_options(options, "DpPlanner");
    obs::Sink* sink = options.sink;
    obs::Span plan_span(sink, "plan/dp");
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);

    // Internal optimisation universe: identical to `faults` unless lint
    // pruning zero-weights the provably redundant classes. The final
    // predicted_score is always taken over the full universe.
    fault::CollapsedFaults plan_faults = faults;
    std::vector<bool> condemned;
    std::size_t candidate_count = 0;
    std::size_t pruned_count = 0;
    if (options.prune_via_lint) {
        obs::Span prune_span(sink, "plan/lint-prune");
        lint::Pruning pruning = lint::compute_pruning(circuit);
        condemned = std::move(pruning.drop_candidate);
        for (const fault::Fault& f : pruning.redundant_faults) {
            const std::int32_t idx = plan_faults.class_index(f);
            if (idx >= 0) plan_faults.class_size[idx] = 0;
        }
    }

    std::vector<TestPoint> points;
    std::vector<bool> has_point(circuit.node_count(), false);
    int remaining = options.budget;
    const int rounds = std::max(1, options.dp_rounds);
    const int chunk = std::max(1, (options.budget + rounds - 1) / rounds);
    const bool use_control = !options.control_kinds.empty();
    const unsigned threads = util::ThreadPool::resolve(options.threads);
    bool truncated = false;
    const auto out_of_time = [&] {
        // Units of work here are whole per-region DP builds — expensive
        // enough to poll the clock every time.
        return options.deadline != nullptr &&
               options.deadline->expired_now();
    };

    // Incremental engine: its committed state mirrors `points` (every
    // placement applied below is pushed + committed), so each round's
    // COP comes from export_cop — bit-identical to compute_cop over the
    // freshly transformed netlist — and the final predicted_score from
    // the engine's ordered benefit sum over the full universe.
    std::optional<EvalEngine> engine;
    if (options.incremental_eval)
        engine.emplace(circuit, faults, options.objective, sink,
                       options.eval_epsilon, options.simd_eval);

    // Cross-round region reuse (the FFR-sharded fast path): observation
    // points add no nodes, so dft.node_map — and with it the transformed
    // numbering every round-local structure is expressed in — is
    // identical in every round. A region's DP tables are a pure function
    // of its member list, the COP on its members and their fanins, the
    // placement mask on its members, and the (round-invariant) mapped
    // fault universe. All of those change only inside the update cones
    // of the points committed since the tables were built, which the
    // engine's per-commit changed-node sets cover exactly; regions
    // outside them re-solve to bitwise-identical tables, so serving the
    // cached tables cannot change any plan or score. Restricted to the
    // exact-engine observe-only configuration: with eval_epsilon > 0 the
    // changed sets under-report, and a control point rewires fanins
    // (TreeJointDp also reads C1 everywhere, so its inputs are not
    // localised to the changed cones).
    const bool reuse_regions =
        options.dp_reuse_regions && engine.has_value() && !use_control &&
        options.allow_observe && options.eval_epsilon == 0.0;
    // Keyed by region root (stable: stems only ever appear at committed
    // points, which dirty their old region). Indexed in transformed ids,
    // which equal one fixed renumbering of the base circuit.
    std::vector<std::unique_ptr<RegionCacheEntry>> region_cache(
        reuse_regions ? circuit.node_count() : 0);
    // Transformed-id nodes whose COP changed since the last sweep
    // (accumulated from the engine between push and commit).
    std::vector<std::uint8_t> cop_dirty(
        reuse_regions ? circuit.node_count() : 0, std::uint8_t{0});
    // The fast path's persistent transform: with observe-only points the
    // per-round apply_test_points differs from the previous round's
    // result ONLY in output flags (and the observation bookkeeping), so
    // the round-0 transform is updated in place at commit time instead
    // of re-copying the circuit every round. mark_output does not thaw a
    // frozen circuit, so the shared CsrView stays valid throughout.
    // (outputs() *order* can differ from a fresh transform's — nothing
    // in the planning pipeline reads it; regions, COP and the DPs are
    // driven by output_flag and the invariant numbering.)
    std::optional<netlist::TransformResult> fast_dft;

    // Per-round scratch, hoisted out of the loop: the transformed node
    // count changes between rounds, so these are re-assigned (reusing
    // capacity), not reallocated.
    std::vector<NodeId> orig_of;
    std::vector<bool> allowed;
    fault::CollapsedFaults mapped = plan_faults;

    // Analysis pruning: observe candidates whose COP observability is
    // exactly 1.0 on the round's transformed circuit (see the
    // prune_via_analysis doc for why dropping them is score-exact).
    // Only the observe-only region DPs see the restricted mask; the
    // joint DP keeps `allowed` because a control point can de-sensitise
    // a transparent chain.
    const bool analysis_prune =
        options.prune_via_analysis && options.allow_observe;
    std::vector<bool> obs_allowed;
    std::size_t pruned_analysis = 0;
    std::vector<analysis::Certificate> prune_certs;
    constexpr std::size_t kMaxPlanCertificates = 8;

    for (int round = 0; round < rounds && remaining > 0; ++round) {
        if (out_of_time()) {
            truncated = true;
            break;
        }
        obs::Span round_span(sink, "plan/round");
        obs::add(sink, obs::Counter::DpRounds);
        const int budget_round =
            (round == rounds - 1) ? remaining : std::min(remaining, chunk);

        // Materialise the points selected so far and re-analyse.
        obs::Span analyse_span(sink, "plan/analyse");
        netlist::TransformResult dft_round;
        if (reuse_regions) {
            if (!fast_dft.has_value())
                fast_dft = netlist::apply_test_points(circuit, points);
            // else: the committed points already marked their transformed
            // nets as outputs in place (see the placement loop below).
        } else {
            dft_round = netlist::apply_test_points(circuit, points);
        }
        const netlist::TransformResult& dft =
            reuse_regions ? *fast_dft : dft_round;
        const std::size_t cur_n = dft.circuit.node_count();

        orig_of.assign(cur_n, netlist::kNullNode);
        for (NodeId v : circuit.all_nodes())
            orig_of[dft.node_map[v.v].v] = v;
        allowed.assign(cur_n, false);
        for (std::size_t i = 0; i < cur_n; ++i) {
            const NodeId orig = orig_of[i];
            allowed[i] = orig.valid() && !has_point[orig.v] &&
                         (condemned.empty() || !condemned[orig.v]);
        }
        if (round == 0) {
            for (std::size_t i = 0; i < cur_n; ++i)
                if (allowed[i]) ++candidate_count;
            for (std::size_t i = 0; i < cur_n; ++i) {
                const NodeId orig = orig_of[i];
                if (orig.valid() && !has_point[orig.v] &&
                    !condemned.empty() && condemned[orig.v])
                    ++pruned_count;
            }
        }

        const testability::CopResult cop =
            engine ? engine->export_cop(dft)
                   : testability::compute_cop(dft.circuit);

        if (analysis_prune) {
            obs::Span prune_span(sink, "plan/analysis-prune");
            const analysis::ObservePruning zg =
                analysis::compute_observe_pruning(dft.circuit, cop, 0);
            obs_allowed.assign(allowed.begin(), allowed.end());
            for (std::size_t i = 0; i < cur_n; ++i) {
                if (!obs_allowed[i] || !zg.zero_gain[i]) continue;
                obs_allowed[i] = false;
                ++pruned_analysis;
                // Certificates only from round 0, where the transform
                // merely renumbers the original circuit: mapping the
                // chain back through orig_of yields a certificate that
                // replays against `circuit` (COP is slot-order and
                // max-order invariant, so the values transfer bitwise).
                if (round == 0 &&
                    prune_certs.size() < kMaxPlanCertificates) {
                    analysis::Certificate cert;
                    cert.kind = analysis::CertKind::TransparentChain;
                    cert.node = orig_of[i];
                    for (NodeId step : analysis::transparent_chain(
                             dft.circuit, cop,
                             NodeId{static_cast<std::uint32_t>(i)}))
                        cert.chain.push_back(orig_of[step.v]);
                    prune_certs.push_back(std::move(cert));
                }
            }
        }

        // Fault universe of the original circuit, relocated onto the
        // current netlist (the copies of the original gate outputs).
        for (std::size_t i = 0; i < mapped.size(); ++i)
            mapped.representatives[i].node =
                dft.node_map[plan_faults.representatives[i].node.v];

        const netlist::FfrDecomposition ffr =
            netlist::decompose_ffr(dft.circuit);
        analyse_span.close();
        const int region_cap =
            std::min(options.dp_region_budget, budget_round);

        if (reuse_regions) {
            // Evict every cached region the last round's commits
            // touched: any member or leaf input in a changed cone means
            // the COP a rebuild would read differs somewhere the tables
            // depend on. A placed point always dirties its own site, so
            // member-list changes (new stems) are covered too —
            // surviving entries are bitwise reusable.
            for (auto& entry : region_cache) {
                if (!entry) continue;
                bool dirty = false;
                for (NodeId v : entry->region.members)
                    if (cop_dirty[v.v]) {
                        dirty = true;
                        break;
                    }
                if (!dirty)
                    for (NodeId v : entry->region.leaf_inputs)
                        if (cop_dirty[v.v]) {
                            dirty = true;
                            break;
                        }
                if (dirty) entry.reset();
            }
            std::fill(cop_dirty.begin(), cop_dirty.end(),
                      std::uint8_t{0});
        }

        // Build the per-region DP tables. `dps` are non-owning views:
        // fresh builds live in `built` until they are installed into the
        // cache (or discarded at end of round when reuse is off).
        std::vector<RegionDp*> dps(ffr.regions.size(), nullptr);
        std::vector<std::unique_ptr<RegionCacheEntry>> built(
            ffr.regions.size());
        std::vector<bool> has_faults(ffr.regions.size(), false);
        for (std::size_t i = 0; i < mapped.size(); ++i) {
            if (mapped.class_size[i] == 0) continue;
            has_faults[ffr.region_of[mapped.representatives[i].node.v]] =
                true;
        }
        // Independent per-region builds: everything they read (the
        // transformed circuit, COP, the mapped fault universe, the
        // allowed mask) is shared read-only, and each build writes only
        // its own dps[r] slot.
        const auto build_region = [&](std::size_t r) {
            // One span per built region: the count is thread-invariant
            // (the set of fault-bearing regions is), so the report's
            // span table matches across thread counts, while the trace
            // shows which lane ran which region.
            obs::Span region_span(sink, "plan/region-dp");
            const auto& region = ffr.regions[r];
            if (reuse_regions) {
                const RegionCacheEntry* cached =
                    region_cache[region.root.v].get();
                // The member check is belt-and-suspenders (a membership
                // change implies a dirtied placed site, already
                // evicted); the cap check keeps a final round with a
                // larger per-region budget from reading past the solved
                // tables. Smaller queries against a wider table are
                // exact: dp(·, j, ·) only ever reads budgets <= j.
                if (cached != nullptr && cached->built_cap >= region_cap &&
                    cached->region.members.size() ==
                        region.members.size() &&
                    std::equal(cached->region.members.begin(),
                               cached->region.members.end(),
                               region.members.begin(),
                               [](NodeId a, NodeId b) {
                                   return a.v == b.v;
                               })) {
                    dps[r] = cached->dp.get();
                    obs::add(sink, obs::Counter::DpRegionsReused);
                    return;
                }
            }
            const bool joint =
                use_control &&
                static_cast<int>(region.members.size()) <=
                    options.dp_joint_max_region &&
                joint_compatible(dft.circuit, region, ffr.region_of);
            if (joint) {
                TreeJointDp::Params params;
                params.delta_bits = options.dp_delta_bits;
                params.max_bucket = options.dp_max_cost_bucket;
                params.max_budget = region_cap;
                params.observe_cost = options.cost.observe;
                params.control_cost = options.cost.control;
                params.c1_grid = options.dp_joint_c1_grid;
                params.allow_observe = options.allow_observe;
                params.control_kinds = options.control_kinds;
                built[r] = std::make_unique<RegionCacheEntry>();
                built[r]->dp = std::make_unique<JointRegionDp>(
                    dft.circuit, region, cop, mapped,
                    std::span<const std::uint32_t>(mapped.class_size),
                    options.objective, params,
                    allowed);
                dps[r] = built[r]->dp.get();
            } else if (options.allow_observe) {
                const std::vector<bool>& obs_mask =
                    analysis_prune ? obs_allowed : allowed;
                // Every member provably zero-gain: the DP could only
                // return gain 0 at every budget, which the knapsack's
                // 1e-9 guard would discard anyway — skip the build.
                if (analysis_prune) {
                    bool any = false;
                    for (NodeId v : region.members)
                        if (obs_mask[v.v]) {
                            any = true;
                            break;
                        }
                    if (!any) return;
                }
                TreeObsDp::Params params;
                params.delta_bits = options.dp_delta_bits;
                params.max_bucket = options.dp_max_cost_bucket;
                params.max_budget = region_cap;
                params.observe_cost = options.cost.observe;
                built[r] = std::make_unique<RegionCacheEntry>();
                built[r]->built_cap = region_cap;
                // When the entry may be cached, the DP must reference
                // the entry's own region copy — the round's `ffr` dies
                // with the round.
                if (reuse_regions) built[r]->region = region;
                const netlist::FanoutFreeRegion& dp_region =
                    reuse_regions ? built[r]->region : region;
                built[r]->dp = std::make_unique<ObsRegionDp>(
                    dft.circuit, dp_region, cop, mapped,
                    std::span<const std::uint32_t>(mapped.class_size),
                    options.objective, params,
                    obs_mask);
                dps[r] = built[r]->dp.get();
            }
            if (dps[r]) {
                obs::add(sink, obs::Counter::DpRegionsBuilt);
                obs::add(sink, obs::Counter::DpCellsFilled,
                         dps[r]->cells());
            }
        };

        obs::Span regions_span(sink, "plan/regions");

        if (threads <= 1) {
            for (std::size_t r = 0; r < ffr.regions.size(); ++r) {
                if (!has_faults[r]) continue;
                if (out_of_time()) {
                    truncated = true;
                    break;
                }
                build_region(r);
            }
        } else {
            // Region-parallel: solve the independent FFR DPs on the
            // shared pool. The first deadline expiry (observed on any
            // lane) stops the remaining builds; the round is then
            // discarded below exactly as in the serial path, so the
            // plan never depends on which builds happened to finish.
            std::atomic<bool> expired{false};
            util::ThreadPool::shared().for_each(
                ffr.regions.size(), threads,
                [&](std::size_t r, unsigned) {
                    if (!has_faults[r]) return;
                    if (expired.load(std::memory_order_relaxed)) return;
                    if (options.deadline != nullptr &&
                        options.deadline->expired_now()) {
                        expired.store(true, std::memory_order_relaxed);
                        return;
                    }
                    build_region(r);
                });
            if (expired.load(std::memory_order_relaxed)) truncated = true;
        }
        regions_span.close();

        // Deadline hit while building region tables: the round's DP set
        // is incomplete, so stop with the points of the earlier rounds.
        if (truncated) break;

        if (reuse_regions) {
            // Install this round's fresh tables; `dps` keeps pointing at
            // the same DP objects (only ownership moves). A replaced
            // slot can only belong to a rebuilt region, never one served
            // from the cache this round, so nothing dangles.
            for (std::size_t r = 0; r < built.size(); ++r) {
                if (!built[r]) continue;
                region_cache[ffr.regions[r].root.v] = std::move(built[r]);
            }
        }

        // Outer knapsack: allocate budget_round units across regions.
        obs::Span knapsack_span(sink, "plan/knapsack");
        const int B = budget_round;
        obs::add(sink, obs::Counter::DpCellsFilled,
                 (static_cast<std::uint64_t>(dps.size()) + 1) *
                     (static_cast<std::uint64_t>(B) + 1));
        std::vector<std::vector<double>> table(
            dps.size() + 1, std::vector<double>(B + 1, 0.0));
        for (std::size_t r = 0; r < dps.size(); ++r) {
            for (int j = 0; j <= B; ++j) {
                double best = table[r][j];
                if (dps[r]) {
                    for (int s = 1; s <= std::min(j, region_cap); ++s)
                        best = std::max(best,
                                        table[r][j - s] + dps[r]->gain(s));
                }
                table[r + 1][j] = best;
            }
        }
        if (table[dps.size()][B] < 1e-9) break;  // nothing left to gain

        // Recover the allocation and apply the regions' placements.
        int used_units = 0;
        {
            int j = B;
            for (std::size_t r = dps.size(); r-- > 0;) {
                int pick = 0;
                if (dps[r]) {
                    for (int s = 0; s <= std::min(j, region_cap); ++s) {
                        if (table[r][j - s] +
                                (s > 0 ? dps[r]->gain(s) : 0.0) >=
                            table[r + 1][j] - 1e-12) {
                            pick = s;
                            break;
                        }
                    }
                }
                if (pick > 0 && dps[r]->gain(pick) > 1e-9) {
                    for (const TestPoint& tp : dps[r]->placements(pick)) {
                        const NodeId orig = orig_of[tp.node.v];
                        require(orig.valid(),
                                "DpPlanner: placement on a non-original net");
                        points.push_back({orig, tp.kind});
                        if (reuse_regions) {
                            // Mirror what next round's apply_test_points
                            // would do to the persistent transform: mark
                            // the observed net (nets already driving an
                            // output keep their single mark) and extend
                            // the observation bookkeeping export_cop
                            // cross-checks against the engine.
                            const NodeId t = fast_dft->node_map[orig.v];
                            if (!fast_dft->circuit.is_output(t))
                                fast_dft->circuit.mark_output(t);
                            fast_dft->observed_nets.push_back(t);
                            fast_dft->observation_points.push_back(
                                {orig, TpKind::Observe});
                        }
                        if (engine) {
                            engine->push({orig, tp.kind});
                            if (reuse_regions) {
                                // Dirty the commit's update cone (read
                                // between push and commit, mapped into
                                // the round-invariant transformed ids)
                                // plus the site itself, whose allowed /
                                // stem status flips even when its COP
                                // value happens not to move.
                                for (const std::uint32_t c :
                                     engine->cop().frame_changed_nodes())
                                    cop_dirty[dft.node_map[c].v] = 1;
                                cop_dirty[dft.node_map[orig.v].v] = 1;
                            }
                            engine->commit();
                        }
                        has_point[orig.v] = true;
                        used_units += options.cost.cost(tp.kind);
                    }
                }
                j -= pick;
            }
        }
        if (used_units == 0) break;
        remaining -= used_units;
    }

    Plan result;
    result.points = std::move(points);
    result.truncated = truncated;
    result.candidates_considered = candidate_count;
    result.candidates_pruned = pruned_count;
    result.candidates_pruned_analysis = pruned_analysis;
    result.prune_certificates = std::move(prune_certs);
    result.predicted_score =
        engine ? engine->evaluation().score
               : evaluate_plan(circuit, faults, result.points,
                               options.objective)
                     .score;
    obs::add(sink, obs::Counter::PlanPoints, result.points.size());
    obs::add(sink, obs::Counter::CandidatesConsidered, candidate_count);
    obs::add(sink, obs::Counter::CandidatesPruned, pruned_count);
    obs::add(sink, obs::Counter::CandidatesPrunedAnalysis, pruned_analysis);
    if (truncated) obs::add(sink, obs::Counter::DeadlineExpiries);
    return result;
}

}  // namespace tpi
