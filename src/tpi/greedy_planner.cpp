#include <algorithm>
#include <optional>

#include "analysis/prune.hpp"
#include "fault/fault.hpp"
#include "lint/lint.hpp"
#include "netlist/transform.hpp"
#include "obs/obs.hpp"
#include "testability/cop.hpp"
#include "testability/profile.hpp"
#include "tpi/eval_engine.hpp"
#include "tpi/evaluate.hpp"
#include "tpi/planners.hpp"
#include "util/error.hpp"

namespace tpi {

using netlist::NodeId;
using netlist::TestPoint;
using netlist::TpKind;

Plan GreedyPlanner::plan(const netlist::Circuit& circuit,
                         const PlannerOptions& options) {
    validate_planner_options(options, "GreedyPlanner");
    obs::Sink* sink = options.sink;
    obs::Span plan_span(sink, "plan/greedy");
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);

    // Internal proxy universe: identical to `faults` unless lint pruning
    // zero-weights the provably redundant classes. Exact evaluations
    // (and the returned score) always use the full universe.
    fault::CollapsedFaults plan_faults = faults;
    std::vector<bool> condemned;
    std::size_t candidate_count = 0;
    std::size_t pruned_count = 0;
    if (options.prune_via_lint) {
        obs::Span prune_span(sink, "plan/lint-prune");
        lint::Pruning pruning = lint::compute_pruning(circuit);
        condemned = std::move(pruning.drop_candidate);
        for (const fault::Fault& f : pruning.redundant_faults) {
            const std::int32_t idx = plan_faults.class_index(f);
            if (idx >= 0) plan_faults.class_size[idx] = 0;
        }
    }
    const auto is_condemned = [&](NodeId v) {
        return !condemned.empty() && condemned[v.v];
    };
    for (NodeId v : circuit.all_nodes()) {
        if (is_condemned(v))
            ++pruned_count;
        else
            ++candidate_count;
    }

    std::vector<TestPoint> points;
    std::vector<bool> has_point(circuit.node_count(), false);
    int remaining = options.budget;
    bool truncated = false;
    // Every unit of work here is an exact evaluation (full transform +
    // COP, or a delta-cone walk), so poll the clock on every check
    // rather than amortised.
    const auto out_of_time = [&] {
        return options.deadline != nullptr &&
               options.deadline->expired_now();
    };

    // Incremental engine: committed state mirrors `points` throughout,
    // every score it produces is bit-identical to evaluate_plan (the
    // differential suite asserts it), so the engine path selects the
    // same point sequence as the reference path — just without paying a
    // full transform + COP per candidate.
    std::optional<EvalEngine> engine;
    if (options.incremental_eval)
        engine.emplace(circuit, faults, options.objective, sink,
                       options.eval_epsilon, options.simd_eval);
    PlanEvaluation current =
        engine ? engine->evaluation()
               : evaluate_plan(circuit, faults, points, options.objective);

    // Per-step scratch, hoisted: the mapped fault universe is rebuilt in
    // place (only the representative node ids change between steps), and
    // the engine path's affordable-candidate batch reuses its capacity
    // across steps.
    fault::CollapsedFaults mapped = plan_faults;
    std::vector<TestPoint> batch;
    std::vector<std::size_t> batch_of;

    // Analysis pruning: observe entries whose COP observability on the
    // step's transformed circuit is exactly 1.0 are dropped from the
    // shortlist *after* the pool cut, so the surviving comparison
    // sequence — and hence the chosen point — is unchanged (a pruned
    // entry's exact score delta is bitwise 0.0, which can never win the
    // `rate > best_rate + 1e-12` argmax).
    const bool analysis_prune =
        options.prune_via_analysis && options.allow_observe;
    std::size_t pruned_analysis = 0;
    std::vector<analysis::Certificate> prune_certs;
    constexpr std::size_t kMaxPlanCertificates = 8;

    while (remaining > 0) {
        if (out_of_time()) {
            truncated = true;
            break;
        }
        obs::Span step_span(sink, "plan/greedy-step");
        // Analyse the circuit with the points selected so far.
        const netlist::TransformResult dft =
            netlist::apply_test_points(circuit, points);
        const testability::CopResult cop =
            engine ? engine->export_cop(dft)
                   : testability::compute_cop(dft.circuit);

        for (std::size_t i = 0; i < mapped.size(); ++i)
            mapped.representatives[i].node =
                dft.node_map[plan_faults.representatives[i].node.v];

        // ---- candidate generation ----
        struct Candidate {
            TestPoint point;  // on original node ids
            double proxy;
        };
        std::vector<Candidate> observe_cands;
        std::vector<Candidate> control_cands;

        if (options.allow_observe && options.greedy_flow_proxy) {
            // Deficit-flow proxy, O(nodes + edges) per step: each hard
            // fault injects its weighted benefit deficit at its site,
            // scaled by excitation, and the deficit flows down the best
            // single-path sensitisation product (a max-plus sweep over
            // the fanout CSR in topological order). Ranking only — the
            // shortlist survivors are still scored exactly — but unlike
            // the covering proxy its cost does not grow with the number
            // of faults times their cone sizes, which is what makes
            // greedy planning tractable on million-gate circuits.
            const netlist::CsrView& view = dft.circuit.topology();
            std::vector<double> flow(dft.circuit.node_count(), 0.0);
            for (std::size_t fi = 0; fi < mapped.size(); ++fi) {
                if (plan_faults.class_size[fi] == 0) continue;
                const double have = options.objective.benefit(
                    current.detection_probability[fi]);
                if (have >= 1.0) continue;
                const fault::Fault f = mapped.representatives[fi];
                const double excitation =
                    f.stuck_at1 ? (1.0 - cop.c1[f.node.v])
                                : cop.c1[f.node.v];
                const double deficit =
                    static_cast<double>(plan_faults.class_size[fi]) *
                    (1.0 - have) * excitation;
                flow[f.node.v] = std::max(flow[f.node.v], deficit);
            }
            for (NodeId v : dft.circuit.topo_order()) {
                const double fv = flow[v.v];
                if (fv <= 0.0) continue;
                const std::uint32_t begin = view.fanout_offset[v.v];
                const std::uint32_t end = view.fanout_offset[v.v + 1];
                for (std::uint32_t e = begin; e != end; ++e) {
                    const NodeId m = view.fanout[e];
                    const double via =
                        fv * testability::sensitization_probability(
                                 dft.circuit, m, view.fanout_slot[e],
                                 cop.c1);
                    flow[m.v] = std::max(flow[m.v], via);
                }
            }
            for (NodeId orig : circuit.all_nodes()) {
                if (has_point[orig.v] || is_condemned(orig)) continue;
                const NodeId cur = dft.node_map[orig.v];
                // Weight by how badly the net needs an observation
                // point: a deficit arriving at an already perfectly
                // observable net gains nothing from observing there.
                const double proxy =
                    flow[cur.v] * (1.0 - cop.obs[cur.v]);
                if (proxy > 0.0)
                    observe_cands.push_back(
                        {{orig, TpKind::Observe}, proxy});
            }
            std::sort(observe_cands.begin(), observe_cands.end(),
                      [](const Candidate& a, const Candidate& b) {
                          return a.proxy > b.proxy;
                      });
        } else if (options.allow_observe) {
            // Covering-style proxy: the benefit gain if each fault were
            // observed exactly where its effect arrives. Only the
            // *unsaturated* faults can contribute: benefit() is capped
            // at 1, so a fault whose current benefit is exactly 1.0
            // can never satisfy `would > have`, and a zero-weight class
            // adds exactly 0. Restricting the profile to the remaining
            // hard faults leaves every gain value bitwise unchanged
            // while skipping the per-fault cone walks that dominate
            // this phase on large circuits.
            fault::CollapsedFaults hard;
            std::vector<std::size_t> hard_of;
            for (std::size_t fi = 0; fi < mapped.size(); ++fi) {
                if (plan_faults.class_size[fi] == 0) continue;
                if (options.objective.benefit(
                        current.detection_probability[fi]) >= 1.0)
                    continue;
                hard.representatives.push_back(mapped.representatives[fi]);
                hard.class_size.push_back(plan_faults.class_size[fi]);
                hard_of.push_back(fi);
            }
            const testability::PropagationProfile profile =
                testability::compute_profile(dft.circuit, cop, hard,
                                             1e-9, options.deadline);
            if (out_of_time()) {
                truncated = true;
                break;
            }
            std::vector<double> gain(dft.circuit.node_count(), 0.0);
            for (std::size_t h = 0; h < profile.rows.size(); ++h) {
                const std::size_t fi = hard_of[h];
                const double have = options.objective.benefit(
                    current.detection_probability[fi]);
                const double weight = plan_faults.class_size[fi];
                for (const auto& entry : profile.rows[h]) {
                    const double would =
                        options.objective.benefit(entry.probability);
                    if (would > have)
                        gain[entry.node.v] += weight * (would - have);
                }
            }
            for (NodeId orig : circuit.all_nodes()) {
                if (has_point[orig.v] || is_condemned(orig)) continue;
                const NodeId cur = dft.node_map[orig.v];
                if (gain[cur.v] > 0.0)
                    observe_cands.push_back(
                        {{orig, TpKind::Observe}, gain[cur.v]});
            }
            std::sort(observe_cands.begin(), observe_cands.end(),
                      [](const Candidate& a, const Candidate& b) {
                          return a.proxy > b.proxy;
                      });
        }

        if (!options.control_kinds.empty()) {
            // Extremeness proxy: nets stuck near 0 or 1 starve both
            // excitation and propagation downstream.
            for (NodeId orig : circuit.all_nodes()) {
                if (has_point[orig.v] || is_condemned(orig)) continue;
                const NodeId cur = dft.node_map[orig.v];
                const double c1 = cop.c1[cur.v];
                const double balance = std::min(c1, 1.0 - c1);
                const double weight =
                    static_cast<double>(circuit.fanout_count(orig));
                const double proxy = (0.5 - balance) * (1.0 + weight);
                for (TpKind kind : options.control_kinds)
                    control_cands.push_back({{orig, kind}, proxy});
            }
            std::sort(control_cands.begin(), control_cands.end(),
                      [](const Candidate& a, const Candidate& b) {
                          return a.proxy > b.proxy;
                      });
        }

        // ---- exact evaluation of the pool ----
        const int pool = std::max(2, options.greedy_pool);
        std::vector<Candidate> shortlist;
        for (std::size_t i = 0;
             i < observe_cands.size() && i < static_cast<std::size_t>(pool);
             ++i)
            shortlist.push_back(observe_cands[i]);
        for (std::size_t i = 0;
             i < control_cands.size() && i < static_cast<std::size_t>(pool);
             ++i)
            shortlist.push_back(control_cands[i]);

        if (analysis_prune) {
            const bool first_step = points.empty();
            std::vector<NodeId> orig_of;
            if (first_step) {
                orig_of.assign(dft.circuit.node_count(),
                               netlist::kNullNode);
                for (NodeId v : circuit.all_nodes())
                    orig_of[dft.node_map[v.v].v] = v;
            }
            std::size_t kept = 0;
            for (std::size_t i = 0; i < shortlist.size(); ++i) {
                const Candidate& cand = shortlist[i];
                const NodeId cur = dft.node_map[cand.point.node.v];
                if (cand.point.kind != TpKind::Observe ||
                    cop.obs[cur.v] != 1.0) {
                    shortlist[kept++] = cand;
                    continue;
                }
                ++pruned_analysis;
                // Certificates only from the first step, where the
                // transform merely renumbers the circuit: mapping the
                // chain back through node_map's inverse yields one
                // that replays against `circuit`.
                if (first_step &&
                    prune_certs.size() < kMaxPlanCertificates) {
                    analysis::Certificate cert;
                    cert.kind = analysis::CertKind::TransparentChain;
                    cert.node = cand.point.node;
                    for (NodeId step : analysis::transparent_chain(
                             dft.circuit, cop, cur))
                        cert.chain.push_back(orig_of[step.v]);
                    prune_certs.push_back(std::move(cert));
                }
            }
            shortlist.resize(kept);
        }

        double best_rate = 0.0;
        int best_index = -1;
        PlanEvaluation best_eval;
        if (engine) {
            // Batch-score the affordable candidates (parallel lanes when
            // options.threads > 1; scores are lane-independent), then
            // replay the reference path's sequential argmax over the
            // score vector. Scores are bit-identical to evaluate_plan,
            // so the same comparison selects the same point.
            batch.clear();
            batch_of.clear();
            batch.reserve(shortlist.size());
            for (std::size_t i = 0; i < shortlist.size(); ++i) {
                if (options.cost.cost(shortlist[i].point.kind) > remaining)
                    continue;
                batch.push_back(shortlist[i].point);
                batch_of.push_back(i);
            }
            obs::add(sink, obs::Counter::GreedyEvaluations, batch.size());
            const std::vector<double> scores =
                engine->score_batch(batch, options.threads);
            for (std::size_t k = 0; k < batch.size(); ++k) {
                const std::size_t i = batch_of[k];
                const int cost =
                    options.cost.cost(shortlist[i].point.kind);
                const double rate = (scores[k] - current.score) / cost;
                if (rate > best_rate + 1e-12) {
                    best_rate = rate;
                    best_index = static_cast<int>(i);
                }
            }
        } else {
            for (std::size_t i = 0; i < shortlist.size(); ++i) {
                if (out_of_time()) {
                    truncated = true;
                    break;
                }
                const int cost = options.cost.cost(shortlist[i].point.kind);
                if (cost > remaining) continue;
                points.push_back(shortlist[i].point);
                obs::add(sink, obs::Counter::GreedyEvaluations);
                const PlanEvaluation eval = evaluate_plan(
                    circuit, faults, points, options.objective);
                points.pop_back();
                const double rate = (eval.score - current.score) / cost;
                if (rate > best_rate + 1e-12) {
                    best_rate = rate;
                    best_index = static_cast<int>(i);
                    best_eval = eval;
                }
            }
        }
        // A truncated shortlist pass may have missed the best candidate;
        // keep what was committed so far rather than half-compare.
        if (truncated) break;
        if (best_index < 0) break;  // no candidate improves the objective

        const TestPoint chosen = shortlist[best_index].point;
        points.push_back(chosen);
        has_point[chosen.node.v] = true;
        remaining -= options.cost.cost(chosen.kind);
        if (engine) {
            engine->push(chosen);
            engine->commit();
            current = engine->evaluation();
        } else {
            current = std::move(best_eval);
        }
    }

    Plan result;
    result.points = std::move(points);
    result.truncated = truncated;
    result.candidates_considered = candidate_count;
    result.candidates_pruned = pruned_count;
    result.candidates_pruned_analysis = pruned_analysis;
    result.prune_certificates = std::move(prune_certs);
    result.predicted_score = current.score;
    obs::add(sink, obs::Counter::PlanPoints, result.points.size());
    obs::add(sink, obs::Counter::CandidatesConsidered, candidate_count);
    obs::add(sink, obs::Counter::CandidatesPruned, pruned_count);
    obs::add(sink, obs::Counter::CandidatesPrunedAnalysis, pruned_analysis);
    if (truncated) obs::add(sink, obs::Counter::DeadlineExpiries);
    return result;
}

}  // namespace tpi
