#include "tpi/plan.hpp"

#include <string>

#include "util/error.hpp"

namespace tpi {

void validate_planner_options(const PlannerOptions& options,
                              std::string_view planner) {
    const std::string who(planner);
    require(options.budget >= 0, who + ": negative budget");
    if (options.cost.observe <= 0 || options.cost.control <= 0)
        throw ValidationError(
            who + ": cost model requires positive per-kind costs (observe=" +
            std::to_string(options.cost.observe) +
            ", control=" + std::to_string(options.cost.control) + ")");
    if (options.eval_epsilon < 0.0)
        throw ValidationError(who + ": eval_epsilon must be >= 0");
}

}  // namespace tpi
