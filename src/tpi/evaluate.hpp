#pragma once

#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "netlist/test_point.hpp"
#include "tpi/objective.hpp"

namespace tpi {

/// COP-based evaluation of a test-point plan against the *original*
/// circuit's fault universe.
struct PlanEvaluation {
    /// Detection probability per collapsed fault of the original circuit,
    /// as estimated on the transformed (test-point-inserted) netlist.
    std::vector<double> detection_probability;
    /// Objective value (weighted benefit sum).
    double score = 0.0;
    /// Estimated N-pattern fault coverage over the uncollapsed universe.
    double estimated_coverage = 0.0;
    /// Bottleneck: the minimum detection probability over the universe.
    double min_detection_probability = 0.0;
};

/// Materialise `points` into the circuit, recompute COP with all inputs
/// (including the fresh test-signal inputs) equiprobable, and score the
/// original fault universe. This is the reference estimator shared by the
/// greedy and exhaustive planners, and by the DP optimality tests.
PlanEvaluation evaluate_plan(const netlist::Circuit& circuit,
                             const fault::CollapsedFaults& faults,
                             std::span<const netlist::TestPoint> points,
                             const Objective& objective);

}  // namespace tpi
