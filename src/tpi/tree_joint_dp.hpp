#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "netlist/ffr.hpp"
#include "netlist/test_point.hpp"
#include "testability/cop.hpp"
#include "tpi/objective.hpp"
#include "util/quantize.hpp"

namespace tpi {

/// The paper's dynamic program, joint control+observation variant, on one
/// fanout-free region.
///
/// Control points change controllabilities, which changes both the
/// excitation of downstream faults and the sensitisation of *sibling*
/// edges; the DP therefore carries a quantised output-controllability
/// class in its state:
///
///   dp[v][j][c][d] = best benefit in subtree(v) using j budget units,
///                    with v's (post-control) output controllability in
///                    class c, given cost d from v's output to its
///                    nearest observer.
///
/// The controllability grid is exponentially spaced towards 0 and 1
/// (where control points matter); gate transitions re-quantise to the
/// nearest class in logit distance. A distinguished NATURAL class marks
/// subtrees containing no control point: their exact COP controllability
/// is used instead of a grid value, so the no-control baseline is exact
/// and quantisation error is confined to the cones below inserted control
/// points. Decisions per node: observation point, control point
/// (AND / OR / XOR type), both, or neither.
///
/// Gates must have at most two in-region fanins (pre-binarise wider gates
/// with netlist::binarize); the planner falls back to the observation-only
/// DP for regions that violate this.
///
/// Complexity: O(n * K^2 * Q^2 * |decisions| * D).
class TreeJointDp {
public:
    struct Params {
        double delta_bits = 0.5;
        int max_bucket = 64;
        int max_budget = 4;
        int observe_cost = 1;
        int control_cost = 1;
        int c1_grid = 13;  ///< grid classes (odd >= 3); a NATURAL class
                           ///< for unmodified subtrees is added on top
        bool allow_observe = true;
        std::vector<netlist::TpKind> control_kinds = {
            netlist::TpKind::ControlXor, netlist::TpKind::ControlAnd,
            netlist::TpKind::ControlOr};
    };

    TreeJointDp(const netlist::Circuit& circuit,
                const netlist::FanoutFreeRegion& region,
                const testability::CopResult& cop,
                const fault::CollapsedFaults& faults,
                std::span<const std::uint32_t> fault_weight,
                const Objective& objective, const Params& params,
                const std::vector<bool>& allowed = {});

    int max_budget() const { return params_.max_budget; }

    /// Best achievable benefit using at most `budget` units.
    double best(int budget) const;

    double baseline() const { return best(0); }

    /// Reconstruct an optimal mixed placement for `budget` units.
    std::vector<netlist::TestPoint> placements(int budget) const;

    /// DP table cells materialised by the solve (per-region work
    /// measure; feeds obs::Counter::DpCellsFilled).
    std::uint64_t cells() const {
        std::uint64_t n = 0;
        for (const auto& row : table_) n += row.size();
        return n;
    }

    /// The controllability grid in use (exposed for tests/ablation).
    std::span<const double> c1_grid() const { return grid_; }

    /// Nearest grid class of a controllability value (logit distance;
    /// the exact 0 and 1 classes are reserved for exact constants).
    int quantize_c1(double c1) const;

private:
    struct Child {
        std::uint32_t local;
        std::size_t slot;  ///< fanin slot of the child at its parent
    };
    struct SiteFault {
        bool stuck_at1;
        double weight;
    };
    struct Decision {
        bool observe;
        int control;  ///< -1 = none, else static_cast<TpKind>
        int units;    ///< budget cost
        int pass_cost;///< extra path cost through the control gate
    };

    /// Number of class indices: grid classes plus the NATURAL class,
    /// whose index is grid_.size().
    int class_count() const { return static_cast<int>(grid_.size()) + 1; }
    int natural_class() const { return static_cast<int>(grid_.size()); }

    std::size_t idx(int j, int c, int d) const {
        return (static_cast<std::size_t>(j) * class_count() + c) *
                   buckets_ +
               d;
    }
    double dp(std::uint32_t local, int j, int c, int d) const {
        return table_[local][idx(j, c, d)];
    }

    /// The controllability a child class stands for: its exact COP value
    /// for the NATURAL class, the grid value otherwise.
    double class_value(std::uint32_t child_local, int cls) const {
        return cls == natural_class() ? natural_c1_[child_local]
                                      : grid_[cls];
    }

    /// Controllability of v's pre-control output and per-child edge
    /// sensitisation, for one assignment of child classes.
    struct GateEval {
        double c1_pre;
        double sens[2];
    };
    GateEval eval_gate(std::uint32_t local,
                       std::span<const int> child_class) const;

    /// Benefit of all faults at `local` given pre-control controllability
    /// c1_pre and path cost d — excitation is snapped to the same cost
    /// grid so the inner loop is a table lookup.
    double fault_benefit(std::uint32_t local, double c1_pre, int d) const;
    double apply_control(double c1_pre, int control) const;
    void solve();
    void backtrack(std::uint32_t local, int j, int c, int d,
                   std::vector<netlist::TestPoint>& out) const;

    const netlist::Circuit& circuit_;
    const netlist::FanoutFreeRegion& region_;
    Params params_;
    util::LogQuantizer quant_;
    int buckets_;
    Objective objective_;

    std::vector<double> grid_;
    std::vector<std::uint32_t> local_of_;
    std::vector<std::vector<Child>> children_;      // per local (size <= 2)
    std::vector<std::vector<double>> ext_c1_;       // per local, per fanin
                                                    // slot: external c1 or
                                                    // -1 for member child
    std::vector<bool> allowed_;
    std::vector<double> natural_c1_;  ///< per local: exact COP c1
    std::vector<std::vector<SiteFault>> site_faults_;
    std::vector<Decision> decisions_;
    std::vector<double> benefit_by_bucket_;  ///< benefit(2^-delta*k)
    std::vector<std::vector<double>> table_;
    int root_d_ = 0;
};

}  // namespace tpi
