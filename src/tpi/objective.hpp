#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace tpi {

/// The testability objective maximised by the TPI algorithms.
///
/// Both kinds are additive over faults (a requirement of the dynamic
/// program), each fault contributing weight * benefit(p):
///
/// * ExpectedDetection — benefit(p) = 1 - (1-p)^N, the probability the
///   fault is detected within the N-pattern pseudo-random test. The sum
///   over the (uncollapsed, weighted) universe is N-pattern expected
///   fault coverage times the universe size.
/// * ThresholdLinear — benefit(p) = min(1, p / theta). Maximising it
///   pushes every fault's detection probability towards the threshold
///   theta; used by the TPI-MIN (threshold) formulation.
struct Objective {
    enum class Kind { ExpectedDetection, ThresholdLinear };

    Kind kind = Kind::ExpectedDetection;
    std::size_t num_patterns = 32768;  ///< N for ExpectedDetection
    double threshold = 1.0 / 4096.0;   ///< theta for ThresholdLinear

    /// Per-fault benefit of detection probability `p` (monotone in p,
    /// ranging over [0, 1]).
    double benefit(double p) const;

    /// Weighted total benefit over a fault universe.
    double score(std::span<const double> detection_probability,
                 std::span<const std::uint32_t> weight) const;
};

}  // namespace tpi
