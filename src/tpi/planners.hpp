#pragma once

#include "tpi/plan.hpp"

namespace tpi {

/// The paper's algorithm for general circuits: decompose into maximal
/// fanout-free regions, run the tree DP (joint control+observation where
/// possible, observation-only otherwise) inside each region for every
/// budget, allocate the global budget across regions with an outer
/// knapsack, apply, recompute COP and repeat for a few rounds to absorb
/// cross-region coupling.
class DpPlanner final : public Planner {
public:
    Plan plan(const netlist::Circuit& circuit,
              const PlannerOptions& options) override;
    std::string_view name() const override { return "dp"; }
};

/// The classic testability-measure greedy baseline: each step ranks
/// candidate (net, kind) pairs by a cheap COP-local proxy, exactly
/// re-evaluates the most promising ones (full transform + COP), inserts
/// the best, and repeats until the budget is spent or no candidate helps.
class GreedyPlanner final : public Planner {
public:
    Plan plan(const netlist::Circuit& circuit,
              const PlannerOptions& options) override;
    std::string_view name() const override { return "greedy"; }
};

/// Uniform random placements (the lower-bound baseline).
class RandomPlanner final : public Planner {
public:
    Plan plan(const netlist::Circuit& circuit,
              const PlannerOptions& options) override;
    std::string_view name() const override { return "random"; }
};

/// Exact oracle: enumerates every placement set within budget and keeps
/// the best under evaluate_plan. Exponential — small circuits only; used
/// by the DP optimality experiments (Table 2) and tests.
class ExhaustivePlanner final : public Planner {
public:
    Plan plan(const netlist::Circuit& circuit,
              const PlannerOptions& options) override;
    std::string_view name() const override { return "exhaustive"; }
};

}  // namespace tpi
