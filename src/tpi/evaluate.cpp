#include "tpi/evaluate.hpp"

#include "netlist/transform.hpp"
#include "testability/cop.hpp"
#include "testability/detect.hpp"

namespace tpi {

PlanEvaluation evaluate_plan(const netlist::Circuit& circuit,
                             const fault::CollapsedFaults& faults,
                             std::span<const netlist::TestPoint> points,
                             const Objective& objective) {
    const netlist::TransformResult dft =
        netlist::apply_test_points(circuit, points);
    const testability::CopResult cop = testability::compute_cop(dft.circuit);

    PlanEvaluation eval;
    eval.detection_probability.resize(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const fault::Fault f = faults.representatives[i];
        // The fault lives on the copy of the original gate output (the net
        // *before* any control-point override gate).
        const netlist::NodeId site = dft.node_map[f.node.v];
        const double excitation =
            f.stuck_at1 ? (1.0 - cop.c1[site.v]) : cop.c1[site.v];
        eval.detection_probability[i] = excitation * cop.obs[site.v];
    }
    eval.score =
        objective.score(eval.detection_probability, faults.class_size);
    eval.estimated_coverage = testability::estimated_coverage(
        eval.detection_probability, faults.class_size,
        objective.num_patterns);
    eval.min_detection_probability =
        testability::min_detection_probability(eval.detection_probability);
    return eval;
}

}  // namespace tpi
