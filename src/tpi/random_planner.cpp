#include "fault/fault.hpp"
#include "tpi/eval_engine.hpp"
#include "tpi/evaluate.hpp"
#include "tpi/planners.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tpi {

using netlist::NodeId;
using netlist::TestPoint;
using netlist::TpKind;

Plan RandomPlanner::plan(const netlist::Circuit& circuit,
                         const PlannerOptions& options) {
    validate_planner_options(options, "RandomPlanner");
    util::Rng rng(options.seed);

    std::vector<TpKind> kinds;
    if (options.allow_observe) kinds.push_back(TpKind::Observe);
    for (TpKind k : options.control_kinds) kinds.push_back(k);
    require(!kinds.empty(), "RandomPlanner: no test point kinds allowed");

    std::vector<TestPoint> points;
    std::vector<bool> has_point(circuit.node_count(), false);
    int remaining = options.budget;
    bool truncated = false;
    std::size_t attempts = 0;
    const std::size_t max_attempts = 64 * (circuit.node_count() + 1);
    while (remaining > 0 && attempts++ < max_attempts) {
        if (options.deadline != nullptr &&
            options.deadline->expired_now()) {
            truncated = true;
            break;
        }
        const NodeId node{
            static_cast<std::uint32_t>(rng.below(circuit.node_count()))};
        if (has_point[node.v]) continue;
        const TpKind kind = kinds[rng.below(kinds.size())];
        const int cost = options.cost.cost(kind);
        if (cost > remaining) continue;
        points.push_back({node, kind});
        has_point[node.v] = true;
        remaining -= cost;
    }

    Plan result;
    result.points = std::move(points);
    result.truncated = truncated;
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);
    if (options.incremental_eval) {
        // Score the sampled plan through the engine (bit-identical to
        // evaluate_plan; avoids materialising the transformed netlist).
        EvalEngine engine(circuit, faults, options.objective,
                          options.sink, options.eval_epsilon);
        for (const TestPoint& tp : result.points) {
            engine.push(tp);
            engine.commit();
        }
        result.predicted_score = engine.evaluation().score;
    } else {
        result.predicted_score =
            evaluate_plan(circuit, faults, result.points,
                          options.objective)
                .score;
    }
    return result;
}

}  // namespace tpi
