#pragma once

#include "tpi/evaluate.hpp"
#include "tpi/plan.hpp"

namespace tpi {

/// Acceptance test of the TPI-MIN (threshold) formulation. A plan is
/// accepted when every enabled goal holds.
struct ThresholdGoal {
    /// Require every fault's detection probability >= this (0 disables).
    double min_detection = 0.0;
    /// Require estimated N-pattern coverage >= this (0 disables).
    double estimated_coverage = 0.0;
};

struct ThresholdResult {
    Plan plan;
    bool feasible = false;
    int budget_used = 0;      ///< smallest budget meeting the goal
    PlanEvaluation evaluation;
};

/// TPI-MIN: find the smallest test-point budget for which `planner`
/// produces a plan meeting `goal`, trying budgets 0..max_budget. The
/// ThresholdLinear objective (theta = goal.min_detection) is used to
/// steer the planner when min_detection is enabled. All other options —
/// including prune_via_lint / prune_via_analysis — forward to the inner
/// planner at every budget, so the returned plan carries that planner's
/// pruning counters and certificates; because analysis pruning is
/// score-exact, the budget sweep accepts at the same budget with it on
/// or off.
ThresholdResult solve_min_points(const netlist::Circuit& circuit,
                                 Planner& planner,
                                 PlannerOptions base_options,
                                 const ThresholdGoal& goal, int max_budget);

}  // namespace tpi
