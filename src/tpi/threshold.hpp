#pragma once

#include "tpi/evaluate.hpp"
#include "tpi/plan.hpp"

namespace tpi {

/// Acceptance test of the TPI-MIN (threshold) formulation. A plan is
/// accepted when every enabled goal holds.
struct ThresholdGoal {
    /// Require every fault's detection probability >= this (0 disables).
    double min_detection = 0.0;
    /// Require estimated N-pattern coverage >= this (0 disables).
    double estimated_coverage = 0.0;
};

struct ThresholdResult {
    Plan plan;
    bool feasible = false;
    int budget_used = 0;      ///< smallest budget meeting the goal
    PlanEvaluation evaluation;
};

/// TPI-MIN: find the smallest test-point budget for which `planner`
/// produces a plan meeting `goal`, trying budgets 0..max_budget. The
/// ThresholdLinear objective (theta = goal.min_detection) is used to
/// steer the planner when min_detection is enabled.
ThresholdResult solve_min_points(const netlist::Circuit& circuit,
                                 Planner& planner,
                                 PlannerOptions base_options,
                                 const ThresholdGoal& goal, int max_budget);

}  // namespace tpi
