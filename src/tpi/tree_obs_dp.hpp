#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "netlist/ffr.hpp"
#include "testability/cop.hpp"
#include "tpi/objective.hpp"
#include "util/quantize.hpp"

namespace tpi {

/// The paper's dynamic program, observation-point variant, run on one
/// fanout-free region (a tree rooted at a stem).
///
/// In a tree the probability that a fault effect reaches its *nearest*
/// observation point is the product of edge sensitisation probabilities on
/// the path, and detection at the nearest observer dominates detection
/// anywhere further downstream. With path products mapped to additive
/// integer costs by a log-domain quantiser, the optimal placement of at
/// most K observation points decomposes over subtrees:
///
///   dp[v][j][d] = best benefit in subtree(v) using j budget units, given
///                 cost d from v's output to its nearest observer,
///
/// combining children with a knapsack over the budget. The root's d is the
/// quantised cost of the stem's external observability. The DP is optimal
/// on the region up to quantisation (Table 2 verifies this against
/// exhaustive enumeration).
///
/// Complexity: O(n_region * K^2 * D) time, O(n_region * K * D) space.
class TreeObsDp {
public:
    struct Params {
        double delta_bits = 0.25;  ///< cost grid resolution
        int max_bucket = 120;      ///< cost saturation cap
        int max_budget = 6;        ///< K: budget units explored
        int observe_cost = 1;      ///< budget units per observation point
    };

    /// `fault_weight` (parallel to faults.representatives) selects and
    /// weights the faults to optimise for; zero-weight faults are ignored.
    /// `allowed` (indexed by NodeId, may be empty = everywhere) restricts
    /// where observation points may be placed.
    ///
    /// Lifetimes: `circuit`, `cop`, `faults`, `fault_weight` and
    /// `allowed` are read during construction only. `region` is retained
    /// by reference — it must outlive the DP (best/placements read its
    /// member list). The DP planner's cross-round cache relies on this
    /// split: it keeps a private copy of the region alive next to the
    /// tables while the round's transformed circuit and COP are dropped.
    TreeObsDp(const netlist::Circuit& circuit,
              const netlist::FanoutFreeRegion& region,
              const testability::CopResult& cop,
              const fault::CollapsedFaults& faults,
              std::span<const std::uint32_t> fault_weight,
              const Objective& objective, const Params& params,
              const std::vector<bool>& allowed = {});

    int max_budget() const { return params_.max_budget; }

    /// Best achievable benefit using at most `budget` units.
    double best(int budget) const;

    /// Benefit with no test points (the j = 0 baseline).
    double baseline() const { return best(0); }

    /// Reconstruct an optimal placement for `budget` units: the nets to
    /// observe (in original circuit id space).
    std::vector<netlist::NodeId> placements(int budget) const;

    /// DP table cells materialised by the solve (per-region work
    /// measure; feeds obs::Counter::DpCellsFilled).
    std::uint64_t cells() const {
        std::uint64_t n = 0;
        for (const auto& row : table_) n += row.size();
        return n;
    }

private:
    struct Child {
        std::uint32_t local;  ///< child member (local index)
        int edge_cost;        ///< quantised -log2 sensitisation
    };

    double& dp(std::uint32_t local, int j, int d) {
        return table_[local][static_cast<std::size_t>(j) * buckets_ + d];
    }
    double dp(std::uint32_t local, int j, int d) const {
        return table_[local][static_cast<std::size_t>(j) * buckets_ + d];
    }

    double fault_benefit(std::uint32_t local, int d) const;
    void solve();
    void backtrack(std::uint32_t local, int j, int d,
                   std::vector<netlist::NodeId>& out) const;

    /// Sequential knapsack over `children` with per-child observer cost
    /// `d_child(child)`; fills value table value[ci][j] for child prefixes.
    template <typename DChildFn>
    void child_knapsack(std::span<const Child> children, DChildFn d_child,
                        std::vector<std::vector<double>>& value) const;

    const netlist::FanoutFreeRegion& region_;
    Params params_;
    util::LogQuantizer quant_;
    int buckets_;
    Objective objective_;

    std::vector<std::uint32_t> local_of_;       // node id -> local + 1 (0 = absent)
    std::vector<std::vector<Child>> children_;  // per local
    std::vector<bool> op_allowed_;              // per local
    // Per local, list of (excitation, weight) of resident fault classes.
    std::vector<std::vector<std::pair<double, double>>> site_faults_;
    std::vector<std::vector<double>> table_;    // per local: (K+1)x(D+1)
    int root_d_ = 0;
};

}  // namespace tpi
