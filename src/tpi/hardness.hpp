#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "util/rng.hpp"

namespace tpi::hardness {

/// A SET-COVER instance: universe {0..universe-1} and a family of subsets.
struct SetCoverInstance {
    std::size_t universe = 0;
    std::vector<std::vector<std::uint32_t>> sets;
};

/// Classic greedy H_n-approximation: repeatedly pick the set covering the
/// most uncovered elements. Returns selected set indices. Throws if the
/// instance is infeasible (some element in no set).
std::vector<std::uint32_t> greedy_cover(const SetCoverInstance& instance);

/// Exact minimum cover by branch and bound (element-branching with a
/// greedy upper bound and a max-set-size lower bound). Exponential —
/// intended for the modest instances of the hardness experiments.
std::vector<std::uint32_t> exact_cover(const SetCoverInstance& instance);

/// Verify that `selection` covers the whole universe.
bool is_cover(const SetCoverInstance& instance,
              std::span<const std::uint32_t> selection);

/// Random instance with a planted cover of `planted_size` sets, so the
/// optimum is at most planted_size. Every set is non-empty.
SetCoverInstance random_instance(std::size_t universe, std::size_t sets,
                                 std::size_t planted_size, util::Rng& rng);

/// The classic greedy worst case: a 2 x (2^k - 1) grid whose two row sets
/// cover everything (optimum = 2), plus column-block "bait" sets of sizes
/// 2^(k-1), 2^(k-2), ..., 1 that the greedy heuristic prefers — greedy
/// selects k sets, realising its ln(n) approximation gap.
SetCoverInstance greedy_trap_instance(std::size_t k);

/// The constructive half of the paper's NP-completeness result: realise a
/// SET-COVER instance as a reconvergent circuit whose minimum number of
/// observation points (over the candidate nets) achieving detectability of
/// all planted faults equals the minimum set cover.
///
/// Element j becomes a primary input whose stuck-at-1 fault is the planted
/// fault; its stem fans out to the candidate OR gate of every set
/// containing j. Candidate outputs are ANDed with constant 0 before the
/// primary output, so no planted fault is observable without an
/// observation point — observing candidate i detects exactly the faults
/// of the elements in set i.
struct SetCoverGadget {
    netlist::Circuit circuit;
    std::vector<netlist::NodeId> element_nets;    ///< per universe element
    std::vector<netlist::NodeId> candidate_nets;  ///< per set
    std::vector<fault::Fault> planted_faults;     ///< per universe element
};

SetCoverGadget build_gadget(const SetCoverInstance& instance);

/// Solve the observation-point selection problem on a gadget circuit by
/// reading it back as set cover: candidate i covers element j iff the
/// planted fault of j propagates to candidate net i. `exact` selects the
/// branch-and-bound solver, otherwise greedy. Returns indices into
/// `gadget.candidate_nets`.
std::vector<std::uint32_t> solve_gadget_observation(
    const SetCoverGadget& gadget, bool exact);

}  // namespace tpi::hardness
