#include "tpi/tree_joint_dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace tpi {

using netlist::GateType;
using netlist::NodeId;
using netlist::TpKind;

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double logit(double p) { return std::log2(p / (1.0 - p)); }
}  // namespace

TreeJointDp::TreeJointDp(const netlist::Circuit& circuit,
                         const netlist::FanoutFreeRegion& region,
                         const testability::CopResult& cop,
                         const fault::CollapsedFaults& faults,
                         std::span<const std::uint32_t> fault_weight,
                         const Objective& objective, const Params& params,
                         const std::vector<bool>& allowed)
    : circuit_(circuit),
      region_(region),
      params_(params),
      quant_(params.delta_bits, params.max_bucket),
      buckets_(quant_.bucket_count()),
      objective_(objective) {
    require(params_.c1_grid >= 3 && params_.c1_grid % 2 == 1,
            "TreeJointDp: c1_grid must be odd and >= 3");
    require(fault_weight.size() == faults.size(),
            "TreeJointDp: fault_weight size mismatch");

    // Controllability grid, exponentially spaced towards the extremes:
    // grid[i] = 2^-(2^(m-i)) for the lower half (m = (q-1)/2), mirrored
    // above 1/2 — e.g. q = 13 gives
    // {0, 2^-32, 2^-16, 2^-8, 2^-4, 2^-2, 1/2, 3/4, ..., 1}.
    const int q = params_.c1_grid;
    const int m = (q - 1) / 2;
    grid_.assign(q, 0.0);
    grid_[0] = 0.0;
    grid_[q - 1] = 1.0;
    grid_[m] = 0.5;
    for (int i = 1; i < m; ++i) {
        grid_[i] = std::exp2(-std::exp2(m - i));
        grid_[q - 1 - i] = 1.0 - grid_[i];
    }

    const std::size_t mcount = region.members.size();
    local_of_.assign(circuit.node_count(), 0);
    for (std::uint32_t k = 0; k < mcount; ++k)
        local_of_[region.members[k].v] = k + 1;

    children_.resize(mcount);
    ext_c1_.resize(mcount);
    allowed_.resize(mcount);
    natural_c1_.resize(mcount);
    for (std::uint32_t k = 0; k < mcount; ++k) {
        const NodeId v = region.members[k];
        allowed_[k] = allowed.empty() || allowed[v.v];
        natural_c1_[k] = cop.c1[v.v];
        const auto fanins = circuit.fanins(v);
        ext_c1_[k].resize(fanins.size());
        for (std::size_t slot = 0; slot < fanins.size(); ++slot) {
            const std::uint32_t cl = local_of_[fanins[slot].v];
            if (cl == 0) {
                ext_c1_[k][slot] = cop.c1[fanins[slot].v];
            } else {
                ext_c1_[k][slot] = -1.0;
                children_[k].push_back({cl - 1, slot});
            }
        }
        require(children_[k].size() <= 2,
                "TreeJointDp: more than two in-region fanins; binarise the "
                "circuit first (netlist::binarize)");
    }

    site_faults_.resize(mcount);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (fault_weight[i] == 0) continue;
        const fault::Fault f = faults.representatives[i];
        const std::uint32_t lk = local_of_[f.node.v];
        if (lk == 0) continue;
        site_faults_[lk - 1].push_back(
            {f.stuck_at1, static_cast<double>(fault_weight[i])});
    }

    // Decision set: {nothing, OP} x {no CP, CP kinds}.
    const int half_cost = quant_.to_bucket(0.5);
    for (int obs = 0; obs <= (params_.allow_observe ? 1 : 0); ++obs) {
        decisions_.push_back({obs != 0, -1, obs * params_.observe_cost, 0});
        for (TpKind kind : params_.control_kinds) {
            if (!netlist::is_control(kind)) continue;
            const int pass = (kind == TpKind::ControlXor) ? 0 : half_cost;
            decisions_.push_back({obs != 0, static_cast<int>(kind),
                                  obs * params_.observe_cost +
                                      params_.control_cost,
                                  pass});
        }
    }

    benefit_by_bucket_.resize(buckets_);
    for (int k = 0; k < buckets_; ++k)
        benefit_by_bucket_[k] =
            objective_.benefit(quant_.to_probability(k));

    root_d_ = quant_.to_bucket(cop.obs[region.root.v]);
    solve();
}

int TreeJointDp::quantize_c1(double c1) const {
    if (c1 <= 0.0) return 0;
    if (c1 >= 1.0) return static_cast<int>(grid_.size()) - 1;
    const double lo = logit(c1);
    int best = 1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int i = 1; i + 1 < static_cast<int>(grid_.size()); ++i) {
        const double dist = std::abs(lo - logit(grid_[i]));
        if (dist < best_dist) {
            best_dist = dist;
            best = i;
        }
    }
    return best;
}

double TreeJointDp::apply_control(double c1_pre, int control) const {
    if (control < 0) return c1_pre;
    switch (static_cast<TpKind>(control)) {
        case TpKind::ControlAnd: return 0.5 * c1_pre;
        case TpKind::ControlOr: return 0.5 + 0.5 * c1_pre;
        case TpKind::ControlXor: return 0.5;
        default: throw Error("TreeJointDp: invalid control decision");
    }
}

TreeJointDp::GateEval TreeJointDp::eval_gate(
    std::uint32_t local, std::span<const int> child_class) const {
    const NodeId v = region_.members[local];
    const GateType t = circuit_.type(v);
    GateEval ge{0.5, {1.0, 1.0}};
    if (t == GateType::Input) return ge;
    if (t == GateType::Const0) {
        ge.c1_pre = 0.0;
        return ge;
    }
    if (t == GateType::Const1) {
        ge.c1_pre = 1.0;
        return ge;
    }

    const auto& ext = ext_c1_[local];
    const auto& children = children_[local];
    // Fanin controllabilities in slot order.
    double values[64];
    require(ext.size() <= 64, "TreeJointDp: gate arity > 64");
    for (std::size_t slot = 0; slot < ext.size(); ++slot)
        values[slot] = ext[slot];
    for (std::size_t ci = 0; ci < children.size(); ++ci)
        values[children[ci].slot] =
            class_value(children[ci].local, child_class[ci]);

    ge.c1_pre = testability::gate_output_c1(
        t, std::span<const double>(values, ext.size()));

    for (std::size_t ci = 0; ci < children.size(); ++ci) {
        double sens = 1.0;
        switch (t) {
            case GateType::And:
            case GateType::Nand:
                for (std::size_t s = 0; s < ext.size(); ++s)
                    if (s != children[ci].slot) sens *= values[s];
                break;
            case GateType::Or:
            case GateType::Nor:
                for (std::size_t s = 0; s < ext.size(); ++s)
                    if (s != children[ci].slot) sens *= 1.0 - values[s];
                break;
            default:
                break;  // BUF/NOT/XOR/XNOR propagate with probability 1
        }
        ge.sens[ci] = sens;
    }
    return ge;
}

double TreeJointDp::fault_benefit(std::uint32_t local, double c1_pre,
                                  int d) const {
    double sum = 0.0;
    for (const SiteFault& f : site_faults_[local]) {
        const double excitation = f.stuck_at1 ? (1.0 - c1_pre) : c1_pre;
        sum += f.weight *
               benefit_by_bucket_[quant_.add(quant_.to_bucket(excitation),
                                             d)];
    }
    return sum;
}

void TreeJointDp::solve() {
    const std::size_t m = region_.members.size();
    const int K = params_.max_budget;
    const int C = class_count();
    const int nat = natural_class();
    table_.assign(m,
                  std::vector<double>(
                      static_cast<std::size_t>(K + 1) * C * buckets_,
                      kNegInf));

    std::vector<std::pair<int, double>> exc_buckets;
    for (std::uint32_t k = 0; k < m; ++k) {
        auto& tab = table_[k];
        const auto& children = children_[k];
        const int nch = static_cast<int>(children.size());

        int child_class[2] = {0, 0};
        const int ca_max = nch >= 1 ? C : 1;
        for (int ca = 0; ca < ca_max; ++ca) {
            child_class[0] = ca;
            const int cb_max = nch >= 2 ? C : 1;
            for (int cb = 0; cb < cb_max; ++cb) {
                child_class[1] = cb;
                const GateEval ge =
                    eval_gate(k, std::span<const int>(child_class, 2));
                const int edge_cost[2] = {quant_.to_bucket(ge.sens[0]),
                                          quant_.to_bucket(ge.sens[1])};
                // A subtree is NATURAL when no control point below or at
                // this node modified any controllability.
                const bool children_natural =
                    (nch < 1 || ca == nat) && (nch < 2 || cb == nat);
                // Excitation buckets of the resident faults, hoisted out
                // of the inner loops (log2 is not free there).
                exc_buckets.clear();
                for (const SiteFault& f : site_faults_[k]) {
                    const double excitation =
                        f.stuck_at1 ? (1.0 - ge.c1_pre) : ge.c1_pre;
                    exc_buckets.emplace_back(
                        quant_.to_bucket(excitation), f.weight);
                }
                const auto fault_benefit_at = [&](int d_fault) {
                    double sum = 0.0;
                    for (const auto& [bucket, weight] : exc_buckets)
                        sum += weight *
                               benefit_by_bucket_[quant_.add(bucket,
                                                             d_fault)];
                    return sum;
                };

                for (const Decision& dec : decisions_) {
                    if ((dec.observe || dec.control >= 0) && !allowed_[k])
                        continue;
                    const double c1_post =
                        apply_control(ge.c1_pre, dec.control);
                    const int c_out = (children_natural && dec.control < 0)
                                          ? nat
                                          : quantize_c1(c1_post);

                    for (int d = 0; d < buckets_; ++d) {
                        const int d_fault = quant_.add(
                            dec.observe ? 0 : d, dec.pass_cost);
                        const double fb = fault_benefit_at(d_fault);
                        const int da = quant_.add(d_fault, edge_cost[0]);
                        const int db = quant_.add(d_fault, edge_cost[1]);

                        for (int j = dec.units; j <= K; ++j) {
                            const int avail = j - dec.units;
                            double value;
                            if (nch == 0) {
                                value = fb;
                            } else if (nch == 1) {
                                // dp is made monotone per node, so the
                                // full remaining budget is optimal.
                                value = fb + dp(children[0].local, avail,
                                                ca, da);
                            } else {
                                double bst = kNegInf;
                                for (int ja = 0; ja <= avail; ++ja) {
                                    const double v =
                                        dp(children[0].local, ja, ca, da) +
                                        dp(children[1].local, avail - ja,
                                           cb, db);
                                    bst = std::max(bst, v);
                                }
                                value = fb + bst;
                            }
                            auto& cell = tab[idx(j, c_out, d)];
                            cell = std::max(cell, value);
                        }
                    }
                }
            }
        }
        // Monotone in budget ("at most j").
        for (int j = 1; j <= K; ++j)
            for (int c = 0; c < C; ++c)
                for (int d = 0; d < buckets_; ++d) {
                    auto& cell = tab[idx(j, c, d)];
                    cell = std::max(cell, tab[idx(j - 1, c, d)]);
                }
    }
}

double TreeJointDp::best(int budget) const {
    require(budget >= 0, "TreeJointDp::best: negative budget");
    const int j = std::min(budget, params_.max_budget);
    const auto root =
        static_cast<std::uint32_t>(region_.members.size() - 1);
    double bst = kNegInf;
    for (int c = 0; c < class_count(); ++c)
        bst = std::max(bst, dp(root, j, c, root_d_));
    return bst;
}

void TreeJointDp::backtrack(std::uint32_t local, int j, int c, int d,
                            std::vector<netlist::TestPoint>& out) const {
    while (j > 0 && dp(local, j - 1, c, d) >= dp(local, j, c, d)) --j;
    const double target = dp(local, j, c, d);
    require(target > kNegInf, "TreeJointDp::backtrack: unreachable state");

    const auto& children = children_[local];
    const int nch = static_cast<int>(children.size());
    const int C = class_count();
    const int nat = natural_class();

    int child_class[2] = {0, 0};
    const int ca_max = nch >= 1 ? C : 1;
    for (int ca = 0; ca < ca_max; ++ca) {
        child_class[0] = ca;
        const int cb_max = nch >= 2 ? C : 1;
        for (int cb = 0; cb < cb_max; ++cb) {
            child_class[1] = cb;
            const GateEval ge =
                eval_gate(local, std::span<const int>(child_class, 2));
            const int edge_cost[2] = {quant_.to_bucket(ge.sens[0]),
                                      quant_.to_bucket(ge.sens[1])};
            const bool children_natural =
                (nch < 1 || ca == nat) && (nch < 2 || cb == nat);
            for (const Decision& dec : decisions_) {
                if ((dec.observe || dec.control >= 0) && !allowed_[local])
                    continue;
                if (dec.units > j) continue;
                const double c1_post = apply_control(ge.c1_pre, dec.control);
                const int c_out = (children_natural && dec.control < 0)
                                      ? nat
                                      : quantize_c1(c1_post);
                if (c_out != c) continue;
                const int d_fault =
                    quant_.add(dec.observe ? 0 : d, dec.pass_cost);
                const double fb = fault_benefit(local, ge.c1_pre, d_fault);
                const int da = quant_.add(d_fault, edge_cost[0]);
                const int db = quant_.add(d_fault, edge_cost[1]);
                const int avail = j - dec.units;

                const auto emit = [&](int ja, int jb) {
                    const NodeId v = region_.members[local];
                    if (dec.observe) out.push_back({v, TpKind::Observe});
                    if (dec.control >= 0)
                        out.push_back(
                            {v, static_cast<TpKind>(dec.control)});
                    if (nch >= 1)
                        backtrack(children[0].local, ja, ca, da, out);
                    if (nch >= 2)
                        backtrack(children[1].local, jb, cb, db, out);
                };
                if (nch == 0) {
                    if (fb >= target - 1e-12) {
                        emit(0, 0);
                        return;
                    }
                } else if (nch == 1) {
                    if (fb + dp(children[0].local, avail, ca, da) >=
                        target - 1e-12) {
                        emit(avail, 0);
                        return;
                    }
                } else {
                    for (int ja = 0; ja <= avail; ++ja) {
                        if (fb + dp(children[0].local, ja, ca, da) +
                                dp(children[1].local, avail - ja, cb, db) >=
                            target - 1e-12) {
                            emit(ja, avail - ja);
                            return;
                        }
                    }
                }
            }
        }
    }
    throw Error("TreeJointDp::backtrack: no matching decision found");
}

std::vector<netlist::TestPoint> TreeJointDp::placements(int budget) const {
    std::vector<netlist::TestPoint> out;
    const int j = std::min(std::max(budget, 0), params_.max_budget);
    const auto root =
        static_cast<std::uint32_t>(region_.members.size() - 1);
    // Pick the best root controllability class for this budget.
    int best_c = 0;
    double bst = kNegInf;
    for (int c = 0; c < class_count(); ++c) {
        const double v = dp(root, j, c, root_d_);
        if (v > bst) {
            bst = v;
            best_c = c;
        }
    }
    backtrack(root, j, best_c, root_d_, out);
    return out;
}

}  // namespace tpi
