#include "tpi/tree_obs_dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace tpi {

using netlist::NodeId;

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

TreeObsDp::TreeObsDp(const netlist::Circuit& circuit,
                     const netlist::FanoutFreeRegion& region,
                     const testability::CopResult& cop,
                     const fault::CollapsedFaults& faults,
                     std::span<const std::uint32_t> fault_weight,
                     const Objective& objective, const Params& params,
                     const std::vector<bool>& allowed)
    : region_(region),
      params_(params),
      quant_(params.delta_bits, params.max_bucket),
      buckets_(quant_.bucket_count()),
      objective_(objective) {
    require(params_.max_budget >= 0, "TreeObsDp: negative budget");
    require(params_.observe_cost >= 1, "TreeObsDp: observe_cost must be >= 1");
    require(fault_weight.size() == faults.size(),
            "TreeObsDp: fault_weight size mismatch");

    const std::size_t m = region.members.size();
    local_of_.assign(circuit.node_count(), 0);
    for (std::uint32_t k = 0; k < m; ++k)
        local_of_[region.members[k].v] = k + 1;

    // Children: fanins of each member that are themselves members.
    children_.resize(m);
    op_allowed_.resize(m);
    for (std::uint32_t k = 0; k < m; ++k) {
        const NodeId v = region.members[k];
        op_allowed_[k] = allowed.empty() || allowed[v.v];
        const auto fanins = circuit.fanins(v);
        for (std::size_t slot = 0; slot < fanins.size(); ++slot) {
            const std::uint32_t cl = local_of_[fanins[slot].v];
            if (cl == 0) continue;  // external leaf input
            const double sens = testability::sensitization_probability(
                circuit, v, slot, cop.c1);
            const int cost = quant_.to_bucket(sens);
            // A duplicated fanin must contribute one child only.
            const auto dup = std::find_if(
                children_[k].begin(), children_[k].end(),
                [&](const Child& c) { return c.local == cl - 1; });
            if (dup != children_[k].end())
                dup->edge_cost = std::min(dup->edge_cost, cost);
            else
                children_[k].push_back({cl - 1, cost});
        }
    }

    // Resident fault classes per member (located at their representative).
    site_faults_.resize(m);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (fault_weight[i] == 0) continue;
        const fault::Fault f = faults.representatives[i];
        const std::uint32_t lk = local_of_[f.node.v];
        if (lk == 0) continue;
        const double excitation =
            f.stuck_at1 ? (1.0 - cop.c1[f.node.v]) : cop.c1[f.node.v];
        site_faults_[lk - 1].emplace_back(
            excitation, static_cast<double>(fault_weight[i]));
    }

    root_d_ = quant_.to_bucket(cop.obs[region.root.v]);
    solve();
}

double TreeObsDp::fault_benefit(std::uint32_t local, int d) const {
    double sum = 0.0;
    const double path = quant_.to_probability(d);
    for (const auto& [excitation, weight] : site_faults_[local])
        sum += weight * objective_.benefit(excitation * path);
    return sum;
}

template <typename DChildFn>
void TreeObsDp::child_knapsack(std::span<const Child> children,
                               DChildFn d_child,
                               std::vector<std::vector<double>>& value) const {
    const int K = params_.max_budget;
    value.assign(children.size() + 1, std::vector<double>(K + 1, 0.0));
    for (std::size_t ci = 0; ci < children.size(); ++ci) {
        const Child& ch = children[ci];
        const int dc = d_child(ch);
        for (int j = 0; j <= K; ++j) {
            double best = kNegInf;
            for (int s = 0; s <= j; ++s) {
                const double v = value[ci][j - s] + dp(ch.local, s, dc);
                best = std::max(best, v);
            }
            value[ci + 1][j] = best;
        }
    }
}

void TreeObsDp::solve() {
    const std::size_t m = region_.members.size();
    const int K = params_.max_budget;
    table_.assign(m, std::vector<double>(
                         static_cast<std::size_t>(K + 1) * buckets_, 0.0));

    std::vector<std::vector<double>> knap;
    for (std::uint32_t k = 0; k < m; ++k) {
        const auto& children = children_[k];

        // Variant B: observation point at this node (children observed
        // through their edge only; faults here at cost 0).
        std::vector<double> variant_b(K + 1, kNegInf);
        if (op_allowed_[k]) {
            child_knapsack(children, [](const Child& c) { return c.edge_cost; },
                           knap);
            const double fb0 = fault_benefit(k, 0);
            for (int j = params_.observe_cost; j <= K; ++j)
                variant_b[j] = knap[children.size()]
                                   [j - params_.observe_cost] + fb0;
        }

        // Variant A: no point here; everything is charged d + edge.
        for (int d = 0; d < buckets_; ++d) {
            child_knapsack(children,
                           [&](const Child& c) {
                               return quant_.add(d, c.edge_cost);
                           },
                           knap);
            const double fb = fault_benefit(k, d);
            for (int j = 0; j <= K; ++j) {
                dp(k, j, d) =
                    std::max(knap[children.size()][j] + fb, variant_b[j]);
            }
        }
        // Enforce monotonicity in budget ("at most j" semantics).
        for (int j = 1; j <= K; ++j)
            for (int d = 0; d < buckets_; ++d)
                dp(k, j, d) = std::max(dp(k, j, d), dp(k, j - 1, d));
    }
}

double TreeObsDp::best(int budget) const {
    require(budget >= 0, "TreeObsDp::best: negative budget");
    const int j = std::min(budget, params_.max_budget);
    const auto root_local =
        static_cast<std::uint32_t>(region_.members.size() - 1);
    return dp(root_local, j, root_d_);
}

void TreeObsDp::backtrack(std::uint32_t local, int j, int d,
                          std::vector<NodeId>& out) const {
    // Shrink to the smallest budget achieving the same value (monotone
    // table), so ties are resolved towards fewer points.
    while (j > 0 && dp(local, j - 1, d) >= dp(local, j, d)) --j;

    const auto& children = children_[local];
    std::vector<std::vector<double>> knap;

    // Re-derive which variant produced dp(local, j, d).
    double variant_b = kNegInf;
    if (op_allowed_[local] && j >= params_.observe_cost) {
        child_knapsack(children, [](const Child& c) { return c.edge_cost; },
                       knap);
        variant_b =
            knap[children.size()][j - params_.observe_cost] +
            fault_benefit(local, 0);
    }
    std::vector<std::vector<double>> knap_a;
    child_knapsack(children,
                   [&](const Child& c) { return quant_.add(d, c.edge_cost); },
                   knap_a);
    const double variant_a =
        knap_a[children.size()][j] + fault_benefit(local, d);

    const bool take_op = variant_b > variant_a;
    if (take_op) out.push_back(region_.members[local]);

    // Recover the child budget split of the chosen variant by walking the
    // prefix knapsack backwards.
    const auto& value = take_op ? knap : knap_a;
    int remaining = take_op ? j - params_.observe_cost : j;
    std::vector<int> split(children.size(), 0);
    for (std::size_t ci = children.size(); ci-- > 0;) {
        const Child& ch = children[ci];
        const int dc = take_op ? ch.edge_cost : quant_.add(d, ch.edge_cost);
        for (int s = 0; s <= remaining; ++s) {
            if (value[ci][remaining - s] + dp(ch.local, s, dc) >=
                value[ci + 1][remaining] - 1e-12) {
                split[ci] = s;
                remaining -= s;
                break;
            }
        }
    }
    for (std::size_t ci = 0; ci < children.size(); ++ci) {
        const Child& ch = children[ci];
        const int dc = take_op ? ch.edge_cost : quant_.add(d, ch.edge_cost);
        backtrack(ch.local, split[ci], dc, out);
    }
}

std::vector<NodeId> TreeObsDp::placements(int budget) const {
    std::vector<NodeId> out;
    const int j = std::min(std::max(budget, 0), params_.max_budget);
    const auto root_local =
        static_cast<std::uint32_t>(region_.members.size() - 1);
    backtrack(root_local, j, root_d_, out);
    return out;
}

}  // namespace tpi
