#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "analysis/certificate.hpp"
#include "netlist/circuit.hpp"
#include "netlist/test_point.hpp"
#include "obs/obs.hpp"
#include "tpi/objective.hpp"
#include "util/deadline.hpp"

namespace tpi {

/// Integer cost of each test point kind, in budget units. The classic
/// accounting charges an observation point less than a control point
/// (a bare scan cell vs. gate + routing + test signal), but the default
/// here is uniform so budgets read as "number of test points".
struct CostModel {
    int observe = 1;
    int control = 1;

    int cost(netlist::TpKind kind) const {
        return netlist::is_control(kind) ? control : observe;
    }
};

/// Options shared by all planners.
struct PlannerOptions {
    /// Total budget in CostModel units.
    int budget = 8;
    CostModel cost;
    Objective objective;

    /// Which test point kinds the planner may use.
    bool allow_observe = true;
    std::vector<netlist::TpKind> control_kinds = {
        netlist::TpKind::ControlXor, netlist::TpKind::ControlAnd,
        netlist::TpKind::ControlOr};

    /// Dynamic-program parameters (see DESIGN.md §2).
    double dp_delta_bits = 0.25;   ///< log-cost quantisation grid
    int dp_max_cost_bucket = 120;  ///< saturation cap of the cost grid
    int dp_region_budget = 6;      ///< max points the DP considers per FFR
    int dp_rounds = 4;             ///< recompute/reallocate rounds
    int dp_joint_c1_grid = 9;      ///< controllability classes (joint DP)
    int dp_joint_max_region = 600; ///< joint DP fallback threshold

    /// Cross-round reuse of per-FFR DP tables in the DP planner's
    /// observe-only fast path (incremental engine on, eval_epsilon == 0,
    /// no control kinds). Observation points add no nodes, so the
    /// transformed numbering is identical in every round and a region's
    /// tables depend only on its member list, the COP on its members and
    /// their fanins, and the placement mask — all invariant for regions
    /// untouched by the points committed since the tables were built.
    /// Reused tables are bitwise identical to a rebuild, so plans and
    /// scores do not change (asserted by the differential suite); off
    /// restores the rebuild-every-round reference path.
    bool dp_reuse_regions = true;

    /// Greedy baseline: exact evaluations per step.
    int greedy_pool = 24;

    /// Observe-candidate ranking of the greedy planner. Off (default):
    /// the covering proxy — a per-fault propagation profile whose cost
    /// grows with faults times their above-threshold cone sizes. On:
    /// an O(nodes + edges) deficit-flow proxy — every hard fault's
    /// weighted benefit deficit is injected at its site and flowed down
    /// the best single-path sensitisation product in one topological
    /// sweep over the fanout CSR. Only the *ranking* that feeds the
    /// shortlist changes (survivors are still scored exactly), so plans
    /// may differ from the covering proxy; intended for 100k+-gate
    /// circuits where the per-fault profile is infeasible.
    bool greedy_flow_proxy = false;

    /// Score candidates with the incremental evaluation engine
    /// (delta-COP apply/score/rollback, see DESIGN.md §12) instead of
    /// materialising every candidate plan through `evaluate_plan`. With
    /// `eval_epsilon == 0` the engine is bit-identical to the oracle, so
    /// plans and scores do not change — only the time spent producing
    /// them. Off switches every planner back to the reference path.
    bool incremental_eval = true;

    /// Delta-propagation cutoff of the incremental engine: changes
    /// smaller than this are dropped and their cones not re-walked.
    /// 0 (the default) propagates every last-ulp change and preserves
    /// bit-exactness; small positive values trade exactness for
    /// shallower update cones on deep circuits.
    double eval_epsilon = 0.0;

    /// Score candidate batches with the lane-parallel block scorer
    /// (`EvalEngine::score_block`): one SIMD word of doubles carries up
    /// to eight candidates through a single union-frontier delta-COP
    /// sweep (see DESIGN.md §17). Every plan and every score is
    /// bit-identical with this on or off, at any lane width or thread
    /// count — the flag only changes how fast the same numbers appear.
    /// Only meaningful with incremental_eval on.
    bool simd_eval = true;

    /// Pre-filter candidates with the lint engine: nets proven constant
    /// or unobservable (no sensitisable path to any primary output) are
    /// dropped before any DP table or shortlist is built, and the fault
    /// classes lint proves redundant are zero-weighted in the planner's
    /// internal universe. Exact whenever the unpruned optimum spends no
    /// budget on lint-condemned nets (see DESIGN.md §10); a measurable
    /// speedup on circuits with dead or tied-off logic. The reported
    /// predicted_score is always computed over the full fault universe,
    /// so pruned and unpruned plans are directly comparable.
    bool prune_via_lint = false;

    /// Drop observe candidates the static analysis proves zero-gain:
    /// nets whose COP observability is exactly 1.0 on the current
    /// (transformed) circuit. Every factor of the COP observability
    /// product lies in [0, 1] and rounding is monotone, so obs == 1.0
    /// certifies a fully transparent chain to an output; an observe
    /// point there leaves the transformed COP — and hence every score
    /// the planners compare — bitwise unchanged. Plans and
    /// predicted_score are therefore bit-identical with pruning on or
    /// off (asserted by the differential suite); the pruned candidates
    /// are recorded in Plan::candidates_pruned_analysis with
    /// transparent-chain certificates in Plan::prune_certificates.
    /// Applies to the DP planner's observe-only region DPs and the
    /// greedy/threshold shortlist; the joint control+observe DP is
    /// never pruned (a control point can make a transparent chain
    /// opaque, so zero-gain is not stable there).
    bool prune_via_analysis = false;

    std::uint64_t seed = 1;

    /// Worker lanes for region-parallel DP planning: the independent
    /// per-FFR dynamic programs of a round are solved concurrently and
    /// their candidate tables consumed in region-index order, so plans
    /// are identical for every thread count. 1 (the default) is the
    /// exact single-threaded code path; 0 means hardware concurrency.
    /// Planners without internal parallelism ignore it.
    unsigned threads = 1;

    /// Optional cooperative resource budget (not owned). Planners check
    /// it at their natural work boundaries and, once it expires, stop
    /// and return their best-so-far plan with Plan::truncated set —
    /// they never run unbounded.
    util::Deadline* deadline = nullptr;

    /// Optional observability sink (not owned). Planners open tracing
    /// spans at phase boundaries (per-round, per-region DP build,
    /// knapsack merge) and record work counters into it; null (the
    /// default) disables all instrumentation at the cost of one branch
    /// per site. The deterministic counters (DpCellsFilled, PlanPoints,
    /// ...) total identically for every `threads` value.
    obs::Sink* sink = nullptr;
};

/// A set of selected test points plus the planner's own estimate of the
/// objective it achieves (COP-based; validate with fault simulation).
struct Plan {
    std::vector<netlist::TestPoint> points;
    double predicted_score = 0.0;

    /// Completeness status: true when the planner's deadline expired and
    /// `points` is a best-so-far result rather than the full search.
    bool truncated = false;

    /// Planner instrumentation (DP and greedy): candidate nets admitted
    /// in the first planning round, and candidates excluded from that
    /// set by PlannerOptions::prune_via_lint (0 when pruning is off).
    std::size_t candidates_considered = 0;
    std::size_t candidates_pruned = 0;

    /// Observe candidates dropped by PlannerOptions::prune_via_analysis
    /// across all rounds/steps, with transparent-chain certificates for
    /// the first few (capped; each replays via check_certificate).
    std::size_t candidates_pruned_analysis = 0;
    std::vector<analysis::Certificate> prune_certificates;

    int total_cost(const CostModel& cost) const {
        int sum = 0;
        for (const auto& tp : points) sum += cost.cost(tp.kind);
        return sum;
    }
};

/// Shared entry validation for every planner: throws ValidationError on
/// a malformed cost model (a zero or negative per-kind cost would divide
/// the greedy gain rate by zero and make budgets meaningless) or a
/// negative eval_epsilon, and tpi::Error on a negative budget. `planner`
/// names the caller in the message.
void validate_planner_options(const PlannerOptions& options,
                              std::string_view planner);

/// Abstract TPI planner. Implementations: DpPlanner (the paper),
/// GreedyPlanner, RandomPlanner, ExhaustivePlanner (oracle).
class Planner {
public:
    virtual ~Planner() = default;

    /// Select test points for `circuit` under `options`.
    virtual Plan plan(const netlist::Circuit& circuit,
                      const PlannerOptions& options) = 0;

    virtual std::string_view name() const = 0;
};

}  // namespace tpi
