#include "fault/fault.hpp"

#include <numeric>

#include "util/error.hpp"

namespace tpi::fault {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

std::string fault_name(const Circuit& circuit, const Fault& fault) {
    return std::string(circuit.node_name(fault.node)) +
           (fault.stuck_at1 ? "/sa1" : "/sa0");
}

std::vector<Fault> all_faults(const Circuit& circuit) {
    std::vector<Fault> faults;
    faults.reserve(2 * circuit.node_count());
    for (NodeId v : circuit.all_nodes()) {
        const GateType t = circuit.type(v);
        if (t != GateType::Const0) faults.push_back({v, false});
        if (t != GateType::Const1) faults.push_back({v, true});
    }
    return faults;
}

namespace {

/// Minimal union-find over fault slots (2 per node: index = 2*node + sa).
class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), 0u);
    }

    std::uint32_t find(std::uint32_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(std::uint32_t a, std::uint32_t b) {
        parent_[find(a)] = find(b);
    }

private:
    std::vector<std::uint32_t> parent_;
};

std::uint32_t slot(NodeId node, bool sa1) {
    return 2 * node.v + (sa1 ? 1u : 0u);
}

}  // namespace

CollapsedFaults collapse_faults(const Circuit& circuit) {
    const std::size_t n = circuit.node_count();
    UnionFind uf(2 * n);

    for (NodeId g : circuit.all_nodes()) {
        const GateType t = circuit.type(g);
        if (netlist::is_source(t)) continue;
        for (NodeId a : circuit.fanins(g)) {
            if (circuit.fanout_count(a) != 1) continue;
            switch (t) {
                case GateType::Buf:
                    uf.unite(slot(a, false), slot(g, false));
                    uf.unite(slot(a, true), slot(g, true));
                    break;
                case GateType::Not:
                    uf.unite(slot(a, false), slot(g, true));
                    uf.unite(slot(a, true), slot(g, false));
                    break;
                case GateType::And:
                    uf.unite(slot(a, false), slot(g, false));
                    break;
                case GateType::Nand:
                    uf.unite(slot(a, false), slot(g, true));
                    break;
                case GateType::Or:
                    uf.unite(slot(a, true), slot(g, true));
                    break;
                case GateType::Nor:
                    uf.unite(slot(a, true), slot(g, false));
                    break;
                default:
                    break;  // XOR/XNOR: no structural equivalence
            }
        }
    }

    // Membership in the universe (tie-cell trivial faults excluded).
    const auto in_universe = [&](NodeId v, bool sa1) {
        const GateType t = circuit.type(v);
        if (t == GateType::Const0 && !sa1) return false;
        if (t == GateType::Const1 && sa1) return false;
        return true;
    };

    CollapsedFaults result;
    result.class_of.assign(2 * n, -1);
    std::vector<std::int32_t> class_of_root(2 * n, -1);
    for (NodeId v : circuit.all_nodes()) {
        for (bool sa1 : {false, true}) {
            if (!in_universe(v, sa1)) continue;
            const std::uint32_t root = uf.find(slot(v, sa1));
            std::int32_t cls = class_of_root[root];
            if (cls < 0) {
                cls = static_cast<std::int32_t>(result.representatives.size());
                class_of_root[root] = cls;
                result.representatives.push_back({v, sa1});
                result.class_size.push_back(0);
            }
            result.class_of[slot(v, sa1)] = cls;
            result.class_size[static_cast<std::size_t>(cls)]++;
            result.total_faults++;
        }
    }
    return result;
}

CollapsedFaults singleton_faults(const Circuit& circuit) {
    CollapsedFaults result;
    result.class_of.assign(2 * circuit.node_count(), -1);
    for (const Fault& f : all_faults(circuit)) {
        const auto cls =
            static_cast<std::int32_t>(result.representatives.size());
        result.class_of[2 * f.node.v + (f.stuck_at1 ? 1 : 0)] = cls;
        result.representatives.push_back(f);
        result.class_size.push_back(1);
        result.total_faults++;
    }
    return result;
}

}  // namespace tpi::fault
