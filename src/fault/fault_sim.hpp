#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "obs/obs.hpp"
#include "sim/pattern.hpp"
#include "util/deadline.hpp"

namespace tpi::fault {

struct FaultSimOptions {
    /// Number of stimulus patterns (rounded up to a multiple of 64).
    std::size_t max_patterns = 32768;
    /// Stop early once every collapsed fault is detected.
    bool stop_at_full_coverage = true;
    /// Record the cumulative-coverage curve per 64-pattern block
    /// (needed for the fault-coverage figures).
    bool record_curve = false;
    /// Drop faults at first detection (the usual mode). Signature-based
    /// BIST analysis needs the complete response and sets this to false.
    bool drop_detected = true;
    /// Simulation word width in bits: 64 (the scalar baseline and the
    /// default — fixed, so goldens and counters are host-independent),
    /// 128/256/512 (SIMD lanes, see sim::SimWord), or 0 = the widest
    /// width this host supports (sim::preferred_sim_width). Every width
    /// produces identical detection results (detect_pattern, coverage,
    /// curve, detect counts while active); only throughput and the
    /// truncation/stop-early granularity change. A set
    /// response_observer forces width 64 (its contract is 64-pattern
    /// blocks).
    unsigned sim_width = 64;
    /// Drop a fault from the active list once this many patterns have
    /// detected it (an n-detect target). 0 = off: dropping is then
    /// governed by drop_detected alone (equivalent to drop_after = 1
    /// when set). Dropping never changes the detected/undetected
    /// partition or detect_pattern — only detect counts beyond the
    /// target, which stop accumulating once the fault is dropped.
    std::uint64_t drop_after = 0;
    /// Batch single-fault propagation per fanout-free region: one stem
    /// observability mask is propagated per (region, block) and each
    /// fault in the region reduces to a cheap site-to-stem walk
    /// (DESIGN.md §14 has the exactness argument). Bitwise-equal to
    /// per-fault propagation; on by default. A set response_observer
    /// forces the per-fault path (it needs real faulty output words).
    bool ffr_batch = true;
    /// Optional observer invoked for every still-active fault after each
    /// block, with the faulty primary-output words (one per output, in
    /// outputs() order). Used by the MISR compaction of tpi::bist.
    std::function<void(std::uint32_t fault_index, std::size_t block,
                       std::span<const std::uint64_t> faulty_po_words)>
        response_observer;
    /// Optional cooperative resource budget (not owned). Checked per
    /// simulated fault and before every pattern block — the block poll
    /// makes expiry width-independent and covers the empty-active-list
    /// case; on expiry the simulation stops at the current
    /// block and returns the coverage accumulated so far with
    /// FaultSimResult::truncated set. Thread-safe: under parallel
    /// execution every worker polls it and the first expiry stops all
    /// workers cooperatively.
    util::Deadline* deadline = nullptr;
    /// Worker lanes for fault-partitioned parallel simulation: the
    /// collapsed fault list is sharded, the good machine is simulated
    /// once per block and broadcast, and each lane propagates the faults
    /// of its shards with private scratch. Per-shard fragments are
    /// merged in shard-index order, so completed runs are bit-identical
    /// for every thread count. 1 (the default) is the exact
    /// single-threaded code path; 0 means hardware concurrency. A set
    /// response_observer forces single-threaded execution (the observer
    /// contract is ordered callbacks).
    unsigned threads = 1;
    /// Optional observability sink (not owned). The simulator opens a
    /// "sim/run" span, one "sim/block" span per 64-pattern block, and
    /// per-shard detail spans under parallel execution; it counts
    /// SimBlocks / SimPatterns / FaultsSimulated with totals that are
    /// identical for every `threads` value on completed runs. Null (the
    /// default) disables all instrumentation.
    obs::Sink* sink = nullptr;
};

struct FaultSimResult {
    /// Per collapsed fault: index of the first detecting pattern, or -1.
    std::vector<std::int64_t> detect_pattern;
    /// Per collapsed fault: number of patterns that detected it while it
    /// was still active. With dropping off this is the exact n-detect
    /// count over all applied patterns (width-invariant); with dropping
    /// on, counts beyond the drop target depend on the block width the
    /// fault was retired under.
    std::vector<std::uint64_t> detect_count;
    /// Patterns actually applied (multiple of 64 unless 0).
    std::size_t patterns_applied = 0;
    /// Weighted detected / total over the uncollapsed universe.
    double coverage = 0.0;
    /// Number of undetected collapsed faults.
    std::size_t undetected = 0;
    /// Collapsed faults removed from the active list by fault dropping.
    std::size_t dropped = 0;
    /// The simulation word width actually used (sim_width = 0 resolved).
    unsigned sim_width = 0;
    /// If requested: coverage after each 64-pattern block.
    std::vector<double> coverage_curve;
    /// Completeness status: true when the deadline expired and the
    /// result reflects only the patterns simulated up to that point.
    bool truncated = false;

    /// Patterns needed to reach `target` coverage, or -1 if never reached.
    std::int64_t patterns_to_coverage(double target,
                                      const CollapsedFaults& faults) const;
};

/// Parallel-pattern single-fault-propagation fault simulation with fault
/// dropping.
///
/// For each pattern block (sim_width bits wide) the fault-free circuit
/// is simulated once; every still-active fault is then injected and its
/// effect propagated — through its fanout cone, or via the shared
/// per-FFR stem observability mask when ffr_batch is on — comparing
/// against the good values at the primary outputs (which include any
/// observation points materialised by apply_test_points). A fault is
/// dropped once its detection count reaches the drop target. Throws
/// tpi::ValidationError for an unsupported sim_width.
FaultSimResult run_fault_simulation(const netlist::Circuit& circuit,
                                    const CollapsedFaults& faults,
                                    sim::PatternSource& source,
                                    const FaultSimOptions& options = {});

/// Convenience wrapper: collapse, simulate `num_patterns` equiprobable
/// random patterns with `seed`, return the result. `threads`, `sink`
/// and `sim_width` as in FaultSimOptions (threads 1 = serial, 0 =
/// hardware concurrency; sim_width 0 = auto).
FaultSimResult random_pattern_coverage(const netlist::Circuit& circuit,
                                       std::size_t num_patterns,
                                       std::uint64_t seed,
                                       bool record_curve = false,
                                       util::Deadline* deadline = nullptr,
                                       unsigned threads = 1,
                                       obs::Sink* sink = nullptr,
                                       unsigned sim_width = 64);

}  // namespace tpi::fault
