#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "sim/pattern.hpp"

namespace tpi::fault {

/// Result of a deductive fault simulation run (same conventions as
/// FaultSimResult where the fields overlap).
struct DeductiveResult {
    std::vector<std::int64_t> detect_pattern;  ///< first detection or -1
    std::size_t patterns_applied = 0;
    double coverage = 0.0;
    std::size_t undetected = 0;
};

/// Deductive fault simulation (Armstrong's method) — the second,
/// independent engine used to cross-validate the parallel-pattern
/// simulator.
///
/// For each pattern, every net carries the *list* of single faults whose
/// presence would flip it. Lists combine exactly through gates: with no
/// controlling input present the output list is the union of the input
/// lists; with controlling inputs it is the intersection of the
/// controlling inputs' lists minus the union of the others; XOR keeps
/// faults flipping an odd number of inputs. A fault is detected when its
/// class reaches a primary output's list.
///
/// One pattern at a time and list-heavy — use for verification and small
/// circuits, not throughput.
DeductiveResult run_deductive_simulation(const netlist::Circuit& circuit,
                                         const CollapsedFaults& faults,
                                         sim::PatternSource& source,
                                         std::size_t max_patterns,
                                         bool stop_at_full_coverage = true);

}  // namespace tpi::fault
