#include "fault/deductive.hpp"

#include <algorithm>

#include "sim/logic_sim.hpp"
#include "util/error.hpp"

namespace tpi::fault {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

using FaultList = std::vector<std::int32_t>;  // sorted class indices

void sorted_union(const FaultList& a, const FaultList& b, FaultList& out) {
    out.clear();
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
}

}  // namespace

DeductiveResult run_deductive_simulation(const Circuit& circuit,
                                         const CollapsedFaults& faults,
                                         sim::PatternSource& source,
                                         std::size_t max_patterns,
                                         bool stop_at_full_coverage) {
    const std::size_t n = circuit.node_count();
    sim::LogicSimulator good(circuit);

    DeductiveResult result;
    result.detect_pattern.assign(faults.size(), -1);
    std::size_t undetected = faults.size();

    std::vector<FaultList> list(n);
    std::vector<std::uint64_t> pi_words(circuit.input_count());
    FaultList scratch_a;
    FaultList scratch_b;
    // Per-gate aggregation scratch: (class, tag) pairs.
    std::vector<std::pair<std::int32_t, std::int32_t>> gathered;

    const std::size_t blocks = (max_patterns + 63) / 64;
    for (std::size_t b = 0;
         b < blocks && !(stop_at_full_coverage && undetected == 0); ++b) {
        source.next_block(pi_words);
        good.simulate_block(pi_words);
        const auto values = good.values();

        for (unsigned j = 0;
             j < 64 && !(stop_at_full_coverage && undetected == 0); ++j) {
            const std::int64_t pattern =
                static_cast<std::int64_t>(b) * 64 + j;

            for (NodeId v : circuit.topo_order()) {
                const GateType t = circuit.type(v);
                const bool good_value = ((values[v.v] >> j) & 1) != 0;
                FaultList& lv = list[v.v];
                lv.clear();

                const auto fanins = circuit.fanins(v);
                if (!netlist::is_source(t)) {
                    if (t == GateType::Buf || t == GateType::Not) {
                        lv = list[fanins[0].v];
                    } else if (t == GateType::Xor || t == GateType::Xnor) {
                        // Odd-flip rule: gather occurrences per fault.
                        gathered.clear();
                        for (NodeId f : fanins)
                            for (std::int32_t cls : list[f.v])
                                gathered.emplace_back(cls, 1);
                        std::sort(gathered.begin(), gathered.end());
                        for (std::size_t k = 0; k < gathered.size();) {
                            std::size_t e = k;
                            int count = 0;
                            while (e < gathered.size() &&
                                   gathered[e].first == gathered[k].first) {
                                ++count;
                                ++e;
                            }
                            if (count % 2 == 1)
                                lv.push_back(gathered[k].first);
                            k = e;
                        }
                    } else {
                        // AND/NAND/OR/NOR: controlling-value analysis.
                        const bool ctrl =
                            netlist::controlling_value(t);
                        scratch_a.clear();  // intersection of controlling
                        scratch_b.clear();  // union of non-controlling
                        bool have_controlling = false;
                        bool first_controlling = true;
                        for (NodeId f : fanins) {
                            const bool fv = ((values[f.v] >> j) & 1) != 0;
                            if (fv == ctrl) {
                                have_controlling = true;
                                if (first_controlling) {
                                    scratch_a = list[f.v];
                                    first_controlling = false;
                                } else {
                                    FaultList tmp;
                                    std::set_intersection(
                                        scratch_a.begin(), scratch_a.end(),
                                        list[f.v].begin(), list[f.v].end(),
                                        std::back_inserter(tmp));
                                    scratch_a = std::move(tmp);
                                }
                            } else {
                                FaultList tmp;
                                sorted_union(scratch_b, list[f.v], tmp);
                                scratch_b = std::move(tmp);
                            }
                        }
                        if (!have_controlling) {
                            lv = scratch_b;  // union of all inputs
                        } else {
                            std::set_difference(
                                scratch_a.begin(), scratch_a.end(),
                                scratch_b.begin(), scratch_b.end(),
                                std::back_inserter(lv));
                        }
                    }
                }

                // The net's own stuck-at fault (the one opposite to the
                // good value) flips it; the same-value fault never does.
                const std::int32_t excited =
                    faults.class_of[2 * v.v + (good_value ? 0 : 1)];
                const std::int32_t masked =
                    faults.class_of[2 * v.v + (good_value ? 1 : 0)];
                if (excited >= 0) {
                    const auto it = std::lower_bound(lv.begin(), lv.end(),
                                                     excited);
                    if (it == lv.end() || *it != excited)
                        lv.insert(it, excited);
                }
                if (masked >= 0) {
                    // A stuck-at equal to the good value pins the net:
                    // nothing propagates past it, including itself.
                    const auto it = std::lower_bound(lv.begin(), lv.end(),
                                                     masked);
                    if (it != lv.end() && *it == masked) lv.erase(it);
                }
            }

            for (NodeId po : circuit.outputs()) {
                for (std::int32_t cls : list[po.v]) {
                    auto& first = result.detect_pattern[
                        static_cast<std::size_t>(cls)];
                    if (first < 0) {
                        first = pattern;
                        --undetected;
                    }
                }
            }
            result.patterns_applied = static_cast<std::size_t>(pattern) + 1;
        }
    }

    double covered = 0.0;
    for (std::size_t i = 0; i < faults.size(); ++i)
        if (result.detect_pattern[i] >= 0) covered += faults.class_size[i];
    result.coverage = faults.total_faults > 0
                          ? covered / faults.total_faults
                          : 1.0;
    result.undetected = undetected;
    return result;
}

}  // namespace tpi::fault
