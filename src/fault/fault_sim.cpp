#include "fault/fault_sim.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "netlist/ffr.hpp"
#include "obs/obs.hpp"
#include "sim/logic_sim.hpp"
#include "sim/sim_word.hpp"
#include "sim/simd.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace tpi::fault {

using netlist::Circuit;
using netlist::NodeId;

std::int64_t FaultSimResult::patterns_to_coverage(
    double target, const CollapsedFaults& faults) const {
    // Sort first-detection times and accumulate weighted coverage.
    std::vector<std::pair<std::int64_t, std::uint32_t>> events;
    events.reserve(detect_pattern.size());
    for (std::size_t i = 0; i < detect_pattern.size(); ++i)
        if (detect_pattern[i] >= 0)
            events.emplace_back(detect_pattern[i], faults.class_size[i]);
    std::sort(events.begin(), events.end());
    double covered = 0.0;
    const double total = static_cast<double>(faults.total_faults);
    for (const auto& [pattern, weight] : events) {
        covered += weight;
        if (covered / total >= target) return pattern + 1;
    }
    return -1;
}

namespace {

/// Event-driven single-fault propagation scratch, templated over the
/// simulation word. Each worker lane owns one instance; propagation is
/// a pure function of (injection, good_values) given the shared
/// read-only circuit, so results are independent of which lane runs
/// which fault.
template <class Word>
class FaultPropagatorT {
public:
    using Traits = sim::WordTraits<Word>;

    explicit FaultPropagatorT(const Circuit& circuit)
        : circuit_(circuit),
          fval_(circuit.node_count(), Traits::zero()),
          val_stamp_(circuit.node_count(), 0),
          sched_stamp_(circuit.node_count(), 0),
          bucket_(static_cast<std::size_t>(circuit.depth()) + 1) {
        // Pre-size the hot-loop scratch so steady-state propagation
        // never allocates: the fanin scratch to the widest gate, each
        // level bucket to the number of nodes on that level (the most a
        // cone can schedule there).
        std::size_t max_fanin = 0;
        std::vector<std::size_t> per_level(bucket_.size(), 0);
        for (NodeId v : circuit.all_nodes()) {
            max_fanin = std::max(max_fanin, circuit.fanins(v).size());
            ++per_level[static_cast<std::size_t>(circuit.level(v))];
        }
        fanin_scratch_.reserve(max_fanin);
        for (std::size_t lv = 0; lv < bucket_.size(); ++lv)
            bucket_[lv].reserve(per_level[lv]);
    }

    /// Inject `fault` against the good-machine patterns in
    /// `good_values` and propagate through its fanout cone. Returns the
    /// raw detect word: bit j set iff pattern j exposes the fault at a
    /// primary output (mask with the block's valid-lane mask before
    /// believing it).
    Word propagate(const Fault& fault, std::span<const Word> good_values) {
        return propagate_value(
            fault.node,
            Traits::splat(fault.stuck_at1 ? ~std::uint64_t{0} : 0),
            good_values);
    }

    /// Force node `site` to `injected` and propagate the difference
    /// against the good machine. propagate() is the stuck-at special
    /// case; the FFR batch path injects ~good at a region stem to get
    /// the stem observability mask (bit j = pattern j sensitises the
    /// stem to some output).
    Word propagate_value(NodeId site, const Word& injected,
                         std::span<const Word> good_values) {
        Word detect = Traits::zero();
        const Word initial_diff = injected ^ good_values[site.v];
        ran_ = Traits::any(initial_diff);
        if (!ran_) return detect;

        ++stamp_;
        fval_[site.v] = injected;
        val_stamp_[site.v] = stamp_;
        if (circuit_.is_output(site)) detect |= initial_diff;

        int max_level = circuit_.level(site);
        for (NodeId w : circuit_.fanouts(site)) {
            if (sched_stamp_[w.v] != stamp_) {
                sched_stamp_[w.v] = stamp_;
                const int lv = circuit_.level(w);
                bucket_[static_cast<std::size_t>(lv)].push_back(w.v);
                max_level = std::max(max_level, lv);
            }
        }
        for (int lv = circuit_.level(site) + 1; lv <= max_level; ++lv) {
            auto& nodes = bucket_[static_cast<std::size_t>(lv)];
            for (std::size_t k = 0; k < nodes.size(); ++k) {
                const std::uint32_t g = nodes[k];
                const auto fanins = circuit_.fanins(NodeId{g});
                fanin_scratch_.resize(fanins.size());
                for (std::size_t q = 0; q < fanins.size(); ++q) {
                    const std::uint32_t f = fanins[q].v;
                    fanin_scratch_[q] = (val_stamp_[f] == stamp_)
                                            ? fval_[f]
                                            : good_values[f];
                }
                const Word value = netlist::eval_word_t<Word>(
                    circuit_.type(NodeId{g}), fanin_scratch_);
                fval_[g] = value;
                val_stamp_[g] = stamp_;
                const Word diff = value ^ good_values[g];
                if (!Traits::any(diff)) continue;
                if (circuit_.is_output(NodeId{g})) detect |= diff;
                for (NodeId w : circuit_.fanouts(NodeId{g})) {
                    if (sched_stamp_[w.v] != stamp_) {
                        sched_stamp_[w.v] = stamp_;
                        const int wl = circuit_.level(w);
                        bucket_[static_cast<std::size_t>(wl)].push_back(
                            w.v);
                        max_level = std::max(max_level, wl);
                    }
                }
            }
            nodes.clear();
        }
        return detect;
    }

    /// Faulty value at the region stem `root` for a stuck value
    /// `injected` at `site`, walking the unique in-region path. Inside
    /// a fanout-free region every non-stem node has exactly one fanout,
    /// so the fault effect reaches the stem along one chain whose
    /// off-path fanins are untouched by the fault and keep their good
    /// values — the walk is exact, not an approximation.
    Word lift_to_stem(NodeId site, NodeId root, const Word& injected,
                      std::span<const Word> good_values) {
        Word value = injected;
        NodeId cur = site;
        while (cur.v != root.v) {
            const NodeId parent = circuit_.fanouts(cur)[0];
            const auto fanins = circuit_.fanins(parent);
            fanin_scratch_.resize(fanins.size());
            for (std::size_t q = 0; q < fanins.size(); ++q)
                fanin_scratch_[q] = (fanins[q].v == cur.v)
                                        ? value
                                        : good_values[fanins[q].v];
            value = netlist::eval_word_t<Word>(circuit_.type(parent),
                                               fanin_scratch_);
            cur = parent;
        }
        return value;
    }

    /// Faulty primary-output words of the last propagate() call: the
    /// faulty value where the effect reached, the good value elsewhere.
    void faulty_outputs(std::span<const Word> good_values,
                        std::span<Word> out) const {
        const auto& outputs = circuit_.outputs();
        for (std::size_t o = 0; o < outputs.size(); ++o) {
            const std::uint32_t po = outputs[o].v;
            out[o] = (ran_ && val_stamp_[po] == stamp_) ? fval_[po]
                                                        : good_values[po];
        }
    }

private:
    const Circuit& circuit_;
    std::vector<Word> fval_;
    std::vector<std::uint32_t> val_stamp_;
    std::vector<std::uint32_t> sched_stamp_;
    std::uint32_t stamp_ = 0;
    std::vector<std::vector<std::uint32_t>> bucket_;
    std::vector<Word> fanin_scratch_;
    bool ran_ = false;
};

/// Processing order of the collapsed fault list, cut into contiguous
/// groups. Legacy (per-fault) mode keeps fault-index order sliced at
/// the PR 2 shard boundaries; FFR-batch mode stable-sorts faults by
/// their fanout-free region and cuts one group per region, so a group's
/// faults share one stem observability mask per block. Shards own whole
/// groups, which keeps the batch counter and the per-shard merges
/// independent of the thread count.
struct GroupPlan {
    std::vector<std::uint32_t> order;        ///< fault indices, grouped
    std::vector<std::uint32_t> group_begin;  ///< group g = order
                                             ///< [begin[g], begin[g+1])
    std::vector<NodeId> group_root;  ///< region stem per group (batched)
    bool batched = false;

    std::size_t group_count() const { return group_begin.size() - 1; }
};

GroupPlan make_group_plan(const Circuit& circuit,
                          const CollapsedFaults& faults, bool batched,
                          unsigned threads) {
    GroupPlan plan;
    plan.batched = batched;
    const std::size_t n = faults.size();
    plan.order.resize(n);
    std::iota(plan.order.begin(), plan.order.end(), 0U);
    plan.group_begin.push_back(0);
    if (!batched) {
        const std::size_t count = std::min<std::size_t>(
            n, static_cast<std::size_t>(threads) * 4);
        for (std::size_t s = 0; s < count; ++s) {
            plan.group_begin.push_back(
                static_cast<std::uint32_t>(n * (s + 1) / count));
            plan.group_root.push_back(netlist::kNullNode);
        }
        return plan;
    }
    const netlist::FfrDecomposition ffr = netlist::decompose_ffr(circuit);
    std::stable_sort(plan.order.begin(), plan.order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return ffr.region_of[faults.representatives[a]
                                                  .node.v] <
                                ffr.region_of[faults.representatives[b]
                                                  .node.v];
                     });
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t region =
            ffr.region_of[faults.representatives[plan.order[i]].node.v];
        if (i == 0 ||
            region != ffr.region_of[faults
                                        .representatives[plan.order[i - 1]]
                                        .node.v]) {
            if (i != 0)
                plan.group_begin.push_back(static_cast<std::uint32_t>(i));
            plan.group_root.push_back(ffr.regions[region].root);
        }
    }
    if (n > 0) plan.group_begin.push_back(static_cast<std::uint32_t>(n));
    return plan;
}

/// Contiguous group ranges for the worker shards: legacy mode maps one
/// group per shard (the exact PR 2 layout); batch mode cuts the region
/// groups proportionally. Shards never split a group, so per-(region,
/// block) work — in particular the FfrBatches count — is identical for
/// every thread count.
std::vector<std::pair<std::uint32_t, std::uint32_t>> make_shard_ranges(
    const GroupPlan& plan, unsigned threads) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
    const std::size_t groups = plan.group_count();
    if (groups == 0) return ranges;
    if (!plan.batched) {
        for (std::size_t g = 0; g < groups; ++g)
            ranges.emplace_back(static_cast<std::uint32_t>(g),
                                static_cast<std::uint32_t>(g + 1));
        return ranges;
    }
    const std::size_t count = std::min<std::size_t>(
        groups, static_cast<std::size_t>(threads) * 4);
    for (std::size_t s = 0; s < count; ++s)
        ranges.emplace_back(
            static_cast<std::uint32_t>(groups * s / count),
            static_cast<std::uint32_t>(groups * (s + 1) / count));
    return ranges;
}

/// The width-generic simulation engine. The scalar 64-bit path is the
/// Word = std::uint64_t instantiation of this exact function — there is
/// no separate legacy loop to diverge from.
///
/// Width semantics: the pattern budget is still counted in 64-pattern
/// sub-blocks (blocks64 = ceil(max_patterns / 64)); a wide block
/// consumes kLanes consecutive scalar blocks from the source (lane l =
/// block l), and a partial final wide block draws only its valid lanes
/// and masks the rest out. Detect words per 64-pattern sub-block are
/// therefore identical at every width, which makes detect_pattern,
/// coverage, the per-64-block coverage curve and the active-list
/// evolution width-invariant; only the stop-early / truncation
/// granularity coarsens to wide-block boundaries.
///
/// Determinism across threads: shards own whole groups of the fault
/// order, per-fault results live in per-fault slots, and the per-shard
/// covered-weight fragments are sums of integer class sizes — exact in
/// double — merged in shard-index order, so every completed run is
/// bit-identical to the serial path regardless of thread count.
template <class Word>
FaultSimResult run_engine(const Circuit& circuit,
                          const CollapsedFaults& faults,
                          sim::PatternSource& source,
                          const FaultSimOptions& options, unsigned threads) {
    using Traits = sim::WordTraits<Word>;
    constexpr unsigned kLanes = Traits::kLanes;

    obs::Sink* sink = options.sink;
    obs::Span run_span(sink, "sim/run");
    obs::note_max(sink, obs::Counter::SimWidth, Traits::kBits);

    sim::LogicSimulatorT<Word> good(circuit);

    FaultSimResult result;
    result.sim_width = Traits::kBits;
    result.detect_pattern.assign(faults.size(), -1);
    result.detect_count.assign(faults.size(), 0);

    // One drop target unifies both knobs: drop_after = n-detect target,
    // legacy drop_detected = target 1, neither = never drop.
    const std::uint64_t drop_limit =
        options.drop_after > 0
            ? options.drop_after
            : (options.drop_detected
                   ? 1
                   : std::numeric_limits<std::uint64_t>::max());

    const bool batched = options.ffr_batch && !options.response_observer;
    const GroupPlan plan =
        make_group_plan(circuit, faults, batched, threads);
    const auto ranges = make_shard_ranges(plan, threads);
    const std::size_t shard_count = ranges.size();

    struct Shard {
        std::uint32_t group_lo = 0;
        std::uint32_t group_hi = 0;
        /// Active (not yet dropped) fault indices per owned group.
        std::vector<std::vector<std::uint32_t>> active;
        double block_covered = 0.0;  // exact: sum of integer weights
        std::size_t block_detected = 0;
        std::uint64_t block_dropped = 0;
        /// (first-detect pattern, class weight) of this block's new
        /// detections, for the sub-block curve reconstruction.
        std::vector<std::pair<std::int64_t, std::uint32_t>> block_new;
    };
    std::vector<Shard> shards(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
        shards[s].group_lo = ranges[s].first;
        shards[s].group_hi = ranges[s].second;
        shards[s].active.resize(ranges[s].second - ranges[s].first);
        for (std::uint32_t g = ranges[s].first; g < ranges[s].second; ++g) {
            auto& active = shards[s].active[g - ranges[s].first];
            active.assign(plan.order.begin() + plan.group_begin[g],
                          plan.order.begin() + plan.group_begin[g + 1]);
        }
    }

    // Per-lane private propagation scratch, created lazily on first use.
    std::vector<std::unique_ptr<FaultPropagatorT<Word>>> scratch(
        std::max(1U, threads));

    std::vector<Word> pi_words(circuit.input_count());
    std::vector<std::uint64_t> pack_scratch(circuit.input_count());
    std::vector<Word> faulty_po_words(
        options.response_observer ? circuit.output_count() : 0);

    const std::size_t blocks64 = (options.max_patterns + 63) / 64;
    const std::size_t wide_blocks = (blocks64 + kLanes - 1) / kLanes;
    double covered_weight = 0.0;
    std::size_t undetected_count = faults.size();
    const double total_weight = static_cast<double>(faults.total_faults);
    util::Deadline* deadline = options.deadline;
    std::atomic<bool> expired{false};

    for (std::size_t wb = 0; wb < wide_blocks; ++wb) {
        // Width-independent expiry: poll before paying for a block, so
        // an expired deadline truncates here even when every fault has
        // been dropped (no per-fault poll would run) and the truncation
        // point does not scale with the block width.
        if (deadline != nullptr && deadline->expired()) {
            result.truncated = true;
            break;
        }
        obs::Span block_span(sink, "sim/block");
        const unsigned lanes_valid = static_cast<unsigned>(
            std::min<std::size_t>(kLanes, blocks64 - wb * kLanes));
        sim::next_wide_block<Word>(source, pi_words, pack_scratch,
                                   lanes_valid);
        good.simulate_block(pi_words);
        const auto good_values = good.values();
        const Word valid = sim::word_valid_mask<Word>(lanes_valid);
        const std::int64_t base =
            static_cast<std::int64_t>(wb) * kLanes * 64;

        auto process_shard = [&](std::size_t s, unsigned lane) {
            Shard& shard = shards[s];
            shard.block_covered = 0.0;
            shard.block_detected = 0;
            shard.block_dropped = 0;
            shard.block_new.clear();
            if (!scratch[lane])
                scratch[lane] =
                    std::make_unique<FaultPropagatorT<Word>>(circuit);
            FaultPropagatorT<Word>& prop = *scratch[lane];

            std::uint64_t simulated = 0;
            std::uint64_t batches = 0;
            std::uint64_t dropped = 0;
            bool stop = false;
            for (std::uint32_t g = shard.group_lo;
                 !stop && g < shard.group_hi; ++g) {
                auto& active = shard.active[g - shard.group_lo];
                if (active.empty()) continue;
                // The stem mask pays off once ≥2 faults share it; a
                // lone fault keeps the direct cone propagation (same
                // bits either way).
                const bool use_mask = plan.batched && active.size() > 1;
                const NodeId root = plan.group_root[g];
                Word mask = Traits::zero();
                bool mask_ready = false;
                std::size_t kept = 0;
                for (std::size_t idx = 0; idx < active.size(); ++idx) {
                    // First expiry (from any lane) stops every shard at
                    // its next fault; not-yet-simulated faults stay
                    // active.
                    if (expired.load(std::memory_order_relaxed) ||
                        (deadline != nullptr && deadline->expired())) {
                        expired.store(true, std::memory_order_relaxed);
                        for (std::size_t j = idx; j < active.size(); ++j)
                            active[kept++] = active[j];
                        stop = true;
                        break;
                    }
                    const std::uint32_t fi = active[idx];
                    const Fault& fault = faults.representatives[fi];
                    ++simulated;
                    Word detect;
                    if (use_mask) {
                        const Word injected = Traits::splat(
                            fault.stuck_at1 ? ~std::uint64_t{0} : 0);
                        if (!Traits::any((injected ^
                                          good_values[fault.node.v]) &
                                         valid)) {
                            detect = Traits::zero();
                        } else {
                            if (!mask_ready) {
                                mask = prop.propagate_value(
                                           root, ~good_values[root.v],
                                           good_values) &
                                       valid;
                                mask_ready = true;
                                ++batches;
                            }
                            const Word stem =
                                prop.lift_to_stem(fault.node, root,
                                                  injected, good_values);
                            detect = (stem ^ good_values[root.v]) & mask;
                        }
                    } else {
                        detect =
                            prop.propagate(fault, good_values) & valid;
                        if (options.response_observer) {
                            prop.faulty_outputs(good_values,
                                                faulty_po_words);
                            if constexpr (kLanes == 1)
                                options.response_observer(
                                    fi, wb, faulty_po_words);
                        }
                    }

                    if (Traits::any(detect)) {
                        if (result.detect_pattern[fi] < 0) {
                            result.detect_pattern[fi] =
                                base + Traits::first_bit(detect);
                            shard.block_covered += faults.class_size[fi];
                            ++shard.block_detected;
                            if (options.record_curve)
                                shard.block_new.emplace_back(
                                    result.detect_pattern[fi],
                                    faults.class_size[fi]);
                        }
                        result.detect_count[fi] +=
                            Traits::popcount(detect);
                    }
                    if (result.detect_count[fi] < drop_limit)
                        active[kept++] = fi;
                    else
                        ++dropped;
                }
                active.resize(kept);
            }
            // One batched add per shard per block keeps the hot loop
            // free of atomics; totals match serial execution exactly.
            obs::add(sink, obs::Counter::FaultsSimulated, simulated);
            if (batches != 0)
                obs::add(sink, obs::Counter::FfrBatches, batches);
            if (dropped != 0)
                obs::add(sink, obs::Counter::FaultsDropped, dropped);
            shard.block_dropped = dropped;
        };

        if (threads <= 1) {
            for (std::size_t s = 0; s < shard_count; ++s)
                process_shard(s, 0);
        } else {
            util::ThreadPool::shared().for_each(
                shard_count, threads, [&](std::size_t s, unsigned lane) {
                    // Per-lane work is trace-only (detail): shard
                    // layout depends on the thread count, so it must
                    // stay out of the report's span table.
                    obs::Span shard_span(sink, "sim/shard",
                                         /*detail=*/true);
                    process_shard(s, lane);
                });
        }

        // Deterministic reduction: merge the per-shard fragments in
        // shard-index order (ascending along the fault order, as a
        // serial pass would accumulate them).
        double block_covered = 0.0;
        for (const Shard& shard : shards) {
            block_covered += shard.block_covered;
            undetected_count -= shard.block_detected;
            result.dropped += shard.block_dropped;
        }
        if (expired.load(std::memory_order_relaxed)) {
            covered_weight += block_covered;
            result.truncated = true;
            break;  // partial block: don't count its patterns
        }
        if (options.record_curve) {
            // Re-bucket this block's new detections by 64-pattern
            // sub-block so the curve keeps its per-64-block shape (and
            // its exact values) at every width.
            std::array<double, kLanes> sub{};
            for (const Shard& shard : shards)
                for (const auto& [pattern, weight] : shard.block_new)
                    sub[static_cast<std::size_t>((pattern - base) / 64)] +=
                        weight;
            for (unsigned l = 0; l < lanes_valid; ++l) {
                covered_weight += sub[l];
                result.coverage_curve.push_back(covered_weight /
                                                total_weight);
            }
        } else {
            covered_weight += block_covered;
        }
        obs::add(sink, obs::Counter::SimBlocks, lanes_valid);
        obs::add(sink, obs::Counter::SimPatterns, 64 * lanes_valid);
        result.patterns_applied = (wb * kLanes + lanes_valid) * 64;
        if (options.stop_at_full_coverage && undetected_count == 0) break;
    }

    result.undetected = undetected_count;
    result.coverage =
        total_weight > 0 ? covered_weight / total_weight : 1.0;
    if (result.truncated) obs::add(sink, obs::Counter::DeadlineExpiries);
    return result;
}

}  // namespace

FaultSimResult run_fault_simulation(const Circuit& circuit,
                                    const CollapsedFaults& faults,
                                    sim::PatternSource& source,
                                    const FaultSimOptions& options) {
    unsigned threads = util::ThreadPool::resolve(options.threads);
    // Ordered observer callbacks and fault-free universes have nothing
    // to parallelise over.
    if (options.response_observer || faults.size() == 0) threads = 1;
    unsigned width = options.sim_width;
    if (width == 0) width = sim::preferred_sim_width();
    if (!sim::sim_width_supported(width))
        throw ValidationError(
            "sim_width must be 0 (auto), 64, 128, 256 or 512");
    // The observer contract is 64-pattern blocks with real faulty
    // output words per block.
    if (options.response_observer) width = 64;
    switch (width) {
        case 128:
            return run_engine<sim::SimWord<2>>(circuit, faults, source,
                                               options, threads);
        case 256:
            return run_engine<sim::SimWord<4>>(circuit, faults, source,
                                               options, threads);
        case 512:
            return run_engine<sim::SimWord<8>>(circuit, faults, source,
                                               options, threads);
        default:
            return run_engine<std::uint64_t>(circuit, faults, source,
                                             options, threads);
    }
}

FaultSimResult random_pattern_coverage(const Circuit& circuit,
                                       std::size_t num_patterns,
                                       std::uint64_t seed,
                                       bool record_curve,
                                       util::Deadline* deadline,
                                       unsigned threads, obs::Sink* sink,
                                       unsigned sim_width) {
    const CollapsedFaults faults = collapse_faults(circuit);
    sim::RandomPatternSource source(seed);
    FaultSimOptions options;
    options.max_patterns = num_patterns;
    options.record_curve = record_curve;
    options.deadline = deadline;
    options.threads = threads;
    options.sink = sink;
    options.sim_width = sim_width;
    return run_fault_simulation(circuit, faults, source, options);
}

}  // namespace tpi::fault
