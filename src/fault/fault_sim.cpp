#include "fault/fault_sim.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>

#include "obs/obs.hpp"
#include "sim/logic_sim.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace tpi::fault {

using netlist::Circuit;
using netlist::NodeId;

std::int64_t FaultSimResult::patterns_to_coverage(
    double target, const CollapsedFaults& faults) const {
    // Sort first-detection times and accumulate weighted coverage.
    std::vector<std::pair<std::int64_t, std::uint32_t>> events;
    events.reserve(detect_pattern.size());
    for (std::size_t i = 0; i < detect_pattern.size(); ++i)
        if (detect_pattern[i] >= 0)
            events.emplace_back(detect_pattern[i], faults.class_size[i]);
    std::sort(events.begin(), events.end());
    double covered = 0.0;
    const double total = static_cast<double>(faults.total_faults);
    for (const auto& [pattern, weight] : events) {
        covered += weight;
        if (covered / total >= target) return pattern + 1;
    }
    return -1;
}

namespace {

/// Event-driven single-fault propagation scratch. Each worker lane owns
/// one instance; propagate() is a pure function of (fault, good_values)
/// given the shared read-only circuit, so results are independent of
/// which lane runs which fault.
class FaultPropagator {
public:
    explicit FaultPropagator(const Circuit& circuit)
        : circuit_(circuit),
          fval_(circuit.node_count(), 0),
          val_stamp_(circuit.node_count(), 0),
          sched_stamp_(circuit.node_count(), 0),
          bucket_(static_cast<std::size_t>(circuit.depth()) + 1) {
        // Pre-size the hot-loop scratch so steady-state propagation
        // never allocates: the fanin scratch to the widest gate, each
        // level bucket to the number of nodes on that level (the most a
        // cone can schedule there).
        std::size_t max_fanin = 0;
        std::vector<std::size_t> per_level(bucket_.size(), 0);
        for (NodeId v : circuit.all_nodes()) {
            max_fanin = std::max(max_fanin, circuit.fanins(v).size());
            ++per_level[static_cast<std::size_t>(circuit.level(v))];
        }
        fanin_scratch_.reserve(max_fanin);
        for (std::size_t lv = 0; lv < bucket_.size(); ++lv)
            bucket_[lv].reserve(per_level[lv]);
    }

    /// Inject `fault` against the 64 good-machine patterns in
    /// `good_values` and propagate through its fanout cone. Returns the
    /// detect word: bit j set iff pattern j exposes the fault at a
    /// primary output.
    std::uint64_t propagate(const Fault& fault,
                            std::span<const std::uint64_t> good_values) {
        const NodeId site = fault.node;
        const std::uint64_t stuck =
            fault.stuck_at1 ? ~std::uint64_t{0} : 0;

        std::uint64_t detect = 0;
        const std::uint64_t initial_diff = stuck ^ good_values[site.v];
        ran_ = initial_diff != 0;
        if (initial_diff == 0) return 0;

        ++stamp_;
        fval_[site.v] = stuck;
        val_stamp_[site.v] = stamp_;
        if (circuit_.is_output(site)) detect |= initial_diff;

        int max_level = circuit_.level(site);
        for (NodeId w : circuit_.fanouts(site)) {
            if (sched_stamp_[w.v] != stamp_) {
                sched_stamp_[w.v] = stamp_;
                const int lv = circuit_.level(w);
                bucket_[static_cast<std::size_t>(lv)].push_back(w.v);
                max_level = std::max(max_level, lv);
            }
        }
        for (int lv = circuit_.level(site) + 1; lv <= max_level; ++lv) {
            auto& nodes = bucket_[static_cast<std::size_t>(lv)];
            for (std::size_t k = 0; k < nodes.size(); ++k) {
                const std::uint32_t g = nodes[k];
                const auto fanins = circuit_.fanins(NodeId{g});
                fanin_scratch_.resize(fanins.size());
                for (std::size_t q = 0; q < fanins.size(); ++q) {
                    const std::uint32_t f = fanins[q].v;
                    fanin_scratch_[q] = (val_stamp_[f] == stamp_)
                                            ? fval_[f]
                                            : good_values[f];
                }
                const std::uint64_t value = netlist::eval_word(
                    circuit_.type(NodeId{g}), fanin_scratch_);
                fval_[g] = value;
                val_stamp_[g] = stamp_;
                const std::uint64_t diff = value ^ good_values[g];
                if (diff == 0) continue;
                if (circuit_.is_output(NodeId{g})) detect |= diff;
                for (NodeId w : circuit_.fanouts(NodeId{g})) {
                    if (sched_stamp_[w.v] != stamp_) {
                        sched_stamp_[w.v] = stamp_;
                        const int wl = circuit_.level(w);
                        bucket_[static_cast<std::size_t>(wl)].push_back(
                            w.v);
                        max_level = std::max(max_level, wl);
                    }
                }
            }
            nodes.clear();
        }
        return detect;
    }

    /// Faulty primary-output words of the last propagate() call: the
    /// faulty value where the effect reached, the good value elsewhere.
    void faulty_outputs(std::span<const std::uint64_t> good_values,
                        std::span<std::uint64_t> out) const {
        const auto& outputs = circuit_.outputs();
        for (std::size_t o = 0; o < outputs.size(); ++o) {
            const std::uint32_t po = outputs[o].v;
            out[o] = (ran_ && val_stamp_[po] == stamp_) ? fval_[po]
                                                        : good_values[po];
        }
    }

private:
    const Circuit& circuit_;
    std::vector<std::uint64_t> fval_;
    std::vector<std::uint32_t> val_stamp_;
    std::vector<std::uint32_t> sched_stamp_;
    std::uint32_t stamp_ = 0;
    std::vector<std::vector<std::uint32_t>> bucket_;
    std::vector<std::uint64_t> fanin_scratch_;
    bool ran_ = false;
};

/// The original single-threaded loop, preserved exactly: one pass over
/// the active list per 64-pattern block, deadline polled per fault,
/// ordered response-observer callbacks.
FaultSimResult run_serial(const Circuit& circuit,
                          const CollapsedFaults& faults,
                          sim::PatternSource& source,
                          const FaultSimOptions& options) {
    obs::Sink* sink = options.sink;
    obs::Span run_span(sink, "sim/run");
    sim::LogicSimulator good(circuit);
    FaultPropagator prop(circuit);

    FaultSimResult result;
    result.detect_pattern.assign(faults.size(), -1);

    // Active (not yet detected) fault indices.
    std::vector<std::uint32_t> active(faults.size());
    for (std::uint32_t i = 0; i < active.size(); ++i) active[i] = i;

    std::vector<std::uint64_t> pi_words(circuit.input_count());
    std::vector<std::uint64_t> faulty_po_words(circuit.output_count());

    const std::size_t blocks = (options.max_patterns + 63) / 64;
    double covered_weight = 0.0;
    std::size_t undetected_count = faults.size();
    const double total_weight = static_cast<double>(faults.total_faults);

    for (std::size_t b = 0; b < blocks; ++b) {
        obs::Span block_span(sink, "sim/block");
        source.next_block(pi_words);
        good.simulate_block(pi_words);
        const auto good_values = good.values();
        const std::int64_t base = static_cast<std::int64_t>(b) * 64;

        std::size_t kept = 0;
        std::uint64_t simulated = 0;
        for (std::size_t idx = 0; idx < active.size(); ++idx) {
            if (options.deadline != nullptr &&
                options.deadline->expired()) {
                // Deadline: keep the faults not yet simulated this block
                // active and stop. Detections already recorded stand.
                result.truncated = true;
                for (std::size_t j = idx; j < active.size(); ++j)
                    active[kept++] = active[j];
                break;
            }
            const std::uint32_t fi = active[idx];
            ++simulated;
            const std::uint64_t detect =
                prop.propagate(faults.representatives[fi], good_values);

            if (options.response_observer) {
                prop.faulty_outputs(good_values, faulty_po_words);
                options.response_observer(fi, b, faulty_po_words);
            }

            if (detect != 0 && result.detect_pattern[fi] < 0) {
                result.detect_pattern[fi] =
                    base + std::countr_zero(detect);
                covered_weight += faults.class_size[fi];
                --undetected_count;
            }
            if (detect == 0 || !options.drop_detected) active[kept++] = fi;
        }
        active.resize(kept);
        obs::add(sink, obs::Counter::FaultsSimulated, simulated);
        if (result.truncated) break;  // partial block: don't count it
        obs::add(sink, obs::Counter::SimBlocks);
        obs::add(sink, obs::Counter::SimPatterns, 64);
        result.patterns_applied = (b + 1) * 64;
        if (options.record_curve)
            result.coverage_curve.push_back(covered_weight / total_weight);
        if (options.stop_at_full_coverage && undetected_count == 0) break;
    }

    result.undetected = undetected_count;
    result.coverage =
        total_weight > 0 ? covered_weight / total_weight : 1.0;
    if (result.truncated) obs::add(sink, obs::Counter::DeadlineExpiries);
    return result;
}

/// Fault-partitioned parallel simulation. The collapsed fault list is
/// split into contiguous shards (finer than the lane count, so the
/// work-stealing pool balances uneven cones); each shard owns its slice
/// of the active list across blocks. Per block the good machine is
/// simulated once on the calling thread and its values broadcast
/// read-only; lanes then propagate their shards' active faults with
/// per-lane FaultPropagator scratch.
///
/// Determinism: detect_pattern entries are per-fault (exactly one shard
/// owns a fault), and the per-shard covered-weight fragments are sums of
/// integer class sizes — exact in double — merged in shard-index order,
/// so every completed run is bit-identical to the serial path regardless
/// of thread count or interleaving.
FaultSimResult run_parallel(const Circuit& circuit,
                            const CollapsedFaults& faults,
                            sim::PatternSource& source,
                            const FaultSimOptions& options,
                            unsigned threads) {
    obs::Sink* sink = options.sink;
    obs::Span run_span(sink, "sim/run");
    sim::LogicSimulator good(circuit);

    FaultSimResult result;
    result.detect_pattern.assign(faults.size(), -1);

    // Contiguous shards of the fault list, 4 per lane so stealing can
    // balance shards whose faults die (or drop) at different rates.
    const std::size_t shard_count = std::min<std::size_t>(
        faults.size(), static_cast<std::size_t>(threads) * 4);
    struct Shard {
        std::vector<std::uint32_t> active;
        double block_covered = 0.0;   // exact: sum of integer weights
        std::size_t block_detected = 0;
        bool saw_deadline = false;
    };
    std::vector<Shard> shards(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
        const std::size_t lo = faults.size() * s / shard_count;
        const std::size_t hi = faults.size() * (s + 1) / shard_count;
        shards[s].active.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i)
            shards[s].active.push_back(static_cast<std::uint32_t>(i));
    }

    // Per-lane private propagation scratch, created lazily on first use.
    std::vector<std::unique_ptr<FaultPropagator>> scratch(threads);

    std::vector<std::uint64_t> pi_words(circuit.input_count());

    const std::size_t blocks = (options.max_patterns + 63) / 64;
    double covered_weight = 0.0;
    std::size_t undetected_count = faults.size();
    const double total_weight = static_cast<double>(faults.total_faults);
    util::Deadline* deadline = options.deadline;
    std::atomic<bool> expired{false};

    util::ThreadPool& pool = util::ThreadPool::shared();

    for (std::size_t b = 0; b < blocks; ++b) {
        obs::Span block_span(sink, "sim/block");
        source.next_block(pi_words);
        good.simulate_block(pi_words);
        const auto good_values = good.values();
        const std::int64_t base = static_cast<std::int64_t>(b) * 64;

        pool.for_each(shard_count, threads, [&](std::size_t s,
                                                unsigned lane) {
            // Per-lane work is trace-only (detail): shard layout depends
            // on the thread count, so it must stay out of the report's
            // span table.
            obs::Span shard_span(sink, "sim/shard", /*detail=*/true);
            Shard& shard = shards[s];
            shard.block_covered = 0.0;
            shard.block_detected = 0;
            if (!scratch[lane])
                scratch[lane] =
                    std::make_unique<FaultPropagator>(circuit);
            FaultPropagator& prop = *scratch[lane];

            std::size_t kept = 0;
            std::uint64_t simulated = 0;
            for (std::size_t idx = 0; idx < shard.active.size(); ++idx) {
                // First expiry (from any lane) stops every shard at its
                // next fault; not-yet-simulated faults stay active.
                if (expired.load(std::memory_order_relaxed) ||
                    (deadline != nullptr && deadline->expired())) {
                    expired.store(true, std::memory_order_relaxed);
                    shard.saw_deadline = true;
                    for (std::size_t j = idx; j < shard.active.size();
                         ++j)
                        shard.active[kept++] = shard.active[j];
                    break;
                }
                const std::uint32_t fi = shard.active[idx];
                ++simulated;
                const std::uint64_t detect = prop.propagate(
                    faults.representatives[fi], good_values);
                if (detect != 0 && result.detect_pattern[fi] < 0) {
                    result.detect_pattern[fi] =
                        base + std::countr_zero(detect);
                    shard.block_covered += faults.class_size[fi];
                    ++shard.block_detected;
                }
                if (detect == 0 || !options.drop_detected)
                    shard.active[kept++] = fi;
            }
            shard.active.resize(kept);
            // One batched add per shard per block keeps the hot loop
            // free of atomics; totals match the serial path exactly.
            obs::add(sink, obs::Counter::FaultsSimulated, simulated);
        });

        // Deterministic reduction: merge the per-shard fragments in
        // shard-index order (ascending fault index, as in the serial
        // pass). The fragments are integer-valued, so the sum is exact
        // and independent of the shard/thread layout.
        for (const Shard& shard : shards) {
            covered_weight += shard.block_covered;
            undetected_count -= shard.block_detected;
        }
        if (expired.load(std::memory_order_relaxed)) {
            result.truncated = true;
            break;  // partial block: don't count it
        }
        obs::add(sink, obs::Counter::SimBlocks);
        obs::add(sink, obs::Counter::SimPatterns, 64);
        result.patterns_applied = (b + 1) * 64;
        if (options.record_curve)
            result.coverage_curve.push_back(covered_weight / total_weight);
        if (options.stop_at_full_coverage && undetected_count == 0) break;
    }

    result.undetected = undetected_count;
    result.coverage =
        total_weight > 0 ? covered_weight / total_weight : 1.0;
    if (result.truncated) obs::add(sink, obs::Counter::DeadlineExpiries);
    return result;
}

}  // namespace

FaultSimResult run_fault_simulation(const Circuit& circuit,
                                    const CollapsedFaults& faults,
                                    sim::PatternSource& source,
                                    const FaultSimOptions& options) {
    unsigned threads = util::ThreadPool::resolve(options.threads);
    // Ordered observer callbacks and fault-free universes have nothing
    // to parallelise over.
    if (options.response_observer || faults.size() == 0) threads = 1;
    if (threads <= 1) return run_serial(circuit, faults, source, options);
    return run_parallel(circuit, faults, source, options, threads);
}

FaultSimResult random_pattern_coverage(const Circuit& circuit,
                                       std::size_t num_patterns,
                                       std::uint64_t seed,
                                       bool record_curve,
                                       util::Deadline* deadline,
                                       unsigned threads, obs::Sink* sink) {
    const CollapsedFaults faults = collapse_faults(circuit);
    sim::RandomPatternSource source(seed);
    FaultSimOptions options;
    options.max_patterns = num_patterns;
    options.record_curve = record_curve;
    options.deadline = deadline;
    options.threads = threads;
    options.sink = sink;
    return run_fault_simulation(circuit, faults, source, options);
}

}  // namespace tpi::fault
