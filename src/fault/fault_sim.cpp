#include "fault/fault_sim.hpp"

#include <algorithm>
#include <bit>

#include "sim/logic_sim.hpp"
#include "util/error.hpp"

namespace tpi::fault {

using netlist::Circuit;
using netlist::NodeId;

std::int64_t FaultSimResult::patterns_to_coverage(
    double target, const CollapsedFaults& faults) const {
    // Sort first-detection times and accumulate weighted coverage.
    std::vector<std::pair<std::int64_t, std::uint32_t>> events;
    events.reserve(detect_pattern.size());
    for (std::size_t i = 0; i < detect_pattern.size(); ++i)
        if (detect_pattern[i] >= 0)
            events.emplace_back(detect_pattern[i], faults.class_size[i]);
    std::sort(events.begin(), events.end());
    double covered = 0.0;
    const double total = static_cast<double>(faults.total_faults);
    for (const auto& [pattern, weight] : events) {
        covered += weight;
        if (covered / total >= target) return pattern + 1;
    }
    return -1;
}

FaultSimResult run_fault_simulation(const Circuit& circuit,
                                    const CollapsedFaults& faults,
                                    sim::PatternSource& source,
                                    const FaultSimOptions& options) {
    const std::size_t n = circuit.node_count();
    const int depth = circuit.depth();
    sim::LogicSimulator good(circuit);

    FaultSimResult result;
    result.detect_pattern.assign(faults.size(), -1);

    // Active (not yet detected) fault indices.
    std::vector<std::uint32_t> active(faults.size());
    for (std::uint32_t i = 0; i < active.size(); ++i) active[i] = i;

    // Scratch for event-driven faulty-value propagation.
    std::vector<std::uint64_t> fval(n, 0);
    std::vector<std::uint32_t> val_stamp(n, 0);
    std::vector<std::uint32_t> sched_stamp(n, 0);
    std::uint32_t stamp = 0;
    std::vector<std::vector<std::uint32_t>> bucket(
        static_cast<std::size_t>(depth) + 1);

    std::vector<std::uint64_t> pi_words(circuit.input_count());
    std::vector<std::uint64_t> fanin_scratch;
    std::vector<std::uint64_t> faulty_po_words(circuit.output_count());

    const std::size_t blocks = (options.max_patterns + 63) / 64;
    double covered_weight = 0.0;
    std::size_t undetected_count = faults.size();
    const double total_weight = static_cast<double>(faults.total_faults);

    for (std::size_t b = 0; b < blocks; ++b) {
        source.next_block(pi_words);
        good.simulate_block(pi_words);
        const auto good_values = good.values();
        const std::int64_t base = static_cast<std::int64_t>(b) * 64;

        std::size_t kept = 0;
        for (std::size_t idx = 0; idx < active.size(); ++idx) {
            if (options.deadline != nullptr &&
                options.deadline->expired()) {
                // Deadline: keep the faults not yet simulated this block
                // active and stop. Detections already recorded stand.
                result.truncated = true;
                for (std::size_t j = idx; j < active.size(); ++j)
                    active[kept++] = active[j];
                break;
            }
            const std::uint32_t fi = active[idx];
            const Fault fault = faults.representatives[fi];
            const NodeId site = fault.node;
            const std::uint64_t stuck =
                fault.stuck_at1 ? ~std::uint64_t{0} : 0;

            std::uint64_t detect = 0;
            const std::uint64_t initial_diff = stuck ^ good_values[site.v];
            if (initial_diff != 0) {
                ++stamp;
                fval[site.v] = stuck;
                val_stamp[site.v] = stamp;
                if (circuit.is_output(site)) detect |= initial_diff;

                int max_level = circuit.level(site);
                for (NodeId w : circuit.fanouts(site)) {
                    if (sched_stamp[w.v] != stamp) {
                        sched_stamp[w.v] = stamp;
                        const int lv = circuit.level(w);
                        bucket[static_cast<std::size_t>(lv)].push_back(w.v);
                        max_level = std::max(max_level, lv);
                    }
                }
                for (int lv = circuit.level(site) + 1; lv <= max_level;
                     ++lv) {
                    auto& nodes = bucket[static_cast<std::size_t>(lv)];
                    for (std::size_t k = 0; k < nodes.size(); ++k) {
                        const std::uint32_t g = nodes[k];
                        const auto fanins = circuit.fanins(NodeId{g});
                        fanin_scratch.resize(fanins.size());
                        for (std::size_t q = 0; q < fanins.size(); ++q) {
                            const std::uint32_t f = fanins[q].v;
                            fanin_scratch[q] = (val_stamp[f] == stamp)
                                                   ? fval[f]
                                                   : good_values[f];
                        }
                        const std::uint64_t value = netlist::eval_word(
                            circuit.type(NodeId{g}), fanin_scratch);
                        fval[g] = value;
                        val_stamp[g] = stamp;
                        const std::uint64_t diff = value ^ good_values[g];
                        if (diff == 0) continue;
                        if (circuit.is_output(NodeId{g})) detect |= diff;
                        for (NodeId w : circuit.fanouts(NodeId{g})) {
                            if (sched_stamp[w.v] != stamp) {
                                sched_stamp[w.v] = stamp;
                                const int wl = circuit.level(w);
                                bucket[static_cast<std::size_t>(wl)]
                                    .push_back(w.v);
                                max_level = std::max(max_level, wl);
                            }
                        }
                    }
                    nodes.clear();
                }
            }

            const bool fault_ran = initial_diff != 0;
            if (options.response_observer) {
                const auto& outputs = circuit.outputs();
                for (std::size_t o = 0; o < outputs.size(); ++o) {
                    const std::uint32_t po = outputs[o].v;
                    faulty_po_words[o] =
                        (fault_ran && val_stamp[po] == stamp)
                            ? fval[po]
                            : good_values[po];
                }
                options.response_observer(fi, b, faulty_po_words);
            }

            if (detect != 0 && result.detect_pattern[fi] < 0) {
                result.detect_pattern[fi] =
                    base + std::countr_zero(detect);
                covered_weight += faults.class_size[fi];
                --undetected_count;
            }
            if (detect == 0 || !options.drop_detected) active[kept++] = fi;
        }
        active.resize(kept);
        if (result.truncated) break;  // partial block: don't count it
        result.patterns_applied = (b + 1) * 64;
        if (options.record_curve)
            result.coverage_curve.push_back(covered_weight / total_weight);
        if (options.stop_at_full_coverage && undetected_count == 0) break;
    }

    result.undetected = undetected_count;
    result.coverage =
        total_weight > 0 ? covered_weight / total_weight : 1.0;
    return result;
}

FaultSimResult random_pattern_coverage(const Circuit& circuit,
                                       std::size_t num_patterns,
                                       std::uint64_t seed,
                                       bool record_curve,
                                       util::Deadline* deadline) {
    const CollapsedFaults faults = collapse_faults(circuit);
    sim::RandomPatternSource source(seed);
    FaultSimOptions options;
    options.max_patterns = num_patterns;
    options.record_curve = record_curve;
    options.deadline = deadline;
    return run_fault_simulation(circuit, faults, source, options);
}

}  // namespace tpi::fault
