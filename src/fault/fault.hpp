#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace tpi::fault {

/// A single-stuck-at fault on a net (nets are identified with the node
/// that drives them).
struct Fault {
    netlist::NodeId node = netlist::kNullNode;
    bool stuck_at1 = false;  ///< true: stuck-at-1, false: stuck-at-0

    friend constexpr bool operator==(const Fault&, const Fault&) = default;
};

std::string fault_name(const netlist::Circuit& circuit, const Fault& fault);

/// The uncollapsed single-stuck-at universe: two faults per net, minus the
/// trivially untestable faults on tie cells (Const0 s-a-0, Const1 s-a-1).
std::vector<Fault> all_faults(const netlist::Circuit& circuit);

/// Structurally collapsed fault universe.
///
/// Equivalence collapsing uses the classic gate rules (any AND-input
/// s-a-0 == output s-a-0, OR-input s-a-1 == output s-a-1, the NAND/NOR
/// inverted forms, and both BUF/NOT identities), applied only across nets
/// with a single consumer. Coverage is reported over the *uncollapsed*
/// universe by weighting each representative with its class size.
struct CollapsedFaults {
    std::vector<Fault> representatives;      ///< one fault per class
    std::vector<std::uint32_t> class_size;   ///< members per class
    std::size_t total_faults = 0;            ///< uncollapsed universe size

    /// (node, stuck value) -> index into representatives, or -1 if the
    /// fault is not part of the universe (trivially untestable).
    std::vector<std::int32_t> class_of;

    std::size_t size() const { return representatives.size(); }

    std::int32_t class_index(const Fault& fault) const {
        return class_of[2 * fault.node.v + (fault.stuck_at1 ? 1 : 0)];
    }
};

CollapsedFaults collapse_faults(const netlist::Circuit& circuit);

/// The uncollapsed universe in CollapsedFaults form: one singleton class
/// per fault of all_faults().
///
/// Planners optimise over this universe rather than the collapsed one:
/// structural equivalence is only valid for the circuit it was computed
/// on, and inserting a test point (an observation point adds a fanout,
/// a control point adds a gate) breaks equivalences that cross it — a
/// class scored at its representative would then misprice its other
/// members. Fault *simulation* collapses internally on the final netlist,
/// where the equivalences do hold.
CollapsedFaults singleton_faults(const netlist::Circuit& circuit);

}  // namespace tpi::fault
