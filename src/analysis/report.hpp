#pragma once

#include <iosfwd>
#include <string>

#include "analysis/analysis.hpp"
#include "analysis/prune.hpp"

namespace tpi::analysis {

/// Human-readable summary of one analysis run: headline counts, the
/// learned constants, the untestable faults, sample implication rows,
/// and the certificate inventory.
void write_text(std::ostream& os, const AnalysisResult& result,
                const ObservePruning& pruning,
                const netlist::Circuit& circuit);

/// Machine-readable form of the same facts (stable key order, suitable
/// for goldens). Certificates are serialised in full so a consumer can
/// replay them independently.
void write_json(std::ostream& os, const AnalysisResult& result,
                const ObservePruning& pruning,
                const netlist::Circuit& circuit);

std::string to_text(const AnalysisResult& result,
                    const ObservePruning& pruning,
                    const netlist::Circuit& circuit);
std::string to_json(const AnalysisResult& result,
                    const ObservePruning& pruning,
                    const netlist::Circuit& circuit);

}  // namespace tpi::analysis
