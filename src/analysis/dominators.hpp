#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"

namespace tpi::analysis {

/// Post-dominator tree of the circuit DAG, rooted at a virtual sink
/// placed above the primary outputs: gate d post-dominates net v when
/// every path from v to every primary output passes through d. These
/// are the "fanout dominators" of classical ATPG — the gates a fault
/// effect on v must cross, which is what makes unique-sensitisation
/// side inputs mandatory assignments (see implications.hpp).
///
/// Flat-array representation: `idom` holds the immediate post-dominator
/// of each node as a raw index, with kSink for nodes whose only common
/// post-dominator is the virtual sink (primary outputs, and stems whose
/// branches reconverge only "at infinity") and kUnreachable for nodes
/// with no path to any output (dead logic). Built iteratively in one
/// reverse-topological pass (Cooper-Harvey-Kennedy; a single pass
/// converges on a DAG), no recursion, no per-node allocation.
struct DominatorTree {
    static constexpr std::uint32_t kSink = UINT32_MAX - 1;
    static constexpr std::uint32_t kUnreachable = UINT32_MAX;

    /// Immediate post-dominator of each node (kSink / kUnreachable as
    /// above). Indexed by NodeId::v.
    std::vector<std::uint32_t> idom;

    /// Processing rank: rank[v] strictly decreases along every idom
    /// chain (the sink has the smallest rank of all), which is what
    /// makes dominates() a simple bounded upward walk.
    std::vector<std::uint32_t> rank;

    bool reachable(netlist::NodeId v) const {
        return idom[v.v] != kUnreachable;
    }

    /// True when `dom` post-dominates `v` (reflexive: every node
    /// post-dominates itself). False whenever either node is dead.
    bool dominates(netlist::NodeId dom, netlist::NodeId v) const;

    /// The strict post-dominator chain of v — idom(v), idom(idom(v)),
    /// ... — up to (excluding) the virtual sink. Empty for dead nodes
    /// and for nodes whose immediate post-dominator is the sink.
    std::vector<netlist::NodeId> chain(netlist::NodeId v) const;
};

DominatorTree compute_post_dominators(const netlist::Circuit& circuit);

}  // namespace tpi::analysis
