#include "analysis/dominators.hpp"

#include "util/error.hpp"

namespace tpi::analysis {

using netlist::Circuit;
using netlist::NodeId;

bool DominatorTree::dominates(NodeId dom, NodeId v) const {
    if (!reachable(dom) || !reachable(v)) return false;
    std::uint32_t cur = v.v;
    while (cur != kSink) {
        if (cur == dom.v) return true;
        cur = idom[cur];
    }
    return false;
}

std::vector<NodeId> DominatorTree::chain(NodeId v) const {
    std::vector<NodeId> out;
    if (!reachable(v)) return out;
    for (std::uint32_t cur = idom[v.v]; cur != kSink; cur = idom[cur])
        out.push_back(NodeId{cur});
    return out;
}

DominatorTree compute_post_dominators(const Circuit& circuit) {
    const std::size_t n = circuit.node_count();
    DominatorTree tree;
    tree.idom.assign(n, DominatorTree::kUnreachable);
    tree.rank.assign(n, 0);

    // Post-dominators of the DAG are dominators of the edge-reversed
    // graph with the virtual sink as entry; the circuit's reverse
    // topological order is a topological order of that reversed graph,
    // so one intersect pass over it computes the fixpoint directly
    // (every reversed-graph predecessor — an original fanout consumer,
    // or the sink for primary outputs — is finalised before its node).
    const auto& topo = circuit.topo_order();
    std::uint32_t next_rank = 1;  // rank 0 is the virtual sink

    // intersect() walks both arguments up their idom chains until they
    // meet; rank strictly decreases along every chain, so the walk is
    // bounded by the chain lengths.
    const auto rank_of = [&](std::uint32_t v) {
        return v == DominatorTree::kSink ? 0U : tree.rank[v];
    };
    const auto intersect = [&](std::uint32_t a, std::uint32_t b) {
        while (a != b) {
            while (rank_of(a) > rank_of(b)) a = tree.idom[a];
            while (rank_of(b) > rank_of(a)) b = tree.idom[b];
        }
        return a;
    };

    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId v = *it;
        tree.rank[v.v] = next_rank++;
        std::uint32_t dom = DominatorTree::kUnreachable;
        if (circuit.is_output(v)) dom = DominatorTree::kSink;
        for (NodeId g : circuit.fanouts(v)) {
            const std::uint32_t gd = tree.idom[g.v];
            if (gd == DominatorTree::kUnreachable) continue;  // dead branch
            // g itself post-dominates v via this edge; fold it in.
            dom = dom == DominatorTree::kUnreachable ? g.v
                                                     : intersect(dom, g.v);
        }
        tree.idom[v.v] = dom;
    }
    return tree;
}

}  // namespace tpi::analysis
