#include "analysis/certificate.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/ternary.hpp"
#include "testability/cop.hpp"
#include "util/error.hpp"

namespace tpi::analysis {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

std::string_view cert_kind_name(CertKind kind) {
    switch (kind) {
        case CertKind::UntestableFault: return "untestable-fault";
        case CertKind::ConstantNet: return "constant-net";
        case CertKind::TransparentChain: return "transparent-chain";
        case CertKind::ObsBound: return "obs-bound";
    }
    return "?";
}

namespace {

/// Fanout cone membership of `root` (inclusive), as a flat mask.
std::vector<bool> fanout_cone(const Circuit& circuit, NodeId root) {
    std::vector<bool> in_cone(circuit.node_count(), false);
    std::vector<NodeId> stack{root};
    in_cone[root.v] = true;
    while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        for (NodeId g : circuit.fanouts(v)) {
            if (in_cone[g.v]) continue;
            in_cone[g.v] = true;
            stack.push_back(g);
        }
    }
    return in_cone;
}

/// Best-fanin sensitisation factor of a post-dominator gate: the
/// largest probability any single entry into `gate` propagates. 1.0 for
/// gates without a controlling value (Buf/Not/Xor/Xnor pass changes
/// unconditionally).
double gate_factor_upper(const Circuit& circuit, NodeId gate,
                         std::span<const double> c1) {
    if (!netlist::has_controlling_value(circuit.type(gate))) return 1.0;
    double best = 0.0;
    const auto fanins = circuit.fanins(gate);
    for (std::size_t slot = 0; slot < fanins.size(); ++slot)
        best = std::max(best, testability::sensitization_probability(
                                  circuit, gate, slot, c1));
    return best;
}

CertCheck fail(std::string detail) { return {false, std::move(detail)}; }

/// Discharge one constant lemma: its opposite must propagate to a
/// conflict against the engine as refined so far; the lemma then joins
/// the base for the lemmas and replays after it.
bool discharge_lemma(ImplicationEngine& engine, const Literal& lemma,
                     std::size_t max_steps, CertCheck& failure) {
    const Literal opposite[] = {{lemma.node, !lemma.value}};
    const ImplicationResult r = engine.propagate(opposite, max_steps);
    if (r.capped) {
        failure = fail("lemma replay hit the step cap");
        return false;
    }
    if (!r.conflict) {
        failure = fail("constant lemma does not replay to a conflict");
        return false;
    }
    engine.refine_base(lemma);
    return true;
}

}  // namespace

double dominator_obs_upper(const Circuit& circuit,
                           const DominatorTree& dominators, NodeId v,
                           std::span<const double> c1) {
    double upper = 1.0;
    for (NodeId d : dominators.chain(v))
        upper *= gate_factor_upper(circuit, d, c1);
    return upper;
}

std::vector<Literal> mandatory_assignments(const Circuit& circuit,
                                           const DominatorTree& dominators,
                                           const fault::Fault& f) {
    std::vector<Literal> mandatory;
    mandatory.push_back({f.node, !f.stuck_at1});  // activation
    if (!dominators.reachable(f.node)) return mandatory;

    const std::vector<bool> in_cone = fanout_cone(circuit, f.node);
    // seen[2v + b]: literal (v, b) already required.
    std::vector<bool> seen(2 * circuit.node_count(), false);
    seen[2 * f.node.v + (f.stuck_at1 ? 0 : 1)] = true;

    for (NodeId d : dominators.chain(f.node)) {
        const GateType type = circuit.type(d);
        if (!netlist::has_controlling_value(type)) continue;
        // Side inputs outside the fault cone carry equal fault-free and
        // faulty values, so non-controlling there is mandatory for the
        // effect to cross this gate (unique sensitisation).
        const bool non_controlling = !netlist::controlling_value(type);
        for (NodeId s : circuit.fanins(d)) {
            if (in_cone[s.v]) continue;
            const std::size_t key = 2 * s.v + (non_controlling ? 1 : 0);
            if (seen[key]) continue;
            seen[key] = true;
            mandatory.push_back({s, non_controlling});
        }
    }
    return mandatory;
}

CertCheck check_certificate(const Circuit& circuit, const Certificate& cert,
                            std::size_t max_steps) {
    const std::size_t n = circuit.node_count();
    if (cert.node.v >= n) return fail("subject node out of range");
    for (const Literal& a : cert.assumptions)
        if (a.node.v >= n) return fail("assumption node out of range");
    for (NodeId v : cert.chain)
        if (v.v >= n) return fail("chain node out of range");

    switch (cert.kind) {
        case CertKind::ConstantNet: {
            // The proof script ends with the refuted opposite literal;
            // everything before it is a constant lemma discharged in
            // order against the progressively refined engine.
            if (cert.assumptions.empty())
                return fail("empty proof script proves nothing");
            const Literal last = cert.assumptions.back();
            if (last.node != cert.node || last.value == cert.value)
                return fail("proof script must end with the refuted "
                            "opposite literal");
            ImplicationEngine engine(circuit, propagate_constants(circuit));
            CertCheck failure;
            for (std::size_t i = 0; i + 1 < cert.assumptions.size(); ++i) {
                const Literal& lemma = cert.assumptions[i];
                if (!discharge_lemma(engine, lemma, max_steps, failure))
                    return failure;
            }
            const Literal refuted[] = {last};
            const ImplicationResult r =
                engine.propagate(refuted, max_steps);
            if (r.capped) return fail("replay hit the step cap");
            if (!r.conflict) return fail("replay found no conflict");
            return {true, {}};
        }
        case CertKind::UntestableFault: {
            if (cert.fault.node != cert.node)
                return fail("fault site does not match subject node");
            if (cert.assumptions.empty())
                return fail("empty proof script proves nothing");
            // Split the script: mandatory assignments are collected for
            // the final replay, anything else must discharge as a
            // constant lemma. A test vector satisfies every mandatory
            // assignment in the fault-free circuit and every lemma holds
            // under all input assignments, so a conflict rules out every
            // test vector.
            const DominatorTree dominators =
                compute_post_dominators(circuit);
            const std::vector<Literal> mandatory =
                mandatory_assignments(circuit, dominators, cert.fault);
            ImplicationEngine engine(circuit, propagate_constants(circuit));
            std::vector<Literal> asserted;
            CertCheck failure;
            for (const Literal& a : cert.assumptions) {
                if (std::find(mandatory.begin(), mandatory.end(), a) !=
                    mandatory.end()) {
                    asserted.push_back(a);
                } else if (!discharge_lemma(engine, a, max_steps,
                                            failure)) {
                    return failure;
                }
            }
            if (asserted.empty())
                return fail("proof script asserts no mandatory "
                            "assignment of the fault");
            const ImplicationResult r =
                engine.propagate(asserted, max_steps);
            if (r.capped) return fail("replay hit the step cap");
            if (!r.conflict) return fail("replay found no conflict");
            return {true, {}};
        }
        case CertKind::TransparentChain: {
            if (cert.chain.empty() || cert.chain.front() != cert.node)
                return fail("chain must start at the subject node");
            if (!circuit.is_output(cert.chain.back()))
                return fail("chain must end at a primary output");
            const testability::CopResult cop =
                testability::compute_cop(circuit);
            for (std::size_t i = 0; i + 1 < cert.chain.size(); ++i) {
                const NodeId a = cert.chain[i];
                const NodeId b = cert.chain[i + 1];
                const auto fanins = circuit.fanins(b);
                bool transparent = false;
                for (std::size_t slot = 0;
                     slot < fanins.size() && !transparent; ++slot)
                    transparent =
                        fanins[slot] == a &&
                        testability::sensitization_probability(
                            circuit, b, slot, cop.c1) == 1.0;
                if (!transparent)
                    return fail("chain step is not a fanout edge with "
                                "sensitisation factor exactly 1.0");
            }
            // The conclusion the planners rely on, re-derived directly:
            // observability along the chain multiplies only exact 1.0
            // factors into the output's exact 1.0.
            if (cop.obs[cert.node.v] != 1.0)
                return fail("COP observability at the subject node is "
                            "not exactly 1.0");
            return {true, {}};
        }
        case CertKind::ObsBound: {
            const testability::CopResult cop =
                testability::compute_cop(circuit);
            const DominatorTree dominators =
                compute_post_dominators(circuit);
            // Upper: every output path crosses every post-dominator, so
            // the best-fanin factors of the chain bound obs from above.
            const double upper = dominator_obs_upper(
                circuit, dominators, cert.node, cop.c1);
            // Lower: the witness path's product is attained by COP.
            if (cert.chain.empty() || cert.chain.front() != cert.node)
                return fail("witness path must start at the subject node");
            if (!circuit.is_output(cert.chain.back()))
                return fail("witness path must end at a primary output");
            double lower = 1.0;
            for (std::size_t i = cert.chain.size() - 1; i-- > 0;) {
                const NodeId a = cert.chain[i];
                const NodeId b = cert.chain[i + 1];
                const auto fanins = circuit.fanins(b);
                double best = -1.0;
                for (std::size_t slot = 0; slot < fanins.size(); ++slot)
                    if (fanins[slot] == a)
                        best = std::max(
                            best, testability::sensitization_probability(
                                      circuit, b, slot, cop.c1));
                if (best < 0.0)
                    return fail("witness path step is not a fanout edge");
                lower *= best;
            }
            constexpr double kTol = 1e-12;
            if (std::abs(upper - cert.upper) > kTol)
                return fail("upper bound does not match the dominator "
                            "chain product");
            if (cert.lower > lower + kTol)
                return fail("claimed lower bound exceeds the witness "
                            "path product");
            const double obs = cop.obs[cert.node.v];
            if (obs > cert.upper + kTol || cert.lower > obs + kTol)
                return fail("COP observability escapes the claimed "
                            "bounds");
            return {true, {}};
        }
    }
    return fail("unknown certificate kind");
}

}  // namespace tpi::analysis
