#include "analysis/ternary.hpp"

#include "util/error.hpp"

namespace tpi::analysis {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

std::string_view ternary_name(Ternary value) {
    switch (value) {
        case Ternary::Zero: return "0";
        case Ternary::One: return "1";
        case Ternary::X: return "X";
    }
    return "?";
}

namespace {

Ternary invert(Ternary value) {
    if (value == Ternary::X) return Ternary::X;
    return value == Ternary::One ? Ternary::Zero : Ternary::One;
}

/// n-ary AND with dominance: any 0 decides, all 1 decides, else X.
Ternary reduce_and(std::span<const Ternary> inputs) {
    bool saw_x = false;
    for (Ternary v : inputs) {
        if (v == Ternary::Zero) return Ternary::Zero;
        if (v == Ternary::X) saw_x = true;
    }
    return saw_x ? Ternary::X : Ternary::One;
}

Ternary reduce_or(std::span<const Ternary> inputs) {
    bool saw_x = false;
    for (Ternary v : inputs) {
        if (v == Ternary::One) return Ternary::One;
        if (v == Ternary::X) saw_x = true;
    }
    return saw_x ? Ternary::X : Ternary::Zero;
}

Ternary reduce_xor(std::span<const Ternary> inputs) {
    bool parity = false;
    for (Ternary v : inputs) {
        if (v == Ternary::X) return Ternary::X;
        parity ^= (v == Ternary::One);
    }
    return to_ternary(parity);
}

}  // namespace

Ternary eval_ternary(GateType type, std::span<const Ternary> inputs) {
    switch (type) {
        case GateType::Const0: return Ternary::Zero;
        case GateType::Const1: return Ternary::One;
        case GateType::Buf: return inputs[0];
        case GateType::Not: return invert(inputs[0]);
        case GateType::And: return reduce_and(inputs);
        case GateType::Nand: return invert(reduce_and(inputs));
        case GateType::Or: return reduce_or(inputs);
        case GateType::Nor: return invert(reduce_or(inputs));
        case GateType::Xor: return reduce_xor(inputs);
        case GateType::Xnor: return invert(reduce_xor(inputs));
        case GateType::Input: break;
    }
    throw Error("eval_ternary: sources have no gate function");
}

std::vector<Ternary> evaluate_ternary(const Circuit& circuit,
                                      std::span<const Ternary> input_values) {
    require(input_values.size() == circuit.input_count(),
            "evaluate_ternary: one value per primary input required");
    std::vector<Ternary> value(circuit.node_count(), Ternary::X);
    for (std::size_t i = 0; i < circuit.input_count(); ++i)
        value[circuit.inputs()[i].v] = input_values[i];

    std::vector<Ternary> scratch;
    for (NodeId v : circuit.topo_order()) {
        const GateType type = circuit.type(v);
        if (type == GateType::Input) continue;
        if (type == GateType::Const0) {
            value[v.v] = Ternary::Zero;
            continue;
        }
        if (type == GateType::Const1) {
            value[v.v] = Ternary::One;
            continue;
        }
        scratch.clear();
        for (NodeId f : circuit.fanins(v)) scratch.push_back(value[f.v]);
        value[v.v] = eval_ternary(type, scratch);
    }
    return value;
}

std::vector<Ternary> propagate_constants(const Circuit& circuit) {
    const std::vector<Ternary> all_x(circuit.input_count(), Ternary::X);
    return evaluate_ternary(circuit, all_x);
}

namespace {

/// Can a value change on fanin `via` of `gate` propagate through the
/// gate, given the proven constants? For AND/NAND/OR/NOR the change is
/// blocked exactly when some *other* fanin is a proven controlling
/// constant; XOR-family and Buf/Not gates never block. Conservative
/// towards "sensitisable": multiple occurrences of `via` itself (e.g.
/// XOR(v, v), whose changes cancel) are still reported sensitisable, so
/// a false here is always a proof of blockage.
bool edge_sensitisable(const Circuit& circuit, NodeId gate, NodeId via,
                       std::span<const Ternary> value) {
    const GateType type = circuit.type(gate);
    if (!netlist::has_controlling_value(type)) return true;
    const Ternary controlling =
        to_ternary(netlist::controlling_value(type));
    for (NodeId f : circuit.fanins(gate)) {
        if (f == via) continue;
        if (value[f.v] == controlling) return false;
    }
    return true;
}

}  // namespace

std::vector<bool> observable_mask(const Circuit& circuit,
                                  std::span<const Ternary> value) {
    require(value.size() == circuit.node_count(),
            "observable_mask: one ternary value per node required");
    std::vector<bool> observable(circuit.node_count(), false);
    const auto& topo = circuit.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId v = *it;
        if (circuit.is_output(v)) {
            observable[v.v] = true;
            continue;
        }
        for (NodeId g : circuit.fanouts(v)) {
            if (observable[g.v] &&
                edge_sensitisable(circuit, g, v, value)) {
                observable[v.v] = true;
                break;
            }
        }
    }
    return observable;
}

}  // namespace tpi::analysis
