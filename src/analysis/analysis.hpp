#pragma once

#include <cstdint>
#include <vector>

#include "analysis/certificate.hpp"
#include "analysis/dominators.hpp"
#include "analysis/implications.hpp"
#include "analysis/ternary.hpp"
#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "obs/obs.hpp"
#include "util/deadline.hpp"

namespace tpi::analysis {

/// Work caps and plumbing for one whole-netlist analysis run. All caps
/// are validated centrally by validate_analysis_options (ValidationError
/// on violation — no silent clamping).
struct AnalysisOptions {
    /// Nets probed for failed-assumption (FIRE-style) constants: the
    /// first max_implication_nodes non-constant nets in topological
    /// order, both polarities each. Hitting the cap sets `truncated`.
    std::size_t max_implication_nodes = 2048;

    /// Gate-examination budget per implication query (probe or fault
    /// replay); a capped query is discarded as inconclusive.
    std::size_t max_implication_steps = 200'000;

    /// Faults probed for untestability, in fault-universe order.
    /// Hitting the cap sets `truncated`.
    std::size_t max_untestable_faults = 4096;

    /// Certificates retained in the result (dropping certificates never
    /// drops the facts themselves).
    std::size_t max_certificates = 64;

    /// Optional cooperative budget (not owned), polled between probes;
    /// expiry returns the facts derived so far with `truncated` set.
    util::Deadline* deadline = nullptr;

    /// Optional observability sink (not owned): an "analysis/run" span
    /// with dominators/implications/faults/bounds child spans, plus the
    /// ImplicationsLearned / FaultsProvedUntestable counters.
    obs::Sink* sink = nullptr;
};

/// Throws tpi::ValidationError (CLI exit 4) for unusable caps.
void validate_analysis_options(const AnalysisOptions& options);

/// The static implication database: for each probed literal, the
/// literals it forces, in CSR form. Row r covers probed[r]; its implied
/// literals are implied[offset[r] .. offset[r+1]).
struct ImplicationDb {
    std::vector<Literal> probed;
    std::vector<std::uint32_t> offset{0};
    std::vector<Literal> implied;

    std::size_t rows() const { return probed.size(); }
    std::span<const Literal> row(std::size_t r) const {
        return {implied.data() + offset[r], offset[r + 1] - offset[r]};
    }
};

/// Everything one analysis run derived. Facts are sound regardless of
/// `truncated` (caps only make the result less complete, never wrong).
struct AnalysisResult {
    DominatorTree dominators;

    /// Proven constants: propagate_constants refined with every learned
    /// failed-assumption constant.
    std::vector<Ternary> constants;

    /// Constants found only by failed-assumption probing (each also has
    /// a ConstantNet certificate while the cap allows).
    std::vector<Literal> learned_constants;

    /// The implication database over the probed literals.
    ImplicationDb implications;

    /// Faults whose mandatory assignments conflict — structurally
    /// untestable, each PODEM-redundant on the same circuit.
    std::vector<fault::Fault> untestable;

    /// COP observability bounds per node, from the post-dominator chain
    /// (upper) and a concrete witness path (lower).
    std::vector<double> obs_upper;
    std::vector<double> obs_lower;

    /// Machine-checkable certificates for the facts above, capped at
    /// AnalysisOptions::max_certificates.
    std::vector<Certificate> certificates;

    /// Total implied literals stored in the database.
    std::size_t implications_learned = 0;

    /// A cap or the deadline cut probing short.
    bool truncated = false;
};

/// Run the whole-netlist static analysis: post-dominator tree, ternary
/// constant base, failed-assumption constant learning, the implication
/// database, mandatory-assignment untestability probing, and COP
/// observability bounds.
AnalysisResult run_analysis(const netlist::Circuit& circuit,
                            const AnalysisOptions& options = {});

}  // namespace tpi::analysis
