#include "analysis/analysis.hpp"

#include "testability/cop.hpp"
#include "util/error.hpp"

namespace tpi::analysis {

using netlist::Circuit;
using netlist::NodeId;

void validate_analysis_options(const AnalysisOptions& options) {
    if (options.max_implication_steps == 0)
        throw ValidationError(
            "analysis options: max_implication_steps must be positive "
            "(a zero budget cannot run any implication query)");
}

namespace {

/// Extract the COP argmax path from `v` to a primary output: at each
/// step follow the fanout edge whose contribution is bitwise equal to
/// the node's observability (one exists by construction — obs is the
/// max over exactly these products). The product along the path,
/// multiplied in the same order COP multiplied it, is exactly obs[v].
std::vector<NodeId> witness_path(const Circuit& circuit,
                                 const testability::CopResult& cop,
                                 NodeId v) {
    std::vector<NodeId> path{v};
    NodeId cur = v;
    while (!circuit.is_output(cur)) {
        NodeId next = netlist::kNullNode;
        for (NodeId g : circuit.fanouts(cur)) {
            const auto fanins = circuit.fanins(g);
            for (std::size_t slot = 0; slot < fanins.size(); ++slot) {
                if (fanins[slot] != cur) continue;
                const double through =
                    cop.obs[g.v] *
                    testability::sensitization_probability(circuit, g,
                                                           slot, cop.c1);
                if (through == cop.obs[cur.v]) {
                    next = g;
                    break;
                }
            }
            if (next.valid()) break;
        }
        if (!next.valid()) return {};  // obs 0 with no attaining edge
        path.push_back(next);
        cur = next;
    }
    return path;
}

}  // namespace

AnalysisResult run_analysis(const Circuit& circuit,
                            const AnalysisOptions& options) {
    validate_analysis_options(options);
    obs::Sink* sink = options.sink;
    obs::Span run_span(sink, "analysis/run");

    AnalysisResult result;
    bool deadline_expired = false;
    const auto expired = [&] {
        if (options.deadline != nullptr && options.deadline->expired()) {
            deadline_expired = true;
            result.truncated = true;
            return true;
        }
        return false;
    };

    {
        obs::Span span(sink, "analysis/dominators");
        result.dominators = compute_post_dominators(circuit);
    }
    result.constants = propagate_constants(circuit);

    // Failed-assumption constant learning + the implication database.
    // The engine is refined with each learned constant, so later probes
    // (and the fault replays below) start from the strongest base; the
    // certificates carry the earlier constants as an ordered lemma
    // chain, which is exactly how the checker replays them.
    ImplicationEngine engine(circuit, result.constants);
    {
        obs::Span span(sink, "analysis/implications");
        std::size_t probed_nodes = 0;
        for (NodeId v : circuit.topo_order()) {
            if (expired()) break;
            if (is_defined(engine.base()[v.v])) continue;
            if (probed_nodes >= options.max_implication_nodes) {
                result.truncated = true;
                break;
            }
            ++probed_nodes;
            for (const bool b : {false, true}) {
                if (is_defined(engine.base()[v.v])) break;  // learned
                const Literal probe[] = {{v, b}};
                const ImplicationResult r = engine.propagate(
                    probe, options.max_implication_steps);
                if (r.capped) {
                    result.truncated = true;
                    continue;
                }
                if (r.conflict) {
                    // v = b is unsatisfiable, so v is constant !b.
                    const Literal learned{v, !b};
                    if (result.certificates.size() <
                        options.max_certificates) {
                        Certificate cert;
                        cert.kind = CertKind::ConstantNet;
                        cert.node = v;
                        cert.value = learned.value;
                        cert.assumptions = result.learned_constants;
                        cert.assumptions.push_back({v, b});
                        result.certificates.push_back(std::move(cert));
                    }
                    result.learned_constants.push_back(learned);
                    engine.refine_base(learned);
                    result.constants[v.v] = to_ternary(learned.value);
                } else if (!r.implied.empty()) {
                    result.implications.probed.push_back({v, b});
                    result.implications.implied.insert(
                        result.implications.implied.end(),
                        r.implied.begin(), r.implied.end());
                    result.implications.offset.push_back(
                        static_cast<std::uint32_t>(
                            result.implications.implied.size()));
                    result.implications_learned += r.implied.size();
                }
            }
        }
    }

    // Mandatory-assignment untestability probing over the standard
    // fault universe.
    {
        obs::Span span(sink, "analysis/faults");
        const std::vector<fault::Fault> universe =
            fault::all_faults(circuit);
        std::size_t probes = 0;
        for (const fault::Fault& f : universe) {
            if (expired()) break;
            if (probes >= options.max_untestable_faults) {
                result.truncated = true;
                break;
            }
            ++probes;
            const std::vector<Literal> mandatory = mandatory_assignments(
                circuit, result.dominators, f);
            const ImplicationResult r =
                engine.propagate(mandatory, options.max_implication_steps);
            if (r.capped) {
                result.truncated = true;
                continue;
            }
            if (!r.conflict) continue;
            result.untestable.push_back(f);
            if (result.certificates.size() < options.max_certificates) {
                Certificate cert;
                cert.kind = CertKind::UntestableFault;
                cert.node = f.node;
                cert.fault = f;
                cert.assumptions = result.learned_constants;
                cert.assumptions.insert(cert.assumptions.end(),
                                        mandatory.begin(),
                                        mandatory.end());
                result.certificates.push_back(std::move(cert));
            }
        }
    }

    // COP observability bounds: dominator-chain upper bounds plus the
    // attained witness-path lower bounds.
    {
        obs::Span span(sink, "analysis/bounds");
        const testability::CopResult cop = testability::compute_cop(circuit);
        const std::size_t n = circuit.node_count();
        result.obs_upper.assign(n, 1.0);
        result.obs_lower.assign(n, 0.0);
        for (NodeId v : circuit.topo_order()) {
            if (!result.dominators.reachable(v)) {
                result.obs_upper[v.v] = 0.0;
                continue;
            }
            result.obs_upper[v.v] = dominator_obs_upper(
                circuit, result.dominators, v, cop.c1);
            result.obs_lower[v.v] = cop.obs[v.v];
        }
        // A few ObsBound certificates for nodes whose dominator chain
        // actually constrains them (upper < 1), in topological order.
        for (NodeId v : circuit.topo_order()) {
            if (result.certificates.size() >= options.max_certificates)
                break;
            if (!result.dominators.reachable(v)) continue;
            if (result.obs_upper[v.v] >= 1.0) continue;
            std::vector<NodeId> path = witness_path(circuit, cop, v);
            if (path.empty()) continue;
            Certificate cert;
            cert.kind = CertKind::ObsBound;
            cert.node = v;
            cert.chain = std::move(path);
            cert.lower = result.obs_lower[v.v];
            cert.upper = result.obs_upper[v.v];
            result.certificates.push_back(std::move(cert));
        }
    }

    obs::add(sink, obs::Counter::ImplicationsLearned,
             result.implications_learned);
    obs::add(sink, obs::Counter::FaultsProvedUntestable,
             result.untestable.size());
    if (deadline_expired) obs::add(sink, obs::Counter::DeadlineExpiries);
    return result;
}

}  // namespace tpi::analysis
