#include "analysis/prune.hpp"

#include "util/error.hpp"

namespace tpi::analysis {

using netlist::Circuit;
using netlist::NodeId;

/// Walk the transparent chain from a node with obs exactly 1.0: some
/// fanout edge must carry factor 1.0 into a consumer with obs 1.0
/// (a product of doubles in [0, 1] is 1.0 only if every factor is), so
/// the walk reaches a primary output in at most depth steps.
std::vector<NodeId> transparent_chain(const Circuit& circuit,
                                      const testability::CopResult& cop,
                                      NodeId v) {
    require(cop.obs[v.v] == 1.0,
            "transparent_chain: node observability is not exactly 1.0");
    std::vector<NodeId> chain{v};
    NodeId cur = v;
    while (!circuit.is_output(cur)) {
        NodeId next = netlist::kNullNode;
        for (NodeId g : circuit.fanouts(cur)) {
            if (cop.obs[g.v] != 1.0) continue;
            const auto fanins = circuit.fanins(g);
            for (std::size_t slot = 0; slot < fanins.size(); ++slot) {
                if (fanins[slot] != cur) continue;
                if (testability::sensitization_probability(
                        circuit, g, slot, cop.c1) == 1.0) {
                    next = g;
                    break;
                }
            }
            if (next.valid()) break;
        }
        require(next.valid(),
                "transparent_chain: obs == 1.0 without a transparent "
                "edge (COP result does not match the circuit)");
        chain.push_back(next);
        cur = next;
    }
    return chain;
}

ObservePruning compute_observe_pruning(const Circuit& circuit,
                                       const testability::CopResult& cop,
                                       std::size_t max_certificates) {
    require(cop.obs.size() == circuit.node_count(),
            "compute_observe_pruning: COP size mismatch");
    ObservePruning pruning;
    pruning.zero_gain.assign(circuit.node_count(), false);
    for (NodeId v : circuit.topo_order()) {
        if (cop.obs[v.v] != 1.0) continue;
        pruning.zero_gain[v.v] = true;
        ++pruning.count;
        if (pruning.certificates.size() < max_certificates) {
            Certificate cert;
            cert.kind = CertKind::TransparentChain;
            cert.node = v;
            cert.chain = transparent_chain(circuit, cop, v);
            pruning.certificates.push_back(std::move(cert));
        }
    }
    return pruning;
}

}  // namespace tpi::analysis
