#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/ternary.hpp"
#include "netlist/circuit.hpp"

namespace tpi::analysis {

/// One assignment "net carries value" — the atoms of the implication
/// machinery. Everything downstream (assumption sets, learned
/// implications, certificates) is a list of these.
struct Literal {
    netlist::NodeId node;
    bool value = false;

    friend constexpr bool operator==(const Literal&, const Literal&) =
        default;
};

/// Outcome of propagating one assumption set.
struct ImplicationResult {
    /// The assumption set is unsatisfiable: no primary-input assignment
    /// makes every assumption hold. Sound (each propagation rule is a
    /// valid implication between net values), incomplete.
    bool conflict = false;

    /// Assignments derived beyond the assumptions and the base
    /// constants, in derivation order. Meaningless after a conflict.
    std::vector<Literal> implied;

    /// Gate examinations consumed.
    std::size_t steps = 0;

    /// The step cap stopped propagation early: `implied` is still sound
    /// but further implications (and conflicts) may exist.
    bool capped = false;
};

/// Bidirectional ternary constraint propagation over the circuit:
/// forward gate evaluation with 0/1/X dominance (eval_ternary) plus the
/// backward forced-value rules (an AND driving 1 forces every fanin to
/// 1; an AND driving 0 with all siblings at 1 forces the last open
/// fanin to 0; the OR/NAND/NOR duals; Buf/Not inversion; XOR/XNOR
/// parity once a single fanin is open). Each rule is a valid
/// implication between net values of one consistent circuit, so every
/// derived literal holds under *all* primary-input assignments
/// satisfying the assumptions — and a derived contradiction proves the
/// assumption set unsatisfiable (the FIRE-style learning step).
///
/// The engine is built once per circuit and queried many times: the
/// working values live in a flat array restored via a touched list, so
/// a query costs O(cone examined), not O(nodes). Deterministic: a FIFO
/// over node ids with de-duplication, no hashing, no randomness.
class ImplicationEngine {
public:
    /// `base` is the proven-constant background (one Ternary per node,
    /// normally propagate_constants output, possibly refined with
    /// learned constants); the engine keeps a copy.
    ImplicationEngine(const netlist::Circuit& circuit,
                      std::span<const Ternary> base);

    /// Propagate `assumptions` on top of the base constants. At most
    /// `max_steps` gate examinations (0 means unlimited).
    ImplicationResult propagate(std::span<const Literal> assumptions,
                                std::size_t max_steps = 0);

    /// Permanently fold a learned constant into the base background so
    /// later queries start from the refined state.
    void refine_base(Literal constant);

    const std::vector<Ternary>& base() const { return base_; }

private:
    bool assign(netlist::NodeId v, Ternary t, ImplicationResult& result);
    void enqueue(netlist::NodeId v);
    void examine(netlist::NodeId gate, ImplicationResult& result);

    const netlist::Circuit& circuit_;
    std::vector<Ternary> base_;

    // Per-query scratch, restored after every propagate() call.
    std::vector<Ternary> value_;
    std::vector<netlist::NodeId> touched_;
    std::vector<netlist::NodeId> queue_;
    std::size_t queue_head_ = 0;
    std::vector<bool> in_queue_;
    std::vector<Ternary> fanin_scratch_;
};

}  // namespace tpi::analysis
