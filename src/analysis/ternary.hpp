#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "netlist/circuit.hpp"

namespace tpi::analysis {

/// Three-valued logic over the flat lattice {0, 1} ⊔ {X}: X means "not
/// proven constant". Gate evaluation is monotone in the information
/// order (refining an X input to a concrete value never flips a defined
/// output), which is what makes every constant proven here a constant
/// under *all* primary-input assignments — see DESIGN.md §10.
enum class Ternary : std::uint8_t {
    Zero = 0,
    One = 1,
    X = 2,
};

std::string_view ternary_name(Ternary value);

inline bool is_defined(Ternary value) { return value != Ternary::X; }

/// Ternary value carried by a defined constant (precondition:
/// is_defined(value)).
inline bool ternary_bool(Ternary value) { return value == Ternary::One; }

inline Ternary to_ternary(bool value) {
    return value ? Ternary::One : Ternary::Zero;
}

/// Evaluate one gate on ternary inputs with the usual dominance rules: a
/// controlling input decides AND/NAND/OR/NOR regardless of X siblings;
/// XOR/XNOR are X as soon as any input is X.
Ternary eval_ternary(netlist::GateType type, std::span<const Ternary> inputs);

/// Evaluate the whole circuit with the given primary-input values (in
/// inputs() order). Tie cells evaluate to their constants. Returns one
/// value per node, indexed by NodeId.
std::vector<Ternary> evaluate_ternary(const netlist::Circuit& circuit,
                                      std::span<const Ternary> input_values);

/// Ternary constant propagation: evaluate with every primary input X.
/// Every node whose result is defined provably carries that constant
/// under all 2^n input assignments (sound; incomplete — constancy by
/// cancellation, e.g. XOR(a, a), stays X).
std::vector<Ternary> propagate_constants(const netlist::Circuit& circuit);

/// Structural observability under ternary constant blocking: a node is
/// marked false when every path from it to every primary output crosses
/// a gate edge whose sibling fanin is a proven controlling constant
/// (e.g. an AND sibling proven 0). Marked-false nets provably cannot
/// propagate a value change to any output (sound); marked-true nets may
/// still be unobservable for non-structural reasons (incomplete).
/// `value` must come from propagate_constants on the same circuit.
std::vector<bool> observable_mask(const netlist::Circuit& circuit,
                                  std::span<const Ternary> value);

}  // namespace tpi::analysis
