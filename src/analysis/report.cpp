#include "analysis/report.hpp"

#include <ostream>
#include <sstream>

#include "fault/fault.hpp"

namespace tpi::analysis {

using netlist::Circuit;
using netlist::NodeId;

namespace {

void write_json_string(std::ostream& os, std::string_view text) {
    os << '"';
    for (const char c : text) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void write_literal_json(std::ostream& os, const Circuit& circuit,
                        const Literal& lit) {
    os << "{\"node\": " << lit.node.v << ", \"name\": ";
    write_json_string(os, circuit.node_name(lit.node));
    os << ", \"value\": " << (lit.value ? 1 : 0) << "}";
}

/// Count of nodes with a real (non-sink) immediate post-dominator.
std::size_t dominated_nodes(const DominatorTree& tree) {
    std::size_t n = 0;
    for (const std::uint32_t d : tree.idom)
        if (d != DominatorTree::kSink && d != DominatorTree::kUnreachable)
            ++n;
    return n;
}

}  // namespace

void write_text(std::ostream& os, const AnalysisResult& result,
                const ObservePruning& pruning, const Circuit& circuit) {
    os << "analysis: circuit '" << circuit.name() << "' — "
       << circuit.node_count() << " nodes\n";
    os << "  dominators: " << dominated_nodes(result.dominators)
       << " nodes with a proper post-dominator\n";
    os << "  implications: " << result.implications_learned
       << " learned over " << result.implications.rows()
       << " probed literals\n";
    os << "  constants: " << result.learned_constants.size()
       << " learned by failed assumption\n";
    for (const Literal& c : result.learned_constants)
        os << "    " << circuit.node_name(c.node) << " = "
           << (c.value ? 1 : 0) << "\n";
    os << "  untestable faults: " << result.untestable.size() << "\n";
    for (const fault::Fault& f : result.untestable)
        os << "    " << fault::fault_name(circuit, f) << "\n";
    os << "  zero-gain observe sites: " << pruning.count << "\n";
    os << "  certificates: " << result.certificates.size() << " analysis + "
       << pruning.certificates.size() << " transparent-chain"
       << (result.truncated ? " [truncated]" : "") << "\n";
}

namespace {

void write_certificates_json(std::ostream& os, const Circuit& circuit,
                             const std::vector<Certificate>& certs) {
    for (std::size_t i = 0; i < certs.size(); ++i) {
        const Certificate& cert = certs[i];
        os << (i > 0 ? "," : "") << "\n    {\"kind\": ";
        write_json_string(os, cert_kind_name(cert.kind));
        os << ", \"node\": " << cert.node.v << ", \"name\": ";
        write_json_string(os, circuit.node_name(cert.node));
        if (cert.kind == CertKind::UntestableFault)
            os << ", \"stuck_at\": " << (cert.fault.stuck_at1 ? 1 : 0);
        if (cert.kind == CertKind::ConstantNet)
            os << ", \"value\": " << (cert.value ? 1 : 0);
        if (!cert.assumptions.empty()) {
            os << ",\n     \"assumptions\": [";
            for (std::size_t j = 0; j < cert.assumptions.size(); ++j) {
                os << (j > 0 ? ", " : "");
                write_literal_json(os, circuit, cert.assumptions[j]);
            }
            os << "]";
        }
        if (!cert.chain.empty()) {
            os << ",\n     \"chain\": [";
            for (std::size_t j = 0; j < cert.chain.size(); ++j)
                os << (j > 0 ? ", " : "") << cert.chain[j].v;
            os << "]";
        }
        if (cert.kind == CertKind::ObsBound)
            os << ", \"lower\": " << cert.lower
               << ", \"upper\": " << cert.upper;
        os << "}";
    }
}

}  // namespace

void write_json(std::ostream& os, const AnalysisResult& result,
                const ObservePruning& pruning, const Circuit& circuit) {
    os << "{\n  \"circuit\": ";
    write_json_string(os, circuit.name());
    os << ",\n  \"nodes\": " << circuit.node_count();
    os << ",\n  \"dominated_nodes\": " << dominated_nodes(result.dominators);
    os << ",\n  \"implications_learned\": " << result.implications_learned;
    os << ",\n  \"probed_literals\": " << result.implications.rows();
    os << ",\n  \"learned_constants\": [";
    for (std::size_t i = 0; i < result.learned_constants.size(); ++i) {
        os << (i > 0 ? ", " : "");
        write_literal_json(os, circuit, result.learned_constants[i]);
    }
    os << "],\n  \"untestable_faults\": [";
    for (std::size_t i = 0; i < result.untestable.size(); ++i) {
        const fault::Fault& f = result.untestable[i];
        os << (i > 0 ? ", " : "") << "{\"node\": " << f.node.v
           << ", \"name\": ";
        write_json_string(os, circuit.node_name(f.node));
        os << ", \"stuck_at\": " << (f.stuck_at1 ? 1 : 0) << "}";
    }
    os << "],\n  \"zero_gain_observe_sites\": " << pruning.count;
    os << ",\n  \"certificates\": [";
    write_certificates_json(os, circuit, result.certificates);
    if (!result.certificates.empty() && !pruning.certificates.empty())
        os << ",";
    write_certificates_json(os, circuit, pruning.certificates);
    os << "\n  ],\n  \"truncated\": "
       << (result.truncated ? "true" : "false") << "\n}\n";
}

std::string to_text(const AnalysisResult& result,
                    const ObservePruning& pruning, const Circuit& circuit) {
    std::ostringstream os;
    write_text(os, result, pruning, circuit);
    return os.str();
}

std::string to_json(const AnalysisResult& result,
                    const ObservePruning& pruning, const Circuit& circuit) {
    std::ostringstream os;
    write_json(os, result, pruning, circuit);
    return os.str();
}

}  // namespace tpi::analysis
