#pragma once

#include <cstddef>
#include <vector>

#include "analysis/certificate.hpp"
#include "netlist/circuit.hpp"
#include "testability/cop.hpp"

namespace tpi::analysis {

/// Observe-point candidates that are provably zero-gain under COP, with
/// transparent-chain certificates.
///
/// The criterion is *bitwise*: `zero_gain[v]` is set exactly when
/// `cop.obs[v] == 1.0`. Because every COP factor lies in [0, 1] and
/// rounding is monotone, a product can equal 1.0 only when every factor
/// is exactly 1.0 — so obs[v] == 1.0 certifies a fully transparent
/// fanout chain to a primary output. An observe point at such a node
/// leaves the transformed circuit's COP bitwise unchanged (the new
/// branch contributes max(1.0, 1.0)), hence every fault detection
/// probability, every candidate score, and every planner decision is
/// bitwise identical with or without the candidate — the plan-identity
/// guarantee PlannerOptions::prune_via_analysis relies on.
struct ObservePruning {
    std::vector<bool> zero_gain;
    std::size_t count = 0;

    /// TransparentChain certificates for the first `max_certificates`
    /// pruned nodes, in topological order.
    std::vector<Certificate> certificates;
};

/// `cop` must be compute_cop (or a bitwise-equal export) of `circuit`.
ObservePruning compute_observe_pruning(const netlist::Circuit& circuit,
                                       const testability::CopResult& cop,
                                       std::size_t max_certificates);

/// The transparent chain witnessing cop.obs[v] == 1.0: a fanout path
/// from v to a primary output whose every gate-entry sensitisation
/// factor is exactly 1.0. Precondition: cop.obs[v] == 1.0 bitwise
/// (throws tpi::Error otherwise).
std::vector<netlist::NodeId> transparent_chain(
    const netlist::Circuit& circuit, const testability::CopResult& cop,
    netlist::NodeId v);

}  // namespace tpi::analysis
