#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/dominators.hpp"
#include "analysis/implications.hpp"
#include "fault/fault.hpp"
#include "netlist/circuit.hpp"

namespace tpi::analysis {

/// What a certificate claims. Every kind is machine-checkable against
/// the bare circuit by check_certificate — the consumer never has to
/// trust the analysis that emitted it.
enum class CertKind : std::uint8_t {
    /// `fault` is untestable. `assumptions` is an ordered proof script:
    /// each entry is either a mandatory assignment of the fault
    /// (activation, or a unique-sensitisation side input of one of its
    /// post-dominator gates) or a constant *lemma* — a literal whose
    /// opposite propagates to a conflict against the engine refined by
    /// the lemmas verified before it. After the lemmas are discharged,
    /// replaying the mandatory entries yields a conflict, so no input
    /// assignment satisfies all of them and no test exists.
    UntestableFault,

    /// Net `node` provably carries constant `value` under every input
    /// assignment. `assumptions` is an ordered proof script whose last
    /// entry is the refuted opposite literal (`node`, !`value`); the
    /// entries before it are constant lemmas discharged in order as for
    /// UntestableFault.
    ConstantNet,

    /// Observing `node` gains nothing: `chain` is a node path from it
    /// to a primary output whose every gate-entry sensitisation factor
    /// is exactly 1.0 under COP, so COP observability at `node` is
    /// already exactly 1.0 and an observe point leaves every fault
    /// detection probability bitwise unchanged.
    TransparentChain,

    /// COP observability of `node` lies in [`lower`, `upper`]: `upper`
    /// multiplies the best-fanin sensitisation factor of each gate in
    /// the node's post-dominator chain (every output path crosses all
    /// of them), `lower` is the product along the witness path `chain`.
    ObsBound,
};

std::string_view cert_kind_name(CertKind kind);

struct Certificate {
    CertKind kind = CertKind::ConstantNet;
    netlist::NodeId node = netlist::kNullNode;  ///< subject net
    fault::Fault fault{};                       ///< UntestableFault only
    bool value = false;                         ///< ConstantNet only
    std::vector<Literal> assumptions;           ///< conflict kinds
    std::vector<netlist::NodeId> chain;         ///< path witness kinds
    double lower = 0.0;                         ///< ObsBound only
    double upper = 1.0;                         ///< ObsBound only
};

/// Outcome of replaying one certificate.
struct CertCheck {
    bool ok = false;
    std::string detail;  ///< first failed obligation, empty when ok
};

/// Replay `cert` against `circuit` from scratch: rebuild the base
/// constants, the post-dominator tree and COP as needed, verify every
/// side condition (assumption sets really are mandatory, chains really
/// are fanout paths), and re-derive the claimed conclusion. `max_steps`
/// bounds the conflict replays (0 = unlimited).
CertCheck check_certificate(const netlist::Circuit& circuit,
                            const Certificate& cert,
                            std::size_t max_steps = 0);

/// The mandatory assignment set of `f`: the activation literal plus,
/// for every AND/NAND/OR/NOR gate on the fault site's post-dominator
/// chain, the non-controlling literal on each side input outside the
/// site's fanout cone. Any test for `f` satisfies all of them in the
/// fault-free circuit (side inputs outside the cone carry equal
/// fault-free/faulty values), so a conflict proves untestability.
std::vector<Literal> mandatory_assignments(const netlist::Circuit& circuit,
                                           const DominatorTree& dominators,
                                           const fault::Fault& f);

/// Upper bound on COP observability of `v` from its post-dominator
/// chain: the product of each chain gate's best-fanin sensitisation
/// factor. Every path from v to an output crosses every chain gate and
/// all other factors are <= 1, so the product bounds the COP
/// observability from above. Shared by the bound producer and the
/// certificate checker (bitwise-identical walk).
double dominator_obs_upper(const netlist::Circuit& circuit,
                           const DominatorTree& dominators,
                           netlist::NodeId v, std::span<const double> c1);

}  // namespace tpi::analysis
