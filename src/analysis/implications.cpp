#include "analysis/implications.hpp"

#include "util/error.hpp"

namespace tpi::analysis {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

Ternary invert(Ternary value) {
    if (value == Ternary::X) return Ternary::X;
    return value == Ternary::One ? Ternary::Zero : Ternary::One;
}

}  // namespace

ImplicationEngine::ImplicationEngine(const Circuit& circuit,
                                     std::span<const Ternary> base)
    : circuit_(circuit), base_(base.begin(), base.end()) {
    require(base_.size() == circuit.node_count(),
            "ImplicationEngine: one base ternary per node required");
    value_ = base_;
    in_queue_.assign(circuit.node_count(), false);
}

void ImplicationEngine::refine_base(Literal constant) {
    base_[constant.node.v] = to_ternary(constant.value);
    value_[constant.node.v] = base_[constant.node.v];
}

void ImplicationEngine::enqueue(NodeId v) {
    if (in_queue_[v.v]) return;
    in_queue_[v.v] = true;
    queue_.push_back(v);
}

/// Record v := t. False (and conflict flagged) when v already carries
/// the opposite proven value; re-deriving the same value is a no-op.
bool ImplicationEngine::assign(NodeId v, Ternary t,
                               ImplicationResult& result) {
    if (!is_defined(t)) return true;
    const Ternary cur = value_[v.v];
    if (is_defined(cur)) {
        if (cur != t) {
            result.conflict = true;
            return false;
        }
        return true;
    }
    value_[v.v] = t;
    touched_.push_back(v);
    if (!is_defined(base_[v.v]))
        result.implied.push_back({v, ternary_bool(t)});
    // The new value can drive the node's consumers forward and, if v is
    // a gate, constrain its own fanins backward.
    if (!netlist::is_source(circuit_.type(v))) enqueue(v);
    for (NodeId g : circuit_.fanouts(v)) enqueue(g);
    return true;
}

/// One gate examination: forward-evaluate the gate from its fanins,
/// then apply the backward forced-value rules from its output value.
void ImplicationEngine::examine(NodeId gate, ImplicationResult& result) {
    const GateType type = circuit_.type(gate);
    const auto fanins = circuit_.fanins(gate);

    // Forward: the ternary gate function is monotone, so a defined
    // result is forced.
    fanin_scratch_.resize(fanins.size());
    for (std::size_t i = 0; i < fanins.size(); ++i)
        fanin_scratch_[i] = value_[fanins[i].v];
    if (!assign(gate, eval_ternary(type, fanin_scratch_), result)) return;

    const Ternary out = value_[gate.v];
    if (!is_defined(out)) return;

    // Backward: which fanin values does the output force?
    switch (type) {
        case GateType::Buf:
            assign(fanins[0], out, result);
            return;
        case GateType::Not:
            assign(fanins[0], invert(out), result);
            return;
        case GateType::And:
        case GateType::Nand:
        case GateType::Or:
        case GateType::Nor: {
            // In terms of the underlying AND/OR: an output at the
            // non-controlled value forces every fanin non-controlling;
            // an output at the controlled value with exactly one open
            // fanin forces that fanin controlling.
            const Ternary controlling =
                to_ternary(netlist::controlling_value(type));
            const bool inverted = netlist::is_inverting(type);
            // Output value of the underlying monotone gate.
            const Ternary mono = inverted ? invert(out) : out;
            // AND = 1 (OR = 0): all fanins non-controlling.
            if (mono == invert(controlling)) {
                for (NodeId f : fanins)
                    if (!assign(f, invert(controlling), result)) return;
                return;
            }
            // AND = 0 (OR = 1): if a single fanin is open and every
            // sibling is non-controlling, the open one is controlling.
            NodeId open = netlist::kNullNode;
            for (std::size_t i = 0; i < fanins.size(); ++i) {
                const Ternary fv = fanin_scratch_[i];
                if (fv == controlling) return;  // already satisfied
                if (!is_defined(fv)) {
                    if (open.valid()) return;  // two open: nothing forced
                    open = fanins[i];
                }
            }
            if (open.valid()) assign(open, controlling, result);
            // No open fanin with all siblings non-controlling would be
            // a conflict — caught by the forward evaluation above.
            return;
        }
        case GateType::Xor:
        case GateType::Xnor: {
            // Parity with exactly one open fanin: it is forced to
            // whatever completes the output parity.
            NodeId open = netlist::kNullNode;
            bool parity = (out == Ternary::One);
            if (type == GateType::Xnor) parity = !parity;
            for (std::size_t i = 0; i < fanins.size(); ++i) {
                const Ternary fv = fanin_scratch_[i];
                if (!is_defined(fv)) {
                    if (open.valid()) return;
                    open = fanins[i];
                } else if (fv == Ternary::One) {
                    parity = !parity;
                }
            }
            if (open.valid()) assign(open, to_ternary(parity), result);
            return;
        }
        case GateType::Input:
        case GateType::Const0:
        case GateType::Const1:
            return;  // sources have no fanins to constrain
    }
}

ImplicationResult ImplicationEngine::propagate(
    std::span<const Literal> assumptions, std::size_t max_steps) {
    ImplicationResult result;
    queue_.clear();
    queue_head_ = 0;

    for (const Literal& a : assumptions) {
        require(a.node.v < circuit_.node_count(),
                "ImplicationEngine: assumption on unknown node");
        if (!assign(a.node, to_ternary(a.value), result)) break;
    }
    // Entries recorded so far are the assumptions themselves (the ones
    // not already base constants); strip them from `implied` at the end
    // so the caller sees only derived assignments.
    const std::size_t assumed = result.implied.size();

    while (!result.conflict && queue_head_ < queue_.size()) {
        if (max_steps != 0 && result.steps >= max_steps) {
            result.capped = true;
            break;
        }
        const NodeId gate = queue_[queue_head_++];
        in_queue_[gate.v] = false;
        ++result.steps;
        examine(gate, result);
    }

    // Restore the scratch state for the next query.
    for (NodeId v : touched_) value_[v.v] = base_[v.v];
    touched_.clear();
    for (std::size_t i = queue_head_; i < queue_.size(); ++i)
        in_queue_[queue_[i].v] = false;
    queue_.clear();
    queue_head_ = 0;

    // Derivation order minus the assumptions themselves.
    if (!result.conflict && result.implied.size() >= assumed)
        result.implied.erase(result.implied.begin(),
                             result.implied.begin() +
                                 static_cast<std::ptrdiff_t>(assumed));
    return result;
}

}  // namespace tpi::analysis
