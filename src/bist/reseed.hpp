#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/podem.hpp"
#include "util/lfsr.hpp"

namespace tpi::bist {

/// Incremental GF(2) linear solver over at most 64 unknowns.
///
/// Constraints are rows `coefficients . x = rhs` with coefficients packed
/// into a 64-bit mask. Built for LFSR seed computation: the state bits of
/// a linear machine are GF(2)-linear functions of the seed, so "pattern t
/// must match cube c" is a linear system over the seed bits.
class Gf2Solver {
public:
    explicit Gf2Solver(unsigned unknowns);

    /// Add one constraint; returns false (and leaves the system
    /// unchanged) if it is inconsistent with the constraints so far.
    bool add(std::uint64_t coefficients, bool rhs);

    /// A solution with free variables forced to `free_value`.
    std::uint64_t solve(bool free_value = false) const;

    /// True if some unknown is not pinned by the constraints.
    bool has_free_variable() const;

    unsigned unknowns() const { return unknowns_; }

private:
    unsigned unknowns_;
    // Row-echelon rows: pivot_row_[k] has its lowest set bit at k, or 0.
    std::vector<std::uint64_t> pivot_row_;
    std::vector<std::uint8_t> pivot_rhs_;
};

/// Symbolic LFSR: tracks every state bit as a GF(2)-linear function of
/// the seed bits, enabling seed solving for constraints at arbitrary
/// times.
class SymbolicLfsr {
public:
    explicit SymbolicLfsr(unsigned width);

    /// Advance one step (mirrors util::Lfsr::step()).
    void step();

    /// Coefficient mask of state bit `bit` over the seed bits.
    std::uint64_t coefficients(unsigned bit) const { return fn_[bit]; }

    unsigned width() const { return width_; }

private:
    unsigned width_;
    std::uint64_t taps_;
    std::vector<std::uint64_t> fn_;  // per state bit
};

/// Reseeding: encode deterministic test cubes (from ATPG) as LFSR seeds,
/// the classic store-seeds-not-patterns BIST compression. Cubes are
/// packed greedily: each seed's pseudo-random sequence is asked to match
/// as many cubes as possible at successive pattern positions before a new
/// seed is opened.
struct ReseedResult {
    unsigned lfsr_width = 0;
    std::vector<std::uint64_t> seeds;
    /// For each input cube, in order: (seed index, pattern position), or
    /// seed index -1 if the cube could not be encoded (conflicting tap
    /// sharing when inputs outnumber the register).
    struct Placement {
        int seed = -1;
        std::size_t position = 0;
    };
    std::vector<Placement> placements;

    std::size_t encoded() const {
        std::size_t n = 0;
        for (const auto& p : placements)
            if (p.seed >= 0) ++n;
        return n;
    }
};

struct ReseedOptions {
    /// LFSR width; 0 = choose automatically (number of inputs, clamped
    /// to [4, 64]).
    unsigned width = 0;
    /// How many pattern positions of one seed's sequence are examined
    /// before opening a new seed.
    std::size_t window = 64;
};

/// Pack `cubes` (one per fault, inputs() order, -1 = don't care) into
/// LFSR seeds for an LfsrPatternSource of the returned width.
ReseedResult plan_reseeding(std::size_t num_inputs,
                            const std::vector<atpg::TestCube>& cubes,
                            const ReseedOptions& options = {});

/// The pattern produced by seed at `position` when expanded by
/// LfsrPatternSource(width, seed): bit i = input i. For verification.
std::vector<bool> expand_seed(unsigned width, std::uint64_t seed,
                              std::size_t position,
                              std::size_t num_inputs);

}  // namespace tpi::bist
