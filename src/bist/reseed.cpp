#include "bist/reseed.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace tpi::bist {

// ----------------------------------------------------------- Gf2Solver ----

Gf2Solver::Gf2Solver(unsigned unknowns)
    : unknowns_(unknowns), pivot_row_(unknowns, 0), pivot_rhs_(unknowns, 0) {
    require(unknowns >= 1 && unknowns <= 64, "Gf2Solver: 1..64 unknowns");
}

bool Gf2Solver::add(std::uint64_t coefficients, bool rhs) {
    std::uint8_t r = rhs ? 1 : 0;
    while (coefficients != 0) {
        const unsigned p =
            static_cast<unsigned>(std::countr_zero(coefficients));
        if (p >= unknowns_) return r == 0;  // out-of-range bits ignored
        if (pivot_row_[p] == 0) {
            pivot_row_[p] = coefficients;
            pivot_rhs_[p] = r;
            return true;
        }
        coefficients ^= pivot_row_[p];
        r ^= pivot_rhs_[p];
    }
    return r == 0;  // 0 = rhs: redundant constraint or contradiction
}

std::uint64_t Gf2Solver::solve(bool free_value) const {
    std::uint64_t x = 0;
    for (unsigned p = unknowns_; p-- > 0;) {
        if (pivot_row_[p] == 0) {
            if (free_value) x |= std::uint64_t{1} << p;
            continue;
        }
        const std::uint64_t rest =
            pivot_row_[p] & ~(std::uint64_t{1} << p);
        const unsigned parity = std::popcount(rest & x) & 1u;
        if ((pivot_rhs_[p] ^ parity) != 0) x |= std::uint64_t{1} << p;
    }
    return x;
}

bool Gf2Solver::has_free_variable() const {
    return std::any_of(pivot_row_.begin(), pivot_row_.end(),
                       [](std::uint64_t row) { return row == 0; });
}

// -------------------------------------------------------- SymbolicLfsr ----

SymbolicLfsr::SymbolicLfsr(unsigned width)
    : width_(width),
      taps_(util::Lfsr::taps_for_width(width)),
      fn_(width) {
    for (unsigned k = 0; k < width; ++k) fn_[k] = std::uint64_t{1} << k;
}

void SymbolicLfsr::step() {
    std::uint64_t feedback = 0;
    std::uint64_t taps = taps_;
    while (taps != 0) {
        feedback ^= fn_[std::countr_zero(taps)];
        taps &= taps - 1;
    }
    for (unsigned k = width_; k-- > 1;) fn_[k] = fn_[k - 1];
    fn_[0] = feedback;
}

// ------------------------------------------------------ plan_reseeding ----

std::vector<bool> expand_seed(unsigned width, std::uint64_t seed,
                              std::size_t position,
                              std::size_t num_inputs) {
    util::Lfsr lfsr(width, seed);
    for (std::size_t s = 0; s <= position; ++s) lfsr.step();
    std::vector<bool> pattern(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i)
        pattern[i] = ((lfsr.state() >> (i % width)) & 1) != 0;
    return pattern;
}

ReseedResult plan_reseeding(std::size_t num_inputs,
                            const std::vector<atpg::TestCube>& cubes,
                            const ReseedOptions& options) {
    ReseedResult result;
    const unsigned width =
        options.width != 0
            ? options.width
            : static_cast<unsigned>(
                  std::clamp<std::size_t>(num_inputs, 4, 64));
    require(width >= 3 && width <= 64, "plan_reseeding: width in [3, 64]");
    require(options.window >= 1, "plan_reseeding: window >= 1");
    result.lfsr_width = width;
    result.placements.resize(cubes.size());

    // Symbolic state rows for pattern positions 0..window-1 (pattern t is
    // the register contents after t+1 steps).
    std::vector<std::vector<std::uint64_t>> rows(options.window);
    {
        SymbolicLfsr symbolic(width);
        for (std::size_t t = 0; t < options.window; ++t) {
            symbolic.step();
            rows[t].resize(width);
            for (unsigned b = 0; b < width; ++b)
                rows[t][b] = symbolic.coefficients(b);
        }
    }

    const auto try_place = [&](Gf2Solver& solver,
                               const atpg::TestCube& cube,
                               std::size_t position) {
        Gf2Solver trial = solver;
        for (std::size_t i = 0; i < cube.inputs.size(); ++i) {
            if (cube.inputs[i] < 0) continue;
            const unsigned tap = static_cast<unsigned>(i) % width;
            if (!trial.add(rows[position][tap], cube.inputs[i] == 1))
                return false;
        }
        solver = trial;
        return true;
    };

    Gf2Solver solver(width);
    std::size_t next_position = 0;
    std::vector<std::size_t> members;  // cube indices of the open seed

    const auto finalize_seed = [&]() {
        if (members.empty()) return;
        std::uint64_t seed = solver.solve(false);
        if (seed == 0) seed = solver.solve(true);
        result.seeds.push_back(seed);
        members.clear();
        solver = Gf2Solver(width);
        next_position = 0;
    };

    for (std::size_t ci = 0; ci < cubes.size(); ++ci) {
        const atpg::TestCube& cube = cubes[ci];
        require(cube.inputs.size() == num_inputs,
                "plan_reseeding: cube width mismatch");
        bool placed = false;
        for (int attempt = 0; attempt < 2 && !placed; ++attempt) {
            for (std::size_t pos = next_position;
                 pos < options.window && !placed; ++pos) {
                if (try_place(solver, cube, pos)) {
                    result.placements[ci] = {
                        static_cast<int>(result.seeds.size()), pos};
                    members.push_back(ci);
                    next_position = pos + 1;
                    placed = true;
                }
            }
            if (!placed) finalize_seed();  // retry once in a fresh seed
        }
        // Unplaceable even alone: conflicting tap sharing.
    }
    finalize_seed();

    // Verification pass: an all-zero pinned seed (remapped by the LFSR)
    // or any other wrinkle is caught by expanding and comparing.
    for (std::size_t ci = 0; ci < cubes.size(); ++ci) {
        auto& placement = result.placements[ci];
        if (placement.seed < 0) continue;
        const auto pattern =
            expand_seed(width,
                        result.seeds[static_cast<std::size_t>(
                            placement.seed)],
                        placement.position, num_inputs);
        for (std::size_t i = 0; i < num_inputs; ++i) {
            if (cubes[ci].inputs[i] >= 0 &&
                pattern[i] != (cubes[ci].inputs[i] == 1)) {
                placement.seed = -1;
                break;
            }
        }
    }
    return result;
}

}  // namespace tpi::bist
