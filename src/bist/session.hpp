#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "sim/pattern.hpp"

namespace tpi::bist {

struct SessionOptions {
    std::size_t patterns = 4096;   ///< rounded up to a multiple of 64
    unsigned misr_width = 16;      ///< signature register width
    std::uint64_t misr_seed = 0;
};

/// Outcome of a full signature-based BIST session.
struct SessionResult {
    std::uint64_t golden_signature = 0;
    /// Per collapsed fault: would its signature differ from golden?
    std::vector<bool> signature_detects;
    /// Faults whose response differs at some output strobe (upper bound
    /// for any compaction scheme).
    std::size_t strobe_detected = 0;
    /// Strobe-detected faults whose signature nevertheless matches golden
    /// (MISR aliasing).
    std::size_t aliased = 0;

    double aliasing_rate() const {
        return strobe_detected == 0
                   ? 0.0
                   : static_cast<double>(aliased) /
                         static_cast<double>(strobe_detected);
    }
    /// Coverage as the signature comparison would report it, weighted
    /// over the uncollapsed universe.
    double signature_coverage(const fault::CollapsedFaults& faults) const;
};

/// Run a complete signature-based BIST session: simulate every fault over
/// the whole pattern set (no dropping — aliasing needs the full
/// response), compact each response stream into a MISR signature, and
/// compare against the fault-free golden signature.
SessionResult run_session(const netlist::Circuit& circuit,
                          const fault::CollapsedFaults& faults,
                          sim::PatternSource& source,
                          const SessionOptions& options = {});

}  // namespace tpi::bist
