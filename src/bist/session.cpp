#include "bist/session.hpp"

#include "bist/misr.hpp"

#include <bit>
#include "fault/fault_sim.hpp"
#include "sim/logic_sim.hpp"
#include "util/error.hpp"

namespace tpi::bist {

double SessionResult::signature_coverage(
    const fault::CollapsedFaults& faults) const {
    require(signature_detects.size() == faults.size(),
            "signature_coverage: universe mismatch");
    double covered = 0.0;
    for (std::size_t i = 0; i < faults.size(); ++i)
        if (signature_detects[i]) covered += faults.class_size[i];
    return faults.total_faults > 0
               ? covered / static_cast<double>(faults.total_faults)
               : 1.0;
}

namespace {

/// Fold the 64 per-pattern responses of one block into MISR input words.
void fold_block(std::span<const std::uint64_t> po_words, unsigned width,
                std::uint64_t folded[64]) {
    for (int j = 0; j < 64; ++j) folded[j] = 0;
    for (std::size_t o = 0; o < po_words.size(); ++o) {
        const std::uint64_t bit = std::uint64_t{1} << (o % width);
        std::uint64_t word = po_words[o];
        while (word != 0) {
            const int j = std::countr_zero(word);
            folded[j] ^= bit;
            word &= word - 1;
        }
    }
}

}  // namespace

SessionResult run_session(const netlist::Circuit& circuit,
                          const fault::CollapsedFaults& faults,
                          sim::PatternSource& source,
                          const SessionOptions& options) {
    require(options.misr_width >= 3 && options.misr_width <= 64,
            "run_session: misr_width in [3, 64]");
    const std::size_t blocks = (options.patterns + 63) / 64;

    // Golden signature.
    Misr golden(options.misr_width, options.misr_seed);
    {
        sim::LogicSimulator simulator(circuit);
        std::vector<std::uint64_t> pi_words(circuit.input_count());
        std::vector<std::uint64_t> po_words(circuit.output_count());
        std::uint64_t folded[64];
        for (std::size_t b = 0; b < blocks; ++b) {
            source.next_block(pi_words);
            simulator.simulate_block(pi_words);
            for (std::size_t o = 0; o < circuit.output_count(); ++o)
                po_words[o] = simulator.value(circuit.outputs()[o]);
            fold_block(po_words, options.misr_width, folded);
            for (int j = 0; j < 64; ++j) golden.absorb(folded[j]);
        }
    }

    // Faulty signatures: full-response fault simulation with a MISR per
    // fault fed through the response observer.
    std::vector<Misr> misr(faults.size(),
                           Misr(options.misr_width, options.misr_seed));
    fault::FaultSimOptions sim_options;
    sim_options.max_patterns = options.patterns;
    sim_options.stop_at_full_coverage = false;
    sim_options.drop_detected = false;
    sim_options.response_observer =
        [&](std::uint32_t fi, std::size_t /*block*/,
            std::span<const std::uint64_t> faulty_po_words) {
            std::uint64_t folded[64];
            fold_block(faulty_po_words, options.misr_width, folded);
            for (int j = 0; j < 64; ++j) misr[fi].absorb(folded[j]);
        };
    source.reset();
    const fault::FaultSimResult sim_result =
        fault::run_fault_simulation(circuit, faults, source, sim_options);

    SessionResult result;
    result.golden_signature = golden.signature();
    result.signature_detects.resize(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const bool strobe = sim_result.detect_pattern[i] >= 0;
        const bool signature =
            misr[i].signature() != golden.signature();
        result.signature_detects[i] = signature;
        if (strobe) {
            ++result.strobe_detected;
            if (!signature) ++result.aliased;
        }
    }
    return result;
}

}  // namespace tpi::bist
