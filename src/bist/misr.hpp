#pragma once

#include <cstdint>
#include <span>

#include "util/lfsr.hpp"

namespace tpi::bist {

/// Multiple-input signature register: an LFSR with the circuit response
/// XORed into the state every cycle, compacting the whole test session
/// into one `width`-bit signature. A faulty response almost always yields
/// a different signature; the residual risk is *aliasing*, which shrinks
/// as 2^-width (measured by the aliasing bench).
class Misr {
public:
    /// `width` in [3, 64]; responses wider than the register fold onto
    /// taps modulo the width, as in hardware space compaction.
    explicit Misr(unsigned width, std::uint64_t seed = 0);

    /// Absorb one response vector (value of each circuit output for one
    /// test pattern).
    void absorb(std::uint64_t response_bits);

    /// Absorb one response bit per output, given as a bool span.
    void absorb_bits(std::span<const bool> response);

    std::uint64_t signature() const { return state_; }
    unsigned width() const { return width_; }

private:
    unsigned width_;
    std::uint64_t mask_;
    std::uint64_t taps_;
    std::uint64_t state_;
};

/// Fold an arbitrary-width response into `width` bits (output o XORs onto
/// bit o mod width) — the space-compactor in front of a narrow MISR.
std::uint64_t fold_response(std::span<const bool> response, unsigned width);

}  // namespace tpi::bist
