#include "bist/misr.hpp"

#include <bit>

#include "util/error.hpp"

namespace tpi::bist {

Misr::Misr(unsigned width, std::uint64_t seed)
    : width_(width),
      mask_(width == 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << width) - 1),
      taps_(util::Lfsr::taps_for_width(width)),
      state_(seed & mask_) {}

void Misr::absorb(std::uint64_t response_bits) {
    const std::uint64_t feedback = std::popcount(state_ & taps_) & 1u;
    state_ = (((state_ << 1) | feedback) ^ response_bits) & mask_;
}

void Misr::absorb_bits(std::span<const bool> response) {
    absorb(fold_response(response, width_));
}

std::uint64_t fold_response(std::span<const bool> response,
                            unsigned width) {
    require(width >= 1 && width <= 64, "fold_response: bad width");
    std::uint64_t folded = 0;
    for (std::size_t o = 0; o < response.size(); ++o)
        if (response[o])
            folded ^= std::uint64_t{1} << (o % width);
    return folded;
}

}  // namespace tpi::bist
