#include "serve/fault_plan.hpp"

#include <charconv>
#include <chrono>
#include <new>
#include <thread>

#include "util/error.hpp"

namespace tpi::serve {

namespace {

std::vector<std::string> split(std::string_view spec, char sep) {
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        const std::size_t end = spec.find(sep, begin);
        if (end == std::string_view::npos) {
            parts.emplace_back(spec.substr(begin));
            break;
        }
        parts.emplace_back(spec.substr(begin, end - begin));
        begin = end + 1;
    }
    return parts;
}

[[noreturn]] void bad_spec(std::string_view spec,
                           const std::string& reason) {
    throw ValidationError("bad fault spec '" + std::string(spec) +
                          "': " + reason +
                          " (expected <site>:<kind>[:<param>]"
                          "[:every=<N>])");
}

}  // namespace

void FaultPlan::add_rule(std::string_view spec) {
    const std::vector<std::string> parts = split(spec, ':');
    if (parts.size() < 2) bad_spec(spec, "missing kind");

    Rule rule;
    rule.site = parts[0];
    static constexpr std::string_view kSites[] = {
        "open", "plan", "sim", "lint", "score", "stats", "write"};
    bool site_known = false;
    for (const auto& site : kSites)
        if (rule.site == site) site_known = true;
    if (!site_known) bad_spec(spec, "unknown site '" + parts[0] + "'");

    const std::string& kind = parts[1];
    if (kind == "delay") {
        rule.action = {Kind::Delay, 10.0};
    } else if (kind == "alloc") {
        rule.action = {Kind::Alloc, 0.0};
    } else if (kind == "deadline") {
        rule.action = {Kind::Deadline, 0.0};
    } else if (kind == "torn") {
        rule.action = {Kind::Torn, 0.0};
        if (rule.site != "write")
            bad_spec(spec, "kind 'torn' only applies to site 'write'");
    } else {
        bad_spec(spec, "unknown kind '" + kind + "'");
    }

    for (std::size_t i = 2; i < parts.size(); ++i) {
        const std::string& part = parts[i];
        if (part.rfind("every=", 0) == 0) {
            const char* begin = part.c_str() + 6;
            const char* end = part.c_str() + part.size();
            const auto [ptr, ec] =
                std::from_chars(begin, end, rule.every);
            if (ec != std::errc{} || ptr != end || rule.every == 0)
                bad_spec(spec, "malformed every=<N>");
        } else if (rule.action.kind == Kind::Delay) {
            double value = 0.0;
            const char* begin = part.c_str();
            const char* end = begin + part.size();
            const auto [ptr, ec] = std::from_chars(begin, end, value);
            if (ec != std::errc{} || ptr != end || value < 0)
                bad_spec(spec, "malformed delay parameter");
            rule.action.param = value;
        } else {
            bad_spec(spec, "unexpected parameter '" + part + "'");
        }
    }
    rules_.push_back(std::move(rule));
}

std::optional<FaultPlan::Action> FaultPlan::poll(std::string_view site) {
    std::optional<Action> action;
    for (Rule& rule : rules_) {
        if (rule.site != site) continue;
        const std::uint64_t hit =
            rule.hits->fetch_add(1, std::memory_order_relaxed) + 1;
        if (hit % rule.every == 0 && !action) {
            action = rule.action;
            fired_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return action;
}

bool FaultPlan::act(std::string_view site) {
    const std::optional<Action> action = poll(site);
    if (!action) return false;
    switch (action->kind) {
        case Kind::Delay:
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(action->param));
            return false;
        case Kind::Alloc: throw std::bad_alloc();
        case Kind::Deadline: return true;
        case Kind::Torn: return false;  // handled by the writer via poll
    }
    return false;
}

}  // namespace tpi::serve
