#include "serve/session_cache.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tpi::serve {

void SessionCache::insert(std::shared_ptr<Session> session) {
    const std::size_t nodes = session->circuit.node_count();
    if (nodes > limits_.max_resident_nodes)
        throw LimitError("circuit of " + std::to_string(nodes) +
                         " nodes exceeds the resident-node cap of " +
                         std::to_string(limits_.max_resident_nodes));
    std::lock_guard lock(mutex_);
    // Replace an existing session of the same name in place (its old
    // shared_ptr stays valid for any in-flight request).
    std::erase_if(sessions_, [&](const std::shared_ptr<Session>& s) {
        return s->name == session->name;
    });
    evict_for(nodes);
    session->last_used = ++tick_;
    sessions_.push_back(std::move(session));
}

std::shared_ptr<Session> SessionCache::find(const std::string& name) {
    std::lock_guard lock(mutex_);
    for (auto& session : sessions_) {
        if (session->name == name) {
            session->last_used = ++tick_;
            ++hits_;
            return session;
        }
    }
    ++misses_;
    return nullptr;
}

bool SessionCache::close(const std::string& name) {
    std::lock_guard lock(mutex_);
    const std::size_t before = sessions_.size();
    std::erase_if(sessions_, [&](const std::shared_ptr<Session>& s) {
        return s->name == name;
    });
    return sessions_.size() != before;
}

SessionCache::Stats SessionCache::stats() const {
    std::lock_guard lock(mutex_);
    Stats stats;
    stats.sessions = sessions_.size();
    for (const auto& session : sessions_)
        stats.resident_nodes += session->circuit.node_count();
    stats.evictions = evictions_;
    stats.hits = hits_;
    stats.misses = misses_;
    return stats;
}

/// Evict least-recently-used sessions until an `incoming_nodes`-node
/// insertion fits both caps. Caller holds the mutex.
void SessionCache::evict_for(std::size_t incoming_nodes) {
    const auto resident = [&] {
        std::size_t total = 0;
        for (const auto& session : sessions_)
            total += session->circuit.node_count();
        return total;
    };
    while (!sessions_.empty() &&
           (sessions_.size() + 1 > limits_.max_sessions ||
            resident() + incoming_nodes > limits_.max_resident_nodes)) {
        const auto victim = std::min_element(
            sessions_.begin(), sessions_.end(),
            [](const std::shared_ptr<Session>& a,
               const std::shared_ptr<Session>& b) {
                return a->last_used < b->last_used;
            });
        sessions_.erase(victim);
        ++evictions_;
    }
}

}  // namespace tpi::serve
