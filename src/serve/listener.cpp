#include "serve/listener.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <thread>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace tpi::serve {

namespace {

[[noreturn]] void bind_error(const std::string& what) {
    throw Error("serve: " + what + ": " + std::strerror(errno));
}

int make_unix_listener(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw ValidationError("serve: socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) bind_error("socket");
    ::unlink(path.c_str());  // replace a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
        ::close(fd);
        bind_error("bind " + path);
    }
    if (::listen(fd, 64) < 0) {
        ::close(fd);
        bind_error("listen " + path);
    }
    return fd;
}

int make_tcp_listener(std::uint16_t port, std::uint16_t& bound_port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) bind_error("socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    // Loopback only: the protocol is unauthenticated.
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
        ::close(fd);
        bind_error("bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(fd, 64) < 0) {
        ::close(fd);
        bind_error("listen 127.0.0.1:" + std::to_string(port));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
        bound_port = ntohs(addr.sin_port);
    return fd;
}

/// Per-connection response reordering: requests may complete out of
/// order on the worker lanes, but the wire contract is responses in
/// request order. Worker callbacks park responses here; the connection
/// thread flushes the in-order prefix. shared_ptr ownership lets a
/// callback outlive a connection that died early.
struct ConnState {
    std::mutex mutex;
    std::map<std::uint64_t, std::string> ready;
    std::uint64_t next_submit = 0;
    std::uint64_t next_write = 0;
};

}  // namespace

Listener::Listener(Server& server, ListenerOptions options)
    : server_(server), options_(std::move(options)) {
    if (!options_.endpoint.valid())
        throw ValidationError(
            "serve: endpoint requires a socket path or a TCP port");
    listen_fd_ =
        !options_.endpoint.unix_path.empty()
            ? make_unix_listener(options_.endpoint.unix_path)
            : make_tcp_listener(options_.endpoint.tcp_port, bound_port_);
}

Listener::~Listener() { shutdown(); }

void Listener::start() {
    if (started_) return;
    started_ = true;
    server_.start();
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void Listener::shutdown() {
    if (shut_down_) return;
    shut_down_ = true;
    stopping_.store(true, std::memory_order_relaxed);
    // Finish every admitted request before tearing connections down:
    // their responses still flush below, because connection threads
    // only exit once their pending responses are written.
    server_.drain();
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard lock(threads_mutex_);
        threads.swap(connection_threads_);
    }
    for (auto& thread : threads)
        if (thread.joinable()) thread.join();
    if (!options_.endpoint.unix_path.empty())
        ::unlink(options_.endpoint.unix_path.c_str());
}

void Listener::accept_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 100);
        if (rc < 0 && errno != EINTR) return;
        if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        connections_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard lock(threads_mutex_);
        connection_threads_.emplace_back(
            [this, fd] { serve_connection(fd); });
    }
}

bool Listener::write_all(int fd, std::string_view data) {
    // Torn-write injection: split into 1-byte syscalls. The client
    // must still observe one well-formed line — the chaos tests hammer
    // exactly this path.
    std::size_t chunk = data.size();
    FaultPlan* faults = server_.options().faults;
    if (faults != nullptr) {
        const auto action = faults->poll("write");
        if (action && action->kind == FaultPlan::Kind::Torn) chunk = 1;
    }
    std::size_t off = 0;
    while (off < data.size()) {
        const std::size_t len = std::min(chunk, data.size() - off);
        const ssize_t n = ::send(fd, data.data() + off, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void Listener::serve_connection(int fd) {
    const auto state = std::make_shared<ConnState>();
    LineFramer framer(options_.max_line_bytes);
    util::Timer idle;  // reset on every completed request line
    bool peer_gone = false;
    bool protocol_dead = false;

    const auto pending = [&] {
        std::lock_guard lock(state->mutex);
        return state->next_write < state->next_submit;
    };
    // Flush the in-order prefix of completed responses.
    const auto flush_ready = [&] {
        for (;;) {
            std::string response;
            {
                std::lock_guard lock(state->mutex);
                const auto it = state->ready.find(state->next_write);
                if (it == state->ready.end()) return;
                response = std::move(it->second);
                state->ready.erase(it);
                ++state->next_write;
            }
            if (!write_all(fd, response + "\n")) peer_gone = true;
        }
    };

    while (!peer_gone) {
        flush_ready();
        const bool stop = stopping_.load(std::memory_order_relaxed);
        if ((stop || protocol_dead) && !pending()) break;
        if (options_.idle_timeout_ms > 0 &&
            idle.millis() > options_.idle_timeout_ms && !pending())
            break;  // slow-loris / dead-air guard

        pollfd pfd{fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 50);
        if (rc < 0 && errno != EINTR) break;
        if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;

        char buffer[4096];
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n > 0 && protocol_dead) continue;  // discard after overflow
        if (n == 0) {
            // Peer closed its write side: answer what was pipelined,
            // then leave.
            while (pending() && !peer_gone) {
                flush_ready();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            flush_ready();
            break;
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }

        std::vector<std::string> lines;
        const bool framed =
            framer.append(std::string_view(buffer,
                                           static_cast<std::size_t>(n)),
                          lines);
        for (std::string& line : lines) {
            if (line.empty()) continue;  // tolerate blank keep-alives
            idle.reset();
            std::uint64_t seq;
            {
                std::lock_guard lock(state->mutex);
                seq = state->next_submit++;
            }
            server_.submit(std::move(line),
                           [state, seq](std::string&& response) {
                               std::lock_guard lock(state->mutex);
                               state->ready.emplace(seq,
                                                    std::move(response));
                           });
        }
        if (!framed) {
            // One protocol error, then the connection must die: a
            // stream that overflowed the line cap can no longer be
            // framed reliably.
            std::uint64_t seq;
            {
                std::lock_guard lock(state->mutex);
                seq = state->next_submit++;
                state->ready.emplace(
                    seq,
                    error_response(
                        std::nullopt, Code::Protocol,
                        "request line exceeds " +
                            std::to_string(options_.max_line_bytes) +
                            " bytes; closing connection"));
            }
            protocol_dead = true;
        }
    }
    ::close(fd);
}

}  // namespace tpi::serve
