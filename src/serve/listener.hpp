#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace tpi::serve {

/// Where the daemon listens: a Unix-domain socket path, or a TCP port
/// on 127.0.0.1 (loopback only — the daemon speaks an unauthenticated
/// protocol and must not be exposed beyond the host).
struct Endpoint {
    std::string unix_path;  ///< non-empty: AF_UNIX at this path
    bool tcp = false;       ///< AF_INET on loopback
    std::uint16_t tcp_port = 0;  ///< 0 = kernel-picked (see port())

    bool valid() const { return !unix_path.empty() || tcp; }
};

struct ListenerOptions {
    Endpoint endpoint;

    /// Hard cap on one request line (bytes); an overlong line gets one
    /// `protocol` error and the connection is closed (the stream can no
    /// longer be framed reliably).
    std::size_t max_line_bytes = 1u << 20;

    /// A connection idle (no complete line) for this long is closed —
    /// the slow-loris guard. 0 disables.
    double idle_timeout_ms = 30'000.0;
};

/// Accepts connections and pumps the line protocol between sockets and
/// a Server: reads are framed by LineFramer, complete lines go through
/// Server::submit (admission control included), responses are written
/// back newline-terminated in request order per connection.
///
/// Lifecycle: construct (binds + listens, throws tpi::Error on bind
/// failure), start() (accept thread + one thread per connection),
/// shutdown() (stop accepting, drain the server, close every
/// connection, join all threads). The destructor calls shutdown().
class Listener {
public:
    Listener(Server& server, ListenerOptions options);
    ~Listener();

    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    void start();

    /// Graceful shutdown: stop accepting, let the server drain every
    /// admitted request, then close connections and join. Idempotent.
    void shutdown();

    /// The bound TCP port (useful when constructed with port 0 to let
    /// the kernel pick — tests do this). 0 for Unix endpoints.
    std::uint16_t port() const { return bound_port_; }

    std::uint64_t connections_accepted() const {
        return connections_.load(std::memory_order_relaxed);
    }

private:
    void accept_loop();
    void serve_connection(int fd);

    /// Write all of `data`, honouring torn-write fault injection (the
    /// "write" site splits the buffer into 1-byte syscalls — the client
    /// must still see one well-formed line, which the chaos tests
    /// assert). Returns false when the peer is gone.
    bool write_all(int fd, std::string_view data);

    Server& server_;
    ListenerOptions options_;
    int listen_fd_ = -1;
    std::uint16_t bound_port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> connections_{0};
    std::thread accept_thread_;
    std::mutex threads_mutex_;
    std::vector<std::thread> connection_threads_;
    bool started_ = false;
    bool shut_down_ = false;
};

}  // namespace tpi::serve
