#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "testability/cop.hpp"
#include "tpi/eval_engine.hpp"

namespace tpi::serve {

/// One cached planning session: a parsed netlist plus every derived
/// artifact a request would otherwise recompute — the collapsed fault
/// universe, the base COP state, and a warm version-stamped
/// tpi::EvalEngine.
///
/// Isolation invariants (asserted by tests/test_serve.cpp):
///  * `circuit`, `faults` and `cop` are immutable after open.
///  * the warm engine is only mutated through push/pop frames that a
///    request unwinds completely before releasing the session; on ANY
///    error path the engine is discarded (version bump) instead of
///    trusted, so a malformed or deadline-blown request can never leak a
///    half-applied frame into cached state.
struct Session {
    std::string name;
    netlist::Circuit circuit;
    /// Singleton (uncollapsed) universe — what the planners and the
    /// scoring engine optimise over (see fault::singleton_faults).
    fault::CollapsedFaults faults;
    /// Structurally collapsed universe — what fault simulation and the
    /// coverage estimate report over (matches the batch CLI exactly).
    fault::CollapsedFaults sim_faults;
    testability::CopResult cop;
    std::size_t repairs = 0;  ///< lenient-mode diagnostics at open

    /// Warm incremental engine, built lazily on the first score request
    /// and rebuilt whenever the requested objective differs from the one
    /// it was warmed for. `engine_version` counts builds/discards.
    std::unique_ptr<EvalEngine> engine;
    Objective engine_objective;
    std::uint64_t engine_version = 0;

    /// One request at a time per session (requests in the same batch may
    /// name the same session).
    std::mutex mutex;

    std::uint64_t last_used = 0;  ///< LRU tick, maintained by the cache
};

/// Thread-safe LRU map of named sessions with two resource bounds: a
/// session-count cap and a resident-node cap (the sum of node_count over
/// all cached circuits — the dominant memory driver, since faults, COP
/// and engine state are all O(nodes)). Opening a session past either
/// bound evicts least-recently-used sessions first; a single circuit
/// larger than either cap is refused outright (tpi::LimitError).
///
/// Sessions are handed out as shared_ptr: eviction drops the cache's
/// reference, while requests already holding the session finish safely
/// on their own reference.
class SessionCache {
public:
    struct Limits {
        std::size_t max_sessions = 8;
        std::size_t max_resident_nodes = 1u << 20;
    };

    struct Stats {
        std::size_t sessions = 0;
        std::size_t resident_nodes = 0;
        std::uint64_t evictions = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    explicit SessionCache(Limits limits) : limits_(limits) {}

    /// Insert (or replace) `session` under its name, evicting as needed.
    /// Throws tpi::LimitError when the circuit alone exceeds a cap.
    void insert(std::shared_ptr<Session> session);

    /// Look up and LRU-touch; nullptr when absent (counts a miss).
    std::shared_ptr<Session> find(const std::string& name);

    /// Drop a session; false when absent.
    bool close(const std::string& name);

    Stats stats() const;

private:
    void evict_for(std::size_t incoming_nodes);

    Limits limits_;
    mutable std::mutex mutex_;
    std::vector<std::shared_ptr<Session>> sessions_;  // small N: linear
    std::uint64_t tick_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace tpi::serve
