#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/report.hpp"
#include "serve/fault_plan.hpp"
#include "serve/protocol.hpp"
#include "serve/session_cache.hpp"
#include "util/deadline.hpp"

namespace tpi::serve {

struct ServerOptions {
    SessionCache::Limits session_limits;

    /// Admission control: pending requests beyond this bound are shed
    /// with a structured `overloaded` error and a retry-after hint
    /// instead of queueing unboundedly.
    std::size_t max_queue = 64;

    /// Worker lanes a dispatch batch may occupy on the shared
    /// work-stealing pool. 0 = hardware concurrency. Request-internal
    /// engines always run with threads = 1 — concurrency comes from
    /// batching requests, and the pool's for_each is not reentrant.
    unsigned workers = 0;

    /// Requests drained from the queue per pool batch. 0 = 2 * workers.
    std::size_t max_batch = 0;

    /// Per-request wall-clock budget when the request does not set
    /// deadline_ms. 0 = unlimited.
    double default_deadline_ms = 0.0;

    /// Hard cap a request's deadline_ms is clamped to, so one client
    /// cannot hold a worker lane arbitrarily long. 0 = no cap.
    double max_deadline_ms = 10'000.0;

    /// Largest accepted inline netlist text on open (bytes).
    std::size_t max_circuit_bytes = 4u << 20;

    /// Optional deterministic fault-injection plan (not owned).
    FaultPlan* faults = nullptr;
};

struct ServerStats {
    std::uint64_t accepted = 0;        ///< requests admitted to the queue
    std::uint64_t completed = 0;       ///< responses produced by workers
    std::uint64_t shed_overload = 0;   ///< refused: queue full
    std::uint64_t shed_draining = 0;   ///< refused: drain in progress
    std::uint64_t request_errors = 0;  ///< `ok: false` responses
    std::size_t queue_depth = 0;
    bool draining = false;
};

/// The long-lived planning daemon's core: parse -> admit -> execute ->
/// respond, independent of any transport. The socket listener feeds
/// `submit`; tests and the golden transcripts drive `execute_line`
/// directly.
///
/// Robustness contract:
///  * every input line yields exactly one single-line JSON response —
///    malformed requests produce `ok: false` with a structured code,
///    never an exception or a dropped response;
///  * the bounded queue sheds with Code::Overloaded + retry_after_ms
///    once full, and with Code::Draining after drain() began;
///  * a request that fails or blows its deadline leaves all cached
///    session state byte-identical (warm engines are unwound on
///    success and discarded on any error path — never committed);
///  * drain() finishes every admitted request before returning.
class Server {
public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Run one request line through the full pipeline synchronously and
    /// return the response line (no trailing newline). Never throws.
    std::string execute_line(const std::string& line);

    /// Admission-controlled asynchronous path: `respond` is invoked
    /// exactly once with the response line — immediately (on this
    /// thread) when the request is shed, later (on a worker lane) once
    /// a dispatch batch executes it. Requires start().
    void submit(std::string line,
                std::function<void(std::string&&)> respond);

    /// Spawn the dispatcher thread (idempotent).
    void start();

    /// Graceful drain: refuse new submissions, execute everything
    /// already admitted, then stop the dispatcher. Idempotent; called
    /// by the destructor.
    void drain();

    bool draining() const {
        return draining_.load(std::memory_order_relaxed);
    }

    ServerStats stats() const;
    SessionCache& sessions() { return cache_; }
    const ServerOptions& options() const { return options_; }

    /// Deterministic byte-fingerprint of a session's cached state (COP
    /// vectors, engine version, warm-engine scores) — the differential
    /// tests assert it is unchanged across failing requests. Empty when
    /// the session does not exist.
    std::string session_fingerprint(const std::string& name);

private:
    struct Job {
        std::string line;
        std::function<void(std::string&&)> respond;
    };

    void dispatch_loop();
    void run_batch(std::deque<Job>& batch);
    double retry_hint_ms(std::size_t queue_depth) const;

    // Request execution (throws; execute_line catches and classifies).
    std::string dispatch(const Request& request, obs::Sink& sink,
                         obs::RunReport& report, bool& truncated);
    std::string do_open(const Request& request, obs::RunReport& report);
    std::string do_stats(Session& session, obs::RunReport& report);
    std::string do_plan(const Request& request, Session& session,
                        util::Deadline& deadline, obs::Sink& sink,
                        obs::RunReport& report, bool& truncated);
    std::string do_sim(const Request& request, Session& session,
                       util::Deadline& deadline, obs::Sink& sink,
                       obs::RunReport& report, bool& truncated);
    std::string do_lint(const Request& request, Session& session,
                        util::Deadline& deadline, obs::Sink& sink,
                        obs::RunReport& report, bool& truncated);
    std::string do_analyze(const Request& request, Session& session,
                           util::Deadline& deadline, obs::Sink& sink,
                           obs::RunReport& report, bool& truncated);
    std::string do_score(const Request& request, Session& session,
                         obs::Sink& sink, obs::RunReport& report);
    std::string do_info();

    ServerOptions options_;
    SessionCache cache_;
    unsigned workers_;
    std::size_t max_batch_;

    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Job> queue_;
    std::thread dispatcher_;
    bool started_ = false;
    std::atomic<bool> draining_{false};

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> shed_overload_{0};
    std::atomic<std::uint64_t> shed_draining_{0};
    std::atomic<std::uint64_t> request_errors_{0};
    std::atomic<double> avg_request_ms_{25.0};
};

}  // namespace tpi::serve
