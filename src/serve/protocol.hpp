#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/test_point.hpp"
#include "netlist/validate.hpp"
#include "util/error.hpp"

namespace tpi::serve {

/// Structured protocol error codes, carried in every `ok: false`
/// response. Each maps onto the PR 1 error taxonomy through
/// `taxonomy_exit_code` so a protocol client and a CLI script read the
/// same categories:
///
///   usage/not_found -> 2, protocol/parse -> 3, validation -> 4,
///   limit/deadline/overloaded/draining -> 5, internal -> 1.
enum class Code : std::uint8_t {
    Ok,
    Protocol,    ///< request line is not a valid request document
    Usage,       ///< unknown method / unknown key / malformed field
    NotFound,    ///< request names a session that is not cached
    Parse,       ///< netlist text failed to parse (tpi::ParseError)
    Validation,  ///< structurally broken input (tpi::ValidationError)
    Limit,       ///< explicit resource limit exceeded (tpi::LimitError)
    Deadline,    ///< per-request budget expired with no partial result
    Overloaded,  ///< admission queue full; retry after the hint
    Draining,    ///< daemon is shutting down; no new work accepted
    Internal,    ///< unclassified failure (cached state was discarded)
};

/// Stable wire name of a code ("overloaded", "not_found", ...).
std::string_view code_name(Code code);

/// The documented CLI exit code the category corresponds to.
int taxonomy_exit_code(Code code);

/// Protocol-layer error: thrown by request parsing/validation and by the
/// dispatcher, turned into an `ok: false` response by the server. Plugs
/// into the tpi::Error taxonomy so embedders that call the parser
/// directly still get a classified exception.
class ServeError : public Error {
public:
    ServeError(Code code, const std::string& message)
        : Error(message), serve_code_(code) {}

    Code serve_code() const { return serve_code_; }

    ErrorCode code() const override {
        switch (taxonomy_exit_code(serve_code_)) {
            case 3: return ErrorCode::Parse;
            case 4: return ErrorCode::Validation;
            case 5: return ErrorCode::Limit;
            default: return ErrorCode::Generic;
        }
    }

private:
    Code serve_code_;
};

/// One parsed request of the line-delimited JSON protocol. A request is
/// a single-line JSON object; unknown keys are rejected (Code::Usage) so
/// client typos fail loudly instead of silently planning with defaults.
///
///   {"id":1,"method":"open","session":"s","circuit":"INPUT(a)\n...",
///    "format":"bench","mode":"lenient"}
///   {"id":2,"method":"plan","session":"s",
///    "options":{"budget":2,"patterns":64,"planner":"dp","seed":1}}
///   {"id":3,"method":"score","session":"s",
///    "points":[{"node":"n1","kind":"OP"}]}
///
/// Methods: ping, info, open, close, stats, plan, sim, lint, analyze,
/// score.
struct Request {
    std::optional<std::uint64_t> id;  ///< echoed back in the response
    std::string method;
    std::string session;

    // open --------------------------------------------------------------
    std::string circuit;            ///< netlist text, or suite name
    std::string format = "bench";   ///< bench | verilog | suite
    netlist::ValidateMode mode = netlist::ValidateMode::Lenient;

    // options (plan/sim/lint/score) --------------------------------------
    int budget = 8;
    std::size_t patterns = 32768;
    std::string planner = "dp";
    std::uint64_t seed = 1;
    double deadline_ms = 0.0;  ///< 0 = server default; must be > 0 if set
    double eval_epsilon = 0.0;
    bool exact_eval = false;
    bool simd_eval = true;  ///< plan: lane-parallel candidate scoring
    bool prune_lint = false;
    bool prune_analysis = false;  ///< plan: zero-gain observe pruning
    std::size_t max_findings = 64;
    // lint/analyze work caps (validated, not clamped).
    std::size_t max_implication_nodes = 2048;
    std::size_t max_implication_steps = 200'000;
    std::size_t max_untestable = 4096;
    unsigned sim_width = 64;       ///< sim: pattern width (0 = auto)
    std::uint64_t drop_after = 0;  ///< sim: n-detect drop target (0 = off)

    // score --------------------------------------------------------------
    /// (node name, kind) pairs; names resolve against the session's
    /// circuit at execution time, kinds use the tp_kind_name vocabulary
    /// ("OP", "CP-AND", "CP-OR", "CP-XOR").
    std::vector<std::pair<std::string, netlist::TpKind>> points;

    /// Attach the per-request run report ("report" response key). On by
    /// default per the run-report contract; golden transcript tests turn
    /// it off to stay byte-stable.
    bool want_report = true;
};

/// Parse and strictly validate one request line. Throws ServeError with
/// Code::Protocol (not a JSON object / bad id) or Code::Usage (unknown
/// method or key, malformed field) or Code::Validation (well-typed but
/// out-of-range value, e.g. deadline_ms <= 0).
Request parse_request(std::string_view line);

/// Recover just the `id` of a request line that failed full parsing, so
/// even an error response can be correlated. Returns nullopt when the
/// line is not an object with a non-negative integer "id".
std::optional<std::uint64_t> peek_request_id(std::string_view line);

/// Serialise `text` as a JSON string literal (quotes included).
std::string json_quote(std::string_view text);

/// Build the `ok: false` response line (no trailing newline).
/// `retry_after_ms >= 0` adds the shedding hint field.
std::string error_response(std::optional<std::uint64_t> id, Code code,
                           const std::string& message,
                           double retry_after_ms = -1.0);

/// Build the `ok: true` response line (no trailing newline). `result`
/// and `report` are pre-rendered JSON objects; `report` may be empty to
/// omit the key.
std::string ok_response(std::optional<std::uint64_t> id,
                        const std::string& result,
                        const std::string& report);

/// Splits a byte stream into protocol lines with a hard per-line size
/// cap. Feed raw reads through `append`; completed lines come out in
/// arrival order. A line longer than `max_line` bytes trips the
/// `overflowed` latch — the connection can no longer be framed reliably
/// and must be closed after one protocol error.
class LineFramer {
public:
    explicit LineFramer(std::size_t max_line) : max_line_(max_line) {}

    /// Consume `data`, appending completed lines to `lines`. Returns
    /// false once the size cap is exceeded (sticky).
    bool append(std::string_view data, std::vector<std::string>& lines);

    bool overflowed() const { return overflowed_; }

    /// Bytes of the current, incomplete line (slow-loris diagnostics).
    std::size_t pending_bytes() const { return buffer_.size(); }

private:
    std::size_t max_line_;
    std::string buffer_;
    bool overflowed_ = false;
};

}  // namespace tpi::serve
