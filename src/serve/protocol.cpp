#include "serve/protocol.hpp"

#include <cmath>
#include <initializer_list>
#include <limits>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace tpi::serve {

namespace {

using obs::json::Value;

[[noreturn]] void fail(Code code, const std::string& message) {
    throw ServeError(code, message);
}

/// Reject keys outside `allowed` (strict protocol: typos fail loudly).
void check_keys(const Value& object, std::string_view where,
                std::initializer_list<std::string_view> allowed) {
    for (const auto& [key, value] : object.object) {
        (void)value;
        bool known = false;
        for (const auto& name : allowed)
            if (key == name) known = true;
        if (!known)
            fail(Code::Usage, "unknown key '" + key + "' in " +
                                  std::string(where));
    }
}

std::string need_string(const Value& object, std::string_view key,
                        std::string_view where) {
    const Value* v = object.find(key);
    if (v == nullptr || !v->is_string())
        fail(Code::Usage, std::string(where) + " requires a string '" +
                              std::string(key) + "'");
    return v->string;
}

std::string opt_string(const Value& object, std::string_view key,
                       std::string fallback) {
    const Value* v = object.find(key);
    if (v == nullptr) return fallback;
    if (!v->is_string())
        fail(Code::Usage, "'" + std::string(key) + "' must be a string");
    return v->string;
}

/// A non-negative integer field (id, seed, patterns, ...). JSON numbers
/// are doubles; require an exact integral value in range.
std::uint64_t opt_uint(const Value& object, std::string_view key,
                       std::uint64_t fallback,
                       std::uint64_t max = 1ull << 53) {
    const Value* v = object.find(key);
    if (v == nullptr) return fallback;
    if (!v->is_number() || v->number < 0 ||
        v->number != std::floor(v->number) ||
        v->number > static_cast<double>(max))
        fail(Code::Usage, "'" + std::string(key) +
                              "' must be a non-negative integer");
    return static_cast<std::uint64_t>(v->number);
}

double opt_double(const Value& object, std::string_view key,
                  double fallback) {
    const Value* v = object.find(key);
    if (v == nullptr) return fallback;
    if (!v->is_number())
        fail(Code::Usage, "'" + std::string(key) + "' must be a number");
    return v->number;
}

bool opt_bool(const Value& object, std::string_view key, bool fallback) {
    const Value* v = object.find(key);
    if (v == nullptr) return fallback;
    if (!v->is_bool())
        fail(Code::Usage, "'" + std::string(key) + "' must be a boolean");
    return v->boolean;
}

netlist::TpKind parse_kind(const std::string& name) {
    for (int k = 0; k < netlist::kTpKindCount; ++k) {
        const auto kind = static_cast<netlist::TpKind>(k);
        if (name == netlist::tp_kind_name(kind)) return kind;
    }
    fail(Code::Validation,
         "unknown test point kind '" + name +
             "' (expected OP, CP-AND, CP-OR or CP-XOR)");
}

void parse_options(const Value& options, Request& request) {
    check_keys(options, "options",
               {"budget", "patterns", "planner", "seed", "deadline_ms",
                "eval_epsilon", "exact_eval", "simd_eval", "prune_lint",
                "prune_analysis", "max_findings",
                "max_implication_nodes", "max_implication_steps",
                "max_untestable", "sim_width", "drop_after"});
    request.budget = static_cast<int>(
        opt_uint(options, "budget", static_cast<std::uint64_t>(request.budget),
                 1u << 20));
    request.patterns =
        static_cast<std::size_t>(opt_uint(options, "patterns",
                                          request.patterns, 1u << 26));
    request.planner = opt_string(options, "planner", request.planner);
    request.seed = opt_uint(options, "seed", request.seed,
                            std::numeric_limits<std::uint64_t>::max());
    request.deadline_ms =
        opt_double(options, "deadline_ms", request.deadline_ms);
    request.eval_epsilon =
        opt_double(options, "eval_epsilon", request.eval_epsilon);
    request.exact_eval =
        opt_bool(options, "exact_eval", request.exact_eval);
    request.simd_eval =
        opt_bool(options, "simd_eval", request.simd_eval);
    request.prune_lint =
        opt_bool(options, "prune_lint", request.prune_lint);
    request.prune_analysis =
        opt_bool(options, "prune_analysis", request.prune_analysis);
    request.max_findings = static_cast<std::size_t>(
        opt_uint(options, "max_findings", request.max_findings, 1u << 20));
    request.max_implication_nodes = static_cast<std::size_t>(
        opt_uint(options, "max_implication_nodes",
                 request.max_implication_nodes, 1u << 24));
    request.max_implication_steps = static_cast<std::size_t>(
        opt_uint(options, "max_implication_steps",
                 request.max_implication_steps, 1u << 30));
    request.max_untestable = static_cast<std::size_t>(
        opt_uint(options, "max_untestable", request.max_untestable,
                 1u << 24));
    request.sim_width = static_cast<unsigned>(
        opt_uint(options, "sim_width", request.sim_width, 512));
    request.drop_after =
        opt_uint(options, "drop_after", request.drop_after,
                 std::numeric_limits<std::uint64_t>::max());

    if (request.patterns == 0)
        fail(Code::Validation, "'patterns' must be positive");
    if (options.find("deadline_ms") != nullptr &&
        !(request.deadline_ms > 0.0 &&
          std::isfinite(request.deadline_ms)))
        fail(Code::Validation,
             "'deadline_ms' must be a positive finite number");
    if (request.eval_epsilon < 0.0 ||
        !std::isfinite(request.eval_epsilon))
        fail(Code::Validation, "'eval_epsilon' must be non-negative");
    if (request.planner != "dp" && request.planner != "greedy" &&
        request.planner != "random")
        fail(Code::Validation, "unknown planner '" + request.planner +
                                   "' (expected dp, greedy or random)");
    if (!(request.sim_width == 0 || request.sim_width == 64 ||
          request.sim_width == 128 || request.sim_width == 256 ||
          request.sim_width == 512))
        fail(Code::Validation,
             "'sim_width' must be 0 (auto), 64, 128, 256 or 512");
}

void parse_points(const Value& points, Request& request) {
    if (!points.is_array())
        fail(Code::Usage, "'points' must be an array");
    for (const Value& entry : points.array) {
        if (!entry.is_object())
            fail(Code::Usage, "each point must be an object");
        check_keys(entry, "point", {"node", "kind"});
        const std::string node = need_string(entry, "node", "point");
        const std::string kind = need_string(entry, "kind", "point");
        request.points.emplace_back(node, parse_kind(kind));
    }
}

const Value* parse_object_line(std::string_view line, Value& doc) {
    std::string error;
    if (!obs::json::parse(line, doc, error))
        fail(Code::Protocol, "request is not valid JSON: " + error);
    if (!doc.is_object())
        fail(Code::Protocol, "request must be a JSON object");
    return &doc;
}

}  // namespace

std::string_view code_name(Code code) {
    switch (code) {
        case Code::Ok: return "ok";
        case Code::Protocol: return "protocol";
        case Code::Usage: return "usage";
        case Code::NotFound: return "not_found";
        case Code::Parse: return "parse";
        case Code::Validation: return "validation";
        case Code::Limit: return "limit";
        case Code::Deadline: return "deadline";
        case Code::Overloaded: return "overloaded";
        case Code::Draining: return "draining";
        case Code::Internal: return "internal";
    }
    return "internal";
}

int taxonomy_exit_code(Code code) {
    switch (code) {
        case Code::Ok: return 0;
        case Code::Usage:
        case Code::NotFound: return 2;
        case Code::Protocol:
        case Code::Parse: return 3;
        case Code::Validation: return 4;
        case Code::Limit:
        case Code::Deadline:
        case Code::Overloaded:
        case Code::Draining: return 5;
        case Code::Internal: return 1;
    }
    return 1;
}

Request parse_request(std::string_view line) {
    Value doc;
    const Value& root = *parse_object_line(line, doc);
    check_keys(root, "request",
               {"id", "method", "session", "circuit", "format", "mode",
                "options", "points", "report"});

    Request request;
    if (root.find("id") != nullptr)
        request.id = opt_uint(root, "id", 0);
    request.method = need_string(root, "method", "request");
    request.session = opt_string(root, "session", "");
    request.circuit = opt_string(root, "circuit", "");
    request.format = opt_string(root, "format", "bench");
    request.want_report = opt_bool(root, "report", true);

    const std::string mode = opt_string(root, "mode", "lenient");
    if (mode == "strict")
        request.mode = netlist::ValidateMode::Strict;
    else if (mode == "lenient")
        request.mode = netlist::ValidateMode::Lenient;
    else
        fail(Code::Usage, "'mode' must be strict or lenient");
    if (request.format != "bench" && request.format != "verilog" &&
        request.format != "suite" && request.format != "file")
        fail(Code::Usage,
             "'format' must be bench, verilog, suite or file");

    if (const Value* options = root.find("options")) {
        if (!options->is_object())
            fail(Code::Usage, "'options' must be an object");
        parse_options(*options, request);
    }
    if (const Value* points = root.find("points"))
        parse_points(*points, request);

    static constexpr std::string_view kMethods[] = {
        "ping", "info", "open",    "close", "stats",
        "plan", "sim",  "lint",    "analyze", "score"};
    bool known = false;
    for (const auto& m : kMethods)
        if (request.method == m) known = true;
    if (!known)
        fail(Code::Usage, "unknown method '" + request.method + "'");

    const bool needs_session = request.method != "ping" &&
                               request.method != "info";
    if (needs_session && request.session.empty())
        fail(Code::Usage,
             "method '" + request.method + "' requires a 'session'");
    if (request.method == "open" && request.circuit.empty())
        fail(Code::Usage, "method 'open' requires a 'circuit'");
    if (request.method == "score" && request.points.empty())
        fail(Code::Usage, "method 'score' requires 'points'");
    return request;
}

std::optional<std::uint64_t> peek_request_id(std::string_view line) {
    Value doc;
    std::string error;
    if (!obs::json::parse(line, doc, error) || !doc.is_object())
        return std::nullopt;
    const Value* id = doc.find("id");
    if (id == nullptr || !id->is_number() || id->number < 0 ||
        id->number != std::floor(id->number) ||
        id->number > 9007199254740992.0)
        return std::nullopt;
    return static_cast<std::uint64_t>(id->number);
}

std::string json_quote(std::string_view text) {
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xF];
                    out += hex[c & 0xF];
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

namespace {

std::string id_fragment(std::optional<std::uint64_t> id) {
    return id ? std::to_string(*id) : "null";
}

}  // namespace

std::string error_response(std::optional<std::uint64_t> id, Code code,
                           const std::string& message,
                           double retry_after_ms) {
    std::string out = "{\"id\": " + id_fragment(id) +
                      ", \"ok\": false, \"error\": {\"code\": " +
                      json_quote(code_name(code)) +
                      ", \"message\": " + json_quote(message);
    if (retry_after_ms >= 0.0)
        out += ", \"retry_after_ms\": " + obs::fmt_double(retry_after_ms);
    out += "}}";
    return out;
}

std::string ok_response(std::optional<std::uint64_t> id,
                        const std::string& result,
                        const std::string& report) {
    std::string out = "{\"id\": " + id_fragment(id) +
                      ", \"ok\": true, \"result\": " + result;
    if (!report.empty()) out += ", \"report\": " + report;
    out += "}";
    return out;
}

bool LineFramer::append(std::string_view data,
                        std::vector<std::string>& lines) {
    if (overflowed_) return false;
    for (const char c : data) {
        if (c == '\n') {
            // Tolerate CRLF clients.
            if (!buffer_.empty() && buffer_.back() == '\r')
                buffer_.pop_back();
            lines.push_back(std::move(buffer_));
            buffer_.clear();
            continue;
        }
        if (buffer_.size() >= max_line_) {
            overflowed_ = true;
            buffer_.clear();
            return false;
        }
        buffer_ += c;
    }
    return true;
}

}  // namespace tpi::serve
