#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tpi::serve {

/// Deterministic fault-injection plan for the serve subsystem's chaos
/// tests. A plan is a list of rules, each bound to a named site in the
/// request path; the daemon polls `poll(site)` at those sites and acts
/// on whatever the plan returns. Firing is counted per rule, so a rule
/// with `every = N` fires on hits N, 2N, 3N, ... — fully reproducible
/// for a given request order, and independent of wall clock.
///
/// Rule spec grammar (one rule per `--fault` flag):
///
///     <site>:<kind>[:<param>][:every=<N>]
///
///   site   open | plan | sim | lint | score | stats | write
///   kind   delay     sleep <param> milliseconds (default 10)
///          alloc     throw std::bad_alloc
///          deadline  cancel the request's deadline (forces the
///                    truncated best-so-far path)
///          torn      split the response write into 1-byte syscalls
///                    (site `write` only)
///   every  fire on every N-th hit of the site (default 1)
///
/// Example: `plan:delay:25:every=3` delays every third plan request by
/// 25 ms; `open:alloc:every=13` makes every 13th open fail allocation.
class FaultPlan {
public:
    enum class Kind : std::uint8_t { Delay, Alloc, Deadline, Torn };

    struct Action {
        Kind kind;
        double param = 0.0;  ///< delay: milliseconds
    };

    FaultPlan() = default;

    /// Parse one rule spec and add it. Throws tpi::ValidationError on a
    /// malformed spec, unknown site or unknown kind.
    void add_rule(std::string_view spec);

    /// Consult the plan at a named site. Counts one hit on every rule
    /// bound to the site; returns the action of the first rule whose
    /// turn it is, or nullopt. Thread-safe (per-rule atomic counters).
    std::optional<Action> poll(std::string_view site);

    bool empty() const { return rules_.empty(); }
    std::size_t fired() const {
        return fired_.load(std::memory_order_relaxed);
    }

    /// Perform the non-torn actions in-line: sleep for Delay, throw
    /// std::bad_alloc for Alloc. Deadline is returned to the caller
    /// (only the request executor can reach the request's deadline).
    /// Returns true when the caller must cancel the request deadline.
    bool act(std::string_view site);

private:
    struct Rule {
        std::string site;
        Action action;
        std::uint64_t every = 1;
        std::unique_ptr<std::atomic<std::uint64_t>> hits =
            std::make_unique<std::atomic<std::uint64_t>>(0);
    };

    std::vector<Rule> rules_;
    std::atomic<std::uint64_t> fired_{0};
};

}  // namespace tpi::serve
