#include "serve/server.hpp"

#include <algorithm>
#include <exception>
#include <new>
#include <utility>

#include "analysis/analysis.hpp"
#include "analysis/prune.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "gen/benchmarks.hpp"
#include "lint/lint.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/tpb_io.hpp"
#include "netlist/verilog_io.hpp"
#include "obs/report.hpp"
#include "sim/pattern.hpp"
#include "testability/detect.hpp"
#include "tpi/evaluate.hpp"
#include "tpi/planners.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace tpi::serve {

namespace {

/// write_metrics_json pretty-prints; a response is one line. Strings
/// escape every control character, so a raw newline is always document
/// structure: drop it together with the following indentation.
std::string compact_json(std::string_view pretty) {
    std::string out;
    out.reserve(pretty.size());
    std::size_t i = 0;
    while (i < pretty.size()) {
        const char c = pretty[i];
        if (c == '\n') {
            ++i;
            while (i < pretty.size() && pretty[i] == ' ') ++i;
            continue;
        }
        out += c;
        ++i;
    }
    return out;
}

bool same_objective(const Objective& a, const Objective& b) {
    return a.kind == b.kind && a.num_patterns == b.num_patterns &&
           a.threshold == b.threshold;
}

std::string num(double value) { return obs::fmt_double(value); }
std::string num(std::uint64_t value) { return std::to_string(value); }
std::string boolean(bool value) { return value ? "true" : "false"; }

/// RAII isolation for the session's warm engine: push frames through the
/// guard, `unwind()` on success; if the guard dies armed (any exception
/// on the request path), the engine is *discarded* — never trusted with
/// possibly half-applied frames — and the version stamp records it.
class EngineFrameGuard {
public:
    explicit EngineFrameGuard(Session& session) : session_(session) {}

    ~EngineFrameGuard() {
        if (pushed_ == 0) return;
        session_.engine.reset();
        ++session_.engine_version;
    }

    void push(const netlist::TestPoint& point) {
        session_.engine->push(point);
        ++pushed_;
    }

    void unwind() {
        while (pushed_ > 0) {
            session_.engine->pop();
            --pushed_;
        }
    }

private:
    Session& session_;
    std::size_t pushed_ = 0;
};

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      cache_(options.session_limits),
      workers_(util::ThreadPool::resolve(options.workers)),
      max_batch_(options.max_batch > 0 ? options.max_batch
                                       : std::size_t{2} * workers_) {}

Server::~Server() { drain(); }

void Server::start() {
    std::lock_guard lock(queue_mutex_);
    if (started_) return;
    started_ = true;
    dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void Server::submit(std::string line,
                    std::function<void(std::string&&)> respond) {
    {
        std::lock_guard lock(queue_mutex_);
        if (draining_.load(std::memory_order_relaxed)) {
            shed_draining_.fetch_add(1, std::memory_order_relaxed);
            respond(error_response(peek_request_id(line), Code::Draining,
                                   "daemon is draining; request refused"));
            return;
        }
        if (queue_.size() >= options_.max_queue) {
            shed_overload_.fetch_add(1, std::memory_order_relaxed);
            respond(error_response(
                peek_request_id(line), Code::Overloaded,
                "admission queue full (" +
                    std::to_string(options_.max_queue) +
                    " requests pending); retry after the hint",
                retry_hint_ms(queue_.size())));
            return;
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        queue_.push_back(Job{std::move(line), std::move(respond)});
    }
    queue_cv_.notify_one();
}

void Server::drain() {
    {
        std::lock_guard lock(queue_mutex_);
        draining_.store(true, std::memory_order_relaxed);
    }
    queue_cv_.notify_all();
    if (dispatcher_.joinable()) dispatcher_.join();
}

void Server::dispatch_loop() {
    for (;;) {
        std::deque<Job> batch;
        {
            std::unique_lock lock(queue_mutex_);
            queue_cv_.wait(lock, [&] {
                return !queue_.empty() ||
                       draining_.load(std::memory_order_relaxed);
            });
            if (queue_.empty()) return;  // draining and nothing left
            const std::size_t take = std::min(queue_.size(), max_batch_);
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }
        run_batch(batch);
    }
}

void Server::run_batch(std::deque<Job>& batch) {
    const auto run_one = [&](std::size_t i) {
        util::Timer timer;
        std::string response = execute_line(batch[i].line);
        const double ms = timer.millis();
        // EWMA service-time estimate feeding the retry-after hint.
        double old = avg_request_ms_.load(std::memory_order_relaxed);
        avg_request_ms_.store(0.8 * old + 0.2 * ms,
                              std::memory_order_relaxed);
        batch[i].respond(std::move(response));
        completed_.fetch_add(1, std::memory_order_relaxed);
    };
    if (batch.size() <= 1 || workers_ <= 1) {
        for (std::size_t i = 0; i < batch.size(); ++i) run_one(i);
        return;
    }
    util::ThreadPool::shared().for_each(
        batch.size(), workers_,
        [&](std::size_t i, unsigned /*lane*/) { run_one(i); });
}

double Server::retry_hint_ms(std::size_t queue_depth) const {
    const double avg = avg_request_ms_.load(std::memory_order_relaxed);
    const double hint =
        avg * (static_cast<double>(queue_depth) + 1.0) /
        static_cast<double>(workers_ > 0 ? workers_ : 1);
    return std::clamp(hint, 1.0, 60'000.0);
}

ServerStats Server::stats() const {
    ServerStats stats;
    stats.accepted = accepted_.load(std::memory_order_relaxed);
    stats.completed = completed_.load(std::memory_order_relaxed);
    stats.shed_overload = shed_overload_.load(std::memory_order_relaxed);
    stats.shed_draining = shed_draining_.load(std::memory_order_relaxed);
    stats.request_errors =
        request_errors_.load(std::memory_order_relaxed);
    {
        std::lock_guard lock(queue_mutex_);
        stats.queue_depth = queue_.size();
    }
    stats.draining = draining_.load(std::memory_order_relaxed);
    return stats;
}

std::string Server::execute_line(const std::string& line) {
    Request request;
    try {
        request = parse_request(line);
    } catch (const ServeError& e) {
        request_errors_.fetch_add(1, std::memory_order_relaxed);
        return error_response(peek_request_id(line), e.serve_code(),
                              e.what());
    } catch (const std::exception& e) {
        request_errors_.fetch_add(1, std::memory_order_relaxed);
        return error_response(peek_request_id(line), Code::Internal,
                              e.what());
    }

    obs::Sink sink;
    obs::RunReport report;
    report.command = request.method;
    report.circuit = request.session;
    report.threads = 1;
    util::Timer timer;

    Code code = Code::Ok;
    std::string message;
    std::string result;
    bool truncated = false;
    try {
        result = dispatch(request, sink, report, truncated);
    } catch (const ServeError& e) {
        code = e.serve_code();
        message = e.what();
    } catch (const ParseError& e) {
        code = Code::Parse;
        message = e.what();
    } catch (const ValidationError& e) {
        code = Code::Validation;
        message = e.what();
    } catch (const LimitError& e) {
        code = Code::Limit;
        message = e.what();
    } catch (const DeadlineError& e) {
        code = Code::Deadline;
        message = e.what();
    } catch (const std::bad_alloc&) {
        code = Code::Internal;
        message = "allocation failure (cached engine state discarded)";
    } catch (const Error& e) {
        code = Code::Internal;
        message = e.what();
    } catch (const std::exception& e) {
        code = Code::Internal;
        message = e.what();
    }

    report.truncated = truncated;
    report.exit_code =
        code == Code::Ok ? (truncated ? 5 : 0) : taxonomy_exit_code(code);
    report.wall_ms = timer.millis();

    std::string rendered_report;
    if (request.want_report)
        rendered_report =
            compact_json(obs::to_metrics_json(report, &sink));

    if (code != Code::Ok) {
        request_errors_.fetch_add(1, std::memory_order_relaxed);
        std::string response = error_response(request.id, code, message);
        if (!rendered_report.empty()) {
            response.pop_back();  // '}'
            response += ", \"report\": " + rendered_report + "}";
        }
        return response;
    }
    return ok_response(request.id, result, rendered_report);
}

std::string Server::dispatch(const Request& request, obs::Sink& sink,
                             obs::RunReport& report, bool& truncated) {
    if (request.method == "ping") return "{\"pong\": true}";
    if (request.method == "info") return do_info();

    // Per-request wall-clock budget: the request's own deadline_ms,
    // else the server default; either way clamped by max_deadline_ms so
    // no request can hold a worker lane arbitrarily long.
    double budget_ms = request.deadline_ms > 0.0
                           ? request.deadline_ms
                           : options_.default_deadline_ms;
    if (options_.max_deadline_ms > 0.0)
        budget_ms = budget_ms > 0.0
                        ? std::min(budget_ms, options_.max_deadline_ms)
                        : options_.max_deadline_ms;
    util::Deadline deadline = budget_ms > 0.0 ? util::Deadline(budget_ms)
                                              : util::Deadline();

    // Deterministic fault injection: delay/alloc fire inside act();
    // a deadline action cancels this request's budget so the engines
    // take their truncated best-so-far paths.
    if (options_.faults != nullptr &&
        options_.faults->act(request.method))
        deadline.cancel();

    if (request.method == "open") return do_open(request, report);
    if (request.method == "close") {
        if (!cache_.close(request.session))
            throw ServeError(Code::NotFound, "no session named '" +
                                                 request.session + "'");
        return "{\"closed\": true}";
    }

    const std::shared_ptr<Session> session = cache_.find(request.session);
    if (session == nullptr)
        throw ServeError(Code::NotFound,
                         "no session named '" + request.session +
                             "' (open it first)");
    std::lock_guard session_lock(session->mutex);
    report.circuit = session->circuit.name();

    if (request.method == "stats") return do_stats(*session, report);
    if (request.method == "plan")
        return do_plan(request, *session, deadline, sink, report,
                       truncated);
    if (request.method == "sim")
        return do_sim(request, *session, deadline, sink, report,
                      truncated);
    if (request.method == "lint")
        return do_lint(request, *session, deadline, sink, report,
                       truncated);
    if (request.method == "analyze")
        return do_analyze(request, *session, deadline, sink, report,
                          truncated);
    if (request.method == "score") {
        if (deadline.already_expired())
            throw DeadlineError("score: deadline expired before scoring");
        return do_score(request, *session, sink, report);
    }
    throw ServeError(Code::Usage,
                     "unknown method '" + request.method + "'");
}

std::string Server::do_info() {
    const ServerStats server = stats();
    const SessionCache::Stats cache = cache_.stats();
    std::string out = "{";
    out += "\"protocol\": 1";
    out += ", \"methods\": [\"ping\", \"info\", \"open\", \"close\", "
           "\"stats\", \"plan\", \"sim\", \"lint\", \"analyze\", "
           "\"score\"]";
    out += ", \"workers\": " + std::to_string(workers_);
    out += ", \"max_queue\": " + num(options_.max_queue);
    out += ", \"max_sessions\": " + num(options_.session_limits.max_sessions);
    out += ", \"max_resident_nodes\": " +
           num(options_.session_limits.max_resident_nodes);
    out += ", \"accepted\": " + num(server.accepted);
    out += ", \"completed\": " + num(server.completed);
    out += ", \"shed_overload\": " + num(server.shed_overload);
    out += ", \"shed_draining\": " + num(server.shed_draining);
    out += ", \"request_errors\": " + num(server.request_errors);
    out += ", \"sessions\": " + num(cache.sessions);
    out += ", \"resident_nodes\": " + num(cache.resident_nodes);
    out += ", \"evictions\": " + num(cache.evictions);
    out += ", \"draining\": " + boolean(server.draining);
    out += "}";
    return out;
}

std::string Server::do_open(const Request& request,
                            obs::RunReport& report) {
    if (request.circuit.size() > options_.max_circuit_bytes)
        throw LimitError("circuit text of " +
                         std::to_string(request.circuit.size()) +
                         " bytes exceeds the per-request cap of " +
                         std::to_string(options_.max_circuit_bytes));

    auto session = std::make_shared<Session>();
    session->name = request.session;
    netlist::Diagnostics diags;
    if (request.format == "suite") {
        try {
            session->circuit = gen::suite_entry(request.circuit).build();
        } catch (const Error& e) {
            throw ServeError(Code::Validation, e.what());
        }
    } else if (request.format == "file") {
        // `circuit` is a path on the daemon's filesystem; the suffix
        // picks the reader. This is the million-gate ingress: a .tpb
        // file loads without shipping the netlist through a JSON line
        // (the max_circuit_bytes cap above applies to the path text
        // only, not the file).
        const std::string& path = request.circuit;
        const auto ends_with = [&](std::string_view s) {
            return path.size() >= s.size() &&
                   path.compare(path.size() - s.size(), s.size(), s) == 0;
        };
        if (ends_with(".tpb"))
            session->circuit = netlist::read_tpb_file(path);
        else if (ends_with(".v"))
            session->circuit =
                netlist::read_verilog_file(path, request.mode, &diags);
        else
            session->circuit =
                netlist::read_bench_file(path, request.mode, &diags);
    } else if (request.format == "verilog") {
        session->circuit = netlist::read_verilog_string(
            request.circuit, request.mode, &diags);
    } else {
        session->circuit = netlist::read_bench_string(
            request.circuit, request.session, request.mode, &diags);
    }
    session->faults = fault::singleton_faults(session->circuit);
    session->sim_faults = fault::collapse_faults(session->circuit);
    session->cop = testability::compute_cop(session->circuit);
    session->repairs = diags.repairs();
    report.circuit = session->circuit.name();

    std::string out = "{";
    out += "\"session\": " + json_quote(session->name);
    out += ", \"nodes\": " + num(session->circuit.node_count());
    out += ", \"gates\": " + num(session->circuit.gate_count());
    out += ", \"inputs\": " + num(session->circuit.input_count());
    out += ", \"outputs\": " + num(session->circuit.output_count());
    out += ", \"faults\": " + num(session->sim_faults.total_faults);
    out += ", \"collapsed_faults\": " + num(session->sim_faults.size());
    out += ", \"repairs\": " + num(session->repairs);
    out += "}";

    report.add_num("nodes",
                   static_cast<std::uint64_t>(
                       session->circuit.node_count()));
    report.add_num("repairs",
                   static_cast<std::uint64_t>(session->repairs));
    cache_.insert(std::move(session));
    return out;
}

std::string Server::do_stats(Session& session, obs::RunReport& report) {
    const std::vector<double> p = testability::detection_probabilities(
        session.circuit, session.sim_faults, session.cop);
    const double coverage = testability::estimated_coverage(
        p, session.sim_faults.class_size, 32768);
    const double min_p = testability::min_detection_probability(p);

    std::string out = "{";
    out += "\"nodes\": " + num(session.circuit.node_count());
    out += ", \"gates\": " + num(session.circuit.gate_count());
    out += ", \"inputs\": " + num(session.circuit.input_count());
    out += ", \"outputs\": " + num(session.circuit.output_count());
    out += ", \"depth\": " + std::to_string(session.circuit.depth());
    out += ", \"faults\": " + num(session.sim_faults.total_faults);
    out += ", \"estimated_coverage\": " + num(coverage);
    out += ", \"min_detection_probability\": " + num(min_p);
    out += ", \"engine_version\": " + num(session.engine_version);
    out += ", \"engine_warm\": " + boolean(session.engine != nullptr);
    out += "}";
    report.add_num("estimated_coverage", coverage);
    return out;
}

std::string Server::do_plan(const Request& request, Session& session,
                            util::Deadline& deadline, obs::Sink& sink,
                            obs::RunReport& report, bool& truncated) {
    DpPlanner dp;
    GreedyPlanner greedy;
    RandomPlanner random;
    Planner* planner = nullptr;
    if (request.planner == "dp") planner = &dp;
    if (request.planner == "greedy") planner = &greedy;
    if (request.planner == "random") planner = &random;
    if (planner == nullptr)
        throw ServeError(Code::Validation,
                         "unknown planner '" + request.planner + "'");

    PlannerOptions options;
    options.budget = request.budget;
    options.objective.num_patterns = request.patterns;
    options.seed = request.seed;
    options.deadline = &deadline;
    options.threads = 1;  // concurrency comes from request batching
    options.prune_via_lint = request.prune_lint;
    options.prune_via_analysis = request.prune_analysis;
    options.incremental_eval = !request.exact_eval;
    options.eval_epsilon = request.eval_epsilon;
    options.simd_eval = request.simd_eval;
    options.sink = &sink;

    const Plan plan = planner->plan(session.circuit, options);
    truncated = plan.truncated;

    std::string out = "{";
    out += "\"planner\": " + json_quote(request.planner);
    out += ", \"points\": [";
    for (std::size_t i = 0; i < plan.points.size(); ++i) {
        const auto& tp = plan.points[i];
        if (i > 0) out += ", ";
        out += "{\"node\": " +
               json_quote(session.circuit.node_name(tp.node)) +
               ", \"kind\": " +
               json_quote(netlist::tp_kind_name(tp.kind)) + "}";
    }
    out += "]";
    out += ", \"predicted_score\": " + num(plan.predicted_score);
    out += ", \"truncated\": " + boolean(plan.truncated);
    if (request.prune_lint) {
        out += ", \"candidates_considered\": " +
               num(plan.candidates_considered);
        out += ", \"candidates_pruned\": " + num(plan.candidates_pruned);
    }
    if (request.prune_analysis)
        out += ", \"candidates_pruned_analysis\": " +
               num(plan.candidates_pruned_analysis);
    out += "}";

    report.add_str("planner", request.planner);
    report.add_num("points",
                   static_cast<std::uint64_t>(plan.points.size()));
    report.add_num("predicted_score", plan.predicted_score);
    return out;
}

std::string Server::do_sim(const Request& request, Session& session,
                           util::Deadline& deadline, obs::Sink& sink,
                           obs::RunReport& report, bool& truncated) {
    sim::RandomPatternSource source(request.seed);
    fault::FaultSimOptions options;
    options.max_patterns = request.patterns;
    options.deadline = &deadline;
    options.threads = 1;
    options.sink = &sink;
    options.sim_width = request.sim_width;
    options.drop_after = request.drop_after;
    const fault::FaultSimResult result = fault::run_fault_simulation(
        session.circuit, session.sim_faults, source, options);
    truncated = result.truncated;

    std::string out = "{";
    out += "\"coverage\": " + num(result.coverage);
    out += ", \"patterns_applied\": " + num(result.patterns_applied);
    out += ", \"undetected\": " + num(result.undetected);
    out += ", \"dropped\": " + num(result.dropped);
    out += ", \"sim_width\": " +
           num(static_cast<std::uint64_t>(result.sim_width));
    out += ", \"truncated\": " + boolean(result.truncated);
    out += "}";
    report.add_num("coverage", result.coverage);
    report.add_num(
        "patterns_applied",
        static_cast<std::uint64_t>(result.patterns_applied));
    return out;
}

std::string Server::do_lint(const Request& request, Session& session,
                            util::Deadline& deadline, obs::Sink& sink,
                            obs::RunReport& report, bool& truncated) {
    lint::LintOptions options;
    options.max_findings_per_rule = request.max_findings;
    options.max_implication_nodes = request.max_implication_nodes;
    options.max_implication_steps = request.max_implication_steps;
    options.max_untestable_faults = request.max_untestable;
    options.deadline = &deadline;
    options.sink = &sink;
    const lint::LintReport lint_report =
        lint::run_lint(session.circuit, options);
    truncated = lint_report.truncated && deadline.already_expired();

    std::string out = "{";
    out += "\"findings\": " + num(lint_report.findings.size());
    out += ", \"errors\": " +
           num(lint_report.count(lint::Severity::Error));
    out += ", \"warnings\": " +
           num(lint_report.count(lint::Severity::Warning));
    out += ", \"truncated\": " + boolean(lint_report.truncated);
    out += "}";
    report.add_num("findings",
                   static_cast<std::uint64_t>(
                       lint_report.findings.size()));
    return out;
}

std::string Server::do_analyze(const Request& request, Session& session,
                               util::Deadline& deadline, obs::Sink& sink,
                               obs::RunReport& report, bool& truncated) {
    analysis::AnalysisOptions options;
    options.max_implication_nodes = request.max_implication_nodes;
    options.max_implication_steps = request.max_implication_steps;
    options.max_untestable_faults = request.max_untestable;
    options.deadline = &deadline;
    options.sink = &sink;
    const analysis::AnalysisResult result =
        analysis::run_analysis(session.circuit, options);
    const analysis::ObservePruning pruning =
        analysis::compute_observe_pruning(session.circuit, session.cop, 0);
    truncated = result.truncated && deadline.already_expired();

    std::size_t dominated = 0;
    for (const std::uint32_t d : result.dominators.idom)
        if (d != analysis::DominatorTree::kSink &&
            d != analysis::DominatorTree::kUnreachable)
            ++dominated;

    std::string out = "{";
    out += "\"nodes\": " + num(session.circuit.node_count());
    out += ", \"dominated_nodes\": " + num(dominated);
    out += ", \"implications_learned\": " +
           num(result.implications_learned);
    out += ", \"probed_literals\": " + num(result.implications.rows());
    out += ", \"learned_constants\": [";
    for (std::size_t i = 0; i < result.learned_constants.size(); ++i) {
        const analysis::Literal& lit = result.learned_constants[i];
        if (i > 0) out += ", ";
        out += "{\"node\": " +
               json_quote(session.circuit.node_name(lit.node)) +
               ", \"value\": " + (lit.value ? "1" : "0") + "}";
    }
    out += "]";
    out += ", \"untestable_faults\": [";
    for (std::size_t i = 0; i < result.untestable.size(); ++i) {
        if (i > 0) out += ", ";
        out += json_quote(
            fault::fault_name(session.circuit, result.untestable[i]));
    }
    out += "]";
    out += ", \"zero_gain_observe_sites\": " + num(pruning.count);
    out += ", \"certificates\": " + num(result.certificates.size());
    out += ", \"truncated\": " + boolean(result.truncated);
    out += "}";

    report.add_num(
        "implications_learned",
        static_cast<std::uint64_t>(result.implications_learned));
    report.add_num(
        "untestable_faults",
        static_cast<std::uint64_t>(result.untestable.size()));
    return out;
}

std::string Server::do_score(const Request& request, Session& session,
                             obs::Sink& sink, obs::RunReport& report) {
    std::vector<netlist::TestPoint> points;
    points.reserve(request.points.size());
    for (const auto& [name, kind] : request.points) {
        const netlist::NodeId node = session.circuit.find(name);
        if (!node.valid())
            throw ServeError(Code::Validation,
                             "no node named '" + name +
                                 "' in session circuit");
        points.push_back({node, kind});
    }

    Objective objective;
    objective.num_patterns = request.patterns;

    PlanEvaluation evaluation;
    bool warm = false;
    if (request.exact_eval) {
        // Reference path: materialise and re-derive from scratch. The
        // differential tests assert it is bit-identical to the warm
        // engine path below.
        evaluation = evaluate_plan(session.circuit, session.faults,
                                   points, objective);
    } else {
        // The warm engine outlives this request, so it must not hold
        // the per-request sink, and it is always built exact
        // (epsilon 0): a cached engine warmed with one request's
        // epsilon would silently skew every later request's score.
        if (session.engine == nullptr ||
            !same_objective(session.engine_objective, objective)) {
            session.engine = std::make_unique<EvalEngine>(
                session.circuit, session.faults, objective,
                /*sink=*/nullptr, /*epsilon=*/0.0);
            session.engine_objective = objective;
            ++session.engine_version;
        } else {
            warm = true;
        }
        obs::add(&sink, obs::Counter::EngineEvaluations);
        EngineFrameGuard guard(session);
        for (const auto& point : points) guard.push(point);
        evaluation = session.engine->evaluation();
        guard.unwind();
    }

    std::string out = "{";
    out += "\"score\": " + num(evaluation.score);
    out += ", \"estimated_coverage\": " +
           num(evaluation.estimated_coverage);
    out += ", \"min_detection_probability\": " +
           num(evaluation.min_detection_probability);
    out += ", \"points\": " + num(points.size());
    out += ", \"engine_warm\": " + boolean(warm);
    out += ", \"engine_version\": " + num(session.engine_version);
    out += "}";
    report.add_num("score", evaluation.score);
    report.add_num("points",
                   static_cast<std::uint64_t>(points.size()));
    return out;
}

std::string Server::session_fingerprint(const std::string& name) {
    const std::shared_ptr<Session> session = cache_.find(name);
    if (session == nullptr) return {};
    std::lock_guard lock(session->mutex);
    std::string fp = "cop:";
    for (const double c1 : session->cop.c1) fp += num(c1) + ",";
    fp += "|obs:";
    for (const double o : session->cop.obs) fp += num(o) + ",";
    fp += "|engine:v" + num(session->engine_version);
    if (session->engine != nullptr) {
        fp += ":depth" + num(session->engine->depth());
        fp += ":score" + num(session->engine->score());
        fp += ":p";
        for (const double p : session->engine->detection_probability())
            fp += num(p) + ",";
    }
    return fp;
}

}  // namespace tpi::serve
