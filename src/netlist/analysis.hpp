#pragma once

#include <array>
#include <vector>

#include "netlist/circuit.hpp"

namespace tpi::netlist {

/// Aggregate structural statistics of a circuit (Table 1 material).
struct CircuitStats {
    std::size_t nodes = 0;
    std::size_t gates = 0;
    std::size_t inputs = 0;
    std::size_t outputs = 0;
    int depth = 0;
    std::size_t max_fanout = 0;
    std::size_t fanout_stems = 0;  ///< nets with more than one consumer
    std::array<std::size_t, kGateTypeCount> per_type{};
};

CircuitStats compute_stats(const Circuit& circuit);

/// Nodes in the transitive fanin cone of `node` (the node itself included
/// when `include_self`), in no particular order.
std::vector<NodeId> transitive_fanin(const Circuit& circuit, NodeId node,
                                     bool include_self = true);

/// Nodes in the transitive fanout cone of `node`.
std::vector<NodeId> transitive_fanout(const Circuit& circuit, NodeId node,
                                      bool include_self = true);

/// True when no net drives more than one consumer, i.e. the circuit is a
/// forest of trees — the class on which the DP of the paper is optimal.
bool is_fanout_free(const Circuit& circuit);

}  // namespace tpi::netlist
