#include "netlist/analysis.hpp"

#include <algorithm>

namespace tpi::netlist {
namespace {

/// Generic cone walk along `step` (fanins or fanouts).
template <typename StepFn>
std::vector<NodeId> cone(const Circuit& circuit, NodeId origin,
                         bool include_self, StepFn&& step) {
    std::vector<bool> seen(circuit.node_count(), false);
    std::vector<NodeId> stack{origin};
    std::vector<NodeId> result;
    seen[origin.v] = true;
    while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        if (v != origin || include_self) result.push_back(v);
        for (NodeId w : step(v)) {
            if (!seen[w.v]) {
                seen[w.v] = true;
                stack.push_back(w);
            }
        }
    }
    return result;
}

}  // namespace

CircuitStats compute_stats(const Circuit& circuit) {
    CircuitStats s;
    s.nodes = circuit.node_count();
    s.gates = circuit.gate_count();
    s.inputs = circuit.input_count();
    s.outputs = circuit.output_count();
    s.depth = circuit.depth();
    for (NodeId v : circuit.all_nodes()) {
        s.per_type[static_cast<std::size_t>(circuit.type(v))]++;
        const std::size_t fo = circuit.fanout_count(v);
        s.max_fanout = std::max(s.max_fanout, fo);
        if (fo > 1) ++s.fanout_stems;
    }
    return s;
}

std::vector<NodeId> transitive_fanin(const Circuit& circuit, NodeId node,
                                     bool include_self) {
    return cone(circuit, node, include_self,
                [&](NodeId v) { return circuit.fanins(v); });
}

std::vector<NodeId> transitive_fanout(const Circuit& circuit, NodeId node,
                                      bool include_self) {
    return cone(circuit, node, include_self,
                [&](NodeId v) { return circuit.fanouts(v); });
}

bool is_fanout_free(const Circuit& circuit) {
    for (NodeId v : circuit.all_nodes())
        if (circuit.fanout_count(v) > 1) return false;
    return true;
}

}  // namespace tpi::netlist
