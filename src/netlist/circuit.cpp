#include "netlist/circuit.hpp"

#include <algorithm>
#include <charconv>

#include "util/error.hpp"

namespace tpi::netlist {

NodeId Circuit::check(NodeId node) const {
    require(node.valid() && node.v < types_.size(),
            "Circuit: invalid NodeId");
    return node;
}

void Circuit::reserve(std::size_t nodes, std::size_t fanin_edges,
                      std::size_t name_bytes) {
    types_.reserve(nodes);
    fanin_off_.reserve(nodes + 1);
    name_off_.reserve(nodes + 1);
    output_flag_.reserve(nodes);
    if (fanin_edges) fanin_data_.reserve(fanin_edges);
    if (name_bytes) name_arena_.reserve(name_bytes);
}

void Circuit::intern_name(std::string_view name, std::uint32_t id) {
    if (name.empty()) {
        char buf[12] = {'n'};
        auto [ptr, ec] = std::to_chars(buf + 1, buf + sizeof(buf), id);
        require(ec == std::errc{}, "Circuit: name format");
        name_arena_.append(buf, static_cast<std::size_t>(ptr - buf));
    } else if (name.data() >= name_arena_.data() &&
               name.data() < name_arena_.data() + name_arena_.size()) {
        // The caller handed us a view into our own arena (e.g. another
        // node's name); appending may reallocate under it, so copy first.
        const std::string copy(name);
        name_arena_.append(copy);
    } else {
        name_arena_.append(name);
    }
    require(name_arena_.size() <= UINT32_MAX, "Circuit: name arena overflow");
    name_off_.push_back(static_cast<std::uint32_t>(name_arena_.size()));
}

NodeId Circuit::new_node(GateType type, std::span<const NodeId> fanins,
                         std::string_view name) {
    for (NodeId f : fanins) check(f);
    require(types_.size() < UINT32_MAX, "Circuit: node count overflow");
    const NodeId id{static_cast<std::uint32_t>(types_.size())};
    types_.push_back(type);
    fanin_data_.insert(fanin_data_.end(), fanins.begin(), fanins.end());
    require(fanin_data_.size() <= UINT32_MAX, "Circuit: fanin overflow");
    fanin_off_.push_back(static_cast<std::uint32_t>(fanin_data_.size()));
    intern_name(name, id.v);
    output_flag_.push_back(0);
    analysis_valid_ = false;
    return id;
}

NodeId Circuit::add_input(std::string_view name) {
    const NodeId id = new_node(GateType::Input, {}, name);
    inputs_.push_back(id);
    return id;
}

NodeId Circuit::add_const(bool value, std::string_view name) {
    return new_node(value ? GateType::Const1 : GateType::Const0, {}, name);
}

NodeId Circuit::add_gate(GateType type, std::span<const NodeId> fanins,
                         std::string_view name) {
    require(!is_source(type), "add_gate: use add_input/add_const for sources");
    if (type == GateType::Buf || type == GateType::Not) {
        require(fanins.size() == 1, "add_gate: BUF/NOT take exactly one fanin");
    } else {
        require(!fanins.empty(), "add_gate: gate requires at least one fanin");
    }
    ++gate_count_;
    return new_node(type, fanins, name);
}

void Circuit::mark_output(NodeId node) {
    check(node);
    require(!output_flag_[node.v], "mark_output: net already an output");
    output_flag_[node.v] = 1;
    outputs_.push_back(node);
    // Topology, levels and fanout do not depend on output flags, so a
    // frozen circuit stays frozen: CsrView.output_flag sees the new bit.
}

std::vector<NodeId> Circuit::all_nodes() const {
    std::vector<NodeId> ids(types_.size());
    for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = NodeId{i};
    return ids;
}

NodeId Circuit::find(std::string_view node_name) const {
    for (std::uint32_t i = 0; i < types_.size(); ++i)
        if (this->node_name(NodeId{i}) == node_name) return NodeId{i};
    return kNullNode;
}

std::span<const NodeId> Circuit::fanouts(NodeId node) const {
    ensure_analysis();
    check(node);
    const auto begin = fanout_offset_[node.v];
    const auto end = fanout_offset_[node.v + 1];
    return {fanout_data_.data() + begin, end - begin};
}

const std::vector<NodeId>& Circuit::topo_order() const {
    ensure_analysis();
    return topo_;
}

int Circuit::level(NodeId node) const {
    ensure_analysis();
    return level_[check(node).v];
}

int Circuit::depth() const {
    ensure_analysis();
    return depth_;
}

void Circuit::validate() const {
    ensure_analysis();  // throws on cycles
    for (std::size_t i = 0; i < types_.size(); ++i) {
        if (is_source(types_[i])) {
            require(fanin_off_[i + 1] == fanin_off_[i],
                    "validate: source node has fanins");
        }
    }
}

std::size_t Circuit::memory_bytes() const {
    std::size_t bytes = 0;
    bytes += types_.capacity() * sizeof(GateType);
    bytes += fanin_off_.capacity() * sizeof(std::uint32_t);
    bytes += fanin_data_.capacity() * sizeof(NodeId);
    bytes += name_off_.capacity() * sizeof(std::uint32_t);
    bytes += name_arena_.capacity();
    bytes += output_flag_.capacity();
    bytes += inputs_.capacity() * sizeof(NodeId);
    bytes += outputs_.capacity() * sizeof(NodeId);
    bytes += fanout_offset_.capacity() * sizeof(std::uint32_t);
    bytes += fanout_data_.capacity() * sizeof(NodeId);
    bytes += fanout_slot_.capacity() * sizeof(std::uint32_t);
    bytes += topo_.capacity() * sizeof(NodeId);
    bytes += level_.capacity() * sizeof(int);
    return bytes;
}

void Circuit::ensure_analysis() const {
    if (analysis_valid_) return;
    const std::size_t n = types_.size();

    // CSR fanout adjacency, with the consuming fanin slot per edge.
    fanout_offset_.assign(n + 1, 0);
    for (NodeId f : fanin_data_) ++fanout_offset_[f.v + 1];
    for (std::size_t i = 0; i < n; ++i)
        fanout_offset_[i + 1] += fanout_offset_[i];
    fanout_data_.resize(fanout_offset_[n]);
    fanout_slot_.resize(fanout_offset_[n]);
    {
        std::vector<std::uint32_t> cursor(fanout_offset_.begin(),
                                          fanout_offset_.end() - 1);
        for (std::uint32_t g = 0; g < n; ++g) {
            const std::uint32_t begin = fanin_off_[g];
            const std::uint32_t end = fanin_off_[g + 1];
            for (std::uint32_t k = begin; k < end; ++k) {
                const std::uint32_t at = cursor[fanin_data_[k].v]++;
                fanout_data_[at] = NodeId{g};
                fanout_slot_[at] = k - begin;
            }
        }
    }

    // Kahn topological sort + levelisation.
    topo_.clear();
    topo_.reserve(n);
    level_.assign(n, 0);
    std::vector<std::uint32_t> pending(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        pending[i] = fanin_off_[i + 1] - fanin_off_[i];
        if (pending[i] == 0) topo_.push_back(NodeId{i});
    }
    for (std::size_t head = 0; head < topo_.size(); ++head) {
        const NodeId v = topo_[head];
        const auto begin = fanout_offset_[v.v];
        const auto end = fanout_offset_[v.v + 1];
        for (std::uint32_t k = begin; k < end; ++k) {
            const NodeId w = fanout_data_[k];
            level_[w.v] = std::max(level_[w.v], level_[v.v] + 1);
            if (--pending[w.v] == 0) topo_.push_back(w);
        }
    }
    if (topo_.size() != n) {
        // Name a few of the nodes stuck on the cycle for the report.
        std::vector<std::string> stuck;
        for (std::uint32_t i = 0; i < n && stuck.size() < 8; ++i)
            if (pending[i] > 0)
                stuck.emplace_back(node_name(NodeId{i}));
        throw ValidationError("Circuit: combinational cycle detected",
                              std::move(stuck));
    }
    depth_ = 0;
    for (int lv : level_) depth_ = std::max(depth_, lv);

    view_ = CsrView{
        .type = types_,
        .output_flag = output_flag_,
        .fanin_offset = fanin_off_,
        .fanin = fanin_data_,
        .fanout_offset = fanout_offset_,
        .fanout = fanout_data_,
        .fanout_slot = fanout_slot_,
        .topo = topo_,
        .level = level_,
        .node_count = n,
        .depth = depth_,
    };

    analysis_valid_ = true;
}

}  // namespace tpi::netlist
