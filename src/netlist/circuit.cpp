#include "netlist/circuit.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tpi::netlist {

NodeId Circuit::check(NodeId node) const {
    require(node.valid() && node.v < types_.size(),
            "Circuit: invalid NodeId");
    return node;
}

NodeId Circuit::new_node(GateType type, std::vector<NodeId> fanins,
                         std::string name) {
    for (NodeId f : fanins) check(f);
    const NodeId id{static_cast<std::uint32_t>(types_.size())};
    if (name.empty()) name = "n" + std::to_string(id.v);
    types_.push_back(type);
    fanins_.push_back(std::move(fanins));
    names_.push_back(std::move(name));
    output_flag_.push_back(false);
    analysis_valid_ = false;
    return id;
}

NodeId Circuit::add_input(std::string name) {
    const NodeId id = new_node(GateType::Input, {}, std::move(name));
    inputs_.push_back(id);
    return id;
}

NodeId Circuit::add_const(bool value, std::string name) {
    return new_node(value ? GateType::Const1 : GateType::Const0, {},
                    std::move(name));
}

NodeId Circuit::add_gate(GateType type, std::vector<NodeId> fanins,
                         std::string name) {
    require(!is_source(type), "add_gate: use add_input/add_const for sources");
    if (type == GateType::Buf || type == GateType::Not) {
        require(fanins.size() == 1, "add_gate: BUF/NOT take exactly one fanin");
    } else {
        require(!fanins.empty(), "add_gate: gate requires at least one fanin");
    }
    ++gate_count_;
    return new_node(type, std::move(fanins), std::move(name));
}

void Circuit::mark_output(NodeId node) {
    check(node);
    require(!output_flag_[node.v], "mark_output: net already an output");
    output_flag_[node.v] = true;
    outputs_.push_back(node);
    analysis_valid_ = false;
}

std::vector<NodeId> Circuit::all_nodes() const {
    std::vector<NodeId> ids(types_.size());
    for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = NodeId{i};
    return ids;
}

NodeId Circuit::find(std::string_view node_name) const {
    for (std::uint32_t i = 0; i < names_.size(); ++i)
        if (names_[i] == node_name) return NodeId{i};
    return kNullNode;
}

std::span<const NodeId> Circuit::fanouts(NodeId node) const {
    ensure_analysis();
    check(node);
    const auto begin = fanout_offset_[node.v];
    const auto end = fanout_offset_[node.v + 1];
    return {fanout_data_.data() + begin, end - begin};
}

const std::vector<NodeId>& Circuit::topo_order() const {
    ensure_analysis();
    return topo_;
}

int Circuit::level(NodeId node) const {
    ensure_analysis();
    return level_[check(node).v];
}

int Circuit::depth() const {
    ensure_analysis();
    return depth_;
}

void Circuit::validate() const {
    ensure_analysis();  // throws on cycles
    for (std::size_t i = 0; i < types_.size(); ++i) {
        const GateType t = types_[i];
        if (is_source(t)) {
            require(fanins_[i].empty(), "validate: source node has fanins");
        }
    }
}

void Circuit::ensure_analysis() const {
    if (analysis_valid_) return;
    const std::size_t n = types_.size();

    // CSR fanout adjacency.
    fanout_offset_.assign(n + 1, 0);
    for (const auto& fs : fanins_)
        for (NodeId f : fs) ++fanout_offset_[f.v + 1];
    for (std::size_t i = 0; i < n; ++i)
        fanout_offset_[i + 1] += fanout_offset_[i];
    fanout_data_.resize(fanout_offset_[n]);
    {
        std::vector<std::uint32_t> cursor(fanout_offset_.begin(),
                                          fanout_offset_.end() - 1);
        for (std::uint32_t g = 0; g < n; ++g)
            for (NodeId f : fanins_[g])
                fanout_data_[cursor[f.v]++] = NodeId{g};
    }

    // Kahn topological sort + levelisation.
    topo_.clear();
    topo_.reserve(n);
    level_.assign(n, 0);
    std::vector<std::uint32_t> pending(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        pending[i] = static_cast<std::uint32_t>(fanins_[i].size());
        if (pending[i] == 0) topo_.push_back(NodeId{i});
    }
    for (std::size_t head = 0; head < topo_.size(); ++head) {
        const NodeId v = topo_[head];
        const auto begin = fanout_offset_[v.v];
        const auto end = fanout_offset_[v.v + 1];
        for (std::uint32_t k = begin; k < end; ++k) {
            const NodeId w = fanout_data_[k];
            level_[w.v] = std::max(level_[w.v], level_[v.v] + 1);
            if (--pending[w.v] == 0) topo_.push_back(w);
        }
    }
    if (topo_.size() != n) {
        // Name a few of the nodes stuck on the cycle for the report.
        std::vector<std::string> stuck;
        for (std::uint32_t i = 0; i < n && stuck.size() < 8; ++i)
            if (pending[i] > 0) stuck.push_back(names_[i]);
        throw ValidationError("Circuit: combinational cycle detected",
                              std::move(stuck));
    }
    depth_ = 0;
    for (int lv : level_) depth_ = std::max(depth_, lv);

    analysis_valid_ = true;
}

}  // namespace tpi::netlist
