#include "netlist/verilog_io.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace tpi::netlist {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
    throw ParseError("verilog", line, message);
}

/// Reader behavior beyond plain parsing: nullptr = legacy (strict parse,
/// no structural validation).
struct Policy {
    ValidateMode mode = ValidateMode::Strict;
    Diagnostics* diags = nullptr;

    bool lenient() const { return mode == ValidateMode::Lenient; }
    void repair(std::string check, std::string message,
                std::vector<std::string> nodes = {}) const {
        if (diags)
            diags->add(DiagSeverity::Repair, std::move(check),
                       std::move(message), std::move(nodes));
    }
};

struct Token {
    std::string text;
    int line;
};

bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$' || c == '.' || c == '[' || c == ']' || c == '\'';
}

/// Tokenise: names (including escaped identifiers and 1'b0/1'b1
/// literals), punctuation ( ) , = ;, keywords. Strips // and /* */.
std::vector<Token> tokenize(std::istream& in) {
    std::vector<Token> tokens;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    int line = 1;
    std::size_t i = 0;
    while (i < text.size()) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
        } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
            while (i < text.size() && text[i] != '\n') ++i;
        } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
            i += 2;
            while (i + 1 < text.size() &&
                   !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n') ++line;
                ++i;
            }
            if (i + 1 >= text.size()) fail(line, "unterminated comment");
            i += 2;
        } else if (c == '\\') {
            // Escaped identifier: backslash to whitespace.
            std::size_t start = ++i;
            while (i < text.size() &&
                   !std::isspace(static_cast<unsigned char>(text[i])))
                ++i;
            tokens.push_back({text.substr(start, i - start), line});
        } else if (is_name_char(c)) {
            std::size_t start = i;
            while (i < text.size() && is_name_char(text[i])) ++i;
            tokens.push_back({text.substr(start, i - start), line});
        } else if (c == '(' || c == ')' || c == ',' || c == ';' ||
                   c == '=') {
            tokens.push_back({std::string(1, c), line});
            ++i;
        } else {
            fail(line, std::string("unexpected character '") + c + "'");
        }
    }
    return tokens;
}

struct GateStatement {
    std::string output;
    GateType type;
    std::vector<std::string> inputs;
    int line;
};

bool is_primitive(const std::string& word, GateType& type) {
    if (word == "and") type = GateType::And;
    else if (word == "nand") type = GateType::Nand;
    else if (word == "or") type = GateType::Or;
    else if (word == "nor") type = GateType::Nor;
    else if (word == "xor") type = GateType::Xor;
    else if (word == "xnor") type = GateType::Xnor;
    else if (word == "not") type = GateType::Not;
    else if (word == "buf") type = GateType::Buf;
    else return false;
    return true;
}

/// Make a name safe as a plain Verilog identifier, or emit it escaped.
std::string emit_name(std::string_view name) {
    bool plain = !name.empty() &&
                 (std::isalpha(static_cast<unsigned char>(name[0])) ||
                  name[0] == '_');
    for (char c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '$'))
            plain = false;
    }
    if (plain) return std::string(name);
    return "\\" + std::string(name) + " ";  // escaped identifier needs the space
}

Circuit read_verilog_impl(std::istream& in, const Policy* policy) {
    const std::vector<Token> tokens = tokenize(in);
    std::size_t pos = 0;
    const auto peek = [&]() -> const Token& {
        if (pos >= tokens.size())
            fail(tokens.empty() ? 1 : tokens.back().line,
                 "unexpected end of file");
        return tokens[pos];
    };
    const auto next = [&]() -> const Token& {
        const Token& t = peek();
        ++pos;
        return t;
    };
    const auto expect = [&](const std::string& what) {
        const Token& t = next();
        if (t.text != what)
            fail(t.line, "expected '" + what + "', got '" + t.text + "'");
    };

    expect("module");
    const std::string module_name = next().text;
    expect("(");
    while (peek().text != ")") {
        next();
        if (peek().text == ",") next();
    }
    expect(")");
    expect(";");

    std::vector<Token> input_names;
    std::vector<Token> output_names;
    std::vector<GateStatement> gates;

    while (peek().text != "endmodule") {
        const Token head = next();
        GateType type;
        if (head.text == "input" || head.text == "output" ||
            head.text == "wire") {
            do {
                const Token name = next();
                if (head.text == "input") input_names.push_back(name);
                if (head.text == "output") output_names.push_back(name);
            } while (next().text == ",");
            --pos;
            expect(";");
        } else if (head.text == "assign") {
            GateStatement g;
            g.line = head.line;
            g.output = next().text;
            expect("=");
            g.type = GateType::Buf;
            g.inputs.push_back(next().text);
            expect(";");
            gates.push_back(std::move(g));
        } else if (is_primitive(head.text, type)) {
            GateStatement g;
            g.line = head.line;
            g.type = type;
            if (peek().text != "(") next();  // optional instance name
            expect("(");
            g.output = next().text;
            while (peek().text == ",") {
                next();
                g.inputs.push_back(next().text);
            }
            expect(")");
            expect(";");
            if (g.inputs.empty())
                fail(g.line, "primitive needs at least one input");
            gates.push_back(std::move(g));
        } else {
            fail(head.line, "unsupported construct '" + head.text + "'");
        }
    }

    // Build the circuit: inputs first, then gates in dependency order
    // (iterative DFS, as .bench allows forward references and so does
    // structural Verilog).
    const bool lenient = policy != nullptr && policy->lenient();
    Circuit circuit(module_name);
    std::unordered_map<std::string, NodeId> by_name;
    std::unordered_map<std::string, std::size_t> defining;
    for (const Token& name : input_names) {
        if (by_name.contains(name.text)) {
            if (lenient) {
                policy->repair("duplicate-input",
                               "dropped duplicate input '" + name.text +
                                   "' (line " + std::to_string(name.line) +
                                   ")",
                               {name.text});
                continue;
            }
            fail(name.line, "duplicate input '" + name.text + "'");
        }
        by_name.emplace(name.text, circuit.add_input(name.text));
    }
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (by_name.contains(gates[i].output) ||
            defining.contains(gates[i].output)) {
            if (lenient) {
                policy->repair("duplicate-definition",
                               "signal '" + gates[i].output +
                                   "' driven twice; kept the first driver "
                                   "(dropped line " +
                                   std::to_string(gates[i].line) + ")",
                               {gates[i].output});
                continue;
            }
            fail(gates[i].line,
                 "signal '" + gates[i].output + "' driven twice");
        }
        defining.emplace(gates[i].output, i);
    }
    const auto resolve_literal = [&](const std::string& name) -> NodeId {
        if (name == "1'b0") {
            const auto it = by_name.find(name);
            if (it != by_name.end()) return it->second;
            return by_name.emplace(name, circuit.add_const(false, "tie0"))
                .first->second;
        }
        if (name == "1'b1") {
            const auto it = by_name.find(name);
            if (it != by_name.end()) return it->second;
            return by_name.emplace(name, circuit.add_const(true, "tie1"))
                .first->second;
        }
        return kNullNode;
    };

    std::vector<char> state(gates.size(), 0);
    for (std::size_t root = 0; root < gates.size(); ++root) {
        if (state[root] == 2) continue;
        // Skip statements displaced by an earlier driver (lenient mode).
        const auto canon = defining.find(gates[root].output);
        if (canon == defining.end() || canon->second != root) continue;
        std::vector<std::size_t> stack{root};
        while (!stack.empty()) {
            const std::size_t s = stack.back();
            const GateStatement& g = gates[s];
            if (state[s] == 2) {
                stack.pop_back();
                continue;
            }
            if (state[s] == 0) {
                state[s] = 1;
                bool blocked = false;
                for (const std::string& arg : g.inputs) {
                    if (by_name.contains(arg)) continue;
                    if (resolve_literal(arg).valid()) continue;
                    const auto it = defining.find(arg);
                    if (it == defining.end()) {
                        if (!lenient)
                            fail(g.line, "undriven signal '" + arg + "'");
                        policy->repair(
                            "undriven-net",
                            "tied undriven signal '" + arg +
                                "' (used by '" + g.output +
                                "') to constant 0",
                            {arg});
                        by_name.emplace(arg,
                                        circuit.add_const(false, arg));
                        continue;
                    }
                    if (state[it->second] == 1)
                        fail(g.line, "combinational cycle through '" +
                                         g.output + "'");
                    if (state[it->second] == 0) {
                        stack.push_back(it->second);
                        blocked = true;
                    }
                }
                if (blocked) continue;
            }
            std::vector<NodeId> fanins;
            for (const std::string& arg : g.inputs)
                fanins.push_back(by_name.at(arg));
            by_name.emplace(g.output, circuit.add_gate(
                                          g.type, std::move(fanins),
                                          g.output));
            state[s] = 2;
            stack.pop_back();
        }
    }

    for (const Token& name : output_names) {
        const auto it = by_name.find(name.text);
        if (it == by_name.end()) {
            if (lenient) {
                policy->repair("floating-output",
                               "dropped undriven output '" + name.text +
                                   "' (line " + std::to_string(name.line) +
                                   ")",
                               {name.text});
                continue;
            }
            fail(name.line, "output '" + name.text + "' is undriven");
        }
        if (!circuit.is_output(it->second))
            circuit.mark_output(it->second);
    }
    circuit.validate();
    if (policy != nullptr) {
        Diagnostics vdiags = validate(circuit, policy->mode);
        if (policy->diags) policy->diags->merge(std::move(vdiags));
    }
    return circuit;
}

/// Error contract wrapper: nothing but ParseError/ValidationError may
/// escape a reader, whatever the input text provokes internally.
template <typename Fn>
Circuit guard_read(Fn&& fn) {
    try {
        return fn();
    } catch (const ParseError&) {
        throw;
    } catch (const ValidationError&) {
        throw;
    } catch (const Error& e) {
        throw ParseError("verilog", 0, e.what());
    } catch (const std::exception& e) {
        throw ParseError("verilog", 0,
                         std::string("internal reader failure: ") +
                             e.what());
    }
}

}  // namespace

Circuit read_verilog(std::istream& in) {
    return guard_read([&] { return read_verilog_impl(in, nullptr); });
}

Circuit read_verilog(std::istream& in, ValidateMode mode,
                     Diagnostics* diagnostics) {
    const Policy policy{mode, diagnostics};
    return guard_read([&] { return read_verilog_impl(in, &policy); });
}

Circuit read_verilog_string(const std::string& text) {
    std::istringstream in(text);
    return read_verilog(in);
}

Circuit read_verilog_string(const std::string& text, ValidateMode mode,
                            Diagnostics* diagnostics) {
    std::istringstream in(text);
    return read_verilog(in, mode, diagnostics);
}

namespace {

std::ifstream open_verilog_file(const std::string& path) {
    std::ifstream in(path);
    if (!in.good()) throw ParseError(path, 0, "cannot open file");
    return in;
}

}  // namespace

Circuit read_verilog_file(const std::string& path) {
    std::ifstream in = open_verilog_file(path);
    return read_verilog(in);
}

Circuit read_verilog_file(const std::string& path, ValidateMode mode,
                          Diagnostics* diagnostics) {
    std::ifstream in = open_verilog_file(path);
    return read_verilog(in, mode, diagnostics);
}

void write_verilog(std::ostream& out, const Circuit& circuit) {
    const std::string module_name =
        circuit.name().empty() ? "top" : circuit.name();
    out << "// " << module_name << " — written by tpidp\n";
    out << "module " << emit_name(module_name) << " (";
    bool first = true;
    for (NodeId pi : circuit.inputs()) {
        out << (first ? "" : ", ") << emit_name(circuit.node_name(pi));
        first = false;
    }
    for (NodeId po : circuit.outputs()) {
        out << (first ? "" : ", ") << emit_name(circuit.node_name(po));
        first = false;
    }
    out << ");\n";

    for (NodeId pi : circuit.inputs())
        out << "  input " << emit_name(circuit.node_name(pi)) << ";\n";
    for (NodeId po : circuit.outputs())
        out << "  output " << emit_name(circuit.node_name(po)) << ";\n";
    for (NodeId v : circuit.all_nodes()) {
        if (circuit.type(v) == GateType::Input || circuit.is_output(v))
            continue;
        out << "  wire " << emit_name(circuit.node_name(v)) << ";\n";
    }

    int serial = 0;
    for (NodeId v : circuit.topo_order()) {
        const GateType t = circuit.type(v);
        if (t == GateType::Input) continue;
        if (t == GateType::Const0 || t == GateType::Const1) {
            out << "  assign " << emit_name(circuit.node_name(v)) << " = "
                << (t == GateType::Const1 ? "1'b1" : "1'b0") << ";\n";
            continue;
        }
        std::string prim;
        switch (t) {
            case GateType::And: prim = "and"; break;
            case GateType::Nand: prim = "nand"; break;
            case GateType::Or: prim = "or"; break;
            case GateType::Nor: prim = "nor"; break;
            case GateType::Xor: prim = "xor"; break;
            case GateType::Xnor: prim = "xnor"; break;
            case GateType::Not: prim = "not"; break;
            case GateType::Buf: prim = "buf"; break;
            default: throw Error("write_verilog: unexpected gate");
        }
        out << "  " << prim << " g" << serial++ << " ("
            << emit_name(circuit.node_name(v));
        for (NodeId f : circuit.fanins(v))
            out << ", " << emit_name(circuit.node_name(f));
        out << ");\n";
    }
    out << "endmodule\n";
}

std::string write_verilog_string(const Circuit& circuit) {
    std::ostringstream out;
    write_verilog(out, circuit);
    return out.str();
}

}  // namespace tpi::netlist
