#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace tpi::netlist {

/// Reader/writer for the native binary netlist format `.tpb`.
///
/// Layout (all integers little-endian):
///
///     offset 0   char[4]  magic "TPB1"
///     offset 4   u32      version (currently 1)
///     offset 8   u32      section count
///     offset 12  u32      CRC-32 (IEEE) of every byte from offset 16
///                         to the end of the file
///     offset 16  section table: per section
///                         { u32 tag, u32 reserved(0), u64 offset, u64 size }
///     ...        section payloads (byte ranges inside the file)
///
/// Sections (tag is the ASCII FourCC, first byte = lowest byte):
///
///     META  u32 node_count, u32 input_count, u32 output_count,
///           u64 fanin_edge_count, u64 name_bytes, then the circuit
///           name (remainder of the section)
///     TYPE  node_count × u8 GateType
///     FNOF  (node_count + 1) × u32 fanin CSR offsets
///     FNIN  fanin_edge_count × u32 fanin node ids
///     NMOF  (node_count + 1) × u32 name-arena offsets
///     NMDA  name arena bytes
///     OUTS  output_count × u32 output node ids, in mark order
///
/// The reader derives every count from the section byte sizes (which are
/// bounded by the file size) before trusting the META counts, so a
/// hostile header cannot trigger an oversized allocation, and it rebuilds
/// the circuit through the normal builder API — fanins must reference
/// already-created nodes (acyclicity by construction) and arities are
/// re-validated.
///
/// Error contract: every reader failure — short file, bad magic, bad
/// version, CRC mismatch, truncated or overlapping sections, count
/// mismatches, out-of-range ids — is a tpi::ParseError. No other
/// exception type escapes.

/// Parse a circuit from .tpb bytes. `source` names the stream in errors.
Circuit read_tpb(std::istream& in, const std::string& source = ".tpb");

/// Parse a circuit from an in-memory byte buffer.
Circuit read_tpb_bytes(const void* data, std::size_t size,
                       const std::string& source = ".tpb");

/// Parse a circuit from a .tpb file on disk.
Circuit read_tpb_file(const std::string& path);

/// Serialise a circuit to .tpb bytes.
void write_tpb(std::ostream& out, const Circuit& circuit);

/// Serialise to a byte string (convenience for tests and round-trips).
std::string write_tpb_string(const Circuit& circuit);

/// The CRC-32 (IEEE 802.3, reflected) the format uses, exposed so tests
/// and the fuzzer can re-seal deliberately mutated files.
std::uint32_t tpb_crc32(const void* data, std::size_t size);

}  // namespace tpi::netlist
