#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace tpi::netlist {

/// How a netlist consumer wants structural problems handled.
///
/// Strict  — any Error-severity diagnostic throws tpi::ValidationError.
/// Lenient — safe repairs are applied in place (dead logic dropped,
///           dangling references tied off by the readers) and recorded
///           as Repair diagnostics; only unusable circuits (cycles)
///           still throw.
enum class ValidateMode : std::uint8_t { Strict, Lenient };

const char* validate_mode_name(ValidateMode mode);

enum class DiagSeverity : std::uint8_t {
    Note,     ///< informational
    Warning,  ///< suspicious but usable as-is
    Repair,   ///< a lenient-mode fix that was applied
    Error,    ///< violates the structural contract
};

const char* diag_severity_name(DiagSeverity severity);

/// One finding of the validator (or of a lenient reader).
struct Diagnostic {
    DiagSeverity severity = DiagSeverity::Note;
    /// Stable machine-readable check id, e.g. "combinational-cycle",
    /// "dead-gate", "unused-input", "degenerate-gate", "no-outputs".
    std::string check;
    std::string message;
    /// Names of the implicated nodes (possibly empty or truncated).
    std::vector<std::string> nodes;
};

/// The validator's report: every finding, in detection order.
struct Diagnostics {
    std::vector<Diagnostic> entries;

    void add(DiagSeverity severity, std::string check, std::string message,
             std::vector<std::string> nodes = {});
    void merge(Diagnostics other);

    std::size_t count(DiagSeverity severity) const;
    bool has_errors() const { return count(DiagSeverity::Error) > 0; }
    std::size_t repairs() const { return count(DiagSeverity::Repair); }

    /// "2 errors, 1 warning, 3 repairs" — empty string when clean.
    std::string summary() const;
};

/// Report-only structural inspection. Never mutates, never throws:
/// combinational cycles, empty circuits, missing primary outputs, dead
/// gates (no fanout, not an output), unused primary inputs, and
/// degenerate gates (duplicate fanins; single-input n-ary reductions)
/// are all reported as diagnostics.
Diagnostics inspect(const Circuit& circuit);

/// Validate `circuit` under `mode`.
///
/// Strict: runs inspect() and throws tpi::ValidationError naming the
/// offending nodes if any Error-severity finding exists; the circuit is
/// never modified.
///
/// Lenient: repairs what it safely can — dead gates (and any logic
/// feeding only dead gates) are dropped, preserving primary input and
/// output order — and records every repair. Findings that cannot be
/// repaired are downgraded to warnings, except combinational cycles,
/// which still throw (a cyclic "combinational" netlist has no safe
/// reading).
Diagnostics validate(Circuit& circuit, ValidateMode mode);

}  // namespace tpi::netlist
