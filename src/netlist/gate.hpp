#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "util/error.hpp"

namespace tpi::netlist {

/// Gate primitives of the netlist model. `Input` marks primary inputs
/// (and scan-cell outputs of full-scan sequential circuits); `Const0`/
/// `Const1` are tie cells. All logic gates except Buf/Not are n-ary
/// (n >= 1) with the usual reduction semantics.
enum class GateType : std::uint8_t {
    Input,
    Const0,
    Const1,
    Buf,
    Not,
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
};

/// Number of distinct GateType values (for table sizing).
inline constexpr int kGateTypeCount = 11;

/// Canonical upper-case mnemonic, matching the .bench dialect.
std::string_view gate_type_name(GateType type);

/// Parse a .bench gate mnemonic (case-insensitive; accepts BUFF for BUF).
/// Throws tpi::Error for unknown mnemonics.
GateType gate_type_from_name(std::string_view name);

/// True for Input/Const0/Const1, which take no fanins.
inline bool is_source(GateType type) {
    return type == GateType::Input || type == GateType::Const0 ||
           type == GateType::Const1;
}

/// True for gates whose output is the complement of the underlying
/// monotone function (NOT, NAND, NOR, XNOR).
inline bool is_inverting(GateType type) {
    return type == GateType::Not || type == GateType::Nand ||
           type == GateType::Nor || type == GateType::Xnor;
}

/// True for AND/NAND/OR/NOR, which have a controlling input value.
inline bool has_controlling_value(GateType type) {
    return type == GateType::And || type == GateType::Nand ||
           type == GateType::Or || type == GateType::Nor;
}

/// The input value that forces the gate output regardless of other
/// inputs: 0 for AND/NAND, 1 for OR/NOR. Precondition:
/// has_controlling_value(type).
bool controlling_value(GateType type);

/// Evaluate the gate on bit-parallel 64-pattern words. Each word carries
/// 64 independent pattern slots; sources must not be evaluated this way.
std::uint64_t eval_word(GateType type, std::span<const std::uint64_t> inputs);

/// Generic form of eval_word over any bit-parallel word type providing
/// `~ & | ^` and their compound assignments (std::uint64_t, the wide
/// sim::SimWord lanes). Each bit position is an independent pattern
/// slot; the accumulation is seeded from the first input, so no word
/// constants are needed and eval_word_t<std::uint64_t> is bit-for-bit
/// the scalar eval_word.
template <class Word>
Word eval_word_t(GateType type, std::span<const Word> inputs) {
    switch (type) {
        case GateType::Input:
        case GateType::Const0:
        case GateType::Const1:
            throw Error("eval_word: source nodes are not evaluated");
        case GateType::Buf:
            require(inputs.size() == 1, "eval_word: BUF takes one input");
            return inputs[0];
        case GateType::Not:
            require(inputs.size() == 1, "eval_word: NOT takes one input");
            return ~inputs[0];
        case GateType::And:
        case GateType::Nand: {
            require(!inputs.empty(), "eval_word: AND needs inputs");
            Word acc = inputs[0];
            for (std::size_t k = 1; k < inputs.size(); ++k)
                acc &= inputs[k];
            return type == GateType::Nand ? ~acc : acc;
        }
        case GateType::Or:
        case GateType::Nor: {
            require(!inputs.empty(), "eval_word: OR needs inputs");
            Word acc = inputs[0];
            for (std::size_t k = 1; k < inputs.size(); ++k)
                acc |= inputs[k];
            return type == GateType::Nor ? ~acc : acc;
        }
        case GateType::Xor:
        case GateType::Xnor: {
            require(!inputs.empty(), "eval_word: XOR needs inputs");
            Word acc = inputs[0];
            for (std::size_t k = 1; k < inputs.size(); ++k)
                acc ^= inputs[k];
            return type == GateType::Xnor ? ~acc : acc;
        }
    }
    throw Error("eval_word: invalid GateType");
}

/// Evaluate the gate on scalar boolean inputs (convenience for tests and
/// the exhaustive oracle).
bool eval_bool(GateType type, std::span<const bool> inputs);

}  // namespace tpi::netlist
