#pragma once

#include <cstdint>
#include <string_view>

#include "netlist/circuit.hpp"

namespace tpi::netlist {

/// The test point kinds of the TPI problem.
///
/// * Observe     — the net is made directly observable (extra scan cell).
/// * ControlAnd  — the net is ANDed with a test signal; during BIST the
///                 signal is an equiprobable pseudo-random bit, biasing the
///                 net towards 0 (C1' = C1/2).
/// * ControlOr   — the net is ORed with a test signal, biasing towards 1
///                 (C1' = (1+C1)/2).
/// * ControlXor  — the net is XORed with an equiprobable pseudo-random
///                 signal, randomising it completely (C1' = 1/2).
enum class TpKind : std::uint8_t {
    Observe,
    ControlAnd,
    ControlOr,
    ControlXor,
};

inline constexpr int kTpKindCount = 4;

std::string_view tp_kind_name(TpKind kind);

inline bool is_control(TpKind kind) { return kind != TpKind::Observe; }

/// A test point: a kind applied to a specific net of the original circuit.
struct TestPoint {
    NodeId node = kNullNode;
    TpKind kind = TpKind::Observe;

    friend constexpr bool operator==(const TestPoint&,
                                     const TestPoint&) = default;
};

}  // namespace tpi::netlist
