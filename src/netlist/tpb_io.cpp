#include "netlist/tpb_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace tpi::netlist {

namespace {

constexpr std::array<char, 4> kMagic = {'T', 'P', 'B', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 16;
constexpr std::size_t kSectionEntrySize = 24;
constexpr std::uint32_t kMaxSections = 64;

constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kTagMeta = fourcc('M', 'E', 'T', 'A');
constexpr std::uint32_t kTagType = fourcc('T', 'Y', 'P', 'E');
constexpr std::uint32_t kTagFanodeOff = fourcc('F', 'N', 'O', 'F');
constexpr std::uint32_t kTagFanin = fourcc('F', 'N', 'I', 'N');
constexpr std::uint32_t kTagNameOff = fourcc('N', 'M', 'O', 'F');
constexpr std::uint32_t kTagNameData = fourcc('N', 'M', 'D', 'A');
constexpr std::uint32_t kTagOutputs = fourcc('O', 'U', 'T', 'S');

[[noreturn]] void bad(const std::string& source, const std::string& message) {
    throw ParseError(source, 0, message);
}

/// Little-endian scalar writes, independent of host byte order.
void put_u32(std::string& out, std::uint32_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
    put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Bounds-checked little-endian reads over the file buffer.
class Cursor {
public:
    Cursor(const unsigned char* data, std::size_t size,
           const std::string& source)
        : data_(data), size_(size), source_(source) {}

    std::uint32_t u32(std::size_t at) const {
        if (at + 4 > size_) bad(source_, "truncated file (u32 read)");
        return static_cast<std::uint32_t>(data_[at]) |
               static_cast<std::uint32_t>(data_[at + 1]) << 8 |
               static_cast<std::uint32_t>(data_[at + 2]) << 16 |
               static_cast<std::uint32_t>(data_[at + 3]) << 24;
    }

    std::uint64_t u64(std::size_t at) const {
        return static_cast<std::uint64_t>(u32(at)) |
               static_cast<std::uint64_t>(u32(at + 4)) << 32;
    }

    const unsigned char* bytes(std::size_t at, std::size_t count) const {
        if (at + count > size_ || at + count < at)
            bad(source_, "truncated file (byte range)");
        return data_ + at;
    }

    std::size_t size() const { return size_; }

private:
    const unsigned char* data_;
    std::size_t size_;
    const std::string& source_;
};

struct Section {
    std::uint32_t tag = 0;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
};

/// Little-endian u32 array view over a section (count = size / 4).
std::vector<std::uint32_t> read_u32_array(const Cursor& in,
                                          const Section& s) {
    std::vector<std::uint32_t> out(s.size / 4);
    const unsigned char* p =
        in.bytes(static_cast<std::size_t>(s.offset),
                 static_cast<std::size_t>(s.size));
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint32_t>(p[4 * i]) |
                 static_cast<std::uint32_t>(p[4 * i + 1]) << 8 |
                 static_cast<std::uint32_t>(p[4 * i + 2]) << 16 |
                 static_cast<std::uint32_t>(p[4 * i + 3]) << 24;
    return out;
}

Circuit parse_tpb(const unsigned char* data, std::size_t size,
                  const std::string& source) {
    const Cursor in(data, size, source);
    if (size < kHeaderSize) bad(source, "file shorter than the header");
    if (std::memcmp(data, kMagic.data(), kMagic.size()) != 0)
        bad(source, "bad magic (not a .tpb file)");
    if (in.u32(4) != kVersion)
        bad(source, "unsupported version " + std::to_string(in.u32(4)));
    const std::uint32_t section_count = in.u32(8);
    if (section_count == 0 || section_count > kMaxSections)
        bad(source, "implausible section count " +
                        std::to_string(section_count));
    const std::uint32_t want_crc = in.u32(12);
    const std::uint32_t got_crc =
        tpb_crc32(data + kHeaderSize, size - kHeaderSize);
    if (want_crc != got_crc) bad(source, "CRC mismatch (corrupt file)");

    const std::size_t table_end =
        kHeaderSize + std::size_t{section_count} * kSectionEntrySize;
    if (table_end > size) bad(source, "truncated section table");

    Section meta, type, fanin_off, fanin, name_off, name_data, outputs;
    for (std::uint32_t i = 0; i < section_count; ++i) {
        const std::size_t at = kHeaderSize + i * kSectionEntrySize;
        Section s;
        s.tag = in.u32(at);
        s.offset = in.u64(at + 8);
        s.size = in.u64(at + 16);
        if (s.offset < table_end || s.offset > size ||
            s.size > size - s.offset)
            bad(source, "section outside the file");
        Section* slot = nullptr;
        switch (s.tag) {
            case kTagMeta: slot = &meta; break;
            case kTagType: slot = &type; break;
            case kTagFanodeOff: slot = &fanin_off; break;
            case kTagFanin: slot = &fanin; break;
            case kTagNameOff: slot = &name_off; break;
            case kTagNameData: slot = &name_data; break;
            case kTagOutputs: slot = &outputs; break;
            default: continue;  // unknown sections are skipped (forward compat)
        }
        if (slot->tag != 0) bad(source, "duplicate section");
        *slot = s;
    }
    for (const Section* s :
         {&meta, &type, &fanin_off, &fanin, &name_off, &name_data,
          &outputs})
        if (s->tag == 0) bad(source, "missing required section");

    // Counts come from the section sizes (bounded by the file size); the
    // META counts merely have to agree.
    if (meta.size < 28) bad(source, "META section too small");
    const std::size_t meta_at = static_cast<std::size_t>(meta.offset);
    const std::uint32_t node_count = in.u32(meta_at);
    const std::uint32_t input_count = in.u32(meta_at + 4);
    const std::uint32_t output_count = in.u32(meta_at + 8);
    const std::uint64_t edge_count = in.u64(meta_at + 12);
    const std::uint64_t name_bytes = in.u64(meta_at + 20);
    const char* name_ptr = reinterpret_cast<const char*>(
        in.bytes(meta_at + 28, static_cast<std::size_t>(meta.size) - 28));
    std::string circuit_name(name_ptr,
                             static_cast<std::size_t>(meta.size) - 28);

    if (type.size != node_count)
        bad(source, "TYPE size disagrees with the node count");
    if (fanin_off.size != (std::uint64_t{node_count} + 1) * 4)
        bad(source, "FNOF size disagrees with the node count");
    if (fanin.size != edge_count * 4 || fanin.size % 4 != 0)
        bad(source, "FNIN size disagrees with the edge count");
    if (name_off.size != (std::uint64_t{node_count} + 1) * 4)
        bad(source, "NMOF size disagrees with the node count");
    if (name_data.size != name_bytes)
        bad(source, "NMDA size disagrees with the name byte count");
    if (outputs.size != std::uint64_t{output_count} * 4)
        bad(source, "OUTS size disagrees with the output count");

    const unsigned char* types =
        in.bytes(static_cast<std::size_t>(type.offset), node_count);
    const std::vector<std::uint32_t> foff = read_u32_array(in, fanin_off);
    const std::vector<std::uint32_t> fdata = read_u32_array(in, fanin);
    const std::vector<std::uint32_t> noff = read_u32_array(in, name_off);
    const char* names = reinterpret_cast<const char*>(in.bytes(
        static_cast<std::size_t>(name_data.offset),
        static_cast<std::size_t>(name_data.size)));
    const std::vector<std::uint32_t> outs = read_u32_array(in, outputs);

    if (foff.front() != 0 || foff.back() != fdata.size())
        bad(source, "FNOF does not span FNIN");
    if (noff.front() != 0 || noff.back() != name_data.size)
        bad(source, "NMOF does not span NMDA");
    // Monotonicity of the WHOLE offset chains, before any offset is
    // used. Checking pairs lazily inside the rebuild loop is unsound:
    // [0, huge, size] passes its first pair check and over-reads the
    // name pool (or the fanin array) before the decreasing second pair
    // would be seen.
    for (std::uint32_t id = 0; id < node_count; ++id) {
        if (foff[id + 1] < foff[id])
            bad(source, "FNOF not monotonically increasing");
        if (noff[id + 1] < noff[id])
            bad(source, "NMOF not monotonically increasing");
    }

    // Rebuild through the builder API: arities and fanin existence are
    // re-validated, and requiring fanin < id makes the netlist acyclic
    // by construction.
    Circuit circuit(std::move(circuit_name));
    circuit.reserve(node_count, fdata.size(),
                    static_cast<std::size_t>(name_data.size));
    std::vector<NodeId> fanins_scratch;
    for (std::uint32_t id = 0; id < node_count; ++id) {
        if (types[id] >= kGateTypeCount)
            bad(source, "unknown gate type " + std::to_string(types[id]));
        const GateType t = static_cast<GateType>(types[id]);
        const std::string_view name(names + noff[id],
                                    noff[id + 1] - noff[id]);
        if (name.empty()) bad(source, "empty node name");
        fanins_scratch.clear();
        for (std::uint32_t k = foff[id]; k < foff[id + 1]; ++k) {
            if (fdata[k] >= id)
                bad(source,
                    "fanin references a node at or after its gate");
            fanins_scratch.push_back(NodeId{fdata[k]});
        }
        try {
            if (t == GateType::Input) {
                if (!fanins_scratch.empty())
                    bad(source, "input with fanins");
                circuit.add_input(name);
            } else if (t == GateType::Const0 || t == GateType::Const1) {
                if (!fanins_scratch.empty())
                    bad(source, "constant with fanins");
                circuit.add_const(t == GateType::Const1, name);
            } else {
                circuit.add_gate(t, fanins_scratch, name);
            }
        } catch (const ParseError&) {
            throw;
        } catch (const Error& e) {
            bad(source, e.what());
        }
    }
    if (circuit.input_count() != input_count)
        bad(source, "META input count disagrees with TYPE");
    for (std::uint32_t out : outs) {
        if (out >= node_count) bad(source, "output id out of range");
        try {
            circuit.mark_output(NodeId{out});
        } catch (const Error& e) {
            bad(source, e.what());
        }
    }
    return circuit;
}

}  // namespace

std::uint32_t tpb_crc32(const void* data, std::size_t size) {
    // CRC-32/IEEE (reflected, poly 0xEDB88320), nibble-table variant: no
    // global state, cheap to rebuild, and byte-order independent.
    static constexpr std::array<std::uint32_t, 16> kTable = [] {
        std::array<std::uint32_t, 16> t{};
        for (std::uint32_t i = 0; i < 16; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 4; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        crc ^= p[i];
        crc = kTable[crc & 0xF] ^ (crc >> 4);
        crc = kTable[crc & 0xF] ^ (crc >> 4);
    }
    return crc ^ 0xFFFFFFFFu;
}

Circuit read_tpb_bytes(const void* data, std::size_t size,
                       const std::string& source) {
    try {
        return parse_tpb(static_cast<const unsigned char*>(data), size,
                         source);
    } catch (const ParseError&) {
        throw;
    } catch (const Error& e) {
        throw ParseError(source, 0, e.what());
    } catch (const std::exception& e) {
        throw ParseError(source, 0,
                         std::string("internal reader failure: ") +
                             e.what());
    }
}

Circuit read_tpb(std::istream& in, const std::string& source) {
    std::string buf((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    return read_tpb_bytes(buf.data(), buf.size(), source);
}

Circuit read_tpb_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw ParseError(path, 0, "cannot open file");
    return read_tpb(in, path);
}

void write_tpb(std::ostream& out, const Circuit& circuit) {
    const std::string bytes = write_tpb_string(circuit);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

std::string write_tpb_string(const Circuit& circuit) {
    const std::size_t n = circuit.node_count();
    require(n <= UINT32_MAX, "write_tpb: node count overflow");

    // Payload sections, then the header + table in front of them.
    struct Payload {
        std::uint32_t tag;
        std::string bytes;
    };
    std::vector<Payload> sections;

    {
        std::string meta;
        put_u32(meta, static_cast<std::uint32_t>(n));
        put_u32(meta, static_cast<std::uint32_t>(circuit.input_count()));
        put_u32(meta, static_cast<std::uint32_t>(circuit.output_count()));
        std::uint64_t edges = 0;
        std::uint64_t name_bytes = 0;
        for (std::uint32_t id = 0; id < n; ++id) {
            edges += circuit.fanins(NodeId{id}).size();
            name_bytes += circuit.node_name(NodeId{id}).size();
        }
        put_u64(meta, edges);
        put_u64(meta, name_bytes);
        meta += circuit.name();
        sections.push_back({kTagMeta, std::move(meta)});
    }
    {
        std::string types;
        types.reserve(n);
        for (std::uint32_t id = 0; id < n; ++id)
            types.push_back(
                static_cast<char>(circuit.type(NodeId{id})));
        sections.push_back({kTagType, std::move(types)});
    }
    {
        std::string foff, fdata;
        std::uint32_t cursor = 0;
        put_u32(foff, 0);
        for (std::uint32_t id = 0; id < n; ++id) {
            for (NodeId f : circuit.fanins(NodeId{id})) {
                put_u32(fdata, f.v);
                ++cursor;
            }
            put_u32(foff, cursor);
        }
        sections.push_back({kTagFanodeOff, std::move(foff)});
        sections.push_back({kTagFanin, std::move(fdata)});
    }
    {
        std::string noff, ndata;
        put_u32(noff, 0);
        for (std::uint32_t id = 0; id < n; ++id) {
            ndata += circuit.node_name(NodeId{id});
            require(ndata.size() <= UINT32_MAX,
                    "write_tpb: name arena overflow");
            put_u32(noff, static_cast<std::uint32_t>(ndata.size()));
        }
        sections.push_back({kTagNameOff, std::move(noff)});
        sections.push_back({kTagNameData, std::move(ndata)});
    }
    {
        std::string outs;
        for (NodeId po : circuit.outputs()) put_u32(outs, po.v);
        sections.push_back({kTagOutputs, std::move(outs)});
    }

    const std::size_t table_end =
        kHeaderSize + sections.size() * kSectionEntrySize;
    std::string body;  // section table + payloads (the CRC'd region)
    std::uint64_t at = table_end;
    for (const Payload& s : sections) {
        put_u32(body, s.tag);
        put_u32(body, 0);  // reserved
        put_u64(body, at);
        put_u64(body, s.bytes.size());
        at += s.bytes.size();
    }
    for (const Payload& s : sections) body += s.bytes;

    std::string file;
    file.reserve(kHeaderSize + body.size());
    file.append(kMagic.data(), kMagic.size());
    put_u32(file, kVersion);
    put_u32(file, static_cast<std::uint32_t>(sections.size()));
    put_u32(file, tpb_crc32(body.data(), body.size()));
    file += body;
    return file;
}

}  // namespace tpi::netlist
