#include "netlist/bench_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace tpi::netlist {
namespace {

std::string_view trim(std::string_view s) {
    const auto is_space = [](char c) {
        return c == ' ' || c == '\t' || c == '\r' || c == '\n';
    };
    while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
    while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
    return s;
}

/// A parsed `lhs = OP(arg, ...)` statement (or INPUT/OUTPUT declaration).
struct Statement {
    std::string lhs;
    std::string op;
    std::vector<std::string> args;
    int line = 0;
};

[[noreturn]] void fail(int line, const std::string& message) {
    throw Error(".bench parse error (line " + std::to_string(line) +
                "): " + message);
}

/// Split "OP(a, b, c)" into op and args. Returns false if not that shape.
bool parse_call(std::string_view text, int line, std::string& op,
                std::vector<std::string>& args) {
    const auto open = text.find('(');
    if (open == std::string_view::npos) return false;
    const auto close = text.rfind(')');
    if (close == std::string_view::npos || close < open)
        fail(line, "unbalanced parentheses");
    op = std::string(trim(text.substr(0, open)));
    const std::string_view inner = text.substr(open + 1, close - open - 1);
    args.clear();
    std::size_t start = 0;
    while (start <= inner.size()) {
        const auto comma = inner.find(',', start);
        const auto piece =
            trim(inner.substr(start, comma == std::string_view::npos
                                         ? std::string_view::npos
                                         : comma - start));
        if (!piece.empty()) args.emplace_back(piece);
        if (comma == std::string_view::npos) break;
        start = comma + 1;
    }
    return true;
}

}  // namespace

Circuit read_bench(std::istream& in, std::string circuit_name) {
    std::vector<std::string> input_decls;
    std::vector<std::string> output_decls;
    std::vector<Statement> statements;

    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string_view line(raw);
        if (const auto hash = line.find('#'); hash != std::string_view::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty()) continue;

        const auto eq = line.find('=');
        if (eq == std::string_view::npos) {
            // INPUT(x) or OUTPUT(x) declaration.
            std::string op;
            std::vector<std::string> args;
            if (!parse_call(line, line_no, op, args))
                fail(line_no, "expected declaration or assignment");
            if (args.size() != 1)
                fail(line_no, op + " takes exactly one signal");
            if (op == "INPUT")
                input_decls.push_back(args[0]);
            else if (op == "OUTPUT")
                output_decls.push_back(args[0]);
            else
                fail(line_no, "unknown declaration '" + op + "'");
            continue;
        }

        Statement st;
        st.line = line_no;
        st.lhs = std::string(trim(line.substr(0, eq)));
        if (st.lhs.empty()) fail(line_no, "missing signal name before '='");
        if (!parse_call(trim(line.substr(eq + 1)), line_no, st.op, st.args))
            fail(line_no, "expected OP(args) after '='");
        statements.push_back(std::move(st));
    }

    Circuit circuit(std::move(circuit_name));
    std::unordered_map<std::string, NodeId> by_name;
    std::unordered_map<std::string, std::size_t> defining;
    std::vector<std::string> scan_data_outputs;  // DFF fanins (pseudo-POs)

    for (const std::string& name : input_decls) {
        if (by_name.contains(name))
            throw Error(".bench: duplicate INPUT '" + name + "'");
        by_name.emplace(name, circuit.add_input(name));
    }
    for (std::size_t i = 0; i < statements.size(); ++i) {
        const Statement& st = statements[i];
        if (by_name.contains(st.lhs) || defining.contains(st.lhs))
            fail(st.line, "signal '" + st.lhs + "' defined twice");
        // Full-scan conversion: a DFF output is a pseudo primary input and
        // the DFF data fanin becomes a pseudo primary output.
        if (st.op == "DFF" || st.op == "dff") {
            if (st.args.size() != 1) fail(st.line, "DFF takes one fanin");
            by_name.emplace(st.lhs, circuit.add_input(st.lhs));
            scan_data_outputs.push_back(st.args[0]);
            continue;
        }
        defining.emplace(st.lhs, i);
    }

    // Create gate nodes in dependency order with an explicit DFS stack
    // (recursion would overflow on deep circuits).
    std::vector<char> state(statements.size(), 0);  // 0=new 1=open 2=done
    const auto create_all_from = [&](std::size_t root) {
        std::vector<std::size_t> stack{root};
        while (!stack.empty()) {
            const std::size_t s = stack.back();
            const Statement& st = statements[s];
            if (state[s] == 2) {
                stack.pop_back();
                continue;
            }
            if (state[s] == 0) {
                state[s] = 1;
                bool blocked = false;
                for (const std::string& arg : st.args) {
                    if (by_name.contains(arg)) continue;
                    const auto it = defining.find(arg);
                    if (it == defining.end())
                        fail(st.line, "undefined signal '" + arg + "'");
                    if (state[it->second] == 1)
                        fail(st.line, "combinational cycle through '" +
                                          st.lhs + "'");
                    if (state[it->second] == 0) {
                        stack.push_back(it->second);
                        blocked = true;
                    }
                }
                if (blocked) continue;
            }
            // All fanins resolved; create this node.
            if (st.op == "CONST0" || st.op == "CONST1") {
                if (!st.args.empty())
                    fail(st.line, st.op + " takes no fanins");
                by_name.emplace(st.lhs,
                                circuit.add_const(st.op == "CONST1", st.lhs));
            } else {
                const GateType type = gate_type_from_name(st.op);
                if (type == GateType::Input)
                    fail(st.line, "INPUT used as a gate");
                std::vector<NodeId> fanins;
                fanins.reserve(st.args.size());
                for (const std::string& arg : st.args)
                    fanins.push_back(by_name.at(arg));
                by_name.emplace(st.lhs,
                                circuit.add_gate(type, std::move(fanins),
                                                 st.lhs));
            }
            state[s] = 2;
            stack.pop_back();
        }
    };
    for (std::size_t i = 0; i < statements.size(); ++i)
        if (defining.contains(statements[i].lhs) && state[i] != 2)
            create_all_from(i);

    for (const std::string& name : output_decls) {
        const auto it = by_name.find(name);
        if (it == by_name.end())
            throw Error(".bench: OUTPUT of undefined signal '" + name + "'");
        if (!circuit.is_output(it->second)) circuit.mark_output(it->second);
    }
    for (const std::string& name : scan_data_outputs) {
        const auto it = by_name.find(name);
        if (it == by_name.end())
            throw Error(".bench: DFF fanin '" + name + "' undefined");
        if (!circuit.is_output(it->second)) circuit.mark_output(it->second);
    }

    circuit.validate();
    return circuit;
}

Circuit read_bench_string(const std::string& text, std::string circuit_name) {
    std::istringstream in(text);
    return read_bench(in, std::move(circuit_name));
}

Circuit read_bench_file(const std::string& path) {
    std::ifstream in(path);
    require(in.good(), "read_bench_file: cannot open '" + path + "'");
    // Circuit name = file stem.
    auto stem = path;
    if (const auto slash = stem.find_last_of('/');
        slash != std::string::npos)
        stem = stem.substr(slash + 1);
    if (const auto dot = stem.find_last_of('.'); dot != std::string::npos)
        stem = stem.substr(0, dot);
    return read_bench(in, stem);
}

void write_bench(std::ostream& out, const Circuit& circuit) {
    out << "# " << circuit.name() << " — written by tpidp\n";
    for (NodeId pi : circuit.inputs())
        out << "INPUT(" << circuit.node_name(pi) << ")\n";
    for (NodeId po : circuit.outputs())
        out << "OUTPUT(" << circuit.node_name(po) << ")\n";
    for (NodeId v : circuit.topo_order()) {
        const GateType t = circuit.type(v);
        if (t == GateType::Input) continue;
        out << circuit.node_name(v) << " = " << gate_type_name(t) << "(";
        bool first = true;
        for (NodeId f : circuit.fanins(v)) {
            if (!first) out << ", ";
            out << circuit.node_name(f);
            first = false;
        }
        out << ")\n";
    }
}

std::string write_bench_string(const Circuit& circuit) {
    std::ostringstream out;
    write_bench(out, circuit);
    return out.str();
}

}  // namespace tpi::netlist
