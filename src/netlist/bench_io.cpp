#include "netlist/bench_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace tpi::netlist {
namespace {

std::string_view trim(std::string_view s) {
    const auto is_space = [](char c) {
        return c == ' ' || c == '\t' || c == '\r' || c == '\n';
    };
    while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
    while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
    return s;
}

/// A parsed `lhs = OP(arg, ...)` statement (or INPUT/OUTPUT declaration).
struct Statement {
    std::string lhs;
    std::string op;
    std::vector<std::string> args;
    int line = 0;
};

/// An INPUT/OUTPUT declaration with its source line.
struct Decl {
    std::string name;
    int line = 0;
};

/// Reader behavior beyond plain parsing: nullptr = legacy (strict parse,
/// no structural validation).
struct Policy {
    ValidateMode mode = ValidateMode::Strict;
    Diagnostics* diags = nullptr;

    bool lenient() const { return mode == ValidateMode::Lenient; }
    void repair(std::string check, std::string message,
                std::vector<std::string> nodes = {}) const {
        if (diags)
            diags->add(DiagSeverity::Repair, std::move(check),
                       std::move(message), std::move(nodes));
    }
};

[[noreturn]] void fail(int line, const std::string& message) {
    throw ParseError(".bench", line, message);
}

/// Split "OP(a, b, c)" into op and args. Returns false if not that shape.
bool parse_call(std::string_view text, int line, std::string& op,
                std::vector<std::string>& args) {
    const auto open = text.find('(');
    if (open == std::string_view::npos) return false;
    const auto close = text.rfind(')');
    if (close == std::string_view::npos || close < open)
        fail(line, "unbalanced parentheses");
    op = std::string(trim(text.substr(0, open)));
    const std::string_view inner = text.substr(open + 1, close - open - 1);
    args.clear();
    std::size_t start = 0;
    while (start <= inner.size()) {
        const auto comma = inner.find(',', start);
        const auto piece =
            trim(inner.substr(start, comma == std::string_view::npos
                                         ? std::string_view::npos
                                         : comma - start));
        if (!piece.empty()) args.emplace_back(piece);
        if (comma == std::string_view::npos) break;
        start = comma + 1;
    }
    return true;
}

Circuit read_bench_impl(std::istream& in, std::string circuit_name,
                        const Policy* policy) {
    std::vector<Decl> input_decls;
    std::vector<Decl> output_decls;
    std::vector<Statement> statements;

    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string_view line(raw);
        if (const auto hash = line.find('#'); hash != std::string_view::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty()) continue;

        const auto eq = line.find('=');
        if (eq == std::string_view::npos) {
            // INPUT(x) or OUTPUT(x) declaration.
            std::string op;
            std::vector<std::string> args;
            if (!parse_call(line, line_no, op, args))
                fail(line_no, "expected declaration or assignment");
            if (args.size() != 1)
                fail(line_no, op + " takes exactly one signal");
            if (op == "INPUT")
                input_decls.push_back({args[0], line_no});
            else if (op == "OUTPUT")
                output_decls.push_back({args[0], line_no});
            else
                fail(line_no, "unknown declaration '" + op + "'");
            continue;
        }

        Statement st;
        st.line = line_no;
        st.lhs = std::string(trim(line.substr(0, eq)));
        if (st.lhs.empty()) fail(line_no, "missing signal name before '='");
        if (!parse_call(trim(line.substr(eq + 1)), line_no, st.op, st.args))
            fail(line_no, "expected OP(args) after '='");
        statements.push_back(std::move(st));
    }

    const bool lenient = policy != nullptr && policy->lenient();
    Circuit circuit(std::move(circuit_name));
    std::unordered_map<std::string, NodeId> by_name;
    std::unordered_map<std::string, std::size_t> defining;
    std::vector<Decl> scan_data_outputs;  // DFF fanins (pseudo-POs)

    for (const Decl& decl : input_decls) {
        if (by_name.contains(decl.name)) {
            if (lenient) {
                policy->repair("duplicate-input",
                               "dropped duplicate INPUT '" + decl.name +
                                   "' (line " + std::to_string(decl.line) +
                                   ")",
                               {decl.name});
                continue;
            }
            fail(decl.line, "duplicate INPUT '" + decl.name + "'");
        }
        by_name.emplace(decl.name, circuit.add_input(decl.name));
    }
    for (std::size_t i = 0; i < statements.size(); ++i) {
        const Statement& st = statements[i];
        if (by_name.contains(st.lhs) || defining.contains(st.lhs)) {
            if (lenient) {
                policy->repair("duplicate-definition",
                               "signal '" + st.lhs +
                                   "' defined twice; kept the first "
                                   "definition (dropped line " +
                                   std::to_string(st.line) + ")",
                               {st.lhs});
                continue;
            }
            fail(st.line, "signal '" + st.lhs + "' defined twice");
        }
        // Full-scan conversion: a DFF output is a pseudo primary input and
        // the DFF data fanin becomes a pseudo primary output.
        if (st.op == "DFF" || st.op == "dff") {
            if (st.args.size() != 1) fail(st.line, "DFF takes one fanin");
            by_name.emplace(st.lhs, circuit.add_input(st.lhs));
            scan_data_outputs.push_back({st.args[0], st.line});
            continue;
        }
        defining.emplace(st.lhs, i);
    }

    // Resolve a fanin reference, tying undefined signals to constant 0 in
    // lenient mode.
    const auto resolve_undefined = [&](const Statement& st,
                                       const std::string& arg) {
        if (!lenient)
            fail(st.line, "undefined signal '" + arg + "'");
        policy->repair("undriven-net",
                       "tied undefined signal '" + arg +
                           "' (used by '" + st.lhs + "') to constant 0",
                       {arg});
        by_name.emplace(arg, circuit.add_const(false, arg));
    };

    // Create gate nodes in dependency order with an explicit DFS stack
    // (recursion would overflow on deep circuits).
    std::vector<char> state(statements.size(), 0);  // 0=new 1=open 2=done
    const auto create_all_from = [&](std::size_t root) {
        std::vector<std::size_t> stack{root};
        while (!stack.empty()) {
            const std::size_t s = stack.back();
            const Statement& st = statements[s];
            if (state[s] == 2) {
                stack.pop_back();
                continue;
            }
            if (state[s] == 0) {
                state[s] = 1;
                bool blocked = false;
                for (const std::string& arg : st.args) {
                    if (by_name.contains(arg)) continue;
                    const auto it = defining.find(arg);
                    if (it == defining.end()) {
                        resolve_undefined(st, arg);
                        continue;
                    }
                    if (state[it->second] == 1)
                        fail(st.line, "combinational cycle through '" +
                                          st.lhs + "'");
                    if (state[it->second] == 0) {
                        stack.push_back(it->second);
                        blocked = true;
                    }
                }
                if (blocked) continue;
            }
            // All fanins resolved; create this node.
            if (st.op == "CONST0" || st.op == "CONST1") {
                if (!st.args.empty())
                    fail(st.line, st.op + " takes no fanins");
                by_name.emplace(st.lhs,
                                circuit.add_const(st.op == "CONST1", st.lhs));
            } else {
                GateType type;
                try {
                    type = gate_type_from_name(st.op);
                } catch (const Error& e) {
                    fail(st.line, e.what());
                }
                if (type == GateType::Input)
                    fail(st.line, "INPUT used as a gate");
                if (is_source(type))
                    fail(st.line, st.op + " takes no fanins");
                if ((type == GateType::Buf || type == GateType::Not) &&
                    st.args.size() != 1)
                    fail(st.line, st.op + " takes exactly one fanin");
                if (st.args.empty())
                    fail(st.line, st.op + " needs at least one fanin");
                std::vector<NodeId> fanins;
                fanins.reserve(st.args.size());
                for (const std::string& arg : st.args)
                    fanins.push_back(by_name.at(arg));
                by_name.emplace(st.lhs,
                                circuit.add_gate(type, std::move(fanins),
                                                 st.lhs));
            }
            state[s] = 2;
            stack.pop_back();
        }
    };
    for (std::size_t i = 0; i < statements.size(); ++i) {
        const auto it = defining.find(statements[i].lhs);
        if (it != defining.end() && it->second == i && state[i] != 2)
            create_all_from(i);
    }

    for (const Decl& decl : output_decls) {
        const auto it = by_name.find(decl.name);
        if (it == by_name.end()) {
            if (lenient) {
                policy->repair("floating-output",
                               "dropped OUTPUT of undefined signal '" +
                                   decl.name + "' (line " +
                                   std::to_string(decl.line) + ")",
                               {decl.name});
                continue;
            }
            fail(decl.line,
                 "OUTPUT of undefined signal '" + decl.name + "'");
        }
        if (!circuit.is_output(it->second)) circuit.mark_output(it->second);
    }
    for (const Decl& decl : scan_data_outputs) {
        const auto it = by_name.find(decl.name);
        if (it == by_name.end()) {
            if (lenient) {
                policy->repair("floating-output",
                               "dropped pseudo-output of undefined DFF "
                               "fanin '" +
                                   decl.name + "' (line " +
                                   std::to_string(decl.line) + ")",
                               {decl.name});
                continue;
            }
            fail(decl.line, "DFF fanin '" + decl.name + "' undefined");
        }
        if (!circuit.is_output(it->second)) circuit.mark_output(it->second);
    }

    circuit.validate();
    if (policy != nullptr) {
        Diagnostics vdiags = validate(circuit, policy->mode);
        if (policy->diags) policy->diags->merge(std::move(vdiags));
    }
    return circuit;
}

/// Error contract wrapper: nothing but ParseError/ValidationError may
/// escape a reader, whatever the input text provokes internally.
template <typename Fn>
Circuit guard_read(Fn&& fn) {
    try {
        return fn();
    } catch (const ParseError&) {
        throw;
    } catch (const ValidationError&) {
        throw;
    } catch (const Error& e) {
        throw ParseError(".bench", 0, e.what());
    } catch (const std::exception& e) {
        throw ParseError(".bench", 0,
                         std::string("internal reader failure: ") +
                             e.what());
    }
}

}  // namespace

Circuit read_bench(std::istream& in, std::string circuit_name) {
    return guard_read([&] {
        return read_bench_impl(in, std::move(circuit_name), nullptr);
    });
}

Circuit read_bench(std::istream& in, std::string circuit_name,
                   ValidateMode mode, Diagnostics* diagnostics) {
    const Policy policy{mode, diagnostics};
    return guard_read([&] {
        return read_bench_impl(in, std::move(circuit_name), &policy);
    });
}

Circuit read_bench_string(const std::string& text, std::string circuit_name) {
    std::istringstream in(text);
    return read_bench(in, std::move(circuit_name));
}

Circuit read_bench_string(const std::string& text, std::string circuit_name,
                          ValidateMode mode, Diagnostics* diagnostics) {
    std::istringstream in(text);
    return read_bench(in, std::move(circuit_name), mode, diagnostics);
}

namespace {

std::ifstream open_bench_file(const std::string& path) {
    std::ifstream in(path);
    if (!in.good())
        throw ParseError(path, 0, "cannot open file");
    return in;
}

std::string file_stem(const std::string& path) {
    auto stem = path;
    if (const auto slash = stem.find_last_of('/');
        slash != std::string::npos)
        stem = stem.substr(slash + 1);
    if (const auto dot = stem.find_last_of('.'); dot != std::string::npos)
        stem = stem.substr(0, dot);
    return stem;
}

}  // namespace

Circuit read_bench_file(const std::string& path) {
    std::ifstream in = open_bench_file(path);
    return read_bench(in, file_stem(path));
}

Circuit read_bench_file(const std::string& path, ValidateMode mode,
                        Diagnostics* diagnostics) {
    std::ifstream in = open_bench_file(path);
    return read_bench(in, file_stem(path), mode, diagnostics);
}

void write_bench(std::ostream& out, const Circuit& circuit) {
    out << "# " << circuit.name() << " — written by tpidp\n";
    for (NodeId pi : circuit.inputs())
        out << "INPUT(" << circuit.node_name(pi) << ")\n";
    for (NodeId po : circuit.outputs())
        out << "OUTPUT(" << circuit.node_name(po) << ")\n";
    for (NodeId v : circuit.topo_order()) {
        const GateType t = circuit.type(v);
        if (t == GateType::Input) continue;
        out << circuit.node_name(v) << " = " << gate_type_name(t) << "(";
        bool first = true;
        for (NodeId f : circuit.fanins(v)) {
            if (!first) out << ", ";
            out << circuit.node_name(f);
            first = false;
        }
        out << ")\n";
    }
}

std::string write_bench_string(const Circuit& circuit) {
    std::ostringstream out;
    write_bench(out, circuit);
    return out.str();
}

}  // namespace tpi::netlist
