#include "netlist/gate.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "util/error.hpp"

namespace tpi::netlist {

std::string_view gate_type_name(GateType type) {
    switch (type) {
        case GateType::Input: return "INPUT";
        case GateType::Const0: return "CONST0";
        case GateType::Const1: return "CONST1";
        case GateType::Buf: return "BUF";
        case GateType::Not: return "NOT";
        case GateType::And: return "AND";
        case GateType::Nand: return "NAND";
        case GateType::Or: return "OR";
        case GateType::Nor: return "NOR";
        case GateType::Xor: return "XOR";
        case GateType::Xnor: return "XNOR";
    }
    throw Error("gate_type_name: invalid GateType");
}

GateType gate_type_from_name(std::string_view name) {
    std::string upper(name);
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (upper == "INPUT") return GateType::Input;
    if (upper == "CONST0") return GateType::Const0;
    if (upper == "CONST1") return GateType::Const1;
    if (upper == "BUF" || upper == "BUFF") return GateType::Buf;
    if (upper == "NOT") return GateType::Not;
    if (upper == "AND") return GateType::And;
    if (upper == "NAND") return GateType::Nand;
    if (upper == "OR") return GateType::Or;
    if (upper == "NOR") return GateType::Nor;
    if (upper == "XOR") return GateType::Xor;
    if (upper == "XNOR") return GateType::Xnor;
    throw Error("gate_type_from_name: unknown gate mnemonic '" +
                std::string(name) + "'");
}

bool controlling_value(GateType type) {
    switch (type) {
        case GateType::And:
        case GateType::Nand: return false;
        case GateType::Or:
        case GateType::Nor: return true;
        default:
            throw Error("controlling_value: gate has no controlling value");
    }
}

std::uint64_t eval_word(GateType type,
                        std::span<const std::uint64_t> inputs) {
    return eval_word_t<std::uint64_t>(type, inputs);
}

bool eval_bool(GateType type, std::span<const bool> inputs) {
    switch (type) {
        case GateType::Const0: return false;
        case GateType::Const1: return true;
        default: break;
    }
    std::uint64_t words[32];
    require(inputs.size() <= 32, "eval_bool: too many inputs");
    for (std::size_t i = 0; i < inputs.size(); ++i)
        words[i] = inputs[i] ? 1 : 0;
    return (eval_word(type, {words, inputs.size()}) & 1) != 0;
}

}  // namespace tpi::netlist
