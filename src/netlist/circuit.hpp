#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/gate.hpp"

namespace tpi::netlist {

/// Strongly-typed handle to a node (a primary input, tie cell, or gate)
/// of a Circuit. The node's output net is identified with the node itself,
/// as every node drives exactly one net.
struct NodeId {
    std::uint32_t v = UINT32_MAX;

    constexpr bool valid() const { return v != UINT32_MAX; }
    friend constexpr bool operator==(NodeId, NodeId) = default;
    friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

inline constexpr NodeId kNullNode{};

/// Flat, read-only view over a frozen circuit's structure: every array a
/// consumer (COP, simulation, FFR decomposition, planning) needs, as
/// spans into the circuit's own storage. There is exactly one copy of the
/// topology — engines hold a CsrView instead of rebuilding private caches.
///
/// Spans are valid until the next structural mutation of the circuit
/// (add_*); mark_output only flips bytes in `output_flag` in place and
/// does NOT invalidate a view.
struct CsrView {
    std::span<const GateType> type;
    std::span<const std::uint8_t> output_flag;  // 0/1 per node
    std::span<const std::uint32_t> fanin_offset;  // node_count + 1
    std::span<const NodeId> fanin;
    std::span<const std::uint32_t> fanout_offset;  // node_count + 1
    std::span<const NodeId> fanout;        // consumer gate per edge
    std::span<const std::uint32_t> fanout_slot;  // fanin slot in the consumer
    std::span<const NodeId> topo;          // sources first
    std::span<const int> level;            // 0 for sources
    std::size_t node_count = 0;
    int depth = 0;

    std::span<const NodeId> fanins_of(NodeId v) const {
        return fanin.subspan(fanin_offset[v.v],
                             fanin_offset[v.v + 1] - fanin_offset[v.v]);
    }
    std::span<const NodeId> fanouts_of(NodeId v) const {
        return fanout.subspan(fanout_offset[v.v],
                              fanout_offset[v.v + 1] - fanout_offset[v.v]);
    }
};

/// Combinational gate-level circuit.
///
/// The circuit is a DAG of single-output nodes. Nodes are created through
/// the builder methods (add_input / add_const / add_gate) and referenced
/// by NodeId. Primary outputs are nets marked with mark_output.
///
/// Storage is structure-of-arrays throughout: fanins live in one CSR
/// array appended as nodes are created, and names are interned into a
/// byte arena with an offset table — hot paths never touch std::string.
/// Derived structure (fanout CSR, topological order, levels) is computed
/// once at freeze time — implicitly on first use, or explicitly via
/// freeze() — and exposed as a single shared CsrView; any structural
/// mutation thaws the circuit and invalidates outstanding views. Cycles
/// are rejected at freeze time.
class Circuit {
public:
    Circuit() = default;
    explicit Circuit(std::string name) : name_(std::move(name)) {}

    /// Copies duplicate the node store only. The frozen analysis is NOT
    /// carried over — its CsrView spans point into the *source's*
    /// storage, so a bitwise copy would dangle once the source dies; the
    /// copy simply re-freezes lazily on first use. Moves transfer the
    /// storage itself (vector buffers keep their addresses), so a frozen
    /// source moves frozen and the view stays self-referential.
    Circuit(const Circuit& other)
        : name_(other.name_),
          types_(other.types_),
          fanin_off_(other.fanin_off_),
          fanin_data_(other.fanin_data_),
          name_off_(other.name_off_),
          name_arena_(other.name_arena_),
          output_flag_(other.output_flag_),
          inputs_(other.inputs_),
          outputs_(other.outputs_),
          gate_count_(other.gate_count_) {}
    Circuit& operator=(const Circuit& other) {
        // Copy-and-move: reuses the cache-dropping copy constructor and
        // makes self-assignment safe.
        *this = Circuit(other);
        return *this;
    }
    Circuit(Circuit&&) noexcept = default;
    Circuit& operator=(Circuit&&) noexcept = default;

    // ---- construction -------------------------------------------------

    /// Pre-size the node store. `fanin_edges` is the expected total fanin
    /// count and `name_bytes` the expected total name length; both may be
    /// 0 when unknown.
    void reserve(std::size_t nodes, std::size_t fanin_edges = 0,
                 std::size_t name_bytes = 0);

    /// Create a primary input. Empty names are auto-generated.
    NodeId add_input(std::string_view name = {});

    /// Create a constant-0 or constant-1 tie cell.
    NodeId add_const(bool value, std::string_view name = {});

    /// Create a logic gate. Fanin handles must refer to existing nodes;
    /// Buf/Not require exactly one fanin, other gates at least one.
    NodeId add_gate(GateType type, std::span<const NodeId> fanins,
                    std::string_view name = {});
    NodeId add_gate(GateType type, std::initializer_list<NodeId> fanins,
                    std::string_view name = {}) {
        return add_gate(type, std::span<const NodeId>(fanins.begin(),
                                                      fanins.size()),
                        name);
    }

    /// Mark a net as a primary output. A net may be marked only once.
    /// Output flags are not part of the frozen topology, so this does not
    /// thaw the circuit.
    void mark_output(NodeId node);

    // ---- basic accessors ----------------------------------------------

    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    std::size_t node_count() const { return types_.size(); }
    std::size_t input_count() const { return inputs_.size(); }
    std::size_t output_count() const { return outputs_.size(); }

    /// Number of logic gates (nodes that are not sources).
    std::size_t gate_count() const { return gate_count_; }

    GateType type(NodeId node) const { return types_[check(node).v]; }
    std::span<const NodeId> fanins(NodeId node) const {
        check(node);
        return {fanin_data_.data() + fanin_off_[node.v],
                fanin_off_[node.v + 1] - fanin_off_[node.v]};
    }

    /// Interned node name. The view is valid until the next add_* call
    /// (the arena may move when it grows).
    std::string_view node_name(NodeId node) const {
        check(node);
        return std::string_view(name_arena_)
            .substr(name_off_[node.v], name_off_[node.v + 1] - name_off_[node.v]);
    }

    const std::vector<NodeId>& inputs() const { return inputs_; }
    const std::vector<NodeId>& outputs() const { return outputs_; }
    bool is_output(NodeId node) const {
        return output_flag_[check(node).v] != 0;
    }

    /// All valid node handles, in creation order (a valid build order is
    /// NOT implied; use topo_order for evaluation).
    std::vector<NodeId> all_nodes() const;

    /// Find a node by name; returns kNullNode when absent. Linear scan —
    /// intended for tests and small lookups, not inner loops.
    NodeId find(std::string_view node_name) const;

    // ---- derived structure (built at freeze time) -----------------------

    /// Build the derived structure (fanout CSR, topo order, levels) now.
    /// Throws ValidationError if the netlist contains a combinational
    /// cycle. Idempotent; implied by any derived-structure accessor.
    void freeze() const { ensure_analysis(); }
    bool frozen() const { return analysis_valid_; }

    /// The one shared flat view of the frozen structure. Freezes the
    /// circuit if needed; the reference (and the spans inside it) stays
    /// valid until the next structural mutation.
    const CsrView& topology() const {
        ensure_analysis();
        return view_;
    }

    /// Consumers of the node's output net.
    std::span<const NodeId> fanouts(NodeId node) const;

    /// Number of consumers of the node's output net.
    std::size_t fanout_count(NodeId node) const {
        return fanouts(node).size();
    }

    /// Topological order over all nodes (sources first). Throws if the
    /// netlist contains a combinational cycle.
    const std::vector<NodeId>& topo_order() const;

    /// Logic level: 0 for sources, 1 + max(fanin levels) for gates.
    int level(NodeId node) const;

    /// Maximum level over all nodes (circuit depth).
    int depth() const;

    /// Validate structural sanity (fanin arity and acyclicity); throws
    /// tpi::Error on violation.
    void validate() const;

    /// Approximate resident bytes of the node store plus frozen analysis
    /// arrays (capacity-based; excludes the transient Kahn scratch).
    std::size_t memory_bytes() const;

private:
    NodeId check(NodeId node) const;
    NodeId new_node(GateType type, std::span<const NodeId> fanins,
                    std::string_view name);
    void intern_name(std::string_view name, std::uint32_t id);
    void ensure_analysis() const;

    std::string name_;

    // Structure-of-arrays node store, appended by the builder methods.
    std::vector<GateType> types_;
    std::vector<std::uint32_t> fanin_off_{0};  // node_count + 1 entries
    std::vector<NodeId> fanin_data_;
    std::vector<std::uint32_t> name_off_{0};   // node_count + 1 entries
    std::string name_arena_;
    std::vector<std::uint8_t> output_flag_;
    std::vector<NodeId> inputs_;
    std::vector<NodeId> outputs_;
    std::size_t gate_count_ = 0;

    // Frozen analyses (CSR fanout adjacency, topo order, levels).
    mutable bool analysis_valid_ = false;
    mutable std::vector<std::uint32_t> fanout_offset_;
    mutable std::vector<NodeId> fanout_data_;
    mutable std::vector<std::uint32_t> fanout_slot_;
    mutable std::vector<NodeId> topo_;
    mutable std::vector<int> level_;
    mutable int depth_ = 0;
    mutable CsrView view_;
};

}  // namespace tpi::netlist
