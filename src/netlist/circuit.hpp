#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/gate.hpp"

namespace tpi::netlist {

/// Strongly-typed handle to a node (a primary input, tie cell, or gate)
/// of a Circuit. The node's output net is identified with the node itself,
/// as every node drives exactly one net.
struct NodeId {
    std::uint32_t v = UINT32_MAX;

    constexpr bool valid() const { return v != UINT32_MAX; }
    friend constexpr bool operator==(NodeId, NodeId) = default;
    friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

inline constexpr NodeId kNullNode{};

/// Combinational gate-level circuit.
///
/// The circuit is a DAG of single-output nodes. Nodes are created through
/// the builder methods (add_input / add_const / add_gate) and referenced
/// by NodeId. Primary outputs are nets marked with mark_output.
///
/// Structural analyses (fanout lists, topological order, levels) are
/// computed lazily on first use and cached; any mutation invalidates the
/// caches. Cycles are rejected when analyses are computed.
class Circuit {
public:
    Circuit() = default;
    explicit Circuit(std::string name) : name_(std::move(name)) {}

    // ---- construction -------------------------------------------------

    /// Create a primary input. Empty names are auto-generated.
    NodeId add_input(std::string name = {});

    /// Create a constant-0 or constant-1 tie cell.
    NodeId add_const(bool value, std::string name = {});

    /// Create a logic gate. Fanin handles must refer to existing nodes;
    /// Buf/Not require exactly one fanin, other gates at least one.
    NodeId add_gate(GateType type, std::vector<NodeId> fanins,
                    std::string name = {});

    /// Mark a net as a primary output. A net may be marked only once.
    void mark_output(NodeId node);

    // ---- basic accessors ----------------------------------------------

    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    std::size_t node_count() const { return types_.size(); }
    std::size_t input_count() const { return inputs_.size(); }
    std::size_t output_count() const { return outputs_.size(); }

    /// Number of logic gates (nodes that are not sources).
    std::size_t gate_count() const { return gate_count_; }

    GateType type(NodeId node) const { return types_[check(node).v]; }
    std::span<const NodeId> fanins(NodeId node) const {
        return fanins_[check(node).v];
    }
    const std::string& node_name(NodeId node) const {
        return names_[check(node).v];
    }

    const std::vector<NodeId>& inputs() const { return inputs_; }
    const std::vector<NodeId>& outputs() const { return outputs_; }
    bool is_output(NodeId node) const { return output_flag_[check(node).v]; }

    /// All valid node handles, in creation order (a valid build order is
    /// NOT implied; use topo_order for evaluation).
    std::vector<NodeId> all_nodes() const;

    /// Find a node by name; returns kNullNode when absent. Linear scan —
    /// intended for tests and small lookups, not inner loops.
    NodeId find(std::string_view node_name) const;

    // ---- derived structure (lazily computed, cached) -------------------

    /// Consumers of the node's output net.
    std::span<const NodeId> fanouts(NodeId node) const;

    /// Number of consumers of the node's output net.
    std::size_t fanout_count(NodeId node) const {
        return fanouts(node).size();
    }

    /// Topological order over all nodes (sources first). Throws if the
    /// netlist contains a combinational cycle.
    const std::vector<NodeId>& topo_order() const;

    /// Logic level: 0 for sources, 1 + max(fanin levels) for gates.
    int level(NodeId node) const;

    /// Maximum level over all nodes (circuit depth).
    int depth() const;

    /// Validate structural sanity (fanin arity and acyclicity); throws
    /// tpi::Error on violation.
    void validate() const;

private:
    NodeId check(NodeId node) const;
    NodeId new_node(GateType type, std::vector<NodeId> fanins,
                    std::string name);
    void ensure_analysis() const;

    std::string name_;
    std::vector<GateType> types_;
    std::vector<std::vector<NodeId>> fanins_;
    std::vector<std::string> names_;
    std::vector<bool> output_flag_;
    std::vector<NodeId> inputs_;
    std::vector<NodeId> outputs_;
    std::size_t gate_count_ = 0;

    // Lazily computed analyses (CSR fanout adjacency, topo order, levels).
    mutable bool analysis_valid_ = false;
    mutable std::vector<std::uint32_t> fanout_offset_;
    mutable std::vector<NodeId> fanout_data_;
    mutable std::vector<NodeId> topo_;
    mutable std::vector<int> level_;
    mutable int depth_ = 0;
};

}  // namespace tpi::netlist
