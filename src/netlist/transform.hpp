#pragma once

#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/test_point.hpp"

namespace tpi::netlist {

/// Result of materialising a set of test points into a new netlist.
struct TransformResult {
    Circuit circuit;  ///< the design-for-test circuit

    /// Original node -> corresponding node in `circuit` (the copy of the
    /// original gate, i.e. the net *before* any control-point override).
    std::vector<NodeId> node_map;

    /// Original node -> the net consumers read in `circuit` (differs from
    /// node_map where a control point was inserted).
    std::vector<NodeId> driver_map;

    /// For each control point, in input order: the new primary input that
    /// drives it. During BIST simulation these inputs are fed equiprobable
    /// pseudo-random bits; in functional mode they are held at the
    /// non-controlling value (1 for ControlAnd, 0 for ControlOr/Xor).
    std::vector<NodeId> control_inputs;

    /// For each observation point, in input order: the observed net in the
    /// new circuit (marked as an additional primary output).
    std::vector<NodeId> observed_nets;

    /// The control points, parallel to `control_inputs`.
    std::vector<TestPoint> control_points;

    /// The observation points, parallel to `observed_nets`.
    std::vector<TestPoint> observation_points;
};

/// Build a new circuit with `points` materialised:
///
/// * ControlAnd/Or/Xor at net n inserts the corresponding 2-input gate
///   between n and all of n's consumers, the second input being a fresh
///   primary input (the test signal).
/// * Observe at net n marks (the possibly control-overridden) n as an
///   additional primary output (a scan observation cell).
///
/// At most one control point per net; duplicate observation points are
/// rejected. Throws tpi::Error on violations.
TransformResult apply_test_points(const Circuit& circuit,
                                  std::span<const TestPoint> points);

/// Result of binarising a circuit (see binarize).
struct BinarizeResult {
    Circuit circuit;
    /// Original node -> node computing the same function in `circuit`.
    std::vector<NodeId> node_map;
};

/// Replace every gate with more than two fanins by a balanced tree of
/// two-input gates. AND/OR/XOR decompose directly; the inverting forms
/// keep the inversion in the final gate (e.g. NAND(a,b,c) becomes
/// NAND(AND(a,b), c)). The joint control+observation DP requires at most
/// two in-region fanins per gate, which binarised circuits guarantee.
BinarizeResult binarize(const Circuit& circuit);

}  // namespace tpi::netlist
