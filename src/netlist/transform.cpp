#include "netlist/transform.hpp"

#include <string>

#include "util/error.hpp"

namespace tpi::netlist {

std::string_view tp_kind_name(TpKind kind) {
    switch (kind) {
        case TpKind::Observe: return "OP";
        case TpKind::ControlAnd: return "CP-AND";
        case TpKind::ControlOr: return "CP-OR";
        case TpKind::ControlXor: return "CP-XOR";
    }
    throw Error("tp_kind_name: invalid TpKind");
}

TransformResult apply_test_points(const Circuit& circuit,
                                  std::span<const TestPoint> points) {
    const std::size_t n = circuit.node_count();

    // Index the requested points per node, rejecting duplicates.
    std::vector<int> control_at(n, -1);
    std::vector<bool> observe_at(n, false);
    for (const TestPoint& tp : points) {
        require(tp.node.valid() && tp.node.v < n,
                "apply_test_points: invalid node");
        if (is_control(tp.kind)) {
            require(control_at[tp.node.v] < 0,
                    "apply_test_points: duplicate control point on net '" +
                        std::string(circuit.node_name(tp.node)) + "'");
            control_at[tp.node.v] = static_cast<int>(tp.kind);
        } else {
            require(!observe_at[tp.node.v],
                    "apply_test_points: duplicate observation point on net '" +
                        std::string(circuit.node_name(tp.node)) + "'");
            observe_at[tp.node.v] = true;
        }
    }

    TransformResult result;
    result.circuit.set_name(circuit.name() + "_tp");
    result.node_map.assign(n, kNullNode);
    result.driver_map.assign(n, kNullNode);

    // Copy nodes in topological order, splicing control points in.
    for (NodeId v : circuit.topo_order()) {
        const GateType t = circuit.type(v);
        NodeId copy;
        if (t == GateType::Input) {
            copy = result.circuit.add_input(circuit.node_name(v));
        } else if (t == GateType::Const0 || t == GateType::Const1) {
            copy = result.circuit.add_const(t == GateType::Const1,
                                            circuit.node_name(v));
        } else {
            std::vector<NodeId> fanins;
            fanins.reserve(circuit.fanins(v).size());
            for (NodeId f : circuit.fanins(v))
                fanins.push_back(result.driver_map[f.v]);
            copy = result.circuit.add_gate(t, std::move(fanins),
                                           circuit.node_name(v));
        }
        result.node_map[v.v] = copy;

        NodeId driver = copy;
        if (control_at[v.v] >= 0) {
            const auto kind = static_cast<TpKind>(control_at[v.v]);
            const std::string base(circuit.node_name(v));
            const NodeId ctl =
                result.circuit.add_input(base + "_tpctl");
            GateType gate;
            switch (kind) {
                case TpKind::ControlAnd: gate = GateType::And; break;
                case TpKind::ControlOr: gate = GateType::Or; break;
                default: gate = GateType::Xor; break;
            }
            driver = result.circuit.add_gate(gate, {copy, ctl},
                                             base + "_tpcp");
            result.control_inputs.push_back(ctl);
            result.control_points.push_back({v, kind});
        }
        result.driver_map[v.v] = driver;

        if (circuit.is_output(v)) result.circuit.mark_output(driver);
        if (observe_at[v.v]) {
            if (!result.circuit.is_output(driver))
                result.circuit.mark_output(driver);
            result.observed_nets.push_back(driver);
            result.observation_points.push_back({v, TpKind::Observe});
        }
    }

    result.circuit.validate();
    return result;
}

BinarizeResult binarize(const Circuit& circuit) {
    BinarizeResult result;
    result.circuit.set_name(circuit.name() + "_bin");
    result.node_map.assign(circuit.node_count(), kNullNode);

    for (NodeId v : circuit.topo_order()) {
        const GateType t = circuit.type(v);
        NodeId copy;
        if (t == GateType::Input) {
            copy = result.circuit.add_input(circuit.node_name(v));
        } else if (t == GateType::Const0 || t == GateType::Const1) {
            copy = result.circuit.add_const(t == GateType::Const1,
                                            circuit.node_name(v));
        } else if (circuit.fanins(v).size() <= 2) {
            std::vector<NodeId> fanins;
            for (NodeId f : circuit.fanins(v))
                fanins.push_back(result.node_map[f.v]);
            copy = result.circuit.add_gate(t, std::move(fanins),
                                           circuit.node_name(v));
        } else {
            // Balanced pairwise reduction with the monotone base gate,
            // keeping any inversion in the final 2-input gate.
            GateType base;
            switch (t) {
                case GateType::And:
                case GateType::Nand: base = GateType::And; break;
                case GateType::Or:
                case GateType::Nor: base = GateType::Or; break;
                case GateType::Xor:
                case GateType::Xnor: base = GateType::Xor; break;
                default:
                    throw Error("binarize: unexpected wide gate type");
            }
            std::vector<NodeId> layer;
            for (NodeId f : circuit.fanins(v))
                layer.push_back(result.node_map[f.v]);
            int serial = 0;
            while (layer.size() > 2) {
                std::vector<NodeId> next;
                for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
                    next.push_back(result.circuit.add_gate(
                        base, {layer[i], layer[i + 1]},
                        std::string(circuit.node_name(v)) + "_b" +
                            std::to_string(serial++)));
                }
                if (layer.size() % 2 == 1) next.push_back(layer.back());
                layer = std::move(next);
            }
            copy = result.circuit.add_gate(t, {layer[0], layer[1]},
                                           circuit.node_name(v));
        }
        result.node_map[v.v] = copy;
    }

    for (NodeId po : circuit.outputs())
        result.circuit.mark_output(result.node_map[po.v]);
    result.circuit.validate();
    return result;
}

}  // namespace tpi::netlist
