#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"
#include "netlist/validate.hpp"

namespace tpi::netlist {

/// Reader/writer for the structural gate-level Verilog subset the ISCAS
/// benchmarks are also distributed in:
///
///     module c17 (N1, N2, N3, N6, N7, N22, N23);
///       input N1, N2, N3, N6, N7;
///       output N22, N23;
///       wire N10, N11, N16, N19;
///       nand g0 (N10, N1, N3);    // primitive: output first
///       ...
///     endmodule
///
/// Supported constructs: one module; `input`/`output`/`wire`
/// declarations (comma lists, any number of statements); the gate
/// primitives and/nand/or/nor/xor/xnor/not/buf with optional instance
/// names; `assign a = b;` (treated as a buffer); `1'b0`/`1'b1` literals
/// as fanins (tie cells); `//` and `/* */` comments. Everything else is
/// rejected with a line-numbered error.
///
/// Error contract: every reader failure is a tpi::ParseError or — from
/// the validated overloads — a tpi::ValidationError. The validated
/// overloads mirror the .bench reader: Strict rejects structurally
/// broken netlists, Lenient ties undriven signals to constant 0, keeps
/// the first of duplicate drivers, drops undriven outputs, then runs
/// the lenient validator; repairs land in `*diagnostics` when given.

Circuit read_verilog(std::istream& in);
Circuit read_verilog(std::istream& in, ValidateMode mode,
                     Diagnostics* diagnostics = nullptr);
Circuit read_verilog_string(const std::string& text);
Circuit read_verilog_string(const std::string& text, ValidateMode mode,
                            Diagnostics* diagnostics = nullptr);
Circuit read_verilog_file(const std::string& path);
Circuit read_verilog_file(const std::string& path, ValidateMode mode,
                          Diagnostics* diagnostics = nullptr);

void write_verilog(std::ostream& out, const Circuit& circuit);
std::string write_verilog_string(const Circuit& circuit);

}  // namespace tpi::netlist
