#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace tpi::netlist {

/// Reader/writer for the ISCAS `.bench` netlist format:
///
///     # comment
///     INPUT(G1)
///     OUTPUT(G17)
///     G10 = NAND(G1, G3)
///
/// Sequential elements (`DFF`) are handled under the full-scan assumption
/// used by BIST test point insertion papers: a flip-flop output becomes a
/// pseudo primary input and the flip-flop's data fanin becomes a pseudo
/// primary output, yielding the combinational core the fault simulator and
/// the TPI algorithms operate on.

/// Parse a circuit from .bench text. Throws tpi::Error on syntax errors,
/// references to undefined signals, or redefinitions.
Circuit read_bench(std::istream& in, std::string circuit_name = "bench");

/// Parse a circuit from a .bench string.
Circuit read_bench_string(const std::string& text,
                          std::string circuit_name = "bench");

/// Parse a circuit from a .bench file on disk.
Circuit read_bench_file(const std::string& path);

/// Serialise a circuit to .bench text. Constants are emitted as
/// one-input pseudo-gates CONST0()/CONST1() (accepted back by read_bench).
void write_bench(std::ostream& out, const Circuit& circuit);

/// Serialise to a string (convenience for tests and round-trip checks).
std::string write_bench_string(const Circuit& circuit);

}  // namespace tpi::netlist
