#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"
#include "netlist/validate.hpp"

namespace tpi::netlist {

/// Reader/writer for the ISCAS `.bench` netlist format:
///
///     # comment
///     INPUT(G1)
///     OUTPUT(G17)
///     G10 = NAND(G1, G3)
///
/// Sequential elements (`DFF`) are handled under the full-scan assumption
/// used by BIST test point insertion papers: a flip-flop output becomes a
/// pseudo primary input and the flip-flop's data fanin becomes a pseudo
/// primary output, yielding the combinational core the fault simulator and
/// the TPI algorithms operate on.
///
/// Error contract: every reader failure is a tpi::ParseError (malformed
/// text, undefined/duplicated signals, cycles) or — from the validated
/// overloads — a tpi::ValidationError. No other exception type escapes.

/// Parse a circuit from .bench text. Throws tpi::ParseError on syntax
/// errors, references to undefined signals, or redefinitions.
Circuit read_bench(std::istream& in, std::string circuit_name = "bench");

/// Parse and validate. Strict mode rejects structurally broken netlists
/// (tpi::ValidationError); Lenient mode additionally repairs what it
/// safely can during parsing — undefined fanin signals are tied to
/// constant 0, duplicate definitions keep the first, OUTPUT/DFF
/// declarations of undefined signals are dropped — and then runs the
/// lenient validator (dead logic removal). Every repair is recorded in
/// `*diagnostics` when given.
Circuit read_bench(std::istream& in, std::string circuit_name,
                   ValidateMode mode, Diagnostics* diagnostics = nullptr);

/// Parse a circuit from a .bench string.
Circuit read_bench_string(const std::string& text,
                          std::string circuit_name = "bench");
Circuit read_bench_string(const std::string& text, std::string circuit_name,
                          ValidateMode mode,
                          Diagnostics* diagnostics = nullptr);

/// Parse a circuit from a .bench file on disk.
Circuit read_bench_file(const std::string& path);
Circuit read_bench_file(const std::string& path, ValidateMode mode,
                        Diagnostics* diagnostics = nullptr);

/// Serialise a circuit to .bench text. Constants are emitted as
/// one-input pseudo-gates CONST0()/CONST1() (accepted back by read_bench).
void write_bench(std::ostream& out, const Circuit& circuit);

/// Serialise to a string (convenience for tests and round-trip checks).
std::string write_bench_string(const Circuit& circuit);

}  // namespace tpi::netlist
