#include "netlist/ffr.hpp"

namespace tpi::netlist {

FfrDecomposition decompose_ffr(const Circuit& circuit) {
    const CsrView& csr = circuit.topology();
    const std::size_t n = csr.node_count;

    FfrDecomposition result;
    result.region_of.assign(n, 0);

    // Walk consumers before producers so a node can inherit the region of
    // its unique fanout.
    std::size_t region_count = 0;
    for (std::size_t i = n; i-- > 0;) {
        const NodeId v = csr.topo[i];
        const std::uint32_t fo_begin = csr.fanout_offset[v.v];
        const std::uint32_t fo_end = csr.fanout_offset[v.v + 1];
        const bool is_stem =
            fo_end - fo_begin != 1 || csr.output_flag[v.v] != 0;
        if (is_stem) {
            result.region_of[v.v] =
                static_cast<std::uint32_t>(region_count++);
        } else {
            result.region_of[v.v] =
                result.region_of[csr.fanout[fo_begin].v];
        }
    }
    result.regions.resize(region_count);

    // Collect members per region in topological order (children first);
    // the stem closes its region, so the last member is the root.
    for (NodeId v : csr.topo) {
        auto& region = result.regions[result.region_of[v.v]];
        region.members.push_back(v);
        region.root = v;
    }

    // External nets feeding each region, deduplicated with a per-region
    // stamp (first-occurrence order over the members' fanin slots — the
    // same order the erased hash-set scan produced).
    std::vector<std::uint32_t> seen_stamp(n, UINT32_MAX);
    for (std::uint32_t r = 0; r < region_count; ++r) {
        auto& region = result.regions[r];
        for (NodeId v : region.members) {
            const std::uint32_t b = csr.fanin_offset[v.v];
            const std::uint32_t e = csr.fanin_offset[v.v + 1];
            for (std::uint32_t k = b; k < e; ++k) {
                const NodeId f = csr.fanin[k];
                if (result.region_of[f.v] != r &&
                    seen_stamp[f.v] != r) {
                    seen_stamp[f.v] = r;
                    region.leaf_inputs.push_back(f);
                }
            }
        }
    }
    return result;
}

}  // namespace tpi::netlist
