#include "netlist/ffr.hpp"

#include <algorithm>
#include <unordered_set>

namespace tpi::netlist {

FfrDecomposition decompose_ffr(const Circuit& circuit) {
    const auto& topo = circuit.topo_order();
    const std::size_t n = circuit.node_count();

    FfrDecomposition result;
    result.region_of.assign(n, 0);

    // Walk consumers before producers so a node can inherit the region of
    // its unique fanout.
    std::vector<std::uint32_t> root_region(n, UINT32_MAX);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId v = *it;
        const auto fo = circuit.fanouts(v);
        const bool is_stem =
            fo.size() != 1 || circuit.is_output(v);
        if (is_stem) {
            const auto idx = static_cast<std::uint32_t>(result.regions.size());
            result.regions.push_back({v, {}, {}});
            root_region[v.v] = idx;
            result.region_of[v.v] = idx;
        } else {
            result.region_of[v.v] = result.region_of[fo[0].v];
        }
    }

    // Collect members per region in topological order (children first).
    for (NodeId v : topo)
        result.regions[result.region_of[v.v]].members.push_back(v);

    // External nets feeding each region.
    for (auto& region : result.regions) {
        std::unordered_set<std::uint32_t> seen;
        for (NodeId v : region.members) {
            for (NodeId f : circuit.fanins(v)) {
                if (result.region_of[f.v] != result.region_of[region.root.v] &&
                    seen.insert(f.v).second) {
                    region.leaf_inputs.push_back(f);
                }
            }
        }
    }
    return result;
}

}  // namespace tpi::netlist
