#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"

namespace tpi::netlist {

/// A maximal fanout-free region (FFR): a tree of nodes whose output paths
/// all converge on a single stem. Stems are nets with fanout != 1 or
/// primary outputs. Within a region the interconnect is a tree, which is
/// exactly the structure on which the paper's dynamic program is optimal.
struct FanoutFreeRegion {
    NodeId root = kNullNode;        ///< the stem net terminating the region
    std::vector<NodeId> members;    ///< region nodes in topological order
                                    ///< (children before parents; root last)
    std::vector<NodeId> leaf_inputs;///< external nets feeding the region
                                    ///< (stems of other regions)
};

/// Partition of a circuit into maximal fanout-free regions. Every node
/// belongs to exactly one region.
struct FfrDecomposition {
    std::vector<FanoutFreeRegion> regions;
    /// Node index -> index of its region in `regions`.
    std::vector<std::uint32_t> region_of;

    const FanoutFreeRegion& region_containing(NodeId node) const {
        return regions[region_of[node.v]];
    }
};

/// Decompose `circuit` into maximal fanout-free regions.
FfrDecomposition decompose_ffr(const Circuit& circuit);

}  // namespace tpi::netlist
