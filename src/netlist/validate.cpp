#include "netlist/validate.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace tpi::netlist {
namespace {

/// Cap diagnostic node lists so a pathological netlist cannot bloat the
/// report (the message still states the true count).
constexpr std::size_t kMaxNamedNodes = 8;

std::string join_names(const std::vector<std::string>& names) {
    std::string out;
    for (std::size_t i = 0; i < names.size() && i < kMaxNamedNodes; ++i) {
        if (i > 0) out += ", ";
        out += "'" + names[i] + "'";
    }
    if (names.size() > kMaxNamedNodes)
        out += ", ... (" + std::to_string(names.size()) + " total)";
    return out;
}

/// Local Kahn pass over the fanin lists (Circuit's own analysis throws
/// on cycles, which is exactly what inspect() must not do). Returns the
/// names of nodes stuck on a cycle, empty when acyclic.
std::vector<std::string> cyclic_nodes(const Circuit& circuit) {
    const std::size_t n = circuit.node_count();
    std::vector<std::uint32_t> pending(n, 0);
    std::vector<std::vector<std::uint32_t>> consumers(n);
    for (std::uint32_t v = 0; v < n; ++v) {
        const auto fanins = circuit.fanins(NodeId{v});
        pending[v] = static_cast<std::uint32_t>(fanins.size());
        for (NodeId f : fanins) consumers[f.v].push_back(v);
    }
    std::vector<std::uint32_t> order;
    order.reserve(n);
    for (std::uint32_t v = 0; v < n; ++v)
        if (pending[v] == 0) order.push_back(v);
    for (std::size_t head = 0; head < order.size(); ++head)
        for (std::uint32_t w : consumers[order[head]])
            if (--pending[w] == 0) order.push_back(w);

    std::vector<std::string> stuck;
    if (order.size() != n)
        for (std::uint32_t v = 0; v < n; ++v)
            if (pending[v] > 0)
                stuck.emplace_back(circuit.node_name(NodeId{v}));
    return stuck;
}

/// Nodes from which some primary output is reachable (reverse DFS over
/// fanins). Precondition: acyclic.
std::vector<bool> feeds_output(const Circuit& circuit) {
    std::vector<bool> live(circuit.node_count(), false);
    std::vector<NodeId> stack;
    for (NodeId po : circuit.outputs()) {
        if (!live[po.v]) {
            live[po.v] = true;
            stack.push_back(po);
        }
    }
    while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        for (NodeId f : circuit.fanins(v)) {
            if (!live[f.v]) {
                live[f.v] = true;
                stack.push_back(f);
            }
        }
    }
    return live;
}

/// Drop every node that neither is a primary input nor feeds a primary
/// output, preserving input/output order and all names.
Circuit strip_dead_cone(const Circuit& circuit,
                        const std::vector<bool>& live,
                        std::vector<std::string>& dropped) {
    Circuit repaired(circuit.name());
    std::vector<NodeId> remap(circuit.node_count(), kNullNode);
    // Creation order is a valid build order (add_gate demands existing
    // fanins), so a single forward pass suffices.
    for (std::uint32_t i = 0; i < circuit.node_count(); ++i) {
        const NodeId v{i};
        const GateType t = circuit.type(v);
        if (t != GateType::Input && !live[i]) {
            dropped.emplace_back(circuit.node_name(v));
            continue;
        }
        if (t == GateType::Input) {
            remap[i] = repaired.add_input(circuit.node_name(v));
        } else if (t == GateType::Const0 || t == GateType::Const1) {
            remap[i] = repaired.add_const(t == GateType::Const1,
                                          circuit.node_name(v));
        } else {
            std::vector<NodeId> fanins;
            for (NodeId f : circuit.fanins(v)) fanins.push_back(remap[f.v]);
            remap[i] = repaired.add_gate(t, std::move(fanins),
                                         circuit.node_name(v));
        }
    }
    for (NodeId po : circuit.outputs()) repaired.mark_output(remap[po.v]);
    return repaired;
}

void inspect_into(const Circuit& circuit, Diagnostics& diags) {
    if (circuit.node_count() == 0) {
        diags.add(DiagSeverity::Error, "empty-circuit",
                  "circuit has no nodes");
        return;
    }
    const std::vector<std::string> stuck = cyclic_nodes(circuit);
    if (!stuck.empty()) {
        diags.add(DiagSeverity::Error, "combinational-cycle",
                  "combinational cycle through " + join_names(stuck), stuck);
        return;  // downstream checks need the (acyclic) analysis
    }
    if (circuit.output_count() == 0)
        diags.add(DiagSeverity::Error, "no-outputs",
                  "circuit has no primary outputs; every gate is dead");

    std::vector<std::string> dead;
    std::vector<std::string> unused_inputs;
    std::vector<std::string> degenerate;
    for (NodeId v : circuit.all_nodes()) {
        const GateType t = circuit.type(v);
        const bool sink = circuit.fanout_count(v) == 0 &&
                          !circuit.is_output(v);
        if (sink) {
            if (t == GateType::Input)
                unused_inputs.emplace_back(circuit.node_name(v));
            else
                dead.emplace_back(circuit.node_name(v));
        }
        if (is_source(t)) continue;
        const auto fanins = circuit.fanins(v);
        if (t != GateType::Buf && t != GateType::Not &&
            fanins.size() == 1) {
            degenerate.emplace_back(circuit.node_name(v));
            continue;
        }
        std::unordered_set<std::uint32_t> seen;
        for (NodeId f : fanins) {
            if (!seen.insert(f.v).second) {
                degenerate.emplace_back(circuit.node_name(v));
                break;
            }
        }
    }
    if (!dead.empty())
        diags.add(DiagSeverity::Error, "dead-gate",
                  std::to_string(dead.size()) +
                      " gate(s) drive neither a primary output nor any "
                      "other gate: " +
                      join_names(dead),
                  dead);
    if (!unused_inputs.empty())
        diags.add(DiagSeverity::Warning, "unused-input",
                  std::to_string(unused_inputs.size()) +
                      " primary input(s) feed nothing: " +
                      join_names(unused_inputs),
                  unused_inputs);
    if (!degenerate.empty())
        diags.add(DiagSeverity::Warning, "degenerate-gate",
                  std::to_string(degenerate.size()) +
                      " gate(s) with duplicate or single fanins: " +
                      join_names(degenerate),
                  degenerate);
}

[[noreturn]] void throw_validation(const Diagnostics& diags) {
    std::vector<std::string> nodes;
    std::string first;
    for (const Diagnostic& d : diags.entries) {
        if (d.severity != DiagSeverity::Error) continue;
        if (first.empty()) first = d.message;
        nodes.insert(nodes.end(), d.nodes.begin(), d.nodes.end());
    }
    throw ValidationError(
        "netlist validation failed (" + diags.summary() + "): " + first,
        std::move(nodes));
}

}  // namespace

const char* validate_mode_name(ValidateMode mode) {
    return mode == ValidateMode::Strict ? "strict" : "lenient";
}

const char* diag_severity_name(DiagSeverity severity) {
    switch (severity) {
        case DiagSeverity::Note: return "note";
        case DiagSeverity::Warning: return "warning";
        case DiagSeverity::Repair: return "repair";
        case DiagSeverity::Error: return "error";
    }
    return "?";
}

void Diagnostics::add(DiagSeverity severity, std::string check,
                      std::string message,
                      std::vector<std::string> nodes) {
    entries.push_back({severity, std::move(check), std::move(message),
                       std::move(nodes)});
}

void Diagnostics::merge(Diagnostics other) {
    entries.insert(entries.end(),
                   std::make_move_iterator(other.entries.begin()),
                   std::make_move_iterator(other.entries.end()));
}

std::size_t Diagnostics::count(DiagSeverity severity) const {
    return static_cast<std::size_t>(
        std::count_if(entries.begin(), entries.end(),
                      [severity](const Diagnostic& d) {
                          return d.severity == severity;
                      }));
}

std::string Diagnostics::summary() const {
    const auto piece = [this](DiagSeverity sev, const char* noun) {
        const std::size_t n = count(sev);
        if (n == 0) return std::string();
        return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
    };
    std::string out;
    for (const auto& part :
         {piece(DiagSeverity::Error, "error"),
          piece(DiagSeverity::Warning, "warning"),
          piece(DiagSeverity::Repair, "repair"),
          piece(DiagSeverity::Note, "note")}) {
        if (part.empty()) continue;
        if (!out.empty()) out += ", ";
        out += part;
    }
    return out;
}

Diagnostics inspect(const Circuit& circuit) {
    Diagnostics diags;
    inspect_into(circuit, diags);
    return diags;
}

Diagnostics validate(Circuit& circuit, ValidateMode mode) {
    if (mode == ValidateMode::Strict) {
        Diagnostics diags = inspect(circuit);
        if (diags.has_errors()) throw_validation(diags);
        return diags;
    }

    // Lenient. Cycles first: there is no safe repair for those.
    Diagnostics diags;
    const std::vector<std::string> stuck = cyclic_nodes(circuit);
    if (!stuck.empty()) {
        diags.add(DiagSeverity::Error, "combinational-cycle",
                  "combinational cycle through " + join_names(stuck), stuck);
        throw_validation(diags);
    }

    if (circuit.node_count() > 0) {
        const std::vector<bool> live = feeds_output(circuit);
        bool any_dead = false;
        for (NodeId v : circuit.all_nodes())
            if (circuit.type(v) != GateType::Input && !live[v.v])
                any_dead = true;
        if (any_dead) {
            std::vector<std::string> dropped;
            circuit = strip_dead_cone(circuit, live, dropped);
            diags.add(DiagSeverity::Repair, "dead-gate",
                      "dropped " + std::to_string(dropped.size()) +
                          " gate(s) feeding no primary output: " +
                          join_names(dropped),
                      dropped);
        }
    }

    // Whatever remains is usable as-is: downgrade residual errors
    // (empty circuit, no outputs) to warnings.
    Diagnostics residual = inspect(circuit);
    for (Diagnostic& d : residual.entries)
        if (d.severity == DiagSeverity::Error)
            d.severity = DiagSeverity::Warning;
    diags.merge(std::move(residual));
    return diags;
}

}  // namespace tpi::netlist
