#include "gen/chains.hpp"

#include <string>
#include <vector>

#include "util/error.hpp"

namespace tpi::gen {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit and_chain(std::size_t depth) {
    require(depth >= 1, "and_chain: depth >= 1");
    Circuit c("chain" + std::to_string(depth));
    NodeId acc = c.add_input("x0");
    for (std::size_t i = 1; i <= depth; ++i) {
        const NodeId x = c.add_input("x" + std::to_string(i));
        acc = c.add_gate(GateType::And, {acc, x}, "c" + std::to_string(i));
    }
    c.mark_output(acc);
    c.validate();
    return c;
}

Circuit and_or_chain(std::size_t depth, std::size_t period) {
    require(depth >= 1, "and_or_chain: depth >= 1");
    require(period >= 1, "and_or_chain: period >= 1");
    Circuit c("aochain" + std::to_string(depth) + "p" +
              std::to_string(period));
    NodeId acc = c.add_input("x0");
    for (std::size_t i = 1; i <= depth; ++i) {
        const NodeId x = c.add_input("x" + std::to_string(i));
        const bool use_or = ((i - 1) / period) % 2 == 1;
        acc = c.add_gate(use_or ? GateType::Or : GateType::And, {acc, x},
                         "c" + std::to_string(i));
    }
    c.mark_output(acc);
    c.validate();
    return c;
}

Circuit chained_lanes(std::size_t lanes, std::size_t depth) {
    require(lanes >= 2, "chained_lanes: lanes >= 2");
    require(depth >= 1, "chained_lanes: depth >= 1");
    Circuit c("lanes" + std::to_string(lanes) + "x" +
              std::to_string(depth));
    std::vector<NodeId> ends;
    for (std::size_t l = 0; l < lanes; ++l) {
        NodeId acc = c.add_input("l" + std::to_string(l) + "x0");
        for (std::size_t i = 1; i <= depth; ++i) {
            const NodeId x = c.add_input("l" + std::to_string(l) + "x" +
                                         std::to_string(i));
            acc = c.add_gate(GateType::And, {acc, x},
                             "l" + std::to_string(l) + "c" +
                                 std::to_string(i));
        }
        ends.push_back(acc);
    }
    int serial = 0;
    while (ends.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < ends.size(); i += 2)
            next.push_back(c.add_gate(GateType::Xor, {ends[i], ends[i + 1]},
                                      "xt" + std::to_string(serial++)));
        if (ends.size() % 2 == 1) next.push_back(ends.back());
        ends = std::move(next);
    }
    c.mark_output(ends[0]);
    c.validate();
    return c;
}

}  // namespace tpi::gen
