#pragma once

#include <cstddef>
#include <cstdint>

#include "netlist/circuit.hpp"

namespace tpi::gen {

/// Parameters for random fanout-free tree circuits (the class the DP is
/// optimal on; used by the optimality experiments).
struct RandomTreeOptions {
    std::size_t gates = 16;
    double xor_fraction = 0.15;   ///< share of parity gates
    double unary_fraction = 0.1;  ///< share of BUF/NOT
    std::uint64_t seed = 1;
};

/// A random single-output fanout-free circuit with `gates` logic gates.
netlist::Circuit random_tree(const RandomTreeOptions& options);

/// Parameters for random reconvergent DAG circuits.
struct RandomDagOptions {
    std::size_t gates = 500;
    std::size_t inputs = 32;
    double xor_fraction = 0.1;
    double unary_fraction = 0.05;
    /// Locality of fanin selection (larger = more reconvergence among
    /// recent nodes; fanins are drawn from a window of this size).
    std::size_t window = 64;
    std::uint64_t seed = 1;
};

/// A random reconvergent DAG: each gate draws fanins from a sliding
/// window over earlier nodes; every net without a consumer becomes a
/// primary output.
netlist::Circuit random_dag(const RandomDagOptions& options);

}  // namespace tpi::gen
