#include "gen/benchmarks.hpp"

#include "gen/arith.hpp"
#include "gen/chains.hpp"
#include "gen/random_circuits.hpp"
#include "netlist/bench_io.hpp"
#include "util/error.hpp"

namespace tpi::gen {

using netlist::Circuit;

Circuit c17() {
    // ISCAS85 c17 netlist (Brglez & Fujiwara 1985), verbatim.
    static const char* const kC17 =
        "# c17\n"
        "INPUT(1)\n"
        "INPUT(2)\n"
        "INPUT(3)\n"
        "INPUT(6)\n"
        "INPUT(7)\n"
        "OUTPUT(22)\n"
        "OUTPUT(23)\n"
        "10 = NAND(1, 3)\n"
        "11 = NAND(3, 6)\n"
        "16 = NAND(2, 11)\n"
        "19 = NAND(11, 7)\n"
        "22 = NAND(10, 16)\n"
        "23 = NAND(16, 19)\n";
    return netlist::read_bench_string(kC17, "c17");
}

const std::vector<SuiteEntry>& benchmark_suite() {
    static const std::vector<SuiteEntry> suite = [] {
        std::vector<SuiteEntry> s;
        s.push_back({"c17", "ISCAS85 c17 (embedded)", [] { return c17(); }});
        s.push_back({"add16", "16-bit ripple-carry adder",
                     [] { return ripple_carry_adder(16); }});
        s.push_back({"mul8", "8x8 array multiplier",
                     [] { return array_multiplier(8); }});
        s.push_back({"cmp32", "32-bit equality comparator",
                     [] { return equality_comparator(32); }});
        s.push_back({"par64", "64-input parity tree",
                     [] { return parity_tree(64); }});
        s.push_back({"dec5", "5-to-32 decoder with enable",
                     [] { return decoder(5); }});
        s.push_back({"chain24", "24-deep AND chain",
                     [] { return and_chain(24); }});
        s.push_back({"aochain32", "AND/OR chain, depth 32, period 8",
                     [] { return and_or_chain(32, 8); }});
        s.push_back({"lanes8x12", "8 AND-chain lanes of depth 12, XOR-merged",
                     [] { return chained_lanes(8, 12); }});
        s.push_back({"dag500", "random reconvergent DAG, 500 gates", [] {
                         RandomDagOptions o;
                         o.gates = 500;
                         o.inputs = 40;
                         o.seed = 11;
                         return random_dag(o);
                     }});
        s.push_back({"dag2000", "random reconvergent DAG, 2000 gates", [] {
                         RandomDagOptions o;
                         o.gates = 2000;
                         o.inputs = 96;
                         o.window = 96;
                         o.seed = 23;
                         return random_dag(o);
                     }});
        s.push_back({"mul12", "12x12 array multiplier",
                     [] { return array_multiplier(12); }});
        return s;
    }();
    return suite;
}

const std::vector<SuiteEntry>& small_suite() {
    static const std::vector<SuiteEntry> suite = [] {
        std::vector<SuiteEntry> s;
        for (const auto& entry : benchmark_suite()) {
            if (entry.name == "c17" || entry.name == "cmp32" ||
                entry.name == "chain24" || entry.name == "aochain32" ||
                entry.name == "lanes8x12" || entry.name == "dag500")
                s.push_back(entry);
        }
        return s;
    }();
    return suite;
}

const std::vector<SuiteEntry>& scale_suite() {
    static const std::vector<SuiteEntry> suite = [] {
        std::vector<SuiteEntry> s;
        s.push_back({"fabric64x8", "carry-save fabric, 64x8 (~3.6k gates)",
                     [] { return layered_fabric({64, 8, 3}); }});
        s.push_back(
            {"dag100k", "random reconvergent DAG, 100k gates", [] {
                 RandomDagOptions o;
                 o.gates = 100'000;
                 o.inputs = 1024;
                 o.window = 256;
                 o.seed = 31;
                 return random_dag(o);
             }});
        s.push_back({"fabric100k",
                     "carry-save fabric, 512x28 (~100k gates)",
                     [] { return layered_fabric({512, 28, 5}); }});
        s.push_back(
            {"dag1m", "random reconvergent DAG, 1M gates", [] {
                 RandomDagOptions o;
                 o.gates = 1'000'000;
                 o.inputs = 4096;
                 o.window = 512;
                 o.seed = 37;
                 return random_dag(o);
             }});
        s.push_back({"fabric1m",
                     "carry-save fabric, 1024x140 (~1M gates)",
                     [] { return layered_fabric({1024, 140, 7}); }});
        return s;
    }();
    return suite;
}

const SuiteEntry& suite_entry(const std::string& name) {
    for (const auto& entry : benchmark_suite())
        if (entry.name == name) return entry;
    for (const auto& entry : scale_suite())
        if (entry.name == name) return entry;
    throw Error("suite_entry: unknown benchmark '" + name + "'");
}

}  // namespace tpi::gen
