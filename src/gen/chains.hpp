#pragma once

#include <cstddef>

#include "netlist/circuit.hpp"

namespace tpi::gen {

/// Deep 2-input AND chain: c_i = AND(c_{i-1}, x_i). The 1-controllability
/// decays as 2^-i along the chain and the observability of early stages
/// decays symmetrically — the canonical random-pattern-resistant
/// structure that *control* points repair.
netlist::Circuit and_chain(std::size_t depth);

/// AND/OR chain alternating with the given period, producing interleaved
/// 0-failing and 1-failing segments (both CP-AND and CP-OR sites).
netlist::Circuit and_or_chain(std::size_t depth, std::size_t period);

/// `lanes` parallel AND chains of `depth` whose ends reconverge through a
/// parity tree; a mid-sized circuit with several independent
/// random-pattern-resistant regions.
netlist::Circuit chained_lanes(std::size_t lanes, std::size_t depth);

}  // namespace tpi::gen
