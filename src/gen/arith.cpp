#include "gen/arith.hpp"

#include <charconv>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace tpi::gen {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

struct FullAdderOut {
    NodeId sum;
    NodeId carry;
};

FullAdderOut full_adder(Circuit& c, NodeId a, NodeId b, NodeId cin,
                        const std::string& tag) {
    const NodeId x = c.add_gate(GateType::Xor, {a, b}, tag + "_x");
    const NodeId sum = c.add_gate(GateType::Xor, {x, cin}, tag + "_s");
    const NodeId g = c.add_gate(GateType::And, {a, b}, tag + "_g");
    const NodeId p = c.add_gate(GateType::And, {x, cin}, tag + "_p");
    const NodeId carry = c.add_gate(GateType::Or, {g, p}, tag + "_c");
    return {sum, carry};
}

NodeId half_adder_sum(Circuit& c, NodeId a, NodeId b,
                      const std::string& tag, NodeId& carry) {
    carry = c.add_gate(GateType::And, {a, b}, tag + "_hc");
    return c.add_gate(GateType::Xor, {a, b}, tag + "_hs");
}

}  // namespace

Circuit ripple_carry_adder(std::size_t bits) {
    require(bits >= 1, "ripple_carry_adder: bits >= 1");
    Circuit c("add" + std::to_string(bits));
    std::vector<NodeId> a(bits);
    std::vector<NodeId> b(bits);
    for (std::size_t i = 0; i < bits; ++i)
        a[i] = c.add_input("a" + std::to_string(i));
    for (std::size_t i = 0; i < bits; ++i)
        b[i] = c.add_input("b" + std::to_string(i));
    NodeId carry = c.add_input("cin");
    for (std::size_t i = 0; i < bits; ++i) {
        const FullAdderOut fa =
            full_adder(c, a[i], b[i], carry, "fa" + std::to_string(i));
        c.mark_output(fa.sum);
        carry = fa.carry;
    }
    c.mark_output(carry);
    c.validate();
    return c;
}

Circuit array_multiplier(std::size_t bits) {
    require(bits >= 2, "array_multiplier: bits >= 2");
    Circuit c("mul" + std::to_string(bits));
    std::vector<NodeId> a(bits);
    std::vector<NodeId> b(bits);
    for (std::size_t i = 0; i < bits; ++i)
        a[i] = c.add_input("a" + std::to_string(i));
    for (std::size_t j = 0; j < bits; ++j)
        b[j] = c.add_input("b" + std::to_string(j));

    // pp[i][j] = a[j] AND b[i], weight i + j.
    const auto pp = [&](std::size_t i, std::size_t j) {
        return c.add_gate(GateType::And, {a[j], b[i]},
                          "pp" + std::to_string(i) + "_" +
                              std::to_string(j));
    };

    // Accumulate rows. Invariant at the top of row i: running[j] carries
    // weight (i-1)+j and top_carry (when valid) carries weight (i-1)+bits.
    std::vector<NodeId> running(bits);
    for (std::size_t j = 0; j < bits; ++j) running[j] = pp(0, j);
    NodeId top_carry = netlist::kNullNode;

    for (std::size_t i = 1; i < bits; ++i) {
        c.mark_output(running[0]);  // p_{i-1}: nothing of weight i-1 remains

        std::vector<NodeId> row(bits);
        for (std::size_t j = 0; j < bits; ++j) row[j] = pp(i, j);
        // Ripple-add row[j] (weight i+j) to the aligned survivors:
        // addend[j] = running[j+1] for j < bits-1, addend[bits-1] = the
        // previous row's top carry.
        std::vector<NodeId> next(bits);
        NodeId carry = netlist::kNullNode;
        for (std::size_t j = 0; j < bits; ++j) {
            const std::string tag =
                "r" + std::to_string(i) + "_" + std::to_string(j);
            const NodeId addend =
                (j + 1 < bits) ? running[j + 1] : top_carry;
            if (!carry.valid()) {
                if (addend.valid()) {
                    next[j] = half_adder_sum(c, row[j], addend, tag, carry);
                } else {
                    next[j] = row[j];
                }
            } else if (addend.valid()) {
                const FullAdderOut fa =
                    full_adder(c, row[j], addend, carry, tag);
                next[j] = fa.sum;
                carry = fa.carry;
            } else {
                NodeId new_carry;
                next[j] = half_adder_sum(c, row[j], carry, tag, new_carry);
                carry = new_carry;
            }
        }
        running = std::move(next);
        top_carry = carry;  // weight i+bits
    }
    // Remaining bits p_{bits-1}..p_{2*bits-1}.
    for (std::size_t j = 0; j < bits; ++j) c.mark_output(running[j]);
    c.mark_output(top_carry);
    c.validate();
    return c;
}

Circuit equality_comparator(std::size_t bits) {
    require(bits >= 2, "equality_comparator: bits >= 2");
    Circuit c("cmp" + std::to_string(bits));
    std::vector<NodeId> layer(bits);
    std::vector<NodeId> a(bits);
    std::vector<NodeId> b(bits);
    for (std::size_t i = 0; i < bits; ++i)
        a[i] = c.add_input("a" + std::to_string(i));
    for (std::size_t i = 0; i < bits; ++i)
        b[i] = c.add_input("b" + std::to_string(i));
    for (std::size_t i = 0; i < bits; ++i)
        layer[i] = c.add_gate(GateType::Xnor, {a[i], b[i]},
                              "eqb" + std::to_string(i));
    // Balanced 2-input AND tree.
    int serial = 0;
    while (layer.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(c.add_gate(GateType::And,
                                      {layer[i], layer[i + 1]},
                                      "andt" + std::to_string(serial++)));
        if (layer.size() % 2 == 1) next.push_back(layer.back());
        layer = std::move(next);
    }
    c.mark_output(layer[0]);
    c.validate();
    return c;
}

Circuit parity_tree(std::size_t width) {
    require(width >= 2, "parity_tree: width >= 2");
    Circuit c("par" + std::to_string(width));
    std::vector<NodeId> layer(width);
    for (std::size_t i = 0; i < width; ++i)
        layer[i] = c.add_input("d" + std::to_string(i));
    int serial = 0;
    while (layer.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(c.add_gate(GateType::Xor,
                                      {layer[i], layer[i + 1]},
                                      "xt" + std::to_string(serial++)));
        if (layer.size() % 2 == 1) next.push_back(layer.back());
        layer = std::move(next);
    }
    c.mark_output(layer[0]);
    c.validate();
    return c;
}

Circuit decoder(std::size_t bits) {
    require(bits >= 2 && bits <= 12, "decoder: bits in [2, 12]");
    Circuit c("dec" + std::to_string(bits));
    std::vector<NodeId> in(bits);
    std::vector<NodeId> inv(bits);
    for (std::size_t i = 0; i < bits; ++i)
        in[i] = c.add_input("s" + std::to_string(i));
    const NodeId en = c.add_input("en");
    for (std::size_t i = 0; i < bits; ++i)
        inv[i] = c.add_gate(GateType::Not, {in[i]},
                            "ns" + std::to_string(i));
    const std::size_t lines = std::size_t{1} << bits;
    for (std::size_t k = 0; k < lines; ++k) {
        std::vector<NodeId> literals{en};
        for (std::size_t i = 0; i < bits; ++i)
            literals.push_back(((k >> i) & 1) ? in[i] : inv[i]);
        // Balanced 2-input AND tree over the literals.
        std::vector<NodeId> layer = std::move(literals);
        int serial = 0;
        while (layer.size() > 1) {
            std::vector<NodeId> next;
            for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
                next.push_back(
                    c.add_gate(GateType::And, {layer[i], layer[i + 1]},
                               "y" + std::to_string(k) + "_t" +
                                   std::to_string(serial++)));
            if (layer.size() % 2 == 1) next.push_back(layer.back());
            layer = std::move(next);
        }
        c.mark_output(layer[0]);
    }
    c.validate();
    return c;
}

Circuit layered_fabric(const FabricOptions& options) {
    const std::size_t w = options.width;
    const std::size_t layers = options.layers;
    require(w >= 2, "layered_fabric: width >= 2");
    require(layers >= 1, "layered_fabric: layers >= 1");
    const std::size_t shift = options.shift % w;
    // A zero (mod width) shift would tap each cell's own sum: x^y^x = y
    // and maj(x,y,x) = x, a fabric of wires.
    require(shift != 0, "layered_fabric: shift must not be a multiple of width");

    Circuit c("fabric" + std::to_string(w) + "x" + std::to_string(layers));
    const std::size_t cells = w * layers;
    // 2w inputs + 7 gates per cell; every gate is 2-input; names are
    // <letter><layer>_<col>, at most 2 + 2*20 digits.
    c.reserve(2 * w + 7 * cells, 14 * cells, 16 * (2 * w + 7 * cells));

    // to_chars naming without a heap allocation per gate.
    char buf[48];
    const auto cell_name = [&buf](char role, std::size_t layer,
                                  std::size_t col) {
        buf[0] = role;
        char* p = std::to_chars(buf + 1, buf + sizeof buf, layer).ptr;
        *p++ = '_';
        p = std::to_chars(p, buf + sizeof buf, col).ptr;
        return std::string_view(buf, static_cast<std::size_t>(p - buf));
    };

    std::vector<NodeId> sum(w);
    std::vector<NodeId> carry(w);
    for (std::size_t i = 0; i < w; ++i)
        sum[i] = c.add_input(cell_name('a', 0, i));
    for (std::size_t i = 0; i < w; ++i)
        carry[i] = c.add_input(cell_name('b', 0, i));

    std::vector<NodeId> next_sum(w);
    std::vector<NodeId> next_carry(w);
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t i = 0; i < w; ++i) {
            const NodeId x = sum[i];
            const NodeId y = carry[i];
            const NodeId z = sum[(i + shift) % w];
            const NodeId t =
                c.add_gate(GateType::Xor, {x, y}, cell_name('t', l, i));
            const NodeId s =
                c.add_gate(GateType::Xor, {t, z}, cell_name('s', l, i));
            const NodeId p =
                c.add_gate(GateType::And, {x, y}, cell_name('p', l, i));
            const NodeId q =
                c.add_gate(GateType::And, {x, z}, cell_name('q', l, i));
            const NodeId r =
                c.add_gate(GateType::And, {y, z}, cell_name('r', l, i));
            const NodeId o =
                c.add_gate(GateType::Or, {p, q}, cell_name('o', l, i));
            next_sum[i] = s;
            next_carry[(i + 1) % w] =
                c.add_gate(GateType::Or, {o, r}, cell_name('c', l, i));
        }
        sum.swap(next_sum);
        carry.swap(next_carry);
    }
    // The final rails are the fabric's outputs.
    for (NodeId v : sum) c.mark_output(v);
    for (NodeId v : carry) c.mark_output(v);
    c.validate();
    return c;
}

}  // namespace tpi::gen
