#include "gen/random_circuits.hpp"

#include <array>
#include <charconv>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tpi::gen {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

/// Composes "<prefix><serial>" into a fixed buffer — the name strings
/// the interner copies are identical to the old "g" + to_string(n)
/// spelling, without a heap allocation per node (measurable at the
/// 100k–1M-gate generator scale).
std::string_view serial_name(char (&buf)[24], std::string_view prefix,
                             std::size_t serial) {
    char* p = buf;
    for (char ch : prefix) *p++ = ch;
    p = std::to_chars(p, buf + sizeof(buf), serial).ptr;
    return {buf, static_cast<std::size_t>(p - buf)};
}

GateType pick_binary_type(util::Rng& rng, double xor_fraction) {
    if (rng.chance(xor_fraction))
        return rng.chance(0.5) ? GateType::Xor : GateType::Xnor;
    switch (rng.below(4)) {
        case 0: return GateType::And;
        case 1: return GateType::Nand;
        case 2: return GateType::Or;
        default: return GateType::Nor;
    }
}

}  // namespace

Circuit random_tree(const RandomTreeOptions& options) {
    require(options.gates >= 1, "random_tree: gates >= 1");
    util::Rng rng(options.seed);
    Circuit c("tree" + std::to_string(options.gates) + "s" +
              std::to_string(options.seed));

    // Build bottom-up: a pool of unconsumed nets; every gate consumes
    // pool nets (each exactly once -> fanout-free) or fresh inputs.
    std::vector<NodeId> pool;
    int pi_serial = 0;
    const auto fresh_input = [&]() {
        return c.add_input("i" + std::to_string(pi_serial++));
    };
    const auto take_operand = [&]() {
        // Prefer consuming pool nets so the result converges to one tree.
        if (!pool.empty() && rng.chance(0.7)) {
            const std::size_t k = rng.below(pool.size());
            const NodeId v = pool[k];
            pool[k] = pool.back();
            pool.pop_back();
            return v;
        }
        return fresh_input();
    };

    for (std::size_t g = 0; g < options.gates; ++g) {
        NodeId out;
        const std::string name = "g" + std::to_string(g);
        if (rng.chance(options.unary_fraction)) {
            out = c.add_gate(rng.chance(0.5) ? GateType::Not : GateType::Buf,
                             {take_operand()}, name);
        } else {
            const NodeId lhs = take_operand();
            const NodeId rhs = take_operand();
            out = c.add_gate(pick_binary_type(rng, options.xor_fraction),
                             {lhs, rhs}, name);
        }
        pool.push_back(out);
    }
    // Merge any remaining roots into a single output tree.
    int serial = 0;
    while (pool.size() > 1) {
        const NodeId a = pool[pool.size() - 1];
        const NodeId b = pool[pool.size() - 2];
        pool.pop_back();
        pool.pop_back();
        pool.push_back(c.add_gate(pick_binary_type(rng, options.xor_fraction),
                                  {a, b}, "m" + std::to_string(serial++)));
    }
    c.mark_output(pool[0]);
    c.validate();
    return c;
}

Circuit random_dag(const RandomDagOptions& options) {
    require(options.gates >= 1, "random_dag: gates >= 1");
    require(options.inputs >= 2, "random_dag: inputs >= 2");
    util::Rng rng(options.seed);
    Circuit c("dag" + std::to_string(options.gates) + "s" +
              std::to_string(options.seed));
    // Streaming build: size the node store once (gates are ~all binary;
    // the rare degeneracy fallback adds a few extra inputs beyond the
    // estimate, which then grow normally). Names are at most
    // "ix" + 20 digits.
    c.reserve(options.inputs + options.gates, 2 * options.gates,
              10 * (options.inputs + options.gates));
    char name_buf[24];

    // 256-pattern signatures keep the logic non-degenerate: a candidate
    // gate whose output is constant, or identical/complementary to one of
    // its fanins, is re-rolled. Unchecked random DAGs otherwise breed
    // constant nets and redundant faults, which no benchmark circuit of
    // interest exhibits at scale.
    constexpr int kSigWords = 4;
    using Signature = std::array<std::uint64_t, kSigWords>;
    util::Rng sig_rng(options.seed ^ 0xABCDEF0123456789ULL);
    std::vector<Signature> signature;

    std::vector<NodeId> nodes;
    nodes.reserve(options.inputs + options.gates);
    signature.reserve(options.inputs + options.gates);
    for (std::size_t i = 0; i < options.inputs; ++i) {
        nodes.push_back(c.add_input(serial_name(name_buf, "i", i)));
        Signature s;
        for (auto& w : s) w = sig_rng.next();
        signature.push_back(s);
    }

    const auto pick_fanin = [&]() {
        const std::size_t window =
            std::min(options.window == 0 ? nodes.size() : options.window,
                     nodes.size());
        return nodes[nodes.size() - 1 - rng.below(window)];
    };
    const auto eval_signature = [&](GateType type, NodeId a, NodeId b) {
        Signature s;
        for (int w = 0; w < kSigWords; ++w) {
            const std::uint64_t in[2] = {signature[a.v][w],
                                         signature[b.v][w]};
            s[w] = eval_word(type, {in, 2});
        }
        return s;
    };
    const auto degenerate = [&](const Signature& s, NodeId a, NodeId b) {
        bool all0 = true;
        bool all1 = true;
        bool alias_a = true;
        bool alias_b = true;
        for (int w = 0; w < kSigWords; ++w) {
            all0 &= s[w] == 0;
            all1 &= ~s[w] == 0;
            alias_a &= s[w] == signature[a.v][w] ||
                       s[w] == ~signature[a.v][w];
            alias_b &= s[w] == signature[b.v][w] ||
                       s[w] == ~signature[b.v][w];
        }
        return all0 || all1 || alias_a || alias_b;
    };

    for (std::size_t g = 0; g < options.gates; ++g) {
        const std::string_view name = serial_name(name_buf, "g", g);
        if (rng.chance(options.unary_fraction)) {
            const NodeId in = pick_fanin();
            const GateType type =
                rng.chance(0.5) ? GateType::Not : GateType::Buf;
            nodes.push_back(c.add_gate(type, {in}, name));
            Signature s = signature[in.v];
            if (type == GateType::Not)
                for (auto& w : s) w = ~w;
            signature.push_back(s);
            continue;
        }
        GateType type = GateType::And;
        NodeId lhs;
        NodeId rhs;
        Signature sig{};
        bool ok = false;
        for (int tries = 0; tries < 16 && !ok; ++tries) {
            type = pick_binary_type(rng, options.xor_fraction);
            lhs = pick_fanin();
            rhs = pick_fanin();
            if (lhs == rhs) continue;
            sig = eval_signature(type, lhs, rhs);
            ok = !degenerate(sig, lhs, rhs);
        }
        if (!ok) {
            // Fall back to a fresh input to break the degeneracy.
            rhs = pick_fanin();
            char ix_buf[24];
            lhs = c.add_input(serial_name(ix_buf, "ix", g));
            Signature s;
            for (auto& w : s) w = sig_rng.next();
            nodes.push_back(lhs);
            signature.push_back(s);
            type = pick_binary_type(rng, options.xor_fraction);
            sig = eval_signature(type, lhs, rhs);
        }
        nodes.push_back(c.add_gate(type, {lhs, rhs}, name));
        signature.push_back(sig);
    }

    // Dangling nets become primary outputs (mark_output flips flags in
    // place, so the freeze the fanout scan triggered survives).
    for (NodeId v : c.all_nodes())
        if (c.fanout_count(v) == 0) c.mark_output(v);
    c.validate();
    return c;
}

}  // namespace tpi::gen
