#pragma once

#include <cstddef>

#include "netlist/circuit.hpp"

namespace tpi::gen {

/// Ripple-carry adder: inputs a[0..bits), b[0..bits), cin; outputs
/// s[0..bits) and cout. All gates 2-input. ~5*bits gates.
netlist::Circuit ripple_carry_adder(std::size_t bits);

/// Schoolbook array multiplier: inputs a[0..bits), b[0..bits); outputs
/// p[0..2*bits). Partial-product ANDs plus ripple-carry accumulation
/// rows, ~6*bits^2 gates. Deep carry chains and reconvergent fanout make
/// it a classic realistic TPI workload.
netlist::Circuit array_multiplier(std::size_t bits);

/// Equality comparator: inputs a[0..bits), b[0..bits); single output
/// eq = AND of per-bit XNORs (balanced 2-input AND tree). The internal
/// XNOR nets are observable only when all *other* bits agree — their
/// observability is 2^-(bits-1), the textbook random-pattern-resistance
/// pattern that observation points repair.
netlist::Circuit equality_comparator(std::size_t bits);

/// Parity tree: inputs d[0..width); single XOR-tree output. Every fault
/// propagates with probability 1 — the easy extreme of the spectrum.
netlist::Circuit parity_tree(std::size_t width);

/// n-to-2^n line decoder with enable: outputs y[k] = en AND (bits == k).
/// Wide shallow circuit with one hard-to-excite AND per output.
netlist::Circuit decoder(std::size_t bits);

/// Parameters for layered_fabric below.
struct FabricOptions {
    std::size_t width = 64;   ///< full-adder cells per layer
    std::size_t layers = 8;   ///< carry-save layers
    std::size_t shift = 3;    ///< cross-column tap distance (mod width)
};

/// Layered carry-save arithmetic fabric: `layers` rows of `width` full
/// adders (3:2 compressors) over running sum/carry rails seeded by the
/// 2*width primary inputs. Each cell also taps the sum rail `shift`
/// columns over — giving those nets fanout 3 and reconvergent cones —
/// and the carry rail rotates one column per layer so columns mix.
/// XOR/majority cells keep every rail near 0.5 controllability, so the
/// fabric scales to millions of gates without degenerating into
/// constant nets. 7*width*layers gates, depth ~3*layers, fully
/// deterministic (no RNG), built streaming: storage is reserved up
/// front and names are composed with to_chars, no per-gate heap churn.
netlist::Circuit layered_fabric(const FabricOptions& options);

}  // namespace tpi::gen
