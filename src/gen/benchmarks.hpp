#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace tpi::gen {

/// The ISCAS85 c17 benchmark, embedded verbatim (the only ISCAS circuit
/// small enough to carry in source; larger ISCAS .bench files drop in via
/// netlist::read_bench_file).
netlist::Circuit c17();

/// A named circuit of the experiment suite.
struct SuiteEntry {
    std::string name;
    std::string description;
    std::function<netlist::Circuit()> build;
};

/// The benchmark suite of the reproduced evaluation (Table 1): the
/// embedded c17 plus generated circuits chosen to span the
/// random-pattern-resistance spectrum at several sizes. Deterministic.
const std::vector<SuiteEntry>& benchmark_suite();

/// Subset of the suite used by the heavier sweeps (multi-planner, many
/// budgets). Members of benchmark_suite().
const std::vector<SuiteEntry>& small_suite();

/// Million-gate-class circuits (100k–1M gates) for the scale tests and
/// benchmarks. Deliberately NOT part of benchmark_suite(): everything
/// that iterates the main suite builds every member, which at this size
/// would turn unit tests into minute-long runs. suite_entry() resolves
/// these names too, so the CLI and serve daemon reach them directly.
const std::vector<SuiteEntry>& scale_suite();

/// Look up a suite entry by name (benchmark_suite then scale_suite);
/// throws tpi::Error when absent.
const SuiteEntry& suite_entry(const std::string& name);

}  // namespace tpi::gen
