#include "testability/profile.hpp"

#include <algorithm>

namespace tpi::testability {

using netlist::Circuit;
using netlist::NodeId;

PropagationProfile compute_profile(const Circuit& circuit,
                                   const CopResult& cop,
                                   const fault::CollapsedFaults& faults,
                                   double min_probability) {
    const std::size_t n = circuit.node_count();
    PropagationProfile profile;
    profile.rows.resize(faults.size());

    // Scratch: best arrival probability per node, stamped per fault.
    std::vector<double> arrive(n, 0.0);
    std::vector<std::uint32_t> stamp(n, 0);
    std::uint32_t cur = 0;

    // Topological position for sorting cone nodes.
    std::vector<std::uint32_t> topo_pos(n);
    {
        const auto& topo = circuit.topo_order();
        for (std::uint32_t i = 0; i < topo.size(); ++i)
            topo_pos[topo[i].v] = i;
    }

    std::vector<NodeId> cone;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        const fault::Fault f = faults.representatives[fi];
        const double excitation =
            f.stuck_at1 ? (1.0 - cop.c1[f.node.v]) : cop.c1[f.node.v];
        if (excitation < min_probability) continue;

        // Collect the fanout cone and process in topological order.
        ++cur;
        cone.clear();
        cone.push_back(f.node);
        stamp[f.node.v] = cur;
        for (std::size_t head = 0; head < cone.size(); ++head) {
            for (NodeId w : circuit.fanouts(cone[head])) {
                if (stamp[w.v] != cur) {
                    stamp[w.v] = cur;
                    cone.push_back(w);
                }
            }
        }
        std::sort(cone.begin(), cone.end(), [&](NodeId a, NodeId b) {
            return topo_pos[a.v] < topo_pos[b.v];
        });

        arrive[f.node.v] = excitation;
        for (std::size_t k = 1; k < cone.size(); ++k) {
            const NodeId m = cone[k];
            double best = 0.0;
            const auto fanins = circuit.fanins(m);
            for (std::size_t slot = 0; slot < fanins.size(); ++slot) {
                const NodeId u = fanins[slot];
                if (stamp[u.v] != cur) continue;
                const double via =
                    arrive[u.v] *
                    sensitization_probability(circuit, m, slot, cop.c1);
                best = std::max(best, via);
            }
            arrive[m.v] = best;
        }

        auto& row = profile.rows[fi];
        for (NodeId v : cone) {
            if (arrive[v.v] >= min_probability)
                row.push_back({v, arrive[v.v]});
        }
        std::sort(row.begin(), row.end(),
                  [](const auto& a, const auto& b) {
                      return a.node.v < b.node.v;
                  });
    }
    return profile;
}

}  // namespace tpi::testability
