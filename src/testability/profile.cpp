#include "testability/profile.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace tpi::testability {

using netlist::Circuit;
using netlist::NodeId;

PropagationProfile compute_profile(const Circuit& circuit,
                                   const CopResult& cop,
                                   const fault::CollapsedFaults& faults,
                                   double min_probability,
                                   util::Deadline* deadline) {
    const std::size_t n = circuit.node_count();
    PropagationProfile profile;
    profile.rows.resize(faults.size());

    // Scratch: best arrival probability per node, stamped per fault.
    std::vector<double> arrive(n, 0.0);
    std::vector<std::uint32_t> stamp(n, 0);
    std::uint32_t cur = 0;

    // Topological position: the frontier is popped in this order, so a
    // node's kept fanins are finalised before the node itself.
    std::vector<std::uint32_t> topo_pos(n);
    {
        const auto& topo = circuit.topo_order();
        for (std::uint32_t i = 0; i < topo.size(); ++i)
            topo_pos[topo[i].v] = i;
    }

    // Threshold-pruned cone walk. Arrival is a max over single-path
    // products of probabilities <= 1, so it never increases along an
    // edge: a node below `min_probability` cannot push any descendant
    // back above it through its own out-edges. Expanding only the
    // at-or-above-threshold frontier therefore emits exactly the rows
    // the full cone walk would — with bitwise-identical values, because
    // any emitted node's winning fanin candidate is itself at or above
    // the threshold and hence was expanded and finalised — while
    // skipping the (potentially whole-circuit) sub-threshold tail of
    // each cone. On deep circuits, where arrival decays exponentially
    // with distance, this turns the per-fault cost from O(cone) into
    // O(reachable-above-threshold).
    using Item = std::pair<std::uint32_t, std::uint32_t>;  // (topo_pos, id)
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>>
        frontier;

    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        // One fault's cone walk is the unit of work: a caller-supplied
        // budget leaves the remaining rows empty, and the caller is
        // expected to poll the same deadline and discard the partial
        // profile.
        if (deadline != nullptr && deadline->expired()) break;

        const fault::Fault f = faults.representatives[fi];
        const double excitation =
            f.stuck_at1 ? (1.0 - cop.c1[f.node.v]) : cop.c1[f.node.v];
        if (excitation < min_probability) continue;

        ++cur;
        stamp[f.node.v] = cur;
        arrive[f.node.v] = excitation;
        frontier.emplace(topo_pos[f.node.v], f.node.v);

        auto& row = profile.rows[fi];
        while (!frontier.empty()) {
            const NodeId m{frontier.top().second};
            frontier.pop();
            if (m != f.node) {
                double best = 0.0;
                const auto fanins = circuit.fanins(m);
                for (std::size_t slot = 0; slot < fanins.size(); ++slot) {
                    const NodeId u = fanins[slot];
                    if (stamp[u.v] != cur) continue;
                    const double via =
                        arrive[u.v] *
                        sensitization_probability(circuit, m, slot,
                                                  cop.c1);
                    best = std::max(best, via);
                }
                arrive[m.v] = best;
            }
            if (arrive[m.v] < min_probability) continue;
            row.push_back({m, arrive[m.v]});
            for (NodeId w : circuit.fanouts(m)) {
                if (stamp[w.v] != cur) {
                    stamp[w.v] = cur;
                    frontier.emplace(topo_pos[w.v], w.v);
                }
            }
        }
        std::sort(row.begin(), row.end(),
                  [](const auto& a, const auto& b) {
                      return a.node.v < b.node.v;
                  });
    }
    return profile;
}

}  // namespace tpi::testability
