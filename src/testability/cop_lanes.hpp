#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/test_point.hpp"
#include "testability/incremental_cop.hpp"

namespace tpi::testability {

/// Widest lane count any kernel variant is compiled for: one AVX-512
/// word of doubles (or two AVX2 words).
inline constexpr unsigned kMaxCopLanes = 8;

/// True for the lane counts the batched sweep accepts: 1, 2, 4, 8.
bool cop_lanes_supported(unsigned lanes);

/// Kernel tier that will serve `lanes` candidates on this host
/// ("portable", "avx2" or "avx512"). Runtime dispatch: the portable
/// loops compute the same bits, so the host level only steers which
/// compiled variant runs, exactly like sim::detect_simd_level.
std::string_view cop_lane_isa(unsigned lanes);

/// Raw-pointer view of everything the stamped lane kernels read: the
/// circuit's frozen CSR topology, the IncrementalCop's committed state,
/// the sweep's structure-of-arrays lane block (`CopLanes`: K doubles
/// per touched node per quantity, K = `lanes`), and the per-lane
/// candidate sites. Plain-old-data on purpose — the kernels are
/// compiled under `#pragma GCC target` regions and must not pull
/// std templates across the ISA boundary.
struct LaneCtx {
    // Topology (borrowed from netlist::CsrView).
    const netlist::GateType* type = nullptr;
    const std::uint8_t* output_flag = nullptr;
    const std::uint32_t* fanin_offset = nullptr;
    const netlist::NodeId* fanin = nullptr;
    const std::uint32_t* fanout_offset = nullptr;
    const netlist::NodeId* fanout = nullptr;
    const std::uint32_t* fanout_slot = nullptr;

    // Committed base state (borrowed from the IncrementalCop).
    const double* base_c1 = nullptr;
    const double* base_eff = nullptr;
    const double* base_drv_obs = nullptr;
    const std::int8_t* base_control = nullptr;
    const std::uint8_t* base_observe = nullptr;

    // Lane block (owned by the sweep): slot-compacted SoA with the
    // three quantities interleaved per slot — slot s owns the 3*lanes
    // doubles at lane_rows + s*3*lanes, laid out [c1 | eff | drv_obs]
    // with `lanes` doubles each. One fault refresh then reads one
    // contiguous row, the dense-mode restore writes one contiguous
    // run, and phases C and O share the lines they both touch.
    // Unstamped nodes implicitly carry the broadcast base value in
    // every lane.
    const std::uint32_t* slot_of = nullptr;
    const std::uint32_t* slot_stamp = nullptr;
    std::uint32_t block_epoch = 0;
    double* lane_rows = nullptr;

    // Per-lane candidate sites (kMaxCopLanes entries; idle lanes carry
    // site_node = kNoLaneSite).
    const std::uint32_t* site_node = nullptr;
    const std::int8_t* site_control = nullptr;  ///< TpKind, -1 = none
    const std::uint8_t* site_observe = nullptr;
    /// Per-node lane bitmask: bit l set iff site_node[l] == v. Lets the
    /// kernels skip the per-lane site scans on the (vast) majority of
    /// visits — a block has at most kMaxCopLanes site nodes.
    const std::uint8_t* site_mask = nullptr;

    unsigned lanes = 0;
    double epsilon = 0.0;
};

inline constexpr std::uint32_t kNoLaneSite = 0xffffffffu;

/// Objective parameters the benefit kernel replicates; must mirror
/// tpi::Objective::benefit op-for-op (asserted by the differential
/// suite). Plain data so the stamped kernels can take it directly.
struct BenefitParams {
    bool threshold_linear = false;
    double threshold = 0.0;
    std::uint64_t num_patterns = 0;
};

/// One fault whose detection probability the sweep should re-derive
/// lane-wise against the block state. `fault` is an opaque caller index
/// (the engine's fault universe index); queries must be sorted
/// ascending by it so the emitted override rows come out sorted.
struct LaneFaultQuery {
    std::uint32_t fault = 0;
    std::uint32_t node = 0;
    bool stuck_at1 = false;
    double committed_p = 0.0;
};

/// One fault whose benefit differs from the committed cache in at least
/// one lane; bit l of `mask` flags the diverging lanes.
struct LaneOverride {
    std::uint32_t fault = 0;
    std::uint32_t mask = 0;
};

struct LaneKernels;  // per-ISA function table, internal to cop_lanes.cpp

/// Batched delta-COP sweep: scores up to `lanes` candidate test points
/// against one IncrementalCop's *committed* state by walking the union
/// fanout/fanin frontier once. One SIMD word of doubles carries all
/// lanes through the shared CSR traversal, so scheduling, level
/// buckets and cache misses are paid once per group instead of once
/// per candidate.
///
/// Correctness rests on one invariant: recomputing a (lane, node) pair
/// whose inputs did not move is a bitwise no-op, so visiting the union
/// frontier is exactly equivalent to K independent scalar sweeps — the
/// per-lane change masks keep unchanged lanes' stored values untouched
/// (which is what makes the equivalence hold for epsilon > 0 too).
/// Every lane value, override and score is bit-identical to what
/// IncrementalCop::apply / EvalEngine::score_candidate produce for
/// that lane's point alone (see DESIGN.md §17).
///
/// The block state is throwaway: apply_block overwrites the previous
/// block, and the borrowed IncrementalCop is never mutated. All
/// scratch (slot map, buckets, lane arrays) is member state reused
/// across blocks — no steady-state allocation.
class CopLaneSweep {
public:
    /// Borrows `cop` (which must outlive the sweep and have no open
    /// frames whenever a block is applied). `lanes` must satisfy
    /// cop_lanes_supported.
    CopLaneSweep(const IncrementalCop& cop, unsigned lanes);

    unsigned lanes() const { return lanes_; }

    /// ISA tier actually serving this sweep's kernels.
    std::string_view isa() const;

    /// Apply up to lanes() candidate points, one per lane, against the
    /// committed state. Throws tpi::Error on a point duplicating a
    /// committed control/observation point (the IncrementalCop::apply
    /// contract); two lanes may carry the same net — lanes are
    /// independent hypotheses, not a joint plan.
    void apply_block(std::span<const netlist::TestPoint> points);

    /// Lanes occupied by the last block.
    unsigned active() const { return active_; }

    /// Union of nodes whose c1, site observability or test-point flags
    /// changed in at least one lane (deduplicated; includes every
    /// lane's site). Valid until the next apply_block.
    std::span<const std::uint32_t> changed_nodes() const {
        return changed_;
    }

    /// True iff `node` is in changed_nodes() for the current block.
    /// O(1) — lets callers walk an already-ordered universe (e.g. the
    /// fault list) instead of sorting changed_nodes().
    bool node_changed(std::uint32_t node) const {
        return changed_stamp_[node] == epoch_;
    }

    /// Union-frontier visits of the last block (the work measure the
    /// scalar engine reports per candidate, paid here once per group).
    std::uint64_t last_touched() const { return last_touched_; }

    /// Sum over visited nodes of (scheduling lanes - 1): how many
    /// per-candidate visits the union walk amortised away.
    std::uint64_t shared_frontier_nodes() const { return shared_; }

    // ---- lane reads ----------------------------------------------------

    double lane_c1(std::uint32_t node, unsigned lane) const;
    double lane_site_obs(std::uint32_t node, unsigned lane) const;

    // ---- fault refresh + scoring ---------------------------------------

    /// Re-derive detection probability and benefit lane-wise for each
    /// query (sorted ascending by `fault`), recording an override row
    /// per fault that diverges from its committed value in any lane.
    /// Lanes whose state at the fault site equals the committed state
    /// reproduce `committed_p` bitwise and are masked out — the same
    /// skip the scalar engine's refresh applies.
    void refresh_faults(std::span<const LaneFaultQuery> queries,
                        const BenefitParams& params);

    std::span<const LaneOverride> overrides() const {
        return {overrides_.data(), n_overrides_};
    }

    /// Per-lane objective totals over the full fault universe: the
    /// exact Objective::score accumulation order, with the committed
    /// benefit cache overridden at the rows recorded by the last
    /// refresh_faults. out_scores must hold lanes() doubles.
    void ordered_scores(std::span<const std::uint32_t> weight,
                        std::span<const double> committed_benefit,
                        double* out_scores) const;

private:
    std::uint32_t ensure_slot(std::uint32_t node);
    void schedule(std::uint32_t node, std::uint32_t lane_mask, int& lo,
                  int& hi);
    void mark_changed(std::uint32_t node);

    const IncrementalCop* cop_;
    netlist::CsrView csr_;
    unsigned lanes_;
    unsigned active_ = 0;
    const LaneKernels* kernels_;
    LaneCtx ctx_;

    /// Dense mirror mode: lane rows indexed by node (slot_of_ is the
    /// identity, every row valid), kept equal to the committed base
    /// between blocks. Buys sequential row access in the fault refresh
    /// (queries arrive in node order) and kills the slot indirection on
    /// every kernel load; gated on memory so huge circuits keep the
    /// slot-compacted representation.
    bool dense_ = false;
    std::uint64_t base_version_ = 0;  ///< cop state the mirror reflects
    void refresh_dense_base();
    void restore_dense_rows();

    // Slot-compacted lane block (CopLanes): stamp-guarded dense map
    // node -> slot, plus the SoA payload (slot-major, lane-minor).
    std::vector<std::uint32_t> slot_of_;
    std::vector<std::uint32_t> slot_stamp_;
    std::uint32_t epoch_ = 0;
    std::uint32_t slot_count_ = 0;
    /// Interleaved payload: slot s owns lane_rows_[s*3*lanes_ ..) as
    /// [c1 | eff | drv_obs], lanes_ doubles each (see LaneCtx).
    std::vector<double> lane_rows_;

    // Per-lane candidate sites of the current block, plus the inverse
    // map (node -> lane bitmask; nonzero on at most active_ nodes,
    // cleared lazily when the next block replaces the sites).
    std::uint32_t site_node_[kMaxCopLanes];
    std::int8_t site_control_[kMaxCopLanes];
    std::uint8_t site_observe_[kMaxCopLanes];
    std::vector<std::uint8_t> site_mask_;

    // Union worklist: per-level buckets + stamped dedup, with the
    // requesting-lane mask per scheduled node (drives the shared-
    // frontier counter; correctness never needs it — every visit
    // recomputes all lanes). Stamp and mask pack into one word
    // ((epoch << 8) | lane_mask) so the hot schedule() path is one
    // load and one store.
    std::vector<std::vector<std::uint32_t>> bucket_;
    std::vector<std::uint64_t> sched_;
    std::uint32_t sched_epoch_ = 0;
    std::vector<std::uint32_t> moved_buf_;  ///< per-bucket kernel output

    // Union changed set + per-phase bookkeeping.
    std::vector<std::uint32_t> changed_;
    std::vector<std::uint32_t> changed_stamp_;
    /// (node, lane mask) pairs whose post-override c1 moved — the
    /// phase-O seed source, mirroring the scalar frame's c1_undo walk.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> c1_moved_;

    std::uint64_t last_touched_ = 0;
    std::uint64_t shared_ = 0;

    // Override rows from the last refresh_faults. Both buffers are
    // grow-only worst-case pools the batch kernel compacts into;
    // n_overrides_ is the live row count (resizing the vectors down and
    // up again would re-zero them every block).
    std::vector<LaneOverride> overrides_;
    std::vector<double> override_benefit_;  ///< lanes() doubles per row
    std::size_t n_overrides_ = 0;
};

}  // namespace tpi::testability
