#include "testability/scoap.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tpi::testability {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

constexpr std::uint32_t kInf = ScoapResult::kInfinity;

std::uint32_t sat(std::uint64_t x) {
    return x > kInf ? kInf : static_cast<std::uint32_t>(x);
}

}  // namespace

ScoapResult compute_scoap(const Circuit& circuit) {
    const std::size_t n = circuit.node_count();
    ScoapResult result;
    result.cc0.assign(n, kInf);
    result.cc1.assign(n, kInf);
    result.co.assign(n, kInf);

    // Controllabilities, bottom-up.
    for (NodeId v : circuit.topo_order()) {
        const GateType t = circuit.type(v);
        auto& cc0 = result.cc0[v.v];
        auto& cc1 = result.cc1[v.v];
        const auto fanins = circuit.fanins(v);
        switch (t) {
            case GateType::Input:
                cc0 = 1;
                cc1 = 1;
                break;
            case GateType::Const0:
                cc0 = 1;
                cc1 = kInf;
                break;
            case GateType::Const1:
                cc0 = kInf;
                cc1 = 1;
                break;
            case GateType::Buf:
                cc0 = sat(std::uint64_t{result.cc0[fanins[0].v]} + 1);
                cc1 = sat(std::uint64_t{result.cc1[fanins[0].v]} + 1);
                break;
            case GateType::Not:
                cc0 = sat(std::uint64_t{result.cc1[fanins[0].v]} + 1);
                cc1 = sat(std::uint64_t{result.cc0[fanins[0].v]} + 1);
                break;
            case GateType::And:
            case GateType::Nand: {
                std::uint64_t all1 = 1;
                std::uint32_t min0 = kInf;
                for (NodeId f : fanins) {
                    all1 += result.cc1[f.v];
                    min0 = std::min(min0, result.cc0[f.v]);
                }
                const std::uint32_t v1 = sat(all1);
                const std::uint32_t v0 = sat(std::uint64_t{min0} + 1);
                if (t == GateType::And) {
                    cc1 = v1;
                    cc0 = v0;
                } else {
                    cc0 = v1;
                    cc1 = v0;
                }
                break;
            }
            case GateType::Or:
            case GateType::Nor: {
                std::uint64_t all0 = 1;
                std::uint32_t min1 = kInf;
                for (NodeId f : fanins) {
                    all0 += result.cc0[f.v];
                    min1 = std::min(min1, result.cc1[f.v]);
                }
                const std::uint32_t v0 = sat(all0);
                const std::uint32_t v1 = sat(std::uint64_t{min1} + 1);
                if (t == GateType::Or) {
                    cc0 = v0;
                    cc1 = v1;
                } else {
                    cc1 = v0;
                    cc0 = v1;
                }
                break;
            }
            case GateType::Xor:
            case GateType::Xnor: {
                // Fold the parity: track the cheapest way to make the
                // running parity 0 or 1.
                std::uint64_t p0 = result.cc0[fanins[0].v];
                std::uint64_t p1 = result.cc1[fanins[0].v];
                for (std::size_t i = 1; i < fanins.size(); ++i) {
                    const std::uint64_t f0 = result.cc0[fanins[i].v];
                    const std::uint64_t f1 = result.cc1[fanins[i].v];
                    const std::uint64_t n0 = std::min(p0 + f0, p1 + f1);
                    const std::uint64_t n1 = std::min(p0 + f1, p1 + f0);
                    p0 = n0;
                    p1 = n1;
                }
                const std::uint32_t v0 = sat(p0 + 1);
                const std::uint32_t v1 = sat(p1 + 1);
                if (t == GateType::Xor) {
                    cc0 = v0;
                    cc1 = v1;
                } else {
                    cc0 = v1;
                    cc1 = v0;
                }
                break;
            }
        }
    }

    // Observabilities, top-down; stems take the cheapest branch.
    const auto& topo = circuit.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId v = *it;
        std::uint32_t o = circuit.is_output(v) ? 0 : kInf;
        for (NodeId g : circuit.fanouts(v)) {
            const GateType t = circuit.type(g);
            const auto fanins = circuit.fanins(g);
            for (std::size_t slot = 0; slot < fanins.size(); ++slot) {
                if (fanins[slot] != v) continue;
                std::uint64_t through =
                    std::uint64_t{result.co[g.v]} + 1;
                for (std::size_t s = 0; s < fanins.size(); ++s) {
                    if (s == slot) continue;
                    const NodeId other = fanins[s];
                    switch (t) {
                        case GateType::And:
                        case GateType::Nand:
                            through += result.cc1[other.v];
                            break;
                        case GateType::Or:
                        case GateType::Nor:
                            through += result.cc0[other.v];
                            break;
                        case GateType::Xor:
                        case GateType::Xnor:
                            through += std::min(result.cc0[other.v],
                                                result.cc1[other.v]);
                            break;
                        default:
                            break;
                    }
                }
                o = std::min(o, sat(through));
            }
        }
        result.co[v.v] = o;
    }
    return result;
}

}  // namespace tpi::testability
