#pragma once

#include <span>
#include <vector>

#include "netlist/circuit.hpp"

namespace tpi::testability {

/// COP testability measures under equiprobable random stimulus.
///
/// * `c1[v]` — 1-controllability: the probability that net v carries 1.
/// * `obs[v]` — observability: the probability that a value change on net
///   v propagates to some primary output.
///
/// Controllabilities are computed bottom-up assuming independent gate
/// inputs; observabilities top-down, a stem taking the maximum over its
/// branches (conservative under reconvergent fanout, where the
/// independence assumption breaks). On fanout-free circuits both measures
/// are exact — the class on which the paper's DP is optimal.
struct CopResult {
    std::vector<double> c1;
    std::vector<double> obs;

    double c0(netlist::NodeId v) const { return 1.0 - c1[v.v]; }
};

/// Compute COP measures. `input_c1` optionally overrides the default 0.5
/// 1-controllability of each primary input (in inputs() order) — used to
/// model weighted stimulus or control points driven by biased signals.
CopResult compute_cop(const netlist::Circuit& circuit,
                      std::span<const double> input_c1 = {});

/// Probability that a change on fanin `input_slot` of gate `gate`
/// propagates through the gate, given controllabilities `c1` — i.e. the
/// probability all other fanins are non-controlling / parity-transparent.
double sensitization_probability(const netlist::Circuit& circuit,
                                 netlist::NodeId gate,
                                 std::size_t input_slot,
                                 std::span<const double> c1);

/// 1-controllability of a gate output given fanin 1-controllabilities
/// (independence assumption). Exposed for the joint DP's transition
/// tables.
double gate_output_c1(netlist::GateType type, std::span<const double> c1);

}  // namespace tpi::testability
