#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/test_point.hpp"
#include "netlist/transform.hpp"
#include "testability/cop.hpp"

namespace tpi::testability {

/// Gate type of the override gate a control-point kind splices in.
/// Throws tpi::Error for Observe.
netlist::GateType cp_gate(netlist::TpKind kind);

/// Sensitisation of the overridden net through its override gate: the
/// probability the equiprobable test signal is non-controlling. Matches
/// sensitization_probability on the 2-input override gate bit-for-bit
/// (the only other fanin has c1 = 0.5).
double cp_sens(netlist::TpKind kind);

/// Incrementally maintained COP state of a base circuit under a stack of
/// *virtual* test points.
///
/// The exact estimator (`tpi::evaluate_plan`) materialises every plan
/// with `netlist::apply_test_points` and recomputes COP over the whole
/// transformed netlist — O(circuit) per candidate, paid in the innermost
/// loop of every planner. This class maintains the same quantities on
/// the *original* topology and applies a test point as an in-place
/// delta, so `apply -> read -> rollback` costs O(nodes actually touched)
/// and never copies the circuit.
///
/// State per original node v:
///
///  * `c1(v)`  — 1-controllability of the node's own output, *before*
///    any control-point override gate (the net fault excitation reads:
///    the transformed circuit's `c1[node_map[v]]`).
///  * `drv_obs(v)` — observability of the net v's consumers read (the
///    transformed circuit's `obs[driver_map[v]]`): the output of the
///    override gate where a control point is present, v itself where
///    not.
///  * `site_obs(v)` — observability of the fault site itself (the
///    transformed circuit's `obs[node_map[v]]`): `drv_obs(v)` times the
///    sensitisation of the override gate (0.5 for CP-AND / CP-OR with an
///    equiprobable test signal, 1 for CP-XOR), or plain `drv_obs(v)`
///    with no control point.
///
/// The update rules are the compute_cop recursions restricted to the
/// touched cones, evaluated with the *same* helper functions in the
/// *same* operand order, so every maintained value is bit-identical to a
/// from-scratch `compute_cop(apply_test_points(...))` — the differential
/// suite (tests/test_incremental.cpp) asserts exact equality. A
/// controllability change propagates *down* the fanout cone in level
/// order; an observability change propagates *up* the fanin cone in
/// reverse level order. Each applied point pushes an undo frame (old
/// values of every touched node), so points stack: `apply` / `rollback`
/// nest like a DFS, and `commit` collapses the newest frame into the
/// committed state.
///
/// With `epsilon > 0`, a change smaller than epsilon (in absolute value)
/// is dropped and its propagation cut off. That trades the bit-exactness
/// guarantee for shallower cones; the default 0.0 propagates every
/// last-ulp change.
class IncrementalCop {
public:
    explicit IncrementalCop(const netlist::Circuit& circuit,
                            double epsilon = 0.0);

    const netlist::Circuit& circuit() const { return circuit_; }
    double epsilon() const { return epsilon_; }

    // ---- state ---------------------------------------------------------

    double c1(netlist::NodeId v) const { return c1_[v.v]; }
    double drv_obs(netlist::NodeId v) const { return drv_obs_[v.v]; }
    double site_obs(netlist::NodeId v) const;

    /// 1-controllability of the net v's consumers read (post-override).
    double eff_c1(netlist::NodeId v) const { return eff_[v.v]; }

    /// Control-point kind at v, or -1 when none (committed + open frames).
    int control_kind(netlist::NodeId v) const { return control_[v.v]; }
    bool observed(netlist::NodeId v) const { return observe_[v.v] != 0; }

    // ---- raw dense views (borrowed by the lane-parallel sweep) ---------

    std::span<const double> c1_data() const { return c1_; }
    std::span<const double> eff_data() const { return eff_; }
    std::span<const double> drv_obs_data() const { return drv_obs_; }
    std::span<const std::int8_t> control_data() const { return control_; }
    std::span<const std::uint8_t> observe_data() const { return observe_; }

    // ---- delta application ---------------------------------------------

    /// Apply `point` as a new undo frame on top of the current state.
    /// Throws tpi::Error on a duplicate control/observation point on the
    /// same net (the apply_test_points contract).
    void apply(const netlist::TestPoint& point);

    /// Undo the newest frame, restoring the previous state exactly.
    void rollback();

    /// Keep the newest frame's effect and discard its undo data. Only
    /// the newest frame can be committed; committing out of order would
    /// leave older frames' undo data stale.
    void commit();

    /// Open (uncommitted) frames.
    std::size_t depth() const { return frames_.size(); }

    /// Monotonic counter bumped whenever the COP state arrays mutate
    /// (apply, rollback, sync_from — commit only discards undo data).
    /// Lets borrowers (the lane sweep's dense mirror) cache derived
    /// state and revalidate in O(1).
    std::uint64_t state_version() const { return state_version_; }

    /// Nodes whose c1, site_obs, or test-point flags changed in the
    /// newest frame (deduplicated; includes the point's own site). Valid
    /// until the next apply/rollback/commit.
    std::span<const std::uint32_t> frame_changed_nodes() const;

    /// Nodes touched (recomputed) by the last apply() — the O(touched)
    /// work measure reported to the observability layer.
    std::uint64_t last_touched() const { return last_touched_; }

    /// Copy another engine's committed state (same circuit, no open
    /// frames on either side). Used by the batch scorer's per-lane
    /// clones to resync after a commit.
    void sync_from(const IncrementalCop& other);

    /// Project the maintained state onto a materialised transform of the
    /// same base circuit carrying exactly the committed points: returns
    /// the CopResult `compute_cop(dft.circuit)` would produce,
    /// bit-identically, without traversing the transformed netlist.
    CopResult export_cop(const netlist::TransformResult& dft) const;

private:
    struct Frame {
        netlist::TestPoint point;
        std::vector<std::pair<std::uint32_t, double>> c1_undo;
        std::vector<std::pair<std::uint32_t, double>> obs_undo;
        std::vector<std::uint32_t> changed;  ///< dedup'd fault-site set
    };

    bool changed(double next, double prev) const {
        return epsilon_ > 0.0 ? (next > prev ? next - prev
                                             : prev - next) > epsilon_
                              : next != prev;
    }

    double eff_of(std::uint32_t v) const;
    double recompute_c1(std::uint32_t v);
    double recompute_drv_obs(std::uint32_t v) const;
    void schedule(std::uint32_t node, int& lo, int& hi);
    void mark_changed(Frame& frame, std::uint32_t node);

    const netlist::Circuit& circuit_;
    double epsilon_;

    // The circuit's own frozen CSR topology. The cone walks are the
    // innermost loop of every planner; before the flat layout became the
    // primary Circuit representation this class kept private CSR copies
    // of the same arrays — now there is exactly one, shared with every
    // other engine. The fanout CSR carries one (gate, slot) entry per
    // consuming fanin slot, so multi-slot consumers appear once per slot
    // exactly like the reference scan, and the fanins sit in the exact
    // same order — every product the walks form is bit-identical to one
    // formed through the Circuit accessors.
    netlist::CsrView csr_;

    std::vector<double> c1_;
    std::vector<double> eff_;  ///< post-override c1, dense (what
                               ///< consumers' sensitisation reads)
    std::vector<double> drv_obs_;
    std::vector<std::int8_t> control_;  ///< TpKind as int, -1 = none
    std::vector<std::uint8_t> observe_;
    std::size_t committed_or_open_controls_ = 0;
    std::size_t committed_or_open_observes_ = 0;

    std::vector<Frame> frames_;
    /// Retired frames kept for their vector capacity: apply() recycles
    /// one instead of allocating three fresh undo vectors per point —
    /// planner rounds apply/rollback thousands of frames of similar
    /// size, so steady state allocates nothing.
    std::vector<Frame> spare_frames_;
    std::uint64_t last_touched_ = 0;
    std::uint64_t state_version_ = 1;

    // Worklist scratch: per-level buckets plus stamp-based dedup, reused
    // across applies (no steady-state allocation).
    std::vector<std::vector<std::uint32_t>> bucket_;
    std::vector<std::uint32_t> sched_stamp_;
    std::vector<std::uint32_t> changed_stamp_;
    std::uint32_t stamp_ = 0;
    std::uint32_t change_epoch_ = 0;
    std::vector<double> fanin_scratch_;
};

}  // namespace tpi::testability
