#include "testability/detect.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace tpi::testability {

std::vector<double> detection_probabilities(
    const netlist::Circuit& circuit, const fault::CollapsedFaults& faults,
    const CopResult& cop) {
    std::vector<double> p(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const fault::Fault f = faults.representatives[i];
        const double excitation =
            f.stuck_at1 ? (1.0 - cop.c1[f.node.v]) : cop.c1[f.node.v];
        p[i] = excitation * cop.obs[f.node.v];
    }
    (void)circuit;
    return p;
}

double estimated_coverage(std::span<const double> detection_probability,
                          std::span<const std::uint32_t> class_size,
                          std::size_t num_patterns) {
    require(detection_probability.size() == class_size.size(),
            "estimated_coverage: size mismatch");
    double covered = 0.0;
    double total = 0.0;
    const double n = static_cast<double>(num_patterns);
    for (std::size_t i = 0; i < detection_probability.size(); ++i) {
        const double p = std::clamp(detection_probability[i], 0.0, 1.0);
        // (1-p)^N via expm1/log1p for numerical stability at small p.
        const double miss = (p >= 1.0) ? 0.0 : std::exp(n * std::log1p(-p));
        covered += class_size[i] * (1.0 - miss);
        total += class_size[i];
    }
    return total > 0 ? covered / total : 1.0;
}

double required_test_length(double p, double confidence) {
    require(confidence > 0.0 && confidence < 1.0,
            "required_test_length: confidence must be in (0,1)");
    if (p <= 0.0) return std::numeric_limits<double>::infinity();
    if (p >= 1.0) return 1.0;
    return std::log1p(-confidence) / std::log1p(-p);
}

double min_detection_probability(std::span<const double> p) {
    double m = 1.0;
    for (double x : p) m = std::min(m, x);
    return p.empty() ? 0.0 : m;
}

}  // namespace tpi::testability
