#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"

namespace tpi::testability {

/// SCOAP (Sandia Controllability/Observability Analysis Program)
/// testability measures — the other classic 1980s metric, included for
/// cross-checking the COP-based selection (ablation A3).
///
/// * `cc0[v]` / `cc1[v]` — combinational 0-/1-controllability: the
///   smallest number of primary-input assignments (plus one per logic
///   level) needed to set net v to 0/1. Primary inputs cost 1.
/// * `co[v]` — combinational observability: the effort to propagate net v
///   to a primary output (0 at the outputs themselves).
///
/// Larger numbers mean harder; unlike COP the measures are additive
/// integers, exact on fanout-free circuits under the same caveats.
struct ScoapResult {
    std::vector<std::uint32_t> cc0;
    std::vector<std::uint32_t> cc1;
    std::vector<std::uint32_t> co;

    /// SCOAP testability of a stuck-at fault: the effort to excite it
    /// (controllability of the opposite value) plus the effort to observe
    /// its site.
    std::uint32_t fault_effort(netlist::NodeId node, bool stuck_at1) const {
        const std::uint32_t excite =
            stuck_at1 ? cc0[node.v] : cc1[node.v];
        return saturating_add(excite, co[node.v]);
    }

    static std::uint32_t saturating_add(std::uint32_t a, std::uint32_t b) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b);
        return sum > kInfinity ? kInfinity
                               : static_cast<std::uint32_t>(sum);
    }

    /// Sentinel for uncontrollable/unobservable nets (tie cells and
    /// blocked cones).
    static constexpr std::uint32_t kInfinity = 0x3FFFFFFF;
};

ScoapResult compute_scoap(const netlist::Circuit& circuit);

}  // namespace tpi::testability
