#include "testability/cop_lanes.hpp"

// The K=8 stamps use 512-bit vector types on every tier; on the AVX2
// target GCC lowers them to two 256-bit ops and warns that *returning*
// such a type changes the ABI. All stamp functions are static within
// this TU, so the ABI note is moot — and GCC emits it from the
// middle-end, past any diagnostic push/pop region, so it must be
// silenced TU-wide.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

#include <algorithm>
#include <bit>

#include "sim/simd.hpp"
#include "testability/cop.hpp"
#include "util/error.hpp"

namespace tpi::testability {

/// Per-ISA function table the sweep dispatches through. One indirect
/// call per level bucket / fault batch / block — the hot per-visit
/// loops run inside the stamped target regions — keeps the sweep
/// skeleton (scheduling, slot map, buckets) in ordinary base-ISA code.
struct LaneKernels {
    void (*run_c1_bucket)(const LaneCtx&, const std::uint32_t*,
                          std::size_t, std::uint32_t*);
    void (*run_obs_bucket)(const LaneCtx&, const std::uint32_t*,
                           std::size_t, std::uint32_t*);
    std::size_t (*refresh_fault_batch)(const LaneCtx&,
                                       const LaneFaultQuery*, std::size_t,
                                       const BenefitParams&, LaneOverride*,
                                       double*);
    void (*ordered_scores)(const LaneCtx&, const std::uint32_t*,
                           const double*, std::size_t,
                           const LaneOverride*, const double*,
                           std::size_t, double*);
};

namespace {

constexpr std::uint32_t kNoLaneSlot = 0xffffffffu;

inline std::uint32_t lane_slot(const LaneCtx& ctx, std::uint32_t v) {
    return ctx.slot_stamp[v] == ctx.block_epoch ? ctx.slot_of[v]
                                                : kNoLaneSlot;
}

/// cp_sens, reproduced file-locally (internal linkage) so the stamped
/// kernels can inline it. Calling the out-of-line original from inside
/// the per-edge loops made every vector register caller-saved across
/// the (dynamically never-taken) control-point branch — GCC spilled
/// the whole live set around it, roughly doubling the per-visit cost.
/// Exactness: both return the literals 1.0 / 0.5 (asserted against the
/// scalar engine by the differential suite).
inline double lane_cp_sens(std::int8_t kind) {
    return static_cast<netlist::TpKind>(kind) ==
                   netlist::TpKind::ControlXor
               ? 1.0
               : 0.5;
}

/// Post-override c1 at a control site: the exact IncrementalCop::eff_of
/// computation — gate_output_c1 on the override gate with the
/// equiprobable test-signal fanin — so a seeded lane value is
/// bit-identical to the scalar engine's. Replicated op-for-op instead
/// of calling gate_output_c1 for the same reason as lane_cp_sens: a
/// call inside the kernels' store path spills the live vector set.
inline double lane_cp_eff(std::int8_t kind, double c1) {
    switch (static_cast<netlist::TpKind>(kind)) {
        case netlist::TpKind::ControlAnd: {
            double p = 1.0;  // gate_output_c1(And, {c1, 0.5})
            p *= c1;
            p *= 0.5;
            return p;
        }
        case netlist::TpKind::ControlOr: {
            double p = 1.0;  // gate_output_c1(Or, {c1, 0.5})
            p *= 1.0 - c1;
            p *= 1.0 - 0.5;
            return 1.0 - p;
        }
        case netlist::TpKind::ControlXor: {
            double p = 0.0;  // gate_output_c1(Xor, {c1, 0.5})
            p = p * (1.0 - c1) + (1.0 - p) * c1;
            p = p * (1.0 - 0.5) + (1.0 - p) * 0.5;
            return p;
        }
        case netlist::TpKind::Observe:
            break;  // unreachable: callers guard on a control kind
    }
    return c1;
}

// ---- kernel stamps ---------------------------------------------------
// Portable variant: runtime lane count, base ISA. Compiled everywhere,
// computes the same bits as the vector stamps (the differential suite
// and the TPIDP_SIMD=OFF CI leg assert it).
#define LK_FN(name) name##_portable
#define LK_LANES(ctx) ((ctx).lanes)
#include "testability/cop_lane_kernels.inc"  // NOLINT(bugprone-suspicious-include)
#undef LK_FN
#undef LK_LANES

// Vector variants: the same kernel math with a literal lane count
// (LK_K), expressed on GCC vector-extension types under `#pragma GCC
// target` so every elementwise step is one AVX2 / AVX-512 word
// operation. This is how one binary carries every tier — runtime
// detection then only picks a function table, exactly like
// sim::detect_simd_level steering the simulation word width. Note:
// target("avx2") does not enable FMA, and strict ISO FP forbids
// contraction anyway — vector-extension arithmetic is elementwise
// IEEE, so vector lanes stay bit-identical to the scalar op sequence.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(TPIDP_NO_SIMD)
#define TPIDP_COP_LANE_STAMPS 1

#pragma GCC push_options
#pragma GCC target("avx2")
#define LK_FN(name) name##_avx2_k4
#define LK_LANES(ctx) 4u
#define LK_K 4
#include "testability/cop_lane_kernels.inc"  // NOLINT(bugprone-suspicious-include)
#undef LK_FN
#undef LK_LANES
#undef LK_K
#define LK_FN(name) name##_avx2_k8
#define LK_LANES(ctx) 8u
#define LK_K 8
#include "testability/cop_lane_kernels.inc"  // NOLINT(bugprone-suspicious-include)
#undef LK_FN
#undef LK_LANES
#undef LK_K
#pragma GCC pop_options

#pragma GCC push_options
#pragma GCC target("avx512f")
#define LK_FN(name) name##_avx512_k8
#define LK_LANES(ctx) 8u
#define LK_K 8
#include "testability/cop_lane_kernels.inc"  // NOLINT(bugprone-suspicious-include)
#undef LK_FN
#undef LK_LANES
#undef LK_K
#pragma GCC pop_options

#endif  // stamp support

constexpr LaneKernels kPortableKernels = {
    lk_run_c1_bucket_portable,
    lk_run_obs_bucket_portable,
    lk_refresh_fault_batch_portable,
    lk_ordered_scores_portable,
};

#ifdef TPIDP_COP_LANE_STAMPS
constexpr LaneKernels kAvx2K4Kernels = {
    lk_run_c1_bucket_avx2_k4,
    lk_run_obs_bucket_avx2_k4,
    lk_refresh_fault_batch_avx2_k4,
    lk_ordered_scores_avx2_k4,
};
constexpr LaneKernels kAvx2K8Kernels = {
    lk_run_c1_bucket_avx2_k8,
    lk_run_obs_bucket_avx2_k8,
    lk_refresh_fault_batch_avx2_k8,
    lk_ordered_scores_avx2_k8,
};
constexpr LaneKernels kAvx512K8Kernels = {
    lk_run_c1_bucket_avx512_k8,
    lk_run_obs_bucket_avx512_k8,
    lk_refresh_fault_batch_avx512_k8,
    lk_ordered_scores_avx512_k8,
};
#endif

struct SelectedKernels {
    const LaneKernels* table;
    std::string_view isa;
};

/// Runtime dispatch, mirroring sim::detect_simd_level: every variant
/// computes the same bits, so the host level only picks the fastest
/// compiled table for the requested lane count.
SelectedKernels select_kernels(unsigned lanes) {
#ifdef TPIDP_COP_LANE_STAMPS
    const int level = static_cast<int>(sim::detect_simd_level());
    if (lanes == 8 && level >= static_cast<int>(sim::SimdLevel::Avx512))
        return {&kAvx512K8Kernels, "avx512"};
    if (lanes == 8 && level >= static_cast<int>(sim::SimdLevel::Avx2))
        return {&kAvx2K8Kernels, "avx2"};
    if (lanes == 4 && level >= static_cast<int>(sim::SimdLevel::Avx2))
        return {&kAvx2K4Kernels, "avx2"};
#endif
    (void)lanes;
    return {&kPortableKernels, "portable"};
}

}  // namespace

bool cop_lanes_supported(unsigned lanes) {
    return lanes == 1 || lanes == 2 || lanes == 4 || lanes == 8;
}

std::string_view cop_lane_isa(unsigned lanes) {
    return select_kernels(lanes).isa;
}

CopLaneSweep::CopLaneSweep(const IncrementalCop& cop, unsigned lanes)
    : cop_(&cop),
      csr_(cop.circuit().topology()),
      lanes_(lanes),
      kernels_(select_kernels(lanes).table) {
    require(cop_lanes_supported(lanes),
            "CopLaneSweep: unsupported lane count");
    const std::size_t n = csr_.node_count;
    slot_of_.assign(n, 0);
    slot_stamp_.assign(n, 0);
    sched_.assign(n, 0);
    changed_stamp_.assign(n, 0);
    site_mask_.assign(n, 0);
    bucket_.resize(static_cast<std::size_t>(csr_.depth) + 1);
    for (unsigned l = 0; l < kMaxCopLanes; ++l) {
        site_node_[l] = kNoLaneSite;
        site_control_[l] = -1;
        site_observe_[l] = 0;
    }

    ctx_.type = csr_.type.data();
    ctx_.output_flag = csr_.output_flag.data();
    ctx_.fanin_offset = csr_.fanin_offset.data();
    ctx_.fanin = csr_.fanin.data();
    ctx_.fanout_offset = csr_.fanout_offset.data();
    ctx_.fanout = csr_.fanout.data();
    ctx_.fanout_slot = csr_.fanout_slot.data();
    ctx_.base_c1 = cop.c1_data().data();
    ctx_.base_eff = cop.eff_data().data();
    ctx_.base_drv_obs = cop.drv_obs_data().data();
    ctx_.base_control = cop.control_data().data();
    ctx_.base_observe = cop.observe_data().data();
    ctx_.slot_of = slot_of_.data();
    ctx_.slot_stamp = slot_stamp_.data();
    ctx_.site_node = site_node_;
    ctx_.site_control = site_control_;
    ctx_.site_observe = site_observe_;
    ctx_.site_mask = site_mask_.data();
    ctx_.lanes = lanes_;
    ctx_.epsilon = cop.epsilon();

    // Dense mirror when the full node-indexed lane block fits a modest
    // budget (fault queries then stream rows sequentially and kernel
    // loads skip the slot indirection); above it, the slot-compacted
    // block bounds memory to the touched frontier.
    constexpr std::size_t kDenseLaneBudgetBytes = std::size_t{48} << 20;
    dense_ = n * lanes_ * 3 * sizeof(double) <= kDenseLaneBudgetBytes;
    if (dense_) {
        lane_rows_.resize(n * 3 * lanes_);
        ctx_.lane_rows = lane_rows_.data();
        for (std::uint32_t v = 0; v < n; ++v) slot_of_[v] = v;
        std::fill(slot_stamp_.begin(), slot_stamp_.end(), 1u);
        ctx_.block_epoch = 1;  // every node permanently owns its slot
        refresh_dense_base();
    }
}

/// Rebroadcast the whole committed base into the dense rows; runs when
/// the borrowed cop's state moved (once per planner commit, amortised
/// over every block scored against that state).
void CopLaneSweep::refresh_dense_base() {
    const std::size_t n = csr_.node_count;
    for (std::size_t v = 0; v < n; ++v) {
        double* row = lane_rows_.data() + v * 3 * lanes_;
        const double c1 = ctx_.base_c1[v];
        const double eff = ctx_.base_eff[v];
        const double obs = ctx_.base_drv_obs[v];
        for (unsigned l = 0; l < lanes_; ++l) {
            row[l] = c1;
            row[lanes_ + l] = eff;
            row[2 * lanes_ + l] = obs;
        }
    }
    base_version_ = cop_->state_version();
}

/// Undo the previous block: every row it wrote is on its changed list,
/// so rebroadcasting those from base restores the between-blocks
/// invariant (dense rows == committed state).
void CopLaneSweep::restore_dense_rows() {
    // Wide blocks change most of the circuit; an ascending full sweep
    // then streams the row arrays instead of scattering through the
    // discovery-ordered changed list.
    if (changed_.size() * 4 >= csr_.node_count) {
        const std::uint32_t n = csr_.node_count;
        for (std::uint32_t v = 0; v < n; ++v) {
            if (changed_stamp_[v] != epoch_) continue;
            double* row = lane_rows_.data() + std::size_t{v} * 3 * lanes_;
            const double c1 = ctx_.base_c1[v];
            const double eff = ctx_.base_eff[v];
            const double obs = ctx_.base_drv_obs[v];
            for (unsigned l = 0; l < lanes_; ++l) {
                row[l] = c1;
                row[lanes_ + l] = eff;
                row[2 * lanes_ + l] = obs;
            }
        }
        return;
    }
    for (const std::uint32_t v : changed_) {
        double* row = lane_rows_.data() + std::size_t{v} * 3 * lanes_;
        const double c1 = ctx_.base_c1[v];
        const double eff = ctx_.base_eff[v];
        const double obs = ctx_.base_drv_obs[v];
        for (unsigned l = 0; l < lanes_; ++l) {
            row[l] = c1;
            row[lanes_ + l] = eff;
            row[2 * lanes_ + l] = obs;
        }
    }
}

std::string_view CopLaneSweep::isa() const {
    return select_kernels(lanes_).isa;
}

std::uint32_t CopLaneSweep::ensure_slot(std::uint32_t node) {
    if (dense_) return node;  // identity slots, rows always valid
    if (slot_stamp_[node] == epoch_) return slot_of_[node];
    const std::uint32_t slot = slot_count_++;
    slot_of_[node] = slot;
    slot_stamp_[node] = epoch_;
    const std::size_t need = std::size_t{slot_count_} * 3 * lanes_;
    if (lane_rows_.size() < need) {
        lane_rows_.resize(std::max(need, lane_rows_.size() * 2));
        ctx_.lane_rows = lane_rows_.data();
    }
    double* row = lane_rows_.data() + std::size_t{slot} * 3 * lanes_;
    const double c1 = ctx_.base_c1[node];
    const double eff = ctx_.base_eff[node];
    const double obs = ctx_.base_drv_obs[node];
    for (unsigned l = 0; l < lanes_; ++l) {
        row[l] = c1;
        row[lanes_ + l] = eff;
        row[2 * lanes_ + l] = obs;
    }
    return slot;
}

void CopLaneSweep::schedule(std::uint32_t node, std::uint32_t lane_mask,
                            int& lo, int& hi) {
    const std::uint64_t w = sched_[node];
    const std::uint64_t tag = std::uint64_t{sched_epoch_} << 8;
    if ((w >> 8) == sched_epoch_) {
        sched_[node] = w | lane_mask;
        return;
    }
    sched_[node] = tag | lane_mask;
    const int lv = csr_.level[node];
    bucket_[static_cast<std::size_t>(lv)].push_back(node);
    lo = std::min(lo, lv);
    hi = std::max(hi, lv);
}

void CopLaneSweep::mark_changed(std::uint32_t node) {
    if (changed_stamp_[node] == epoch_) return;
    changed_stamp_[node] = epoch_;
    changed_.push_back(node);
}

void CopLaneSweep::apply_block(
    std::span<const netlist::TestPoint> points) {
    require(!points.empty() && points.size() <= lanes_,
            "CopLaneSweep: block size must be 1..lanes()");
    require(cop_->depth() == 0,
            "CopLaneSweep: cop has open frames");
    if (dense_) {
        // Restore the between-blocks invariant (rows == committed
        // base) before anything reads them: full rebroadcast if the
        // cop moved underneath us, else undo just the previous
        // block's rows.
        if (base_version_ != cop_->state_version())
            refresh_dense_base();
        else
            restore_dense_rows();
    }
    ++epoch_;
    slot_count_ = 0;
    active_ = static_cast<unsigned>(points.size());
    changed_.clear();
    c1_moved_.clear();
    n_overrides_ = 0;
    shared_ = 0;
    if (!dense_) ctx_.block_epoch = epoch_;

    for (unsigned l = 0; l < kMaxCopLanes; ++l) {
        if (site_node_[l] != kNoLaneSite) site_mask_[site_node_[l]] = 0;
        site_node_[l] = kNoLaneSite;
        site_control_[l] = -1;
        site_observe_[l] = 0;
    }
    for (unsigned l = 0; l < active_; ++l) {
        const netlist::TestPoint& tp = points[l];
        const netlist::NodeId n = tp.node;
        require(n.valid() && n.v < csr_.node_count,
                "CopLaneSweep: invalid node");
        site_node_[l] = n.v;
        site_mask_[n.v] |= static_cast<std::uint8_t>(1u << l);
        if (netlist::is_control(tp.kind)) {
            require(cop_->control_kind(n) < 0,
                    "IncrementalCop: duplicate control point on net '" +
                        std::string(cop_->circuit().node_name(n)) + "'");
            site_control_[l] = static_cast<std::int8_t>(tp.kind);
        } else {
            require(!cop_->observed(n),
                    "IncrementalCop: duplicate observation point on "
                    "net '" +
                        std::string(cop_->circuit().node_name(n)) + "'");
            site_observe_[l] = 1;
        }
    }

    // Seed: every site is changed (its flags or override moved); a
    // control site additionally gets its lane's post-override eff and
    // feeds phase-O seeding exactly like the scalar frame's c1_undo
    // walk (the site's consumers read the overridden value).
    last_touched_ = active_;
    for (unsigned l = 0; l < active_; ++l) {
        const std::uint32_t s = site_node_[l];
        mark_changed(s);
        if (site_control_[l] >= 0) {
            const std::uint32_t slot = ensure_slot(s);
            lane_rows_[std::size_t{slot} * 3 * lanes_ + lanes_ + l] =
                lane_cp_eff(site_control_[l], ctx_.base_c1[s]);
            c1_moved_.emplace_back(s, 1u << l);
        }
    }

    // ---- phase C: controllability, down the union fanout cone -------
    ++sched_epoch_;
    int lo = static_cast<int>(bucket_.size());
    int hi = -1;
    for (unsigned l = 0; l < active_; ++l) {
        if (site_control_[l] < 0) continue;
        const std::uint32_t s = site_node_[l];
        for (std::uint32_t t = csr_.fanout_offset[s];
             t < csr_.fanout_offset[s + 1]; ++t)
            schedule(csr_.fanout[t].v, 1u << l, lo, hi);
    }
    // Fanout edges strictly increase the topological level, so no node
    // lands in the bucket currently being processed — each bucket can
    // run through the kernel whole before its results are rescheduled.
    for (int lv = std::max(lo, 0); lv <= hi; ++lv) {
        auto& nodes = bucket_[static_cast<std::size_t>(lv)];
        if (nodes.empty()) continue;
        last_touched_ += nodes.size();
        if (!dense_)
            for (const std::uint32_t v : nodes) ensure_slot(v);
        if (moved_buf_.size() < nodes.size())
            moved_buf_.resize(nodes.size());
        kernels_->run_c1_bucket(ctx_, nodes.data(), nodes.size(),
                                moved_buf_.data());
        for (std::size_t k = 0; k < nodes.size(); ++k) {
            const std::uint32_t v = nodes[k];
            shared_ += std::popcount(sched_[v] & 0xffu) - 1;
            const std::uint32_t moved = moved_buf_[k];
            if (moved == 0) continue;
            mark_changed(v);
            c1_moved_.emplace_back(v, moved);
            for (std::uint32_t t = csr_.fanout_offset[v];
                 t < csr_.fanout_offset[v + 1]; ++t)
                schedule(csr_.fanout[t].v, moved, lo, hi);
        }
        nodes.clear();
    }

    // ---- phase O: observability, up the union fanin cone ------------
    ++sched_epoch_;
    lo = static_cast<int>(bucket_.size());
    hi = -1;
    for (unsigned l = 0; l < active_; ++l) {
        const std::uint32_t s = site_node_[l];
        schedule(s, 1u << l, lo, hi);
        if (site_control_[l] < 0) continue;
        for (std::uint32_t i = csr_.fanin_offset[s];
             i < csr_.fanin_offset[s + 1]; ++i)
            schedule(csr_.fanin[i].v, 1u << l, lo, hi);
    }
    for (const auto& [x, m] : c1_moved_) {
        for (std::uint32_t t = csr_.fanout_offset[x];
             t < csr_.fanout_offset[x + 1]; ++t) {
            const std::uint32_t g = csr_.fanout[t].v;
            for (std::uint32_t i = csr_.fanin_offset[g];
                 i < csr_.fanin_offset[g + 1]; ++i)
                schedule(csr_.fanin[i].v, m, lo, hi);
        }
    }
    // Fanin edges strictly decrease the level — same whole-bucket
    // kernel dispatch as phase C, walking the levels downward.
    for (int lv = hi; lv >= std::max(lo, 0); --lv) {
        auto& nodes = bucket_[static_cast<std::size_t>(lv)];
        if (nodes.empty()) continue;
        last_touched_ += nodes.size();
        if (!dense_)
            for (const std::uint32_t v : nodes) ensure_slot(v);
        if (moved_buf_.size() < nodes.size())
            moved_buf_.resize(nodes.size());
        kernels_->run_obs_bucket(ctx_, nodes.data(), nodes.size(),
                                 moved_buf_.data());
        for (std::size_t k = 0; k < nodes.size(); ++k) {
            const std::uint32_t v = nodes[k];
            shared_ += std::popcount(sched_[v] & 0xffu) - 1;
            const std::uint32_t moved = moved_buf_[k];
            if (moved == 0) continue;
            mark_changed(v);
            for (std::uint32_t i = csr_.fanin_offset[v];
                 i < csr_.fanin_offset[v + 1]; ++i)
                schedule(csr_.fanin[i].v, moved, lo, hi);
        }
        nodes.clear();
    }
}

double CopLaneSweep::lane_c1(std::uint32_t node, unsigned lane) const {
    const std::uint32_t slot = lane_slot(ctx_, node);
    if (slot == kNoLaneSlot) return ctx_.base_c1[node];
    return lane_rows_[std::size_t{slot} * 3 * lanes_ + lane];
}

double CopLaneSweep::lane_site_obs(std::uint32_t node,
                                   unsigned lane) const {
    const std::uint32_t slot = lane_slot(ctx_, node);
    const double drv =
        slot == kNoLaneSlot
            ? ctx_.base_drv_obs[node]
            : lane_rows_[std::size_t{slot} * 3 * lanes_ + 2 * lanes_ +
                         lane];
    std::int8_t kind = ctx_.base_control[node];
    if (site_node_[lane] == node && site_control_[lane] >= 0)
        kind = site_control_[lane];
    if (kind < 0) return drv;
    return drv * cp_sens(static_cast<netlist::TpKind>(kind));
}

void CopLaneSweep::refresh_faults(
    std::span<const LaneFaultQuery> queries,
    const BenefitParams& params) {
    for (std::size_t i = 1; i < queries.size(); ++i)
        require(queries[i].fault > queries[i - 1].fault,
                "CopLaneSweep: queries must be sorted by fault index");
    // Worst-case pools (every query diverges); the batch kernel
    // compacts into them and returns the live row count. Grow-only, so
    // steady state never reallocates or zero-fills.
    if (overrides_.size() < queries.size())
        overrides_.resize(queries.size());
    if (override_benefit_.size() < queries.size() * lanes_)
        override_benefit_.resize(queries.size() * lanes_);
    n_overrides_ = kernels_->refresh_fault_batch(
        ctx_, queries.data(), queries.size(), params, overrides_.data(),
        override_benefit_.data());
}

void CopLaneSweep::ordered_scores(
    std::span<const std::uint32_t> weight,
    std::span<const double> committed_benefit,
    double* out_scores) const {
    require(weight.size() == committed_benefit.size(),
            "CopLaneSweep: weight/benefit size mismatch");
    kernels_->ordered_scores(ctx_, weight.data(),
                             committed_benefit.data(), weight.size(),
                             overrides_.data(), override_benefit_.data(),
                             n_overrides_, out_scores);
}

}  // namespace tpi::testability
