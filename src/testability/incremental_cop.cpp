#include "testability/incremental_cop.hpp"

#include <algorithm>

#include "netlist/transform.hpp"
#include "util/error.hpp"

namespace tpi::testability {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;
using netlist::TestPoint;
using netlist::TpKind;

/// Gate type of the override gate a control-point kind splices in.
GateType cp_gate(TpKind kind) {
    switch (kind) {
        case TpKind::ControlAnd: return GateType::And;
        case TpKind::ControlOr: return GateType::Or;
        case TpKind::ControlXor: return GateType::Xor;
        case TpKind::Observe: break;
    }
    throw Error("IncrementalCop: not a control kind");
}

/// Sensitisation of the overridden net through its override gate: the
/// probability the equiprobable test signal is non-controlling. Matches
/// sensitization_probability on the 2-input override gate bit-for-bit
/// (the only other fanin has c1 = 0.5).
double cp_sens(TpKind kind) {
    return kind == TpKind::ControlXor ? 1.0 : 0.5;
}

IncrementalCop::IncrementalCop(const Circuit& circuit, double epsilon)
    : circuit_(circuit), epsilon_(epsilon), csr_(circuit.topology()) {
    const std::size_t n = circuit.node_count();
    const CopResult base = compute_cop(circuit);
    c1_ = base.c1;
    eff_ = base.c1;  // no control points yet: post-override == own c1
    drv_obs_ = base.obs;
    control_.assign(n, -1);
    observe_.assign(n, 0);
    bucket_.resize(static_cast<std::size_t>(csr_.depth) + 1);
    sched_stamp_.assign(n, 0);
    changed_stamp_.assign(n, 0);
}

double IncrementalCop::site_obs(NodeId v) const {
    const std::int8_t kind = control_[v.v];
    if (kind < 0) return drv_obs_[v.v];
    return drv_obs_[v.v] * cp_sens(static_cast<TpKind>(kind));
}

double IncrementalCop::eff_of(std::uint32_t v) const {
    const std::int8_t kind = control_[v];
    if (kind < 0) return c1_[v];
    const double fanin_c1[2] = {c1_[v], 0.5};
    return gate_output_c1(cp_gate(static_cast<TpKind>(kind)), fanin_c1);
}

double IncrementalCop::recompute_c1(std::uint32_t v) {
    const std::uint32_t b = csr_.fanin_offset[v];
    const std::uint32_t e = csr_.fanin_offset[v + 1];
    fanin_scratch_.resize(e - b);
    for (std::uint32_t i = b; i < e; ++i)
        fanin_scratch_[i - b] = eff_[csr_.fanin[i].v];
    return gate_output_c1(csr_.type[v], fanin_scratch_);
}

double IncrementalCop::recompute_drv_obs(std::uint32_t v) const {
    double o = (csr_.output_flag[v] != 0 || observe_[v] != 0) ? 1.0 : 0.0;
    for (std::uint32_t k = csr_.fanout_offset[v];
         k < csr_.fanout_offset[v + 1]; ++k) {
        const std::uint32_t g = csr_.fanout[k].v;
        const std::uint32_t slot = csr_.fanout_slot[k];
        const double gate_obs = site_obs(NodeId{g});
        // Sensitisation through slot `slot` of gate g: the
        // sensitization_probability recursion over the CSR fanins, same
        // operands in the same order (the max-reduction itself is
        // order-insensitive).
        double sens = 1.0;
        const std::uint32_t b = csr_.fanin_offset[g];
        const std::uint32_t e = csr_.fanin_offset[g + 1];
        switch (csr_.type[g]) {
            case GateType::And:
            case GateType::Nand:
                for (std::uint32_t i = b; i < e; ++i)
                    if (i - b != slot) sens *= eff_[csr_.fanin[i].v];
                break;
            case GateType::Or:
            case GateType::Nor:
                for (std::uint32_t i = b; i < e; ++i)
                    if (i - b != slot) sens *= 1.0 - eff_[csr_.fanin[i].v];
                break;
            default:
                break;  // Buf/Not/Xor/Xnor always propagate: sens = 1
        }
        o = std::max(o, gate_obs * sens);
    }
    return o;
}

void IncrementalCop::schedule(std::uint32_t node, int& lo, int& hi) {
    if (sched_stamp_[node] == stamp_) return;
    sched_stamp_[node] = stamp_;
    const int lv = csr_.level[node];
    bucket_[static_cast<std::size_t>(lv)].push_back(node);
    lo = std::min(lo, lv);
    hi = std::max(hi, lv);
}

void IncrementalCop::mark_changed(Frame& frame, std::uint32_t node) {
    if (changed_stamp_[node] == change_epoch_) return;
    changed_stamp_[node] = change_epoch_;
    frame.changed.push_back(node);
}

void IncrementalCop::apply(const TestPoint& point) {
    const NodeId n = point.node;
    require(n.valid() && n.v < circuit_.node_count(),
            "IncrementalCop: invalid node");
    Frame frame;
    if (!spare_frames_.empty()) {
        frame = std::move(spare_frames_.back());
        spare_frames_.pop_back();
        frame.c1_undo.clear();
        frame.obs_undo.clear();
        frame.changed.clear();
    }
    frame.point = point;
    ++change_epoch_;
    ++state_version_;
    last_touched_ = 1;

    if (netlist::is_control(point.kind)) {
        require(control_[n.v] < 0,
                "IncrementalCop: duplicate control point on net '" +
                    std::string(circuit_.node_name(n)) + "'");
        control_[n.v] = static_cast<std::int8_t>(point.kind);
        ++committed_or_open_controls_;
        // The node's own c1 is untouched (excitation reads the net
        // before the override), but the value consumers read changes.
        frame.c1_undo.emplace_back(n.v, c1_[n.v]);
        eff_[n.v] = eff_of(n.v);
    } else {
        require(observe_[n.v] == 0,
                "IncrementalCop: duplicate observation point on net '" +
                    std::string(circuit_.node_name(n)) + "'");
        observe_[n.v] = 1;
        ++committed_or_open_observes_;
    }
    mark_changed(frame, n.v);

    // ---- phase C: controllability, down the fanout cone -------------
    if (netlist::is_control(point.kind)) {
        ++stamp_;
        int lo = static_cast<int>(bucket_.size());
        int hi = -1;
        for (std::uint32_t k = csr_.fanout_offset[n.v];
             k < csr_.fanout_offset[n.v + 1]; ++k)
            schedule(csr_.fanout[k].v, lo, hi);
        for (int lv = std::max(lo, 0); lv <= hi; ++lv) {
            auto& nodes = bucket_[static_cast<std::size_t>(lv)];
            for (std::size_t k = 0; k < nodes.size(); ++k) {
                const std::uint32_t v = nodes[k];
                ++last_touched_;
                const double next = recompute_c1(v);
                if (!changed(next, c1_[v])) continue;
                frame.c1_undo.emplace_back(v, c1_[v]);
                c1_[v] = next;
                eff_[v] = eff_of(v);
                mark_changed(frame, v);
                for (std::uint32_t u = csr_.fanout_offset[v];
                     u < csr_.fanout_offset[v + 1]; ++u)
                    schedule(csr_.fanout[u].v, lo, hi);
            }
            nodes.clear();
        }
    }

    // ---- phase O: observability, up the fanin cone ------------------
    ++stamp_;
    int lo = static_cast<int>(bucket_.size());
    int hi = -1;
    // Seeds: the site itself (its output flag or override sensitisation
    // changed), the site's fanins when a control point was added (their
    // propagation now crosses the override gate), and every fanin of
    // every consumer of a net whose post-override c1 moved (their
    // sensitisation products read it).
    schedule(n.v, lo, hi);
    if (netlist::is_control(point.kind))
        for (std::uint32_t i = csr_.fanin_offset[n.v];
             i < csr_.fanin_offset[n.v + 1]; ++i)
            schedule(csr_.fanin[i].v, lo, hi);
    for (const auto& [x, old_c1] : frame.c1_undo) {
        for (std::uint32_t k = csr_.fanout_offset[x];
             k < csr_.fanout_offset[x + 1]; ++k) {
            const std::uint32_t g = csr_.fanout[k].v;
            for (std::uint32_t i = csr_.fanin_offset[g];
                 i < csr_.fanin_offset[g + 1]; ++i)
                schedule(csr_.fanin[i].v, lo, hi);
        }
    }
    for (int lv = hi; lv >= std::max(lo, 0); --lv) {
        auto& nodes = bucket_[static_cast<std::size_t>(lv)];
        for (std::size_t k = 0; k < nodes.size(); ++k) {
            const std::uint32_t v = nodes[k];
            ++last_touched_;
            const double next = recompute_drv_obs(v);
            if (!changed(next, drv_obs_[v])) continue;
            frame.obs_undo.emplace_back(v, drv_obs_[v]);
            drv_obs_[v] = next;
            mark_changed(frame, v);
            for (std::uint32_t i = csr_.fanin_offset[v];
                 i < csr_.fanin_offset[v + 1]; ++i) {
                // Fanins sit at strictly lower levels, so the bucket
                // sweep (strictly descending) visits them after every
                // consumer has settled.
                schedule(csr_.fanin[i].v, lo, hi);
            }
        }
        nodes.clear();
    }

    frames_.push_back(std::move(frame));
}

void IncrementalCop::rollback() {
    require(!frames_.empty(), "IncrementalCop: rollback with no frame");
    ++state_version_;
    const Frame& frame = frames_.back();
    const NodeId n = frame.point.node;
    if (netlist::is_control(frame.point.kind)) {
        control_[n.v] = -1;
        --committed_or_open_controls_;
    } else {
        observe_[n.v] = 0;
        --committed_or_open_observes_;
    }
    for (const auto& [v, old_c1] : frame.c1_undo) c1_[v] = old_c1;
    // eff is a pure function of (c1, control); recomputing it from the
    // restored inputs reproduces the pre-apply value bit-for-bit.
    for (const auto& [v, old_c1] : frame.c1_undo) eff_[v] = eff_of(v);
    for (const auto& [v, old_obs] : frame.obs_undo) drv_obs_[v] = old_obs;
    spare_frames_.push_back(std::move(frames_.back()));
    frames_.pop_back();
}

void IncrementalCop::commit() {
    require(frames_.size() == 1,
            "IncrementalCop: commit requires exactly one open frame");
    spare_frames_.push_back(std::move(frames_.back()));
    frames_.pop_back();
}

std::span<const std::uint32_t> IncrementalCop::frame_changed_nodes()
    const {
    require(!frames_.empty(),
            "IncrementalCop: no open frame to inspect");
    return frames_.back().changed;
}

void IncrementalCop::sync_from(const IncrementalCop& other) {
    require(&circuit_ == &other.circuit_,
            "IncrementalCop: sync_from across circuits");
    require(frames_.empty() && other.frames_.empty(),
            "IncrementalCop: sync_from with open frames");
    c1_ = other.c1_;
    eff_ = other.eff_;
    drv_obs_ = other.drv_obs_;
    control_ = other.control_;
    observe_ = other.observe_;
    ++state_version_;
    committed_or_open_controls_ = other.committed_or_open_controls_;
    committed_or_open_observes_ = other.committed_or_open_observes_;
}

CopResult IncrementalCop::export_cop(
    const netlist::TransformResult& dft) const {
    require(dft.node_map.size() == circuit_.node_count(),
            "IncrementalCop: transform of a different circuit");
    require(dft.control_points.size() == committed_or_open_controls_ &&
                dft.observation_points.size() ==
                    committed_or_open_observes_,
            "IncrementalCop: transform carries a different plan");

    CopResult out;
    out.c1.assign(dft.circuit.node_count(), 0.0);
    out.obs.assign(dft.circuit.node_count(), 0.0);
    for (NodeId v : circuit_.all_nodes()) {
        const NodeId copy = dft.node_map[v.v];
        out.c1[copy.v] = c1_[v.v];
        out.obs[copy.v] = site_obs(v);
    }
    for (std::size_t k = 0; k < dft.control_points.size(); ++k) {
        const TestPoint& tp = dft.control_points[k];
        const NodeId v = tp.node;
        require(control_[v.v] == static_cast<std::int8_t>(tp.kind),
                "IncrementalCop: control point mismatch on net '" +
                    std::string(circuit_.node_name(v)) + "'");
        const NodeId cp = dft.driver_map[v.v];
        const NodeId ctl = dft.control_inputs[k];
        out.c1[cp.v] = eff_[v.v];
        out.obs[cp.v] = drv_obs_[v.v];
        out.c1[ctl.v] = 0.5;
        // Sensitisation of the test signal through the override gate
        // (the only other fanin is the overridden net).
        double sens = 1.0;
        if (tp.kind == TpKind::ControlAnd)
            sens *= c1_[v.v];
        else if (tp.kind == TpKind::ControlOr)
            sens *= 1.0 - c1_[v.v];
        out.obs[ctl.v] = drv_obs_[v.v] * sens;
    }
    for (const TestPoint& tp : dft.observation_points)
        require(observe_[tp.node.v] != 0,
                "IncrementalCop: observation point mismatch on net '" +
                    std::string(circuit_.node_name(tp.node)) + "'");
    return out;
}

}  // namespace tpi::testability
