#pragma once

#include <cstddef>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"

namespace tpi::testability {

/// Options for the weighted-random input-probability optimiser.
struct WeightOptions {
    int passes = 3;                    ///< coordinate-ascent sweeps
    std::size_t num_patterns = 32768;  ///< test length of the objective
};

/// Optimise per-input signal probabilities for weighted-random testing —
/// the classic *input-side* alternative to test point insertion, included
/// as a literature baseline (Table 10).
///
/// Coordinate ascent over the 1/16-quantised weight grid, maximising the
/// COP-estimated expected fault coverage. Returns one weight per primary
/// input, in inputs() order.
std::vector<double> optimize_input_weights(
    const netlist::Circuit& circuit, const fault::CollapsedFaults& faults,
    const WeightOptions& options = {});

/// COP-estimated coverage under the given input weights (the optimiser's
/// objective, exposed for tests and the bench).
double estimated_coverage_under_weights(
    const netlist::Circuit& circuit, const fault::CollapsedFaults& faults,
    const std::vector<double>& weights, std::size_t num_patterns);

}  // namespace tpi::testability
