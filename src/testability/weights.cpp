#include "testability/weights.hpp"

#include "testability/cop.hpp"
#include "testability/detect.hpp"
#include "util/error.hpp"

namespace tpi::testability {

double estimated_coverage_under_weights(
    const netlist::Circuit& circuit, const fault::CollapsedFaults& faults,
    const std::vector<double>& weights, std::size_t num_patterns) {
    require(weights.size() == circuit.input_count(),
            "estimated_coverage_under_weights: weight count mismatch");
    const CopResult cop = compute_cop(circuit, weights);
    const std::vector<double> p =
        detection_probabilities(circuit, faults, cop);
    return estimated_coverage(p, faults.class_size, num_patterns);
}

std::vector<double> optimize_input_weights(
    const netlist::Circuit& circuit, const fault::CollapsedFaults& faults,
    const WeightOptions& options) {
    std::vector<double> weights(circuit.input_count(), 0.5);
    double best = estimated_coverage_under_weights(
        circuit, faults, weights, options.num_patterns);

    for (int pass = 0; pass < options.passes; ++pass) {
        bool improved = false;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            const double original = weights[i];
            double best_weight = original;
            for (int k = 1; k <= 15; ++k) {
                const double candidate = k / 16.0;
                if (candidate == original) continue;
                weights[i] = candidate;
                const double score = estimated_coverage_under_weights(
                    circuit, faults, weights, options.num_patterns);
                if (score > best + 1e-12) {
                    best = score;
                    best_weight = candidate;
                    improved = true;
                }
            }
            weights[i] = best_weight;
        }
        if (!improved) break;
    }
    return weights;
}

}  // namespace tpi::testability
