#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "testability/cop.hpp"
#include "util/deadline.hpp"

namespace tpi::testability {

/// Propagation profile: for each collapsed fault, the nets its effect can
/// reach together with the estimated probability of arriving there on a
/// random pattern (excitation times the best single-path sensitisation
/// product — a COP-style estimate that is exact on trees).
///
/// The profile is the input of the covering formulation of observation
/// point selection (and of the SET-COVER hardness construction): fault f
/// is *covered* by an observation point at net n when profile[f] contains
/// n with probability at least the detection threshold.
struct PropagationProfile {
    struct Entry {
        netlist::NodeId node;
        double probability;
    };
    /// Per collapsed fault, entries sorted by node id.
    std::vector<std::vector<Entry>> rows;
};

/// Compute the propagation profile, dropping entries whose probability is
/// below `min_probability` (memory control, as in covering-based TPI).
/// The traversal itself is pruned by the same threshold — arrival never
/// increases along an edge, so sub-threshold nodes are not expanded —
/// which also bounds the per-fault walk on deep circuits.
///
/// `deadline` (optional) is polled once per fault; on expiry the walk
/// stops and the remaining rows stay empty. Callers that pass a deadline
/// must re-poll it and treat a partially-filled profile as truncated.
PropagationProfile compute_profile(const netlist::Circuit& circuit,
                                   const CopResult& cop,
                                   const fault::CollapsedFaults& faults,
                                   double min_probability = 1e-9,
                                   util::Deadline* deadline = nullptr);

}  // namespace tpi::testability
