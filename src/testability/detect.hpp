#pragma once

#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "testability/cop.hpp"

namespace tpi::testability {

/// Per-pattern detection probability of each collapsed fault under
/// equiprobable random stimulus: excitation (the controllability of the
/// value opposite to the stuck value) times the observability of the
/// fault site. Exact on fanout-free circuits.
std::vector<double> detection_probabilities(
    const netlist::Circuit& circuit, const fault::CollapsedFaults& faults,
    const CopResult& cop);

/// Expected fault coverage (weighted over the uncollapsed universe) after
/// `num_patterns` independent random patterns:
///   FC = sum_f w_f (1 - (1 - p_f)^N) / sum_f w_f.
double estimated_coverage(std::span<const double> detection_probability,
                          std::span<const std::uint32_t> class_size,
                          std::size_t num_patterns);

/// Random test length needed to detect a fault of per-pattern detection
/// probability `p` with confidence `confidence` (e.g. 0.95):
///   N = ln(1 - confidence) / ln(1 - p).  Returns +inf for p == 0.
double required_test_length(double p, double confidence);

/// The minimum per-fault detection probability (the bottleneck fault) —
/// the objective of the TPI-MIN threshold formulation.
double min_detection_probability(std::span<const double> p);

}  // namespace tpi::testability
