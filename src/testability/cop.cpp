#include "testability/cop.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tpi::testability {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

double gate_output_c1(GateType type, std::span<const double> c1) {
    switch (type) {
        case GateType::Const0: return 0.0;
        case GateType::Const1: return 1.0;
        case GateType::Buf:
            require(c1.size() == 1, "gate_output_c1: BUF arity");
            return c1[0];
        case GateType::Not:
            require(c1.size() == 1, "gate_output_c1: NOT arity");
            return 1.0 - c1[0];
        case GateType::And:
        case GateType::Nand: {
            double p = 1.0;
            for (double x : c1) p *= x;
            return type == GateType::Nand ? 1.0 - p : p;
        }
        case GateType::Or:
        case GateType::Nor: {
            double p = 1.0;
            for (double x : c1) p *= 1.0 - x;
            return type == GateType::Nor ? p : 1.0 - p;
        }
        case GateType::Xor:
        case GateType::Xnor: {
            double p = 0.0;  // P(parity of inputs == 1)
            for (double x : c1) p = p * (1.0 - x) + (1.0 - p) * x;
            return type == GateType::Xnor ? 1.0 - p : p;
        }
        case GateType::Input:
            throw Error("gate_output_c1: inputs have no gate function");
    }
    throw Error("gate_output_c1: invalid GateType");
}

double sensitization_probability(const Circuit& circuit, NodeId gate,
                                 std::size_t input_slot,
                                 std::span<const double> c1) {
    const GateType t = circuit.type(gate);
    const auto fanins = circuit.fanins(gate);
    require(input_slot < fanins.size(),
            "sensitization_probability: bad input slot");
    switch (t) {
        case GateType::Buf:
        case GateType::Not:
            return 1.0;
        case GateType::Xor:
        case GateType::Xnor:
            return 1.0;  // parity gates always propagate a change
        case GateType::And:
        case GateType::Nand: {
            double p = 1.0;
            for (std::size_t i = 0; i < fanins.size(); ++i)
                if (i != input_slot) p *= c1[fanins[i].v];
            return p;
        }
        case GateType::Or:
        case GateType::Nor: {
            double p = 1.0;
            for (std::size_t i = 0; i < fanins.size(); ++i)
                if (i != input_slot) p *= 1.0 - c1[fanins[i].v];
            return p;
        }
        default:
            throw Error("sensitization_probability: not a gate");
    }
}

CopResult compute_cop(const Circuit& circuit,
                      std::span<const double> input_c1) {
    const std::size_t n = circuit.node_count();
    CopResult result;
    result.c1.assign(n, 0.0);
    result.obs.assign(n, 0.0);

    if (!input_c1.empty()) {
        require(input_c1.size() == circuit.input_count(),
                "compute_cop: input_c1 size mismatch");
    }
    const auto& inputs = circuit.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i)
        result.c1[inputs[i].v] = input_c1.empty() ? 0.5 : input_c1[i];

    // Controllability: bottom-up over the topological order.
    std::vector<double> fanin_c1;
    for (NodeId v : circuit.topo_order()) {
        const GateType t = circuit.type(v);
        if (t == GateType::Input) continue;
        const auto fanins = circuit.fanins(v);
        fanin_c1.resize(fanins.size());
        for (std::size_t i = 0; i < fanins.size(); ++i)
            fanin_c1[i] = result.c1[fanins[i].v];
        result.c1[v.v] = gate_output_c1(t, fanin_c1);
    }

    // Observability: top-down (reverse topological order); a stem takes
    // the maximum over its fanout branches.
    const auto& topo = circuit.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId v = *it;
        double o = circuit.is_output(v) ? 1.0 : 0.0;
        for (NodeId g : circuit.fanouts(v)) {
            const auto fanins = circuit.fanins(g);
            for (std::size_t slot = 0; slot < fanins.size(); ++slot) {
                if (fanins[slot] != v) continue;
                const double through =
                    result.obs[g.v] *
                    sensitization_probability(circuit, g, slot, result.c1);
                o = std::max(o, through);
            }
        }
        result.obs[v.v] = o;
    }
    return result;
}

}  // namespace tpi::testability
