#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "obs/obs.hpp"
#include "util/deadline.hpp"

namespace tpi::atpg {

/// Result of one test-generation attempt.
enum class Outcome : std::uint8_t {
    Detected,   ///< a test cube was found
    Redundant,  ///< search space exhausted: the fault is untestable
    Aborted,    ///< backtrack limit hit before a decision was reached
};

/// A (partial) input assignment detecting a fault: one entry per primary
/// input in inputs() order; -1 = don't care.
struct TestCube {
    std::vector<std::int8_t> inputs;
    Outcome outcome = Outcome::Aborted;
    std::size_t backtracks = 0;
};

struct AtpgOptions {
    /// Give up on a fault after this many backtracks (it is then Aborted,
    /// not proven redundant).
    std::size_t backtrack_limit = 20000;
    /// Optional cooperative resource budget (not owned). Checked per
    /// decision inside generate_test (the fault is Aborted on expiry)
    /// and per fault inside run_atpg (remaining faults are skipped and
    /// counted in AtpgSummary::skipped).
    util::Deadline* deadline = nullptr;
    /// Optional observability sink (not owned). run_atpg opens an
    /// "atpg/run" span and counts AtpgFaults / AtpgBacktracks. Null (the
    /// default) disables all instrumentation.
    obs::Sink* sink = nullptr;
};

/// PODEM test generation for a single stuck-at fault.
///
/// Classic path-oriented decision making over the five-valued D-calculus,
/// realised as a pair of three-valued simulations (fault-free and faulty
/// circuit). Objectives alternate between exciting the fault and
/// advancing the D-frontier; objectives are backtraced to primary-input
/// assignments; an X-path check prunes branches from which no fault
/// effect can reach an output.
TestCube generate_test(const netlist::Circuit& circuit,
                       const fault::Fault& fault,
                       const AtpgOptions& options = {});

/// Aggregate ATPG over a fault universe.
struct AtpgSummary {
    std::vector<Outcome> outcome;  ///< per collapsed fault
    std::vector<TestCube> cubes;   ///< cubes of the Detected faults
    std::size_t detected = 0;
    std::size_t redundant = 0;
    std::size_t aborted = 0;
    /// Completeness status: deadline expired before every fault was
    /// attempted. `skipped` faults were never tried (their outcome
    /// entries read Aborted).
    bool truncated = false;
    std::size_t skipped = 0;
};

/// Run PODEM on every fault of the universe. The paper-era experimental
/// flow used this to eliminate redundant faults before quoting coverage,
/// and to generate deterministic top-up cubes for the hard faults left
/// after test point insertion.
AtpgSummary run_atpg(const netlist::Circuit& circuit,
                     const fault::CollapsedFaults& faults,
                     const AtpgOptions& options = {});

/// Verify a cube by simulation: does applying it (don't-cares filled
/// with 0) detect the fault at some primary output?
bool cube_detects(const netlist::Circuit& circuit,
                  const fault::Fault& fault, const TestCube& cube);

}  // namespace tpi::atpg
