#include "atpg/podem.hpp"

#include <algorithm>

#include "sim/logic_sim.hpp"
#include "util/error.hpp"

namespace tpi::atpg {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

/// Three-valued logic value.
enum class V : std::uint8_t { Zero, One, X };

V from_bool(bool b) { return b ? V::One : V::Zero; }

V v_not(V a) {
    if (a == V::X) return V::X;
    return a == V::One ? V::Zero : V::One;
}

/// Three-valued n-ary gate evaluation.
V eval3(GateType type, std::span<const V> in) {
    switch (type) {
        case GateType::Const0: return V::Zero;
        case GateType::Const1: return V::One;
        case GateType::Buf: return in[0];
        case GateType::Not: return v_not(in[0]);
        case GateType::And:
        case GateType::Nand: {
            V acc = V::One;
            for (V v : in) {
                if (v == V::Zero) {
                    acc = V::Zero;
                    break;
                }
                if (v == V::X) acc = V::X;
            }
            return type == GateType::Nand ? v_not(acc) : acc;
        }
        case GateType::Or:
        case GateType::Nor: {
            V acc = V::Zero;
            for (V v : in) {
                if (v == V::One) {
                    acc = V::One;
                    break;
                }
                if (v == V::X) acc = V::X;
            }
            return type == GateType::Nor ? v_not(acc) : acc;
        }
        case GateType::Xor:
        case GateType::Xnor: {
            bool parity = false;
            for (V v : in) {
                if (v == V::X) return V::X;
                parity ^= (v == V::One);
            }
            const V acc = from_bool(parity);
            return type == GateType::Xnor ? v_not(acc) : acc;
        }
        case GateType::Input:
            throw Error("eval3: inputs are not evaluated");
    }
    throw Error("eval3: invalid GateType");
}

/// The PODEM engine for one fault.
class Podem {
public:
    Podem(const Circuit& circuit, const fault::Fault& fault,
          const AtpgOptions& options)
        : circuit_(circuit),
          fault_(fault),
          options_(options),
          pi_value_(circuit.input_count(), V::X),
          good_(circuit.node_count(), V::X),
          faulty_(circuit.node_count(), V::X),
          pi_index_by_node_(circuit.node_count(), UINT32_MAX) {
        for (std::size_t i = 0; i < circuit.input_count(); ++i)
            pi_index_by_node_[circuit.inputs()[i].v] =
                static_cast<std::uint32_t>(i);
    }

    TestCube run() {
        TestCube cube;
        imply();
        for (;;) {
            if (options_.deadline != nullptr &&
                options_.deadline->expired()) {
                cube.outcome = Outcome::Aborted;  // best-effort give-up
                break;
            }
            if (detected()) {
                cube.outcome = Outcome::Detected;
                break;
            }
            if (conflict()) {
                if (!backtrack()) {
                    cube.outcome = backtracks_ > options_.backtrack_limit
                                       ? Outcome::Aborted
                                       : Outcome::Redundant;
                    break;
                }
                continue;
            }
            std::uint32_t pi = 0;
            bool value = false;
            if (!next_decision(pi, value)) {
                // No objective can be backtraced and no PI is free: the
                // remaining X-ness is unreachable — treat as conflict.
                if (!backtrack()) {
                    cube.outcome = backtracks_ > options_.backtrack_limit
                                       ? Outcome::Aborted
                                       : Outcome::Redundant;
                    break;
                }
                continue;
            }
            decisions_.push_back({pi, value, false});
            pi_value_[pi] = from_bool(value);
            imply();
        }
        cube.backtracks = backtracks_;
        if (cube.outcome == Outcome::Detected) {
            cube.inputs.assign(circuit_.input_count(), -1);
            for (std::size_t i = 0; i < pi_value_.size(); ++i)
                if (pi_value_[i] != V::X)
                    cube.inputs[i] = pi_value_[i] == V::One ? 1 : 0;
        }
        return cube;
    }

private:
    struct Decision {
        std::uint32_t pi;
        bool value;
        bool flipped;
    };

    /// Three-valued simulation of the fault-free and faulty circuits.
    void imply() {
        std::vector<V> scratch;
        for (NodeId v : circuit_.topo_order()) {
            const GateType t = circuit_.type(v);
            V g;
            if (t == GateType::Input) {
                g = pi_value_[pi_index_by_node_[v.v]];
                good_[v.v] = g;
                faulty_[v.v] = g;
            } else {
                const auto fanins = circuit_.fanins(v);
                scratch.resize(fanins.size());
                for (std::size_t i = 0; i < fanins.size(); ++i)
                    scratch[i] = good_[fanins[i].v];
                good_[v.v] = eval3(t, scratch);
                for (std::size_t i = 0; i < fanins.size(); ++i)
                    scratch[i] = faulty_[fanins[i].v];
                faulty_[v.v] = eval3(t, scratch);
            }
            if (v == fault_.node)
                faulty_[v.v] = from_bool(fault_.stuck_at1);
        }
    }

    bool has_d(NodeId v) const {
        return good_[v.v] != V::X && faulty_[v.v] != V::X &&
               good_[v.v] != faulty_[v.v];
    }
    bool xish(NodeId v) const {
        return good_[v.v] == V::X || faulty_[v.v] == V::X;
    }

    bool detected() const {
        for (NodeId po : circuit_.outputs())
            if (has_d(po)) return true;
        return false;
    }

    /// Gates with a D on some input whose output could still become a D.
    std::vector<NodeId> d_frontier() const {
        std::vector<NodeId> frontier;
        for (NodeId v : circuit_.all_nodes()) {
            if (!has_d(v)) continue;
            for (NodeId g : circuit_.fanouts(v))
                if (xish(g)) frontier.push_back(g);
        }
        std::sort(frontier.begin(), frontier.end());
        frontier.erase(std::unique(frontier.begin(), frontier.end()),
                       frontier.end());
        return frontier;
    }

    /// Sound pruning: the search branch is dead when the fault can no
    /// longer be excited, or no fault effect can reach an output.
    bool conflict() const {
        const V site_good = good_[fault_.node.v];
        const V need = from_bool(!fault_.stuck_at1);
        if (site_good != V::X && site_good != need) return true;
        if (site_good == V::X) return false;  // excitation still open
        // Fault is excited: some effect must be able to reach a PO.
        const auto frontier = d_frontier();
        if (frontier.empty()) return true;
        // X-path check: a frontier output must reach a PO through X-ish
        // nets.
        std::vector<bool> seen(circuit_.node_count(), false);
        std::vector<NodeId> stack;
        for (NodeId g : frontier) {
            if (!seen[g.v]) {
                seen[g.v] = true;
                stack.push_back(g);
            }
        }
        while (!stack.empty()) {
            const NodeId v = stack.back();
            stack.pop_back();
            if (circuit_.is_output(v)) return false;  // path exists
            for (NodeId w : circuit_.fanouts(v)) {
                if (!seen[w.v] && xish(w)) {
                    seen[w.v] = true;
                    stack.push_back(w);
                }
            }
        }
        return true;  // excited but boxed in
    }

    /// Objective + backtrace: produce the next PI decision.
    bool next_decision(std::uint32_t& pi, bool& value) const {
        NodeId objective_net = netlist::kNullNode;
        bool objective_value = false;

        if (good_[fault_.node.v] == V::X) {
            objective_net = fault_.node;
            objective_value = !fault_.stuck_at1;
        } else {
            // Advance the D-frontier: set a good-X side input of a
            // frontier gate to its non-controlling value.
            for (NodeId g : d_frontier()) {
                for (NodeId in : circuit_.fanins(g)) {
                    if (good_[in.v] != V::X) continue;
                    objective_net = in;
                    objective_value =
                        netlist::has_controlling_value(circuit_.type(g))
                            ? !netlist::controlling_value(circuit_.type(g))
                            : false;
                    break;
                }
                if (objective_net.valid()) break;
            }
            if (!objective_net.valid()) {
                // All X-ness at the frontier lives in the faulty machine
                // only; fall back to any free PI to keep the search
                // complete.
                for (std::size_t i = 0; i < pi_value_.size(); ++i) {
                    if (pi_value_[i] == V::X) {
                        pi = static_cast<std::uint32_t>(i);
                        value = false;
                        return true;
                    }
                }
                return false;
            }
        }

        // Backtrace the objective through good-X nets to a primary input.
        NodeId net = objective_net;
        bool v = objective_value;
        while (circuit_.type(net) != GateType::Input) {
            if (netlist::is_source(circuit_.type(net))) return false;
            v ^= netlist::is_inverting(circuit_.type(net));
            NodeId next = netlist::kNullNode;
            for (NodeId in : circuit_.fanins(net)) {
                if (good_[in.v] == V::X) {
                    next = in;
                    break;
                }
            }
            if (!next.valid()) return false;  // objective unreachable
            net = next;
        }
        pi = pi_index_by_node_[net.v];
        value = v;
        return true;
    }

    /// Flip the deepest unflipped decision; pop flipped ones.
    bool backtrack() {
        ++backtracks_;
        if (backtracks_ > options_.backtrack_limit) return false;
        while (!decisions_.empty()) {
            Decision& top = decisions_.back();
            if (!top.flipped) {
                top.flipped = true;
                top.value = !top.value;
                pi_value_[top.pi] = from_bool(top.value);
                imply();
                return true;
            }
            pi_value_[top.pi] = V::X;
            decisions_.pop_back();
        }
        imply();
        return false;
    }

    const Circuit& circuit_;
    const fault::Fault fault_;
    const AtpgOptions options_;
    std::vector<V> pi_value_;
    std::vector<V> good_;
    std::vector<V> faulty_;
    std::vector<Decision> decisions_;
    // Primary-input slot of each input node (UINT32_MAX elsewhere):
    // a flat array so no hash container sits in this deterministic
    // path (see ci/grep_lint.py).
    std::vector<std::uint32_t> pi_index_by_node_;
    std::size_t backtracks_ = 0;
};

}  // namespace

TestCube generate_test(const Circuit& circuit, const fault::Fault& fault,
                       const AtpgOptions& options) {
    require(fault.node.valid() && fault.node.v < circuit.node_count(),
            "generate_test: invalid fault site");
    // A stuck value equal to a tie cell's constant is trivially
    // undetectable.
    const GateType t = circuit.type(fault.node);
    if ((t == GateType::Const0 && !fault.stuck_at1) ||
        (t == GateType::Const1 && fault.stuck_at1)) {
        TestCube cube;
        cube.outcome = Outcome::Redundant;
        return cube;
    }
    Podem engine(circuit, fault, options);
    return engine.run();
}

AtpgSummary run_atpg(const Circuit& circuit,
                     const fault::CollapsedFaults& faults,
                     const AtpgOptions& options) {
    obs::Sink* sink = options.sink;
    obs::Span run_span(sink, "atpg/run");
    AtpgSummary summary;
    summary.outcome.resize(faults.size(), Outcome::Aborted);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        // One unit of work is a whole PODEM run — poll the clock every
        // fault (generate_test itself checks per decision, amortised).
        if (options.deadline != nullptr &&
            options.deadline->expired_now()) {
            summary.truncated = true;
            summary.skipped = faults.size() - i;
            break;
        }
        TestCube cube =
            generate_test(circuit, faults.representatives[i], options);
        obs::add(sink, obs::Counter::AtpgFaults);
        obs::add(sink, obs::Counter::AtpgBacktracks, cube.backtracks);
        summary.outcome[i] = cube.outcome;
        switch (cube.outcome) {
            case Outcome::Detected:
                ++summary.detected;
                summary.cubes.push_back(std::move(cube));
                break;
            case Outcome::Redundant: ++summary.redundant; break;
            case Outcome::Aborted: ++summary.aborted; break;
        }
    }
    if (summary.truncated)
        obs::add(sink, obs::Counter::DeadlineExpiries);
    return summary;
}

bool cube_detects(const Circuit& circuit, const fault::Fault& fault,
                  const TestCube& cube) {
    require(cube.inputs.size() == circuit.input_count(),
            "cube_detects: cube width mismatch");
    // Single-pattern two-circuit simulation via the word simulator.
    sim::LogicSimulator good(circuit);
    std::vector<std::uint64_t> words(circuit.input_count());
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] = cube.inputs[i] == 1 ? ~std::uint64_t{0} : 0;
    good.simulate_block(words);

    // Faulty evaluation over the fanout cone.
    std::vector<std::uint64_t> value(good.values().begin(),
                                     good.values().end());
    value[fault.node.v] = fault.stuck_at1 ? ~std::uint64_t{0} : 0;
    std::vector<std::uint64_t> fanin_scratch;
    for (NodeId v : circuit.topo_order()) {
        if (netlist::is_source(circuit.type(v)) || v == fault.node)
            continue;
        const auto fanins = circuit.fanins(v);
        fanin_scratch.resize(fanins.size());
        for (std::size_t i = 0; i < fanins.size(); ++i)
            fanin_scratch[i] = value[fanins[i].v];
        value[v.v] = netlist::eval_word(circuit.type(v), fanin_scratch);
    }
    for (NodeId po : circuit.outputs())
        if ((value[po.v] ^ good.value(po)) & 1) return true;
    return false;
}

}  // namespace tpi::atpg
