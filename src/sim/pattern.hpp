#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/lfsr.hpp"
#include "util/rng.hpp"

namespace tpi::sim {

/// Source of bit-parallel test stimulus.
///
/// Patterns are delivered in blocks of 64: `next_block` fills one 64-bit
/// word per circuit input, bit j of word i being the value of input i in
/// the j-th pattern of the block. All sources are deterministic given
/// their seed.
class PatternSource {
public:
    virtual ~PatternSource() = default;

    /// Fill `words` (one per primary input) with the next 64 patterns.
    virtual void next_block(std::span<std::uint64_t> words) = 0;

    /// Restart the sequence from the beginning.
    virtual void reset() = 0;
};

/// Ideal pseudo-random stimulus: every input bit is an independent
/// equiprobable coin flip (xoshiro-driven). This is the regime assumed by
/// COP-style testability analysis.
class RandomPatternSource final : public PatternSource {
public:
    explicit RandomPatternSource(std::uint64_t seed) : seed_(seed), rng_(seed) {}

    void next_block(std::span<std::uint64_t> words) override {
        for (auto& w : words) w = rng_.next();
    }

    void reset() override { rng_.reseed(seed_); }

private:
    std::uint64_t seed_;
    util::Rng rng_;
};

/// BIST-hardware-style stimulus: a single maximal-length LFSR stepped once
/// per pattern, input i tapping register bit (i mod width). Successive taps
/// observe time-shifted copies of the same m-sequence, as in a serial
/// pseudo-random pattern generator.
class LfsrPatternSource final : public PatternSource {
public:
    LfsrPatternSource(unsigned width, std::uint64_t seed)
        : width_(width), seed_(seed), lfsr_(width, seed) {}

    void next_block(std::span<std::uint64_t> words) override;

    void reset() override { lfsr_ = util::Lfsr(width_, seed_); }

private:
    unsigned width_;
    std::uint64_t seed_;
    util::Lfsr lfsr_;
};

/// Weighted pseudo-random stimulus: input i is an independent Bernoulli
/// bit with probability weight[i], quantised to multiples of 1/16 — the
/// stimulus of the weighted-random BIST literature (the main alternative
/// to test point insertion). Weight resolution follows the classic
/// hardware scheme that derives a k/16-biased stream from four
/// equiprobable streams.
class WeightedPatternSource final : public PatternSource {
public:
    WeightedPatternSource(std::vector<double> weights, std::uint64_t seed);

    void next_block(std::span<std::uint64_t> words) override;

    void reset() override { rng_.reseed(seed_); }

    /// The exact probabilities realised after 1/16 quantisation.
    const std::vector<double>& effective_weights() const {
        return effective_;
    }

private:
    std::vector<std::uint8_t> sixteenths_;  // per input: 0..16
    std::vector<double> effective_;
    std::uint64_t seed_;
    util::Rng rng_;
};

/// Exhaustive stimulus: patterns 0, 1, 2, ... interpreted as binary input
/// vectors (input i = bit i of the counter). Used by the exact oracle on
/// small circuits.
class CounterPatternSource final : public PatternSource {
public:
    CounterPatternSource() = default;

    void next_block(std::span<std::uint64_t> words) override;

    void reset() override { next_ = 0; }

private:
    std::uint64_t next_ = 0;
};

}  // namespace tpi::sim
