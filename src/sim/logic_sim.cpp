#include "sim/logic_sim.hpp"

#include "sim/simd.hpp"
#include "util/error.hpp"

namespace tpi::sim {

namespace {

/// Width-generic accumulation loop behind estimate_signal_probabilities.
/// The per-node counters sum exact integer popcounts over the identical
/// pattern sequence at every width (the packing shim preserves block
/// order and the valid mask excludes zero-filled lanes of a partial
/// final wide block), so `ones` is width-invariant.
template <class Word>
void accumulate_ones(const netlist::Circuit& circuit, PatternSource& source,
                     std::size_t blocks64, std::vector<std::size_t>& ones) {
    constexpr unsigned kLanes = WordTraits<Word>::kLanes;
    LogicSimulatorT<Word> simulator(circuit);
    std::vector<Word> pi_words(circuit.input_count());
    std::vector<std::uint64_t> scratch(circuit.input_count());
    const std::size_t wide_blocks = (blocks64 + kLanes - 1) / kLanes;
    for (std::size_t wb = 0; wb < wide_blocks; ++wb) {
        const unsigned lanes_valid = static_cast<unsigned>(
            std::min<std::size_t>(kLanes, blocks64 - wb * kLanes));
        next_wide_block<Word>(source, pi_words, scratch, lanes_valid);
        simulator.simulate_block(pi_words);
        const Word valid = word_valid_mask<Word>(lanes_valid);
        const auto values = simulator.values();
        for (std::size_t v = 0; v < circuit.node_count(); ++v)
            ones[v] += WordTraits<Word>::popcount(values[v] & valid);
    }
}

}  // namespace

std::vector<double> estimate_signal_probabilities(
    const netlist::Circuit& circuit, PatternSource& source,
    std::size_t num_patterns, unsigned sim_width) {
    if (sim_width == 0) sim_width = preferred_sim_width();
    if (!sim_width_supported(sim_width))
        throw ValidationError(
            "estimate_signal_probabilities: sim_width must be 0 (auto), "
            "64, 128, 256 or 512");
    std::vector<double> probability(circuit.node_count(), 0.0);
    const std::size_t blocks = (num_patterns + 63) / 64;
    if (blocks == 0) return probability;  // 0 patterns: defined as all-0
    std::vector<std::size_t> ones(circuit.node_count(), 0);
    switch (sim_width) {
        case 64:
            accumulate_ones<std::uint64_t>(circuit, source, blocks, ones);
            break;
        case 128:
            accumulate_ones<SimWord<2>>(circuit, source, blocks, ones);
            break;
        case 256:
            accumulate_ones<SimWord<4>>(circuit, source, blocks, ones);
            break;
        case 512:
            accumulate_ones<SimWord<8>>(circuit, source, blocks, ones);
            break;
    }
    const double total = static_cast<double>(blocks * 64);
    for (std::size_t v = 0; v < circuit.node_count(); ++v)
        probability[v] = static_cast<double>(ones[v]) / total;
    return probability;
}

}  // namespace tpi::sim
