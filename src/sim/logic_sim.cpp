#include "sim/logic_sim.hpp"

#include <bit>

#include "util/error.hpp"

namespace tpi::sim {

using netlist::GateType;
using netlist::NodeId;

LogicSimulator::LogicSimulator(const netlist::Circuit& circuit)
    : circuit_(circuit), value_(circuit.node_count(), 0) {
    for (NodeId v : circuit.topo_order()) {
        const GateType t = circuit.type(v);
        if (t == GateType::Input) continue;
        if (t == GateType::Const0 || t == GateType::Const1) {
            value_[v.v] = (t == GateType::Const1) ? ~std::uint64_t{0} : 0;
            continue;
        }
        Op op;
        op.type = t;
        op.node = v.v;
        op.fanin_begin = static_cast<std::uint32_t>(fanin_pool_.size());
        op.fanin_count =
            static_cast<std::uint32_t>(circuit.fanins(v).size());
        for (NodeId f : circuit.fanins(v)) fanin_pool_.push_back(f.v);
        ops_.push_back(op);
    }
}

void LogicSimulator::simulate_block(
    std::span<const std::uint64_t> pi_words) {
    const auto& inputs = circuit_.inputs();
    require(pi_words.size() == inputs.size(),
            "simulate_block: one word per primary input required");
    for (std::size_t i = 0; i < inputs.size(); ++i)
        value_[inputs[i].v] = pi_words[i];

    for (const Op& op : ops_) {
        const std::uint32_t* f = fanin_pool_.data() + op.fanin_begin;
        std::uint64_t acc;
        switch (op.type) {
            case GateType::Buf:
                acc = value_[f[0]];
                break;
            case GateType::Not:
                acc = ~value_[f[0]];
                break;
            case GateType::And:
            case GateType::Nand:
                acc = value_[f[0]];
                for (std::uint32_t k = 1; k < op.fanin_count; ++k)
                    acc &= value_[f[k]];
                if (op.type == GateType::Nand) acc = ~acc;
                break;
            case GateType::Or:
            case GateType::Nor:
                acc = value_[f[0]];
                for (std::uint32_t k = 1; k < op.fanin_count; ++k)
                    acc |= value_[f[k]];
                if (op.type == GateType::Nor) acc = ~acc;
                break;
            case GateType::Xor:
            case GateType::Xnor:
                acc = value_[f[0]];
                for (std::uint32_t k = 1; k < op.fanin_count; ++k)
                    acc ^= value_[f[k]];
                if (op.type == GateType::Xnor) acc = ~acc;
                break;
            default:
                throw Error("LogicSimulator: unexpected source in schedule");
        }
        value_[op.node] = acc;
    }
}

std::vector<double> estimate_signal_probabilities(
    const netlist::Circuit& circuit, PatternSource& source,
    std::size_t num_patterns) {
    LogicSimulator simulator(circuit);
    const std::size_t blocks = (num_patterns + 63) / 64;
    std::vector<std::uint64_t> pi_words(circuit.input_count());
    std::vector<std::size_t> ones(circuit.node_count(), 0);
    for (std::size_t b = 0; b < blocks; ++b) {
        source.next_block(pi_words);
        simulator.simulate_block(pi_words);
        for (std::size_t v = 0; v < circuit.node_count(); ++v)
            ones[v] += std::popcount(simulator.values()[v]);
    }
    std::vector<double> probability(circuit.node_count());
    const double total = static_cast<double>(blocks * 64);
    for (std::size_t v = 0; v < circuit.node_count(); ++v)
        probability[v] = static_cast<double>(ones[v]) / total;
    return probability;
}

}  // namespace tpi::sim
