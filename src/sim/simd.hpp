#pragma once

#include <string_view>

namespace tpi::sim {

/// Host SIMD capability tiers relevant to the wide simulation words.
enum class SimdLevel {
    Portable,  ///< no x86 vector extensions detected (or non-x86 host)
    Sse2,      ///< 128-bit integer lanes
    Avx2,      ///< 256-bit integer lanes
    Avx512,    ///< 512-bit integer lanes (AVX-512F)
};

/// Stable lower-case name ("portable", "sse2", "avx2", "avx512").
std::string_view simd_level_name(SimdLevel level);

/// SIMD level of the CPU this process is running on (runtime detection,
/// cached after the first call). Independent of what the binary was
/// compiled for: wide SimWords are valid at any level — the portable
/// lane loops compute the same bits — so the runtime level only steers
/// the default width choice.
SimdLevel detect_simd_level();

/// Widest SIMD level whose intrinsic paths were compiled into this
/// binary (bounded by the build's -m flags and TPIDP_SIMD).
SimdLevel compiled_simd_level();

/// True for the pattern widths the simulators accept: 64, 128, 256, 512.
bool sim_width_supported(unsigned width);

/// Default pattern width for `sim_width = 0` (auto): the widest word
/// with hardware backing on this host, falling back to 64 on portable
/// hosts. One binary serves any machine — the width is chosen per run,
/// not per build.
unsigned preferred_sim_width();

/// Default lane count for the batched candidate scorer (`eval_lanes =
/// 0`, auto): 8 wherever a vector tier backs the double lanes, 4 on
/// plain-scalar hosts — four-candidate blocks still amortise the union
/// frontier walk even when each lane is a scalar loop iteration.
unsigned preferred_eval_lanes();

}  // namespace tpi::sim
