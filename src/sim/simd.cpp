#include "sim/simd.hpp"

#include "sim/sim_word.hpp"  // for the TPIDP_SIMD_* capability macros

namespace tpi::sim {

namespace {

SimdLevel detect_uncached() {
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx512f")) return SimdLevel::Avx512;
    if (__builtin_cpu_supports("avx2")) return SimdLevel::Avx2;
    if (__builtin_cpu_supports("sse2")) return SimdLevel::Sse2;
#endif
    return SimdLevel::Portable;
}

}  // namespace

std::string_view simd_level_name(SimdLevel level) {
    switch (level) {
        case SimdLevel::Portable: return "portable";
        case SimdLevel::Sse2: return "sse2";
        case SimdLevel::Avx2: return "avx2";
        case SimdLevel::Avx512: return "avx512";
    }
    return "?";
}

SimdLevel detect_simd_level() {
    static const SimdLevel level = detect_uncached();
    return level;
}

SimdLevel compiled_simd_level() {
#if defined(TPIDP_SIMD_AVX512)
    return SimdLevel::Avx512;
#elif defined(TPIDP_SIMD_AVX2)
    return SimdLevel::Avx2;
#elif defined(TPIDP_SIMD_SSE2)
    return SimdLevel::Sse2;
#else
    return SimdLevel::Portable;
#endif
}

bool sim_width_supported(unsigned width) {
    return width == 64 || width == 128 || width == 256 || width == 512;
}

unsigned preferred_sim_width() {
    switch (detect_simd_level()) {
        case SimdLevel::Avx512: return 512;
        case SimdLevel::Avx2: return 256;
        case SimdLevel::Sse2: return 128;
        case SimdLevel::Portable: break;
    }
    return 64;
}

unsigned preferred_eval_lanes() {
    switch (detect_simd_level()) {
        case SimdLevel::Avx512:
        case SimdLevel::Avx2: return 8;
        case SimdLevel::Sse2:
        case SimdLevel::Portable: break;
    }
    return 4;
}

}  // namespace tpi::sim
