#include "sim/pattern.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tpi::sim {

WeightedPatternSource::WeightedPatternSource(std::vector<double> weights,
                                             std::uint64_t seed)
    : seed_(seed), rng_(seed) {
    sixteenths_.reserve(weights.size());
    effective_.reserve(weights.size());
    for (double w : weights) {
        require(w >= 0.0 && w <= 1.0,
                "WeightedPatternSource: weights must be in [0, 1]");
        const int k = static_cast<int>(std::lround(w * 16.0));
        sixteenths_.push_back(static_cast<std::uint8_t>(k));
        effective_.push_back(k / 16.0);
    }
}

void WeightedPatternSource::next_block(std::span<std::uint64_t> words) {
    require(words.size() == sixteenths_.size(),
            "WeightedPatternSource: input count mismatch");
    for (std::size_t i = 0; i < words.size(); ++i) {
        const std::uint8_t k = sixteenths_[i];
        if (k == 0) {
            words[i] = 0;
            continue;
        }
        if (k == 16) {
            words[i] = ~std::uint64_t{0};
            continue;
        }
        // Horner over the 4 weight bits (LSB first): P(acc) ends at k/16.
        std::uint64_t acc = 0;
        for (int bit = 0; bit < 4; ++bit) {
            const std::uint64_t r = rng_.next();
            acc = ((k >> bit) & 1) ? (acc | r) : (acc & r);
        }
        words[i] = acc;
    }
}

void LfsrPatternSource::next_block(std::span<std::uint64_t> words) {
    for (auto& w : words) w = 0;
    for (unsigned j = 0; j < 64; ++j) {
        const std::uint64_t state = lfsr_.step();
        for (std::size_t i = 0; i < words.size(); ++i) {
            const unsigned tap = static_cast<unsigned>(i) % width_;
            words[i] |= ((state >> tap) & 1u) << j;
        }
    }
}

void CounterPatternSource::next_block(std::span<std::uint64_t> words) {
    for (auto& w : words) w = 0;
    for (unsigned j = 0; j < 64; ++j) {
        const std::uint64_t pattern = next_++;
        for (std::size_t i = 0; i < words.size(); ++i) {
            if (i < 64) words[i] |= ((pattern >> i) & 1u) << j;
        }
    }
}

}  // namespace tpi::sim
