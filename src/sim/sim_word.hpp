#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "sim/pattern.hpp"

// Wide simulation words: the pattern-parallel payload of the logic and
// fault simulators, templated so one engine serves 64 (scalar
// std::uint64_t), 128, 256 and 512 patterns per block.
//
// Layout: SimWord<N> is N little-endian 64-bit lanes. Lane l, bit j
// carries pattern 64*l + j of the block, so a wide word is exactly N
// consecutive scalar blocks stacked side by side — the property the
// differential tests (tests/test_simd_sim.cpp) rely on and DESIGN.md
// §14 documents.
//
// The bitwise operators route through SimdOps<N>, whose portable lane
// loop is specialised with SSE2 / AVX2 / AVX-512 intrinsics when the
// build targets those ISAs (and TPIDP_NO_SIMD is not defined — the
// forced-portable CI leg). The intrinsic and portable paths compute the
// same bits; only throughput differs.

#if !defined(TPIDP_NO_SIMD) && defined(__SSE2__)
#define TPIDP_SIMD_SSE2 1
#endif
#if !defined(TPIDP_NO_SIMD) && defined(__AVX2__)
#define TPIDP_SIMD_AVX2 1
#endif
#if !defined(TPIDP_NO_SIMD) && defined(__AVX512F__)
#define TPIDP_SIMD_AVX512 1
#endif
#if defined(TPIDP_SIMD_SSE2) || defined(TPIDP_SIMD_AVX2) || \
    defined(TPIDP_SIMD_AVX512)
#include <immintrin.h>
#endif

namespace tpi::sim {

/// Lane-wise bitwise kernels on arrays of 64-bit lanes. The generic
/// template is the portable fallback; specialisations below swap in
/// intrinsics for the lane counts the build's ISA covers. Loads and
/// stores are unaligned, so SimWord needs no special alignment and can
/// live in plain std::vector storage.
template <unsigned Lanes>
struct SimdOps {
    static void and_(std::uint64_t* r, const std::uint64_t* a,
                     const std::uint64_t* b) {
        for (unsigned l = 0; l < Lanes; ++l) r[l] = a[l] & b[l];
    }
    static void or_(std::uint64_t* r, const std::uint64_t* a,
                    const std::uint64_t* b) {
        for (unsigned l = 0; l < Lanes; ++l) r[l] = a[l] | b[l];
    }
    static void xor_(std::uint64_t* r, const std::uint64_t* a,
                     const std::uint64_t* b) {
        for (unsigned l = 0; l < Lanes; ++l) r[l] = a[l] ^ b[l];
    }
    static void not_(std::uint64_t* r, const std::uint64_t* a) {
        for (unsigned l = 0; l < Lanes; ++l) r[l] = ~a[l];
    }
};

#ifdef TPIDP_SIMD_SSE2
template <>
struct SimdOps<2> {
    static __m128i load(const std::uint64_t* p) {
        return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    }
    static void store(std::uint64_t* p, __m128i v) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
    }
    static void and_(std::uint64_t* r, const std::uint64_t* a,
                     const std::uint64_t* b) {
        store(r, _mm_and_si128(load(a), load(b)));
    }
    static void or_(std::uint64_t* r, const std::uint64_t* a,
                    const std::uint64_t* b) {
        store(r, _mm_or_si128(load(a), load(b)));
    }
    static void xor_(std::uint64_t* r, const std::uint64_t* a,
                     const std::uint64_t* b) {
        store(r, _mm_xor_si128(load(a), load(b)));
    }
    static void not_(std::uint64_t* r, const std::uint64_t* a) {
        store(r, _mm_xor_si128(load(a), _mm_set1_epi64x(-1)));
    }
};
#endif

#ifdef TPIDP_SIMD_AVX2
template <>
struct SimdOps<4> {
    static __m256i load(const std::uint64_t* p) {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    }
    static void store(std::uint64_t* p, __m256i v) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }
    static void and_(std::uint64_t* r, const std::uint64_t* a,
                     const std::uint64_t* b) {
        store(r, _mm256_and_si256(load(a), load(b)));
    }
    static void or_(std::uint64_t* r, const std::uint64_t* a,
                    const std::uint64_t* b) {
        store(r, _mm256_or_si256(load(a), load(b)));
    }
    static void xor_(std::uint64_t* r, const std::uint64_t* a,
                     const std::uint64_t* b) {
        store(r, _mm256_xor_si256(load(a), load(b)));
    }
    static void not_(std::uint64_t* r, const std::uint64_t* a) {
        store(r, _mm256_xor_si256(load(a), _mm256_set1_epi64x(-1)));
    }
};
#endif

#ifdef TPIDP_SIMD_AVX512
template <>
struct SimdOps<8> {
    static __m512i load(const std::uint64_t* p) {
        return _mm512_loadu_si512(p);
    }
    static void store(std::uint64_t* p, __m512i v) {
        _mm512_storeu_si512(p, v);
    }
    static void and_(std::uint64_t* r, const std::uint64_t* a,
                     const std::uint64_t* b) {
        store(r, _mm512_and_si512(load(a), load(b)));
    }
    static void or_(std::uint64_t* r, const std::uint64_t* a,
                    const std::uint64_t* b) {
        store(r, _mm512_or_si512(load(a), load(b)));
    }
    static void xor_(std::uint64_t* r, const std::uint64_t* a,
                     const std::uint64_t* b) {
        store(r, _mm512_xor_si512(load(a), load(b)));
    }
    static void not_(std::uint64_t* r, const std::uint64_t* a) {
        store(r, _mm512_xor_si512(load(a), _mm512_set1_epi64(-1)));
    }
};
#endif

/// A simulation word of Lanes*64 patterns. Value-semantic, no required
/// alignment; all four bitwise operators plus their compound forms, so
/// generic simulator code written against std::uint64_t compiles
/// unchanged against SimWord.
template <unsigned Lanes>
struct SimWord {
    static_assert(Lanes == 2 || Lanes == 4 || Lanes == 8,
                  "SimWord lane counts are 2 (128b), 4 (256b), 8 (512b)");

    std::uint64_t lane[Lanes];

    friend SimWord operator&(const SimWord& a, const SimWord& b) {
        SimWord r;
        SimdOps<Lanes>::and_(r.lane, a.lane, b.lane);
        return r;
    }
    friend SimWord operator|(const SimWord& a, const SimWord& b) {
        SimWord r;
        SimdOps<Lanes>::or_(r.lane, a.lane, b.lane);
        return r;
    }
    friend SimWord operator^(const SimWord& a, const SimWord& b) {
        SimWord r;
        SimdOps<Lanes>::xor_(r.lane, a.lane, b.lane);
        return r;
    }
    friend SimWord operator~(const SimWord& a) {
        SimWord r;
        SimdOps<Lanes>::not_(r.lane, a.lane);
        return r;
    }
    SimWord& operator&=(const SimWord& o) {
        SimdOps<Lanes>::and_(lane, lane, o.lane);
        return *this;
    }
    SimWord& operator|=(const SimWord& o) {
        SimdOps<Lanes>::or_(lane, lane, o.lane);
        return *this;
    }
    SimWord& operator^=(const SimWord& o) {
        SimdOps<Lanes>::xor_(lane, lane, o.lane);
        return *this;
    }
    friend bool operator==(const SimWord& a, const SimWord& b) {
        for (unsigned l = 0; l < Lanes; ++l)
            if (a.lane[l] != b.lane[l]) return false;
        return true;
    }
};

/// Uniform word interface for the simulators: construction, tests and
/// per-lane access for any word type. The std::uint64_t specialisation
/// makes the scalar 64-bit path just another instantiation of the same
/// generic engine — there is no separate scalar code path to drift.
template <class Word>
struct WordTraits;

template <>
struct WordTraits<std::uint64_t> {
    static constexpr unsigned kLanes = 1;
    static constexpr unsigned kBits = 64;
    static std::uint64_t zero() { return 0; }
    static std::uint64_t ones() { return ~std::uint64_t{0}; }
    static std::uint64_t splat(std::uint64_t v) { return v; }
    static bool any(std::uint64_t w) { return w != 0; }
    static unsigned popcount(std::uint64_t w) {
        return static_cast<unsigned>(std::popcount(w));
    }
    /// Index of the lowest set bit (= lowest detecting pattern).
    /// Precondition: any(w).
    static unsigned first_bit(std::uint64_t w) {
        return static_cast<unsigned>(std::countr_zero(w));
    }
    static std::uint64_t lane(std::uint64_t w, unsigned) { return w; }
    static void set_lane(std::uint64_t& w, unsigned, std::uint64_t v) {
        w = v;
    }
};

template <unsigned Lanes>
struct WordTraits<SimWord<Lanes>> {
    static constexpr unsigned kLanes = Lanes;
    static constexpr unsigned kBits = Lanes * 64;
    static SimWord<Lanes> zero() {
        SimWord<Lanes> w;
        for (unsigned l = 0; l < Lanes; ++l) w.lane[l] = 0;
        return w;
    }
    static SimWord<Lanes> ones() {
        SimWord<Lanes> w;
        for (unsigned l = 0; l < Lanes; ++l) w.lane[l] = ~std::uint64_t{0};
        return w;
    }
    static SimWord<Lanes> splat(std::uint64_t v) {
        SimWord<Lanes> w;
        for (unsigned l = 0; l < Lanes; ++l) w.lane[l] = v;
        return w;
    }
    static bool any(const SimWord<Lanes>& w) {
        std::uint64_t acc = 0;
        for (unsigned l = 0; l < Lanes; ++l) acc |= w.lane[l];
        return acc != 0;
    }
    static unsigned popcount(const SimWord<Lanes>& w) {
        unsigned total = 0;
        for (unsigned l = 0; l < Lanes; ++l)
            total += static_cast<unsigned>(std::popcount(w.lane[l]));
        return total;
    }
    static unsigned first_bit(const SimWord<Lanes>& w) {
        for (unsigned l = 0; l < Lanes; ++l)
            if (w.lane[l] != 0)
                return l * 64 +
                       static_cast<unsigned>(std::countr_zero(w.lane[l]));
        return kBits;  // unreachable under the any() precondition
    }
    static std::uint64_t lane(const SimWord<Lanes>& w, unsigned l) {
        return w.lane[l];
    }
    static void set_lane(SimWord<Lanes>& w, unsigned l, std::uint64_t v) {
        w.lane[l] = v;
    }
};

/// All-ones in the first `lanes_valid` lanes, zero above. A partial
/// final wide block zero-fills its unused lanes, and those zero lanes
/// are otherwise indistinguishable from real all-zero stimulus — every
/// detect word and popcount must be masked with this before it is
/// believed.
template <class Word>
Word word_valid_mask(unsigned lanes_valid) {
    Word mask = WordTraits<Word>::zero();
    for (unsigned l = 0; l < lanes_valid && l < WordTraits<Word>::kLanes;
         ++l)
        WordTraits<Word>::set_lane(mask, l, ~std::uint64_t{0});
    return mask;
}

/// Word-packing shim over the 64-bit PatternSource front end: fills one
/// wide block by drawing `lanes_valid` consecutive scalar blocks and
/// stacking block l into lane l of every input word. Pattern 64*l + j of
/// the wide block is therefore pattern j of the l-th drawn scalar block
/// — the source sequence and the global pattern numbering are identical
/// at every width. Unused lanes are zero-filled (see word_valid_mask).
/// `scratch` must hold one std::uint64_t per input word.
template <class Word>
void next_wide_block(PatternSource& source, std::span<Word> words,
                     std::span<std::uint64_t> scratch,
                     unsigned lanes_valid) {
    for (Word& w : words) w = WordTraits<Word>::zero();
    for (unsigned l = 0; l < lanes_valid; ++l) {
        source.next_block(scratch);
        for (std::size_t i = 0; i < words.size(); ++i)
            WordTraits<Word>::set_lane(words[i], l, scratch[i]);
    }
}

}  // namespace tpi::sim
