#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/pattern.hpp"
#include "sim/sim_word.hpp"
#include "util/error.hpp"

namespace tpi::sim {

/// Bit-parallel levelised logic simulator, templated over the
/// simulation word (std::uint64_t for the classic 64-way block,
/// SimWord<2/4/8> for 128/256/512 patterns per block — see
/// sim_word.hpp and DESIGN.md §14).
///
/// One call to simulate_block evaluates the whole circuit for
/// WordTraits<Word>::kBits patterns simultaneously, one word per node.
/// The evaluation schedule (topological order with flattened fanin
/// lists) is compiled once at construction, so repeated blocks are
/// cheap. Bit 64*l + j of lane l is pattern slot 64*l + j of the block;
/// since each lane is computed independently, a wide block is exactly
/// kLanes scalar blocks evaluated side by side.
template <class Word>
class LogicSimulatorT {
public:
    explicit LogicSimulatorT(const netlist::Circuit& circuit)
        : circuit_(circuit), csr_(circuit.topology()),
          value_(circuit.node_count(), WordTraits<Word>::zero()) {
        ops_.reserve(circuit.gate_count());
        for (netlist::NodeId v : csr_.topo) {
            const netlist::GateType t = csr_.type[v.v];
            if (t == netlist::GateType::Input) continue;
            if (t == netlist::GateType::Const0 ||
                t == netlist::GateType::Const1) {
                value_[v.v] = (t == netlist::GateType::Const1)
                                  ? WordTraits<Word>::ones()
                                  : WordTraits<Word>::zero();
                continue;
            }
            // The schedule references the circuit's own fanin CSR — no
            // private copy of the adjacency.
            Op op;
            op.type = t;
            op.node = v.v;
            op.fanin_begin = csr_.fanin_offset[v.v];
            op.fanin_count =
                csr_.fanin_offset[v.v + 1] - csr_.fanin_offset[v.v];
            ops_.push_back(op);
        }
    }

    /// Simulate the next pattern block. `pi_words` must contain one
    /// word per primary input, in inputs() order.
    void simulate_block(std::span<const Word> pi_words) {
        const auto& inputs = circuit_.inputs();
        require(pi_words.size() == inputs.size(),
                "simulate_block: one word per primary input required");
        for (std::size_t i = 0; i < inputs.size(); ++i)
            value_[inputs[i].v] = pi_words[i];

        using GateType = netlist::GateType;
        for (const Op& op : ops_) {
            const netlist::NodeId* f = csr_.fanin.data() + op.fanin_begin;
            Word acc;
            switch (op.type) {
                case GateType::Buf:
                    acc = value_[f[0].v];
                    break;
                case GateType::Not:
                    acc = ~value_[f[0].v];
                    break;
                case GateType::And:
                case GateType::Nand:
                    acc = value_[f[0].v];
                    for (std::uint32_t k = 1; k < op.fanin_count; ++k)
                        acc &= value_[f[k].v];
                    if (op.type == GateType::Nand) acc = ~acc;
                    break;
                case GateType::Or:
                case GateType::Nor:
                    acc = value_[f[0].v];
                    for (std::uint32_t k = 1; k < op.fanin_count; ++k)
                        acc |= value_[f[k].v];
                    if (op.type == GateType::Nor) acc = ~acc;
                    break;
                case GateType::Xor:
                case GateType::Xnor:
                    acc = value_[f[0].v];
                    for (std::uint32_t k = 1; k < op.fanin_count; ++k)
                        acc ^= value_[f[k].v];
                    if (op.type == GateType::Xnor) acc = ~acc;
                    break;
                default:
                    throw Error(
                        "LogicSimulator: unexpected source in schedule");
            }
            value_[op.node] = acc;
        }
    }

    /// Word of the last simulated block at `node` (bit j = pattern j).
    Word value(netlist::NodeId node) const { return value_[node.v]; }

    /// All node words of the last simulated block, indexed by NodeId.
    std::span<const Word> values() const { return value_; }

    const netlist::Circuit& circuit() const { return circuit_; }

private:
    const netlist::Circuit& circuit_;
    netlist::CsrView csr_;
    std::vector<Word> value_;

    // Compiled schedule: gates in topological order; fanins are read
    // straight from the circuit's shared CSR (csr_.fanin).
    struct Op {
        netlist::GateType type;
        std::uint32_t node;
        std::uint32_t fanin_begin;
        std::uint32_t fanin_count;
    };
    std::vector<Op> ops_;
};

/// The classic 64-way simulator: every pre-SIMD call site compiles
/// unchanged against this alias.
using LogicSimulator = LogicSimulatorT<std::uint64_t>;

/// Estimate per-node signal probabilities (fraction of patterns with
/// value 1) by simulating `num_patterns` stimuli from `source`.
/// `num_patterns` is rounded up to a multiple of 64 (the denominator is
/// the rounded count); 0 patterns yields all-zero probabilities.
/// `sim_width` selects the simulation word (64/128/256/512, or 0 =
/// widest the host supports); the per-node popcounts are integer sums
/// over the same pattern sequence at every width, so the resulting
/// probabilities are byte-identical regardless of width.
std::vector<double> estimate_signal_probabilities(
    const netlist::Circuit& circuit, PatternSource& source,
    std::size_t num_patterns, unsigned sim_width = 64);

}  // namespace tpi::sim
