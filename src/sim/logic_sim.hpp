#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/pattern.hpp"

namespace tpi::sim {

/// 64-way bit-parallel levelised logic simulator.
///
/// One call to simulate_block evaluates the whole circuit for 64 patterns
/// simultaneously, one machine word per node. The evaluation schedule
/// (topological order with flattened fanin lists) is compiled once at
/// construction, so repeated blocks are cheap.
class LogicSimulator {
public:
    explicit LogicSimulator(const netlist::Circuit& circuit);

    /// Simulate the next 64-pattern block. `pi_words` must contain one
    /// word per primary input, in inputs() order.
    void simulate_block(std::span<const std::uint64_t> pi_words);

    /// Word of the last simulated block at `node` (bit j = pattern j).
    std::uint64_t value(netlist::NodeId node) const { return value_[node.v]; }

    /// All node words of the last simulated block, indexed by NodeId.
    std::span<const std::uint64_t> values() const { return value_; }

    const netlist::Circuit& circuit() const { return circuit_; }

private:
    const netlist::Circuit& circuit_;
    std::vector<std::uint64_t> value_;

    // Compiled schedule: gates in topological order with CSR fanins.
    struct Op {
        netlist::GateType type;
        std::uint32_t node;
        std::uint32_t fanin_begin;
        std::uint32_t fanin_count;
    };
    std::vector<Op> ops_;
    std::vector<std::uint32_t> fanin_pool_;
};

/// Estimate per-node signal probabilities (fraction of patterns with
/// value 1) by simulating `num_patterns` stimuli from `source`.
/// `num_patterns` is rounded up to a multiple of 64.
std::vector<double> estimate_signal_probabilities(
    const netlist::Circuit& circuit, PatternSource& source,
    std::size_t num_patterns);

}  // namespace tpi::sim
