#include "obs/obs.hpp"

namespace tpi::obs {

namespace {

/// Per-thread nesting depth for spans opened on this thread. Spans are
/// strictly scoped (RAII), so a thread's open spans form a stack.
thread_local std::uint32_t t_depth = 0;

std::uint32_t next_thread_id() {
    static std::atomic<std::uint32_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string_view counter_name(Counter counter) {
    switch (counter) {
        case Counter::SimBlocks: return "sim_blocks";
        case Counter::SimPatterns: return "sim_patterns";
        case Counter::FaultsSimulated: return "faults_simulated";
        case Counter::DpRounds: return "dp_rounds";
        case Counter::DpRegionsBuilt: return "dp_regions_built";
        case Counter::DpRegionsReused: return "dp_regions_reused";
        case Counter::DpCellsFilled: return "dp_cells_filled";
        case Counter::PlanPoints: return "plan_points";
        case Counter::CandidatesConsidered: return "candidates_considered";
        case Counter::CandidatesPruned: return "candidates_pruned";
        case Counter::GreedyEvaluations: return "greedy_evaluations";
        case Counter::EngineEvaluations: return "engine_evaluations";
        case Counter::EngineNodesTouched: return "engine_nodes_touched";
        case Counter::EngineRollbacks: return "engine_rollbacks";
        case Counter::EngineCommits: return "engine_commits";
        case Counter::LintRulesRun: return "lint_rules_run";
        case Counter::LintFindings: return "lint_findings";
        case Counter::AtpgFaults: return "atpg_faults";
        case Counter::AtpgBacktracks: return "atpg_backtracks";
        case Counter::SimWidth: return "sim_width";
        case Counter::FaultsDropped: return "faults_dropped";
        case Counter::FfrBatches: return "ffr_batches";
        case Counter::ImplicationsLearned: return "implications_learned";
        case Counter::FaultsProvedUntestable:
            return "faults_proved_untestable";
        case Counter::CandidatesPrunedAnalysis:
            return "candidates_pruned_analysis";
        case Counter::ScoreBlocks: return "score_blocks";
        case Counter::LanesActive: return "lanes_active";
        case Counter::FrontierNodesShared:
            return "frontier_nodes_shared";
        case Counter::DeadlineExpiries: return "deadline_expiries";
        case Counter::PoolBatches: return "pool_batches";
        case Counter::PoolTasks: return "pool_tasks";
        case Counter::PoolSteals: return "pool_steals";
        case Counter::kCount: break;
    }
    return "?";
}

bool counter_deterministic(Counter counter) {
    return static_cast<std::size_t>(counter) < kFirstDiagCounter;
}

std::uint32_t Sink::thread_id() {
    thread_local const std::uint32_t id = next_thread_id();
    return id;
}

Span::Span(Sink* sink, std::string_view name, bool detail) : sink_(sink) {
    if (sink_ == nullptr) return;
    record_.name = name;
    record_.seq = sink_->next_seq();
    record_.tid = Sink::thread_id();
    record_.depth = t_depth++;
    record_.detail = detail;
    record_.start_us = sink_->now_us();
}

void Span::close() {
    if (sink_ == nullptr) return;
    record_.dur_us = sink_->now_us() - record_.start_us;
    --t_depth;
    sink_->record(std::move(record_));
    sink_ = nullptr;
}

Span::~Span() { close(); }

}  // namespace tpi::obs
