#include "obs/report.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <ostream>
#include <sstream>
#include <thread>

namespace tpi::obs {

namespace {

void write_json_string(std::ostream& os, std::string_view text) {
    os << '"';
    for (const char c : text) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

std::string quoted(std::string_view text) {
    std::ostringstream os;
    write_json_string(os, text);
    return os.str();
}

}  // namespace

std::string fmt_double(double value) {
    char buffer[64];
    const auto [ptr, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    if (ec != std::errc{}) return "0";
    return std::string(buffer, ptr);
}

void RunReport::add_str(std::string_view key, std::string_view value) {
    outcome.emplace_back(std::string(key), quoted(value));
}

void RunReport::add_num(std::string_view key, double value) {
    outcome.emplace_back(std::string(key), fmt_double(value));
}

void RunReport::add_num(std::string_view key, std::uint64_t value) {
    outcome.emplace_back(std::string(key), std::to_string(value));
}

void RunReport::add_num(std::string_view key, int value) {
    outcome.emplace_back(std::string(key), std::to_string(value));
}

void RunReport::add_bool(std::string_view key, bool value) {
    outcome.emplace_back(std::string(key), value ? "true" : "false");
}

std::vector<SpanAggregate> aggregate_spans(const Sink& sink) {
    std::vector<SpanAggregate> rows;
    for (const SpanRecord& span : sink.spans()) {
        if (span.detail) continue;
        auto it = std::find_if(rows.begin(), rows.end(),
                               [&](const SpanAggregate& row) {
                                   return row.name == span.name;
                               });
        if (it == rows.end()) {
            rows.push_back({span.name, 0, 0.0, 0});
            it = rows.end() - 1;
        }
        ++it->count;
        it->total_ms += span.dur_us / 1e3;
        it->max_depth = std::max(it->max_depth, span.depth);
    }
    std::sort(rows.begin(), rows.end(),
              [](const SpanAggregate& a, const SpanAggregate& b) {
                  return a.name < b.name;
              });
    return rows;
}

void write_metrics_json(std::ostream& os, const RunReport& report,
                        const Sink* sink) {
    os << "{\n  \"schema\": \"tpidp-run-report\",\n  \"version\": "
       << RunReport::kVersion << ",\n  \"command\": ";
    write_json_string(os, report.command);
    os << ",\n  \"circuit\": ";
    write_json_string(os, report.circuit);
    os << ",\n  \"threads\": " << report.threads << ",\n  \"truncated\": "
       << (report.truncated ? "true" : "false")
       << ",\n  \"exit_code\": " << report.exit_code
       << ",\n  \"wall_ms\": " << fmt_double(report.wall_ms)
       << ",\n  \"outcome\": {";
    for (std::size_t i = 0; i < report.outcome.size(); ++i) {
        os << (i > 0 ? "," : "") << "\n    ";
        write_json_string(os, report.outcome[i].first);
        os << ": " << report.outcome[i].second;
    }
    os << (report.outcome.empty() ? "" : "\n  ") << "},\n  \"counters\": {";
    for (std::size_t c = 0; c < kFirstDiagCounter; ++c) {
        const auto counter = static_cast<Counter>(c);
        os << (c > 0 ? "," : "") << "\n    ";
        write_json_string(os, counter_name(counter));
        os << ": " << (sink != nullptr ? sink->value(counter) : 0);
    }
    os << "\n  },\n  \"diag\": {";
    for (std::size_t c = kFirstDiagCounter; c < kCounterCount; ++c) {
        const auto counter = static_cast<Counter>(c);
        os << (c > kFirstDiagCounter ? "," : "") << "\n    ";
        write_json_string(os, counter_name(counter));
        os << ": " << (sink != nullptr ? sink->value(counter) : 0);
    }
    os << ",\n    \"host_threads\": "
       << std::max(1u, std::thread::hardware_concurrency())
       << "\n  },\n  \"spans\": [";
    const std::vector<SpanAggregate> rows =
        sink != nullptr ? aggregate_spans(*sink)
                        : std::vector<SpanAggregate>{};
    for (std::size_t i = 0; i < rows.size(); ++i) {
        os << (i > 0 ? "," : "") << "\n    {\"name\": ";
        write_json_string(os, rows[i].name);
        os << ", \"count\": " << rows[i].count
           << ", \"max_depth\": " << rows[i].max_depth
           << ", \"total_ms\": " << fmt_double(rows[i].total_ms) << "}";
    }
    os << (rows.empty() ? "" : "\n  ") << "]\n}\n";
}

std::string to_metrics_json(const RunReport& report, const Sink* sink) {
    std::ostringstream os;
    write_metrics_json(os, report, sink);
    return os.str();
}

void write_trace_json(std::ostream& os, const Sink& sink) {
    std::vector<SpanRecord> spans = sink.spans();
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  return a.seq < b.seq;
              });
    os << "[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord& span = spans[i];
        os << (i > 0 ? "," : "") << "\n{\"name\": ";
        write_json_string(os, span.name);
        os << ", \"ph\": \"X\", \"pid\": 1, \"tid\": " << span.tid
           << ", \"ts\": " << fmt_double(span.start_us)
           << ", \"dur\": " << fmt_double(span.dur_us)
           << ", \"args\": {\"seq\": " << span.seq
           << ", \"depth\": " << span.depth << ", \"detail\": "
           << (span.detail ? "true" : "false") << "}}";
    }
    os << (spans.empty() ? "" : "\n") << "]\n";
}

std::string to_trace_json(const Sink& sink) {
    std::ostringstream os;
    write_trace_json(os, sink);
    return os.str();
}

std::string normalized_for_diff(std::string_view metrics_json) {
    // The volatile keys: wall clock, per-span durations, thread counts
    // and the scheduling-diagnostic counters. Each "key": <number> has
    // its number blanked to 0; everything else is left untouched.
    std::vector<std::string> keys = {"wall_ms", "total_ms", "threads",
                                     "host_threads"};
    for (std::size_t c = kFirstDiagCounter; c < kCounterCount; ++c)
        keys.emplace_back(counter_name(static_cast<Counter>(c)));

    std::string out(metrics_json);
    for (const std::string& key : keys) {
        const std::string needle = "\"" + key + "\": ";
        std::size_t pos = 0;
        while ((pos = out.find(needle, pos)) != std::string::npos) {
            const std::size_t value_begin = pos + needle.size();
            std::size_t value_end = value_begin;
            while (value_end < out.size() &&
                   (std::isdigit(static_cast<unsigned char>(
                        out[value_end])) != 0 ||
                    out[value_end] == '-' || out[value_end] == '+' ||
                    out[value_end] == '.' || out[value_end] == 'e' ||
                    out[value_end] == 'E'))
                ++value_end;
            if (value_end > value_begin)
                out.replace(value_begin, value_end - value_begin, "0");
            pos = value_begin + 1;
        }
    }
    return out;
}

}  // namespace tpi::obs
