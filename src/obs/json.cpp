#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace tpi::obs::json {

const Value* Value::find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : object)
        if (k == key) return &v;
    return nullptr;
}

namespace {

/// Recursive-descent parser over a bounded view. Depth is capped so a
/// fuzzer-supplied "[[[[..." cannot overflow the stack.
class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool run(Value& out, std::string& error) {
        if (!value(out, 0)) {
            error = error_ + " at offset " + std::to_string(pos_);
            return false;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            error = "trailing garbage at offset " + std::to_string(pos_);
            return false;
        }
        return true;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool fail(const char* message) {
        error_ = message;
        return false;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool string(std::string& out) {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character");
            if (c == '\\') {
                if (pos_ >= text_.size()) return fail("bad escape");
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': c = '"'; break;
                    case '\\': c = '\\'; break;
                    case '/': c = '/'; break;
                    case 'b': c = '\b'; break;
                    case 'f': c = '\f'; break;
                    case 'n': c = '\n'; break;
                    case 'r': c = '\r'; break;
                    case 't': c = '\t'; break;
                    case 'u': {
                        if (pos_ + 4 > text_.size())
                            return fail("bad \\u escape");
                        for (int i = 0; i < 4; ++i)
                            if (std::isxdigit(static_cast<unsigned char>(
                                    text_[pos_ + i])) == 0)
                                return fail("bad \\u escape");
                        // Pass through undecoded; good enough for
                        // validation and for the ASCII this repo emits.
                        out += "\\u";
                        out.append(text_.substr(pos_, 4));
                        pos_ += 4;
                        continue;
                    }
                    default: return fail("bad escape");
                }
            }
            out += c;
        }
        if (pos_ >= text_.size()) return fail("unterminated string");
        ++pos_;  // closing quote
        return true;
    }

    bool number(double& out) {
        const std::size_t begin = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        // JSON forbids leading zeros ("01") and a bare '+' sign; the
        // permissive scan below plus from_chars would accept both.
        if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) != 0)
            return fail("leading zero");
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const auto [ptr, ec] = std::from_chars(
            text_.data() + begin, text_.data() + pos_, out);
        if (ec != std::errc{} || ptr != text_.data() + pos_ ||
            begin == pos_)
            return fail("invalid number");
        // from_chars already rejects overflow ("1e999") and the scan
        // never admits "inf"/"nan" spellings, but JSON has no
        // representation for either value, so guard the invariant
        // directly rather than lean on two accidents of the lexer.
        if (!std::isfinite(out)) return fail("non-finite number");
        return true;
    }

    bool value(Value& out, int depth) {
        // depth is the count of enclosing containers, so the root sits
        // at 0 and the cap bites at exactly kMaxDepth nested levels.
        if (depth >= kMaxDepth) return fail("nesting too deep");
        skip_ws();
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = Value::Kind::Object;
            skip_ws();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skip_ws();
                std::string key;
                if (!string(key)) return false;
                skip_ws();
                if (pos_ >= text_.size() || text_[pos_++] != ':')
                    return fail("expected ':'");
                Value member;
                if (!value(member, depth + 1)) return false;
                out.object.emplace_back(std::move(key), std::move(member));
                skip_ws();
                if (pos_ >= text_.size()) return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = Value::Kind::Array;
            skip_ws();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                Value element;
                if (!value(element, depth + 1)) return false;
                out.array.push_back(std::move(element));
                skip_ws();
                if (pos_ >= text_.size()) return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = Value::Kind::String;
            return string(out.string);
        }
        if (c == 't') {
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = Value::Kind::Null;
            return literal("null");
        }
        out.kind = Value::Kind::Number;
        return number(out.number);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_ = "parse error";
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string& error) {
    out = Value{};
    return Parser(text).run(out, error);
}

}  // namespace tpi::obs::json
