#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace tpi::obs {

/// Machine-readable record of one CLI run (or one embedded engine run):
/// identity, outcome, the counter totals and the aggregated span table.
/// Serialised by write_metrics_json under a stable, versioned schema
/// ("tpidp-run-report", version 1); consumers must ignore unknown keys
/// so the schema can grow without a version bump. Removing or renaming a
/// key bumps `kVersion`.
struct RunReport {
    static constexpr int kVersion = 1;

    std::string command;   ///< CLI subcommand (plan, sim, lint, ...)
    std::string circuit;   ///< circuit name or input path
    unsigned threads = 1;  ///< requested worker threads (volatile field)
    bool truncated = false;  ///< a deadline/limit cut the run short
    int exit_code = 0;       ///< the process exit code (5 => truncated)
    double wall_ms = 0.0;    ///< end-to-end wall time (volatile field)

    /// Command-specific outcome, in insertion order. Values are
    /// pre-rendered JSON fragments; use the typed adders.
    std::vector<std::pair<std::string, std::string>> outcome;

    void add_str(std::string_view key, std::string_view value);
    void add_num(std::string_view key, double value);
    void add_num(std::string_view key, std::uint64_t value);
    void add_num(std::string_view key, int value);
    void add_bool(std::string_view key, bool value);
};

/// One row of the report's span table: every non-detail span of the same
/// name merged together.
struct SpanAggregate {
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0;  ///< volatile field
    std::uint32_t max_depth = 0;
};

/// Aggregate the sink's non-detail spans by name. Merge order is fixed:
/// rows are sorted by name (see DESIGN.md §11), so the table is
/// identical for every thread count; only total_ms (normalised away by
/// differential comparisons) carries wall-clock.
std::vector<SpanAggregate> aggregate_spans(const Sink& sink);

/// Serialise `report` (+ the counters and span table of `sink`, which
/// may be null for a run with observability off). Deterministic: field
/// order is fixed, doubles are shortest-round-trip formatted.
void write_metrics_json(std::ostream& os, const RunReport& report,
                        const Sink* sink);
std::string to_metrics_json(const RunReport& report, const Sink* sink);

/// Serialise every span (detail spans included) as a Chrome trace_event
/// JSON array — load with chrome://tracing or https://ui.perfetto.dev.
/// Events appear in global span-open order; "X" complete events carry
/// ts/dur in microseconds and the process-wide thread id.
void write_trace_json(std::ostream& os, const Sink& sink);
std::string to_trace_json(const Sink& sink);

/// Blank out the volatile fields of a metrics JSON document (wall times,
/// span durations, thread counts, diagnostic counters), leaving the
/// deterministic skeleton. Two runs of the same work differing only in
/// thread count or scheduling produce equal normalised documents; the
/// determinism tests and the golden-file runner both diff this form.
std::string normalized_for_diff(std::string_view metrics_json);

/// Shortest-round-trip decimal rendering of a double (std::to_chars),
/// so report numbers are bit-deterministic across runs.
std::string fmt_double(double value);

}  // namespace tpi::obs
