#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tpi::obs::json {

/// Hard cap on container nesting depth. The parser is recursive
/// descent, so without a cap a hostile "[[[[..." document converts
/// input bytes into stack frames; at the cap parse() fails cleanly
/// instead. Part of the parser's contract (the serve protocol and the
/// fuzzers rely on it), hence public.
inline constexpr int kMaxDepth = 64;

/// Minimal strict JSON value, just rich enough to validate and inspect
/// the documents this repo emits (metrics reports, traces, lint
/// reports). Objects preserve key order. Not a general-purpose library:
/// no \uXXXX decoding beyond pass-through, numbers held as double.
struct Value {
    enum class Kind : unsigned char { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool is_null() const { return kind == Kind::Null; }
    bool is_bool() const { return kind == Kind::Bool; }
    bool is_number() const { return kind == Kind::Number; }
    bool is_string() const { return kind == Kind::String; }
    bool is_array() const { return kind == Kind::Array; }
    bool is_object() const { return kind == Kind::Object; }

    /// Member lookup (first match); nullptr when absent or not an object.
    const Value* find(std::string_view key) const;
};

/// Parse a complete JSON document. Returns false (with a position-tagged
/// message in `error`) on any syntax violation or trailing garbage.
bool parse(std::string_view text, Value& out, std::string& error);

}  // namespace tpi::obs::json
