#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tpi::obs {

/// Process-wide counters recorded by the instrumented engines.
///
/// Two classes, split by what a re-run is allowed to change:
///
///  * *deterministic* counters measure work whose total is a pure
///    function of (circuit, options, seed) — identical for every thread
///    count and on every machine. The determinism tests and the golden
///    metrics files assert on them byte-for-byte.
///  * *diagnostic* counters measure scheduling accidents (work-stealing
///    steals, pool batches, wall-clock deadline expiries). They are
///    emitted under the report's "diag" key and normalised away by every
///    differential comparison.
enum class Counter : std::uint8_t {
    // Deterministic.
    SimBlocks,             ///< 64-pattern blocks simulated
    SimPatterns,           ///< stimulus patterns applied
    FaultsSimulated,       ///< single-fault propagations run
    DpRounds,              ///< DP planner allocate/recompute rounds
    DpRegionsBuilt,        ///< per-FFR DP tables built
    DpRegionsReused,       ///< per-FFR DP tables served from the
                           ///< cross-round cache instead of rebuilt
    DpCellsFilled,         ///< DP table cells (tree DPs + outer knapsack)
    PlanPoints,            ///< test points committed by a planner
    CandidatesConsidered,  ///< candidate nets admitted to planning
    CandidatesPruned,      ///< candidate nets dropped by lint pruning
    GreedyEvaluations,     ///< exact plan evaluations in the greedy loop
    EngineEvaluations,     ///< incremental-engine candidate scorings
    EngineNodesTouched,    ///< nodes recomputed by engine deltas
    EngineRollbacks,       ///< engine undo-frame rollbacks
    EngineCommits,         ///< engine deltas committed into the base
    LintRulesRun,          ///< lint rules executed to completion
    LintFindings,          ///< lint findings emitted
    AtpgFaults,            ///< faults attempted by PODEM
    AtpgBacktracks,        ///< PODEM backtracks summed over all faults
    SimWidth,              ///< widest pattern width used, in bits
                           ///< (high-water mark via note_max, not a sum)
    FaultsDropped,         ///< faults removed from the active list by
                           ///< fault dropping
    FfrBatches,            ///< per-FFR stem observability masks computed
                           ///< by batched propagation
    ImplicationsLearned,   ///< literals stored in the static implication
                           ///< database
    FaultsProvedUntestable,  ///< faults proved untestable by conflicting
                             ///< mandatory assignments
    CandidatesPrunedAnalysis,  ///< candidates dropped by analysis pruning
                               ///< (provably zero-gain observe sites)
    ScoreBlocks,           ///< lane-parallel candidate blocks swept
    LanesActive,           ///< candidates carried by those blocks (the
                           ///< occupied lanes; blocks * K minus padding)
    FrontierNodesShared,   ///< per-candidate frontier visits amortised
                           ///< away by the union sweep: the sum over
                           ///< visited nodes of (scheduling lanes - 1)
    // Diagnostic (thread- or wall-clock-dependent).
    DeadlineExpiries,      ///< engines stopped by an expired deadline
    PoolBatches,           ///< parallel for_each batches dispatched
    PoolTasks,             ///< indices executed by pool batches
    PoolSteals,            ///< work-stealing range steals
    kCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kFirstDiagCounter =
    static_cast<std::size_t>(Counter::DeadlineExpiries);

/// Stable snake_case name of a counter (the report's JSON key).
std::string_view counter_name(Counter counter);

/// True for the counters whose totals are independent of thread count
/// and wall clock.
bool counter_deterministic(Counter counter);

/// One closed span, recorded by ~Span.
struct SpanRecord {
    std::string name;
    std::uint64_t seq = 0;    ///< global open order (atomic ticket)
    std::uint32_t tid = 0;    ///< process-wide sequential thread id
    std::uint32_t depth = 0;  ///< nesting depth on the opening thread
    double start_us = 0.0;    ///< offset from the sink epoch
    double dur_us = 0.0;
    bool detail = false;      ///< per-lane event: trace-only, excluded
                              ///< from the aggregated report
};

/// Collector for one run: a counter array (lock-free relaxed atomics on
/// the hot path) plus a span log (mutex-guarded; spans are opened at
/// coarse phase boundaries, so the lock is cold).
///
/// Engines take a `Sink*` and treat nullptr as "observability off"; the
/// free helpers below fold the null check into the call so a disabled
/// run costs one predicted-not-taken branch per instrumentation site and
/// allocates nothing (asserted by test_obs).
class Sink {
public:
    using Clock = std::chrono::steady_clock;

    Sink() : epoch_(Clock::now()) {}

    Sink(const Sink&) = delete;
    Sink& operator=(const Sink&) = delete;

    /// Add `n` to a counter. Thread-safe, lock-free, order-free: totals
    /// are sums, so any interleaving yields the same value.
    void add(Counter counter, std::uint64_t n = 1) noexcept {
        counters_[static_cast<std::size_t>(counter)].fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t value(Counter counter) const noexcept {
        return counters_[static_cast<std::size_t>(counter)].load(
            std::memory_order_relaxed);
    }

    /// Raise a counter to at least `n` (lock-free fetch-max). For
    /// counters that record a configuration high-water mark — e.g.
    /// SimWidth, where several runs against one sink must not sum their
    /// widths — rather than accumulated work.
    void note_max(Counter counter, std::uint64_t n) noexcept {
        auto& cell = counters_[static_cast<std::size_t>(counter)];
        std::uint64_t seen = cell.load(std::memory_order_relaxed);
        while (seen < n && !cell.compare_exchange_weak(
                               seen, n, std::memory_order_relaxed)) {
        }
    }

    /// Microseconds since the sink was constructed.
    double now_us() const {
        return std::chrono::duration<double, std::micro>(Clock::now() -
                                                         epoch_)
            .count();
    }

    /// Closed spans in close order. Call after the run has quiesced (no
    /// concurrent spans still open).
    std::vector<SpanRecord> spans() const {
        std::lock_guard lock(span_mutex_);
        return spans_;
    }

    /// Process-wide sequential id of the calling thread, assigned on
    /// first use (0 is whichever thread asked first — in practice the
    /// main thread).
    static std::uint32_t thread_id();

private:
    friend class Span;

    std::uint64_t next_seq() noexcept {
        return seq_.fetch_add(1, std::memory_order_relaxed);
    }

    void record(SpanRecord&& record) {
        std::lock_guard lock(span_mutex_);
        spans_.push_back(std::move(record));
    }

    Clock::time_point epoch_;
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::uint64_t> counters_[kCounterCount] = {};
    mutable std::mutex span_mutex_;
    std::vector<SpanRecord> spans_;
};

/// RAII tracing span. Opening stamps a global sequence ticket, the
/// calling thread's id and its current nesting depth; destruction
/// records the closed span into the sink. A null sink makes both ends
/// no-ops (no clock read, no allocation).
///
/// `detail` spans are per-lane events (one per shard/worker): they show
/// up in the Chrome trace with their thread ids but are excluded from
/// the aggregated RunReport, whose span table must be identical for
/// every thread count (see DESIGN.md §11).
class Span {
public:
    Span(Sink* sink, std::string_view name, bool detail = false);
    ~Span();

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Close early (idempotent; the destructor then does nothing).
    void close();

private:
    Sink* sink_;
    SpanRecord record_;
};

/// Null-tolerant counter add: the disabled path is a single branch.
inline void add(Sink* sink, Counter counter, std::uint64_t n = 1) noexcept {
    if (sink != nullptr) sink->add(counter, n);
}

/// Null-tolerant fetch-max (see Sink::note_max).
inline void note_max(Sink* sink, Counter counter, std::uint64_t n) noexcept {
    if (sink != nullptr) sink->note_max(counter, n);
}

}  // namespace tpi::obs
