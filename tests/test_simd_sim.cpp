// Differential test harness for the wide-word (SIMD) fault simulation
// path, fault dropping and per-FFR batched propagation.
//
// The contract under test, in three layers:
//
//  1. *Width identity.* Every simulation width (128/256/512) produces
//     results bit-identical to the scalar 64-bit oracle — detect
//     patterns, detect counts, coverage, the per-64-block coverage
//     curve, everything. The wide word is defined as consecutive scalar
//     blocks stacked into lanes, so this is an equality, not a
//     tolerance.
//  2. *Dropping invariance.* Fault dropping (drop_after = n) never
//     changes the detected/undetected partition or the first-detection
//     pattern; only detect counts beyond the drop target are allowed to
//     differ.
//  3. *Batching identity.* Per-FFR batched propagation (the stem
//     observability mask) is bitwise-equal to per-fault cone
//     propagation, at every width and thread count.
//
// The suite rides in tpidp_parallel_tests so the CI thread- and
// address-sanitizer jobs cover the wide path too.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "gen/benchmarks.hpp"
#include "gen/random_circuits.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/circuit.hpp"
#include "obs/obs.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern.hpp"
#include "sim/sim_word.hpp"
#include "sim/simd.hpp"
#include "util/deadline.hpp"

namespace {

using namespace tpi;
using netlist::Circuit;

constexpr unsigned kAllWidths[] = {64, 128, 256, 512};
constexpr unsigned kWideWidths[] = {128, 256, 512};

// ---------------------------------------------------------------------
// SimWord building blocks

TEST(SimWord, FirstBitIsLaneMajor) {
    sim::SimWord<4> w = sim::WordTraits<sim::SimWord<4>>::zero();
    using Traits = sim::WordTraits<sim::SimWord<4>>;
    EXPECT_FALSE(Traits::any(w));
    Traits::set_lane(w, 2, std::uint64_t{1} << 5);
    Traits::set_lane(w, 3, ~std::uint64_t{0});
    EXPECT_TRUE(Traits::any(w));
    EXPECT_EQ(Traits::first_bit(w), 2u * 64 + 5);
    EXPECT_EQ(Traits::popcount(w), 1u + 64);
}

TEST(SimWord, ValidMaskCoversExactlyTheValidLanes) {
    const auto mask = sim::word_valid_mask<sim::SimWord<8>>(3);
    using Traits = sim::WordTraits<sim::SimWord<8>>;
    for (unsigned l = 0; l < 8; ++l)
        EXPECT_EQ(Traits::lane(mask, l), l < 3 ? ~std::uint64_t{0} : 0)
            << "lane " << l;
    EXPECT_EQ(sim::word_valid_mask<std::uint64_t>(1), ~std::uint64_t{0});
    EXPECT_EQ(sim::word_valid_mask<std::uint64_t>(0), 0u);
}

/// The intrinsic specialisations must compute the same bits as the
/// portable lane loop they replace.
template <unsigned Lanes>
void check_operators() {
    using Word = sim::SimWord<Lanes>;
    using Traits = sim::WordTraits<Word>;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    for (int round = 0; round < 16; ++round) {
        Word a = Traits::zero(), b = Traits::zero();
        for (unsigned l = 0; l < Lanes; ++l) {
            Traits::set_lane(a, l, next());
            Traits::set_lane(b, l, next());
        }
        const Word and_w = a & b, or_w = a | b, xor_w = a ^ b,
                   not_w = ~a;
        for (unsigned l = 0; l < Lanes; ++l) {
            const std::uint64_t al = Traits::lane(a, l);
            const std::uint64_t bl = Traits::lane(b, l);
            EXPECT_EQ(Traits::lane(and_w, l), al & bl);
            EXPECT_EQ(Traits::lane(or_w, l), al | bl);
            EXPECT_EQ(Traits::lane(xor_w, l), al ^ bl);
            EXPECT_EQ(Traits::lane(not_w, l), ~al);
        }
        Word c = a;
        c &= b;
        EXPECT_EQ(c, and_w);
        c = a;
        c |= b;
        EXPECT_EQ(c, or_w);
        c = a;
        c ^= b;
        EXPECT_EQ(c, xor_w);
    }
}

TEST(SimWord, OperatorsMatchThePortableDefinition) {
    check_operators<2>();
    check_operators<4>();
    check_operators<8>();
}

TEST(SimWord, WidePackingStacksConsecutiveScalarBlocks) {
    // Lane l of the wide block must be the l-th scalar block an
    // identically-seeded 64-bit source would produce.
    constexpr std::size_t kInputs = 5;
    sim::RandomPatternSource wide_source(42);
    sim::RandomPatternSource scalar_source(42);
    std::vector<sim::SimWord<4>> words(kInputs);
    std::vector<std::uint64_t> scratch(kInputs);
    std::vector<std::uint64_t> scalar(kInputs);
    sim::next_wide_block<sim::SimWord<4>>(wide_source, words, scratch, 4);
    for (unsigned l = 0; l < 4; ++l) {
        scalar_source.next_block(scalar);
        for (std::size_t i = 0; i < kInputs; ++i)
            EXPECT_EQ(words[i].lane[l], scalar[i])
                << "input " << i << " lane " << l;
    }
    // A partial block zero-fills the unused lanes.
    sim::next_wide_block<sim::SimWord<4>>(wide_source, words, scratch, 1);
    scalar_source.next_block(scalar);
    for (std::size_t i = 0; i < kInputs; ++i) {
        EXPECT_EQ(words[i].lane[0], scalar[i]);
        for (unsigned l = 1; l < 4; ++l) EXPECT_EQ(words[i].lane[l], 0u);
    }
}

TEST(SimdDispatch, ReportedLevelsAreConsistent) {
    // detect_simd_level answers for the host, compiled_simd_level for
    // the build; preferred_sim_width is their meet and must always be a
    // supported width.
    const unsigned width = sim::preferred_sim_width();
    EXPECT_TRUE(sim::sim_width_supported(width));
    EXPECT_FALSE(sim::sim_width_supported(0));
    EXPECT_FALSE(sim::sim_width_supported(96));
    EXPECT_NE(sim::simd_level_name(sim::detect_simd_level()), "");
    EXPECT_NE(sim::simd_level_name(sim::compiled_simd_level()), "");
}

// ---------------------------------------------------------------------
// Logic simulation: a wide block is exactly kLanes scalar blocks

template <unsigned Lanes>
void check_logic_sim_width(const Circuit& circuit) {
    using Word = sim::SimWord<Lanes>;
    sim::LogicSimulatorT<Word> wide(circuit);
    sim::LogicSimulator scalar(circuit);
    sim::RandomPatternSource wide_source(7);
    sim::RandomPatternSource scalar_source(7);
    std::vector<Word> wide_pi(circuit.input_count());
    std::vector<std::uint64_t> scratch(circuit.input_count());
    std::vector<std::uint64_t> scalar_pi(circuit.input_count());
    for (int block = 0; block < 3; ++block) {
        sim::next_wide_block<Word>(wide_source, wide_pi, scratch, Lanes);
        wide.simulate_block(wide_pi);
        for (unsigned l = 0; l < Lanes; ++l) {
            scalar_source.next_block(scalar_pi);
            scalar.simulate_block(scalar_pi);
            for (std::size_t v = 0; v < circuit.node_count(); ++v)
                ASSERT_EQ(
                    wide.value(netlist::NodeId{static_cast<uint32_t>(v)})
                        .lane[l],
                    scalar.value(
                        netlist::NodeId{static_cast<uint32_t>(v)}))
                    << "node " << v << " lane " << l << " block "
                    << block;
        }
    }
}

TEST(LogicSimWidths, EveryNodeWordMatchesTheScalarOracle) {
    const Circuit circuit = gen::suite_entry("mul8").build();
    check_logic_sim_width<2>(circuit);
    check_logic_sim_width<4>(circuit);
    check_logic_sim_width<8>(circuit);
}

// ---------------------------------------------------------------------
// Fault simulation: width differential against the 64-bit oracle

struct RunConfig {
    unsigned width = 64;
    unsigned threads = 1;
    bool ffr_batch = true;
    bool drop_detected = false;
    std::uint64_t drop_after = 0;
    bool stop_at_full = false;
    bool record_curve = true;
    std::size_t patterns = 1024;
    std::uint64_t seed = 99;
};

fault::FaultSimResult run_sim(const Circuit& circuit,
                              const RunConfig& config,
                              obs::Sink* sink = nullptr) {
    const auto faults = fault::collapse_faults(circuit);
    sim::RandomPatternSource source(config.seed);
    fault::FaultSimOptions options;
    options.max_patterns = config.patterns;
    options.stop_at_full_coverage = config.stop_at_full;
    options.record_curve = config.record_curve;
    options.drop_detected = config.drop_detected;
    options.drop_after = config.drop_after;
    options.sim_width = config.width;
    options.ffr_batch = config.ffr_batch;
    options.threads = config.threads;
    options.sink = sink;
    return fault::run_fault_simulation(circuit, faults, source, options);
}

/// Full bitwise identity, including exact n-detect counts and the
/// coverage curve. Valid whenever the two runs complete (no truncation)
/// with dropping off.
void expect_bitwise_equal(const fault::FaultSimResult& oracle,
                          const fault::FaultSimResult& other) {
    EXPECT_EQ(oracle.detect_pattern, other.detect_pattern);
    EXPECT_EQ(oracle.detect_count, other.detect_count);
    EXPECT_EQ(oracle.patterns_applied, other.patterns_applied);
    EXPECT_EQ(oracle.coverage, other.coverage);
    EXPECT_EQ(oracle.undetected, other.undetected);
    EXPECT_EQ(oracle.dropped, other.dropped);
    EXPECT_EQ(oracle.coverage_curve, other.coverage_curve);
    EXPECT_EQ(oracle.truncated, other.truncated);
}

class SimdWidthDifferential
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SimdWidthDifferential, EveryWidthMatchesTheScalarOracle) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    RunConfig config;
    const auto oracle = run_sim(circuit, config);
    EXPECT_EQ(oracle.sim_width, 64u);
    for (unsigned width : kWideWidths) {
        SCOPED_TRACE("width=" + std::to_string(width));
        RunConfig wide = config;
        wide.width = width;
        const auto result = run_sim(circuit, wide);
        EXPECT_EQ(result.sim_width, width);
        expect_bitwise_equal(oracle, result);
    }
}

TEST_P(SimdWidthDifferential, DroppingNeverChangesThePartition) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    RunConfig no_drop;
    no_drop.record_curve = false;
    const auto oracle = run_sim(circuit, no_drop);
    for (unsigned width : kAllWidths) {
        for (std::uint64_t target : {std::uint64_t{1}, std::uint64_t{2},
                                     std::uint64_t{4}}) {
            SCOPED_TRACE("width=" + std::to_string(width) +
                         " drop_after=" + std::to_string(target));
            RunConfig dropping = no_drop;
            dropping.width = width;
            dropping.drop_after = target;
            const auto result = run_sim(circuit, dropping);
            // The partition and the first-detection patterns are
            // dropping-invariant...
            EXPECT_EQ(oracle.detect_pattern, result.detect_pattern);
            EXPECT_EQ(oracle.coverage, result.coverage);
            EXPECT_EQ(oracle.undetected, result.undetected);
            EXPECT_EQ(oracle.coverage_curve, result.coverage_curve);
            // ...and exactly the faults whose true n-detect count
            // reaches the target get dropped. Counts are exact below
            // the target and at least the target beyond it (the excess
            // within the retirement block is width-dependent).
            std::size_t expected_dropped = 0;
            for (std::size_t i = 0; i < oracle.detect_count.size();
                 ++i) {
                if (oracle.detect_count[i] >= target) {
                    ++expected_dropped;
                    EXPECT_GE(result.detect_count[i], target) << i;
                } else {
                    EXPECT_EQ(result.detect_count[i],
                              oracle.detect_count[i])
                        << i;
                }
            }
            EXPECT_EQ(result.dropped, expected_dropped);
        }
    }
}

TEST_P(SimdWidthDifferential, FfrBatchingIsBitwiseEqualToPerFault) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    for (unsigned width : {64u, 512u}) {
        RunConfig per_fault;
        per_fault.width = width;
        per_fault.ffr_batch = false;
        const auto oracle = run_sim(circuit, per_fault);
        for (unsigned threads : {1u, 2u, 8u}) {
            SCOPED_TRACE("width=" + std::to_string(width) +
                         " threads=" + std::to_string(threads));
            RunConfig batched;
            batched.width = width;
            batched.ffr_batch = true;
            batched.threads = threads;
            expect_bitwise_equal(oracle, run_sim(circuit, batched));
        }
    }
}

TEST_P(SimdWidthDifferential, WideThreadCountsAreBitIdentical) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    RunConfig config;
    config.width = 512;
    config.drop_detected = true;  // the default production mode
    const auto serial = run_sim(circuit, config);
    for (unsigned threads : {2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        RunConfig parallel = config;
        parallel.threads = threads;
        expect_bitwise_equal(serial, run_sim(circuit, parallel));
    }
}

INSTANTIATE_TEST_SUITE_P(BundledBenches, SimdWidthDifferential,
                         ::testing::Values("c17", "cmp32", "chain24",
                                           "mul8", "dag500"));

// ---------------------------------------------------------------------
// Observability counters of the wide path

TEST(SimdObs, CountersRecordWidthBatchesAndDrops) {
    const Circuit circuit = gen::suite_entry("mul8").build();
    obs::Sink sink;
    RunConfig config;
    config.width = 256;
    config.drop_after = 1;
    const auto result = run_sim(circuit, config, &sink);
    EXPECT_EQ(sink.value(obs::Counter::SimWidth), 256u);
    EXPECT_GT(sink.value(obs::Counter::FfrBatches), 0u);
    EXPECT_EQ(sink.value(obs::Counter::FaultsDropped), result.dropped);
}

TEST(SimdObs, PatternAccountingIsWidthInvariant) {
    // On completed runs SimBlocks counts 64-pattern blocks and
    // SimPatterns counts patterns, at every width: zero-filled lanes of
    // a partial final wide block are never charged.
    const Circuit circuit = gen::suite_entry("cmp32").build();
    RunConfig config;
    config.patterns = 320;  // 5 scalar blocks: partial at every width
    obs::Sink oracle_sink;
    const auto oracle = run_sim(circuit, config, &oracle_sink);
    for (unsigned width : kWideWidths) {
        SCOPED_TRACE("width=" + std::to_string(width));
        obs::Sink sink;
        RunConfig wide = config;
        wide.width = width;
        const auto result = run_sim(circuit, wide, &sink);
        EXPECT_EQ(result.patterns_applied, oracle.patterns_applied);
        EXPECT_EQ(sink.value(obs::Counter::SimBlocks),
                  oracle_sink.value(obs::Counter::SimBlocks));
        EXPECT_EQ(sink.value(obs::Counter::SimPatterns),
                  oracle_sink.value(obs::Counter::SimPatterns));
    }
}

TEST(SimdObs, NoteMaxIsAHighWaterMark) {
    obs::Sink sink;
    obs::note_max(&sink, obs::Counter::SimWidth, 128);
    obs::note_max(&sink, obs::Counter::SimWidth, 512);
    obs::note_max(&sink, obs::Counter::SimWidth, 64);
    EXPECT_EQ(sink.value(obs::Counter::SimWidth), 512u);
}

// ---------------------------------------------------------------------
// Deadline expiry is width-independent

TEST(SimdDeadline, PreExpiredDeadlineTruncatesBeforeAnyBlock) {
    const Circuit circuit = gen::suite_entry("c17").build();
    for (unsigned width : kAllWidths) {
        SCOPED_TRACE("width=" + std::to_string(width));
        util::Deadline deadline;
        deadline.cancel();
        const auto faults = fault::collapse_faults(circuit);
        sim::RandomPatternSource source(1);
        fault::FaultSimOptions options;
        options.sim_width = width;
        options.deadline = &deadline;
        options.stop_at_full_coverage = false;
        const auto result = fault::run_fault_simulation(circuit, faults,
                                                        source, options);
        EXPECT_TRUE(result.truncated);
        EXPECT_EQ(result.patterns_applied, 0u);
        EXPECT_EQ(result.coverage, 0.0);
    }
}

TEST(SimdDeadline, ExpiryFiresEvenWithNoActiveFaults) {
    // Regression: with an empty fault universe no per-fault poll ever
    // runs; only the per-block poll can honour the deadline.
    const Circuit circuit = gen::suite_entry("c17").build();
    fault::CollapsedFaults no_faults;
    util::Deadline deadline;
    deadline.cancel();
    sim::RandomPatternSource source(1);
    fault::FaultSimOptions options;
    options.deadline = &deadline;
    options.stop_at_full_coverage = false;
    const auto result =
        fault::run_fault_simulation(circuit, no_faults, source, options);
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.patterns_applied, 0u);
}

TEST(SimdValidation, UnsupportedWidthIsRejected) {
    const Circuit circuit = gen::suite_entry("c17").build();
    const auto faults = fault::collapse_faults(circuit);
    sim::RandomPatternSource source(1);
    fault::FaultSimOptions options;
    options.sim_width = 96;
    EXPECT_THROW(
        fault::run_fault_simulation(circuit, faults, source, options),
        ValidationError);
    sim::RandomPatternSource probe_source(1);
    EXPECT_THROW(sim::estimate_signal_probabilities(circuit, probe_source,
                                                    64, 96),
                 ValidationError);
}

// ---------------------------------------------------------------------
// Signal probability estimation agrees across widths (satellite 2)

std::vector<double> probabilities(const Circuit& circuit,
                                  std::size_t patterns, unsigned width,
                                  std::uint64_t seed = 11) {
    sim::RandomPatternSource source(seed);
    return sim::estimate_signal_probabilities(circuit, source, patterns,
                                              width);
}

TEST(SignalProbabilityWidths, ByteIdenticalAcrossWidths) {
    for (const char* name : {"c17", "cmp32", "mul8"}) {
        const Circuit circuit = gen::suite_entry(name).build();
        // 1000 is not a multiple of 64: every width sees the same
        // rounded-up block count and the same denominator.
        for (std::size_t patterns : {std::size_t{64}, std::size_t{1000},
                                     std::size_t{1}}) {
            const auto oracle = probabilities(circuit, patterns, 64);
            for (unsigned width : kWideWidths) {
                SCOPED_TRACE(std::string(name) + " patterns=" +
                             std::to_string(patterns) + " width=" +
                             std::to_string(width));
                EXPECT_EQ(oracle,
                          probabilities(circuit, patterns, width));
            }
        }
    }
}

TEST(SignalProbabilityWidths, RoundingDenominatorIsTheBlockCount) {
    // 1 pattern rounds up to one 64-pattern block: a constant-1 net
    // must estimate exactly 1.0, not 1/1.
    const Circuit circuit = gen::suite_entry("c17").build();
    const auto p = probabilities(circuit, 1, 512);
    for (netlist::NodeId input : circuit.inputs()) {
        EXPECT_GE(p[input.v], 0.0);
        EXPECT_LE(p[input.v], 1.0);
    }
}

TEST(SignalProbabilityWidths, ZeroPatternsYieldsAllZeroAtEveryWidth) {
    const Circuit circuit = gen::suite_entry("c17").build();
    for (unsigned width : kAllWidths) {
        const auto p = probabilities(circuit, 0, width);
        ASSERT_EQ(p.size(), circuit.node_count());
        for (double value : p) EXPECT_EQ(value, 0.0);
    }
}

TEST(SignalProbabilityWidths, BlockOrderDoesNotChangeTheEstimate) {
    // The estimate is a sum of integer popcounts, so feeding the same
    // blocks in a different order must give byte-identical results.
    class ReplaySource final : public sim::PatternSource {
    public:
        explicit ReplaySource(std::vector<std::vector<std::uint64_t>>
                                  blocks)
            : blocks_(std::move(blocks)) {}
        void next_block(std::span<std::uint64_t> words) override {
            const auto& block = blocks_[next_ % blocks_.size()];
            ++next_;
            for (std::size_t i = 0; i < words.size(); ++i)
                words[i] = block[i];
        }
        void reset() override { next_ = 0; }

    private:
        std::vector<std::vector<std::uint64_t>> blocks_;
        std::size_t next_ = 0;
    };

    const Circuit circuit = gen::suite_entry("cmp32").build();
    constexpr std::size_t kBlocks = 8;
    std::vector<std::vector<std::uint64_t>> blocks(kBlocks);
    sim::RandomPatternSource source(3);
    for (auto& block : blocks) {
        block.resize(circuit.input_count());
        source.next_block(block);
    }
    std::vector<std::vector<std::uint64_t>> reversed(blocks.rbegin(),
                                                     blocks.rend());
    for (unsigned width : kAllWidths) {
        SCOPED_TRACE("width=" + std::to_string(width));
        ReplaySource forward(blocks);
        ReplaySource backward(reversed);
        EXPECT_EQ(sim::estimate_signal_probabilities(circuit, forward,
                                                     kBlocks * 64, width),
                  sim::estimate_signal_probabilities(
                      circuit, backward, kBlocks * 64, width));
    }
}

// ---------------------------------------------------------------------
// Property test: 100+ random circuits, scalar vs widest width, with a
// shrinking reducer (satellite 1)

bool widths_agree(const Circuit& circuit) {
    RunConfig config;
    config.patterns = 256;
    config.record_curve = true;
    const auto oracle = run_sim(circuit, config);
    RunConfig wide = config;
    wide.width = 512;
    for (unsigned threads : {1u, 4u}) {
        wide.threads = threads;
        const auto result = run_sim(circuit, wide);
        if (oracle.detect_pattern != result.detect_pattern ||
            oracle.detect_count != result.detect_count ||
            oracle.coverage != result.coverage ||
            oracle.coverage_curve != result.coverage_curve ||
            oracle.undetected != result.undetected)
            return false;
    }
    return true;
}

TEST(SimdProperty, RandomCircuitsAgreeAtEveryWidthWithShrinking) {
    // 36 seeds x 3 sizes = 108 random reconvergent DAGs.
    int checked = 0;
    for (std::uint64_t seed = 1; seed <= 36; ++seed) {
        for (std::size_t gates : {std::size_t{40}, std::size_t{120},
                                  std::size_t{350}}) {
            ++checked;
            gen::RandomDagOptions options;
            options.gates = gates;
            options.inputs = 8 + seed % 24;
            options.seed = seed * 7919 + gates;
            const Circuit circuit = gen::random_dag(options);
            if (widths_agree(circuit)) continue;

            // Shrink: regenerate with ever fewer gates (same seed and
            // shape parameters) while the disagreement persists, then
            // report the smallest failing instance as a bench netlist.
            gen::RandomDagOptions minimal = options;
            Circuit failing = circuit;
            while (minimal.gates > 2) {
                gen::RandomDagOptions candidate = minimal;
                candidate.gates = minimal.gates / 2;
                const Circuit c = gen::random_dag(candidate);
                if (widths_agree(c)) break;
                minimal = candidate;
                failing = c;
            }
            FAIL() << "width 512 diverged from the 64-bit oracle (seed "
                   << options.seed << ", gates " << options.gates
                   << "); minimal failing instance (" << minimal.gates
                   << " gates):\n"
                   << netlist::write_bench_string(failing);
        }
    }
    EXPECT_EQ(checked, 108);
}

}  // namespace
