#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fault/fault.hpp"
#include "netlist/circuit.hpp"
#include "testability/cop.hpp"
#include "testability/detect.hpp"
#include "tpi/objective.hpp"
#include "util/error.hpp"

namespace {

using namespace tpi;
using namespace tpi::netlist;

TEST(Detect, ProbabilitiesCombineExcitationAndObservability) {
    Circuit c;
    const NodeId a = c.add_input("a");
    const NodeId b = c.add_input("b");
    const NodeId g = c.add_gate(GateType::And, {a, b}, "g");
    c.mark_output(g);
    const auto cop = testability::compute_cop(c);
    const auto faults = fault::collapse_faults(c);
    const auto p = testability::detection_probabilities(c, faults, cop);

    // g/sa1 requires g = 0 (prob 3/4) and is directly observed.
    const auto g_sa1 = faults.class_index({g, true});
    EXPECT_DOUBLE_EQ(p[static_cast<std::size_t>(g_sa1)], 0.75);
    // a/sa1 requires a = 0 (1/2) and b = 1 (1/2).
    const auto a_sa1 = faults.class_index({a, true});
    EXPECT_DOUBLE_EQ(p[static_cast<std::size_t>(a_sa1)], 0.25);
}

TEST(Detect, EstimatedCoverageLimits) {
    const std::vector<double> p{0.5, 0.0};
    const std::vector<std::uint32_t> w{1, 1};
    // With many patterns the p=0.5 fault is certain, p=0 never: 50%.
    EXPECT_NEAR(testability::estimated_coverage(p, w, 1 << 20), 0.5, 1e-9);
    // With zero patterns nothing is detected.
    EXPECT_DOUBLE_EQ(testability::estimated_coverage(p, w, 0), 0.0);
}

TEST(Detect, EstimatedCoverageWeighting) {
    const std::vector<double> p{1.0, 0.0};
    const std::vector<std::uint32_t> w{3, 1};
    EXPECT_DOUBLE_EQ(testability::estimated_coverage(p, w, 1), 0.75);
}

TEST(Detect, EstimatedCoverageMatchesClosedForm) {
    const std::vector<double> p{0.1};
    const std::vector<std::uint32_t> w{1};
    const double expect = 1.0 - std::pow(0.9, 100);
    EXPECT_NEAR(testability::estimated_coverage(p, w, 100), expect, 1e-12);
}

TEST(Detect, EstimatedCoverageRejectsSizeMismatch) {
    const std::vector<double> p{0.1, 0.2};
    const std::vector<std::uint32_t> w{1};
    EXPECT_THROW(testability::estimated_coverage(p, w, 10), tpi::Error);
}

TEST(Detect, RequiredTestLength) {
    // p = 1/1000, 95% confidence: N ~ 3000 (the classic 3/p rule).
    const double n = testability::required_test_length(0.001, 0.95);
    EXPECT_NEAR(n, 2995.0, 5.0);
    EXPECT_DOUBLE_EQ(testability::required_test_length(1.0, 0.95), 1.0);
    EXPECT_TRUE(std::isinf(testability::required_test_length(0.0, 0.95)));
    EXPECT_THROW(testability::required_test_length(0.5, 1.5), tpi::Error);
}

TEST(Detect, MinDetectionProbability) {
    const std::vector<double> p{0.5, 0.01, 0.9};
    EXPECT_DOUBLE_EQ(testability::min_detection_probability(p), 0.01);
    EXPECT_DOUBLE_EQ(testability::min_detection_probability({}), 0.0);
}

// ----------------------------------------------------------- Objective ----

TEST(Objective, ExpectedDetectionBenefit) {
    Objective obj;
    obj.kind = Objective::Kind::ExpectedDetection;
    obj.num_patterns = 10;
    EXPECT_DOUBLE_EQ(obj.benefit(0.0), 0.0);
    EXPECT_DOUBLE_EQ(obj.benefit(1.0), 1.0);
    EXPECT_NEAR(obj.benefit(0.1), 1.0 - std::pow(0.9, 10), 1e-12);
    // Monotone in p.
    double prev = 0.0;
    for (double p = 0.0; p <= 1.0; p += 0.05) {
        const double b = obj.benefit(p);
        EXPECT_GE(b, prev - 1e-12);
        prev = b;
    }
}

TEST(Objective, ThresholdLinearBenefit) {
    Objective obj;
    obj.kind = Objective::Kind::ThresholdLinear;
    obj.threshold = 0.01;
    EXPECT_DOUBLE_EQ(obj.benefit(0.0), 0.0);
    EXPECT_DOUBLE_EQ(obj.benefit(0.005), 0.5);
    EXPECT_DOUBLE_EQ(obj.benefit(0.01), 1.0);
    EXPECT_DOUBLE_EQ(obj.benefit(0.5), 1.0);  // saturates
}

TEST(Objective, BenefitClampsOutOfRangeProbabilities) {
    Objective obj;
    EXPECT_DOUBLE_EQ(obj.benefit(-0.5), 0.0);
    EXPECT_DOUBLE_EQ(obj.benefit(1.5), 1.0);
}

TEST(Objective, ScoreIsWeightedSum) {
    Objective obj;
    obj.kind = Objective::Kind::ThresholdLinear;
    obj.threshold = 1.0;
    const std::vector<double> p{0.5, 1.0};
    const std::vector<std::uint32_t> w{2, 3};
    EXPECT_DOUBLE_EQ(obj.score(p, w), 2 * 0.5 + 3 * 1.0);
}

}  // namespace
