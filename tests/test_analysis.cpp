// Tests for the static analysis engine (src/analysis): post-dominator
// tree, implication engine, failed-assumption constant learning,
// untestability probing, observability bounds, certificate replay, the
// PODEM differential, and the planner plan-identity contract of
// PlannerOptions::prune_via_analysis.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/certificate.hpp"
#include "analysis/dominators.hpp"
#include "analysis/implications.hpp"
#include "analysis/prune.hpp"
#include "analysis/ternary.hpp"
#include "atpg/podem.hpp"
#include "fault/fault.hpp"
#include "gen/arith.hpp"
#include "gen/benchmarks.hpp"
#include "gen/chains.hpp"
#include "gen/random_circuits.hpp"
#include "lint/lint.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/circuit.hpp"
#include "obs/obs.hpp"
#include "testability/cop.hpp"
#include "tpi/planners.hpp"
#include "tpi/threshold.hpp"
#include "util/error.hpp"

namespace {

using namespace tpi;
using namespace tpi::netlist;
using analysis::Certificate;
using analysis::CertKind;
using analysis::DominatorTree;
using analysis::Literal;
using analysis::Ternary;

Circuit load_data_circuit(const std::string& file) {
    return read_bench_file(std::string(TPIDP_TEST_DATA_DIR) + "/golden/" +
                           file);
}

// A glue gadget: AND(x, NOT x) is constant 0, invisible to plain ternary
// propagation (X AND X = X) but provable by assuming the output 1.
Circuit contradiction_circuit(NodeId* out_gate = nullptr) {
    Circuit c;
    const NodeId x = c.add_input("x");
    const NodeId y = c.add_input("y");
    const NodeId nx = c.add_gate(GateType::Not, {x}, "nx");
    const NodeId g = c.add_gate(GateType::And, {x, nx}, "g");
    const NodeId z = c.add_gate(GateType::Or, {g, y}, "z");
    c.mark_output(z);
    if (out_gate) *out_gate = g;
    return c;
}

// ---------------------------------------------------------------------
// Post-dominator tree
// ---------------------------------------------------------------------

TEST(PostDominators, LinearChain) {
    Circuit c;
    const NodeId a = c.add_input("a");
    const NodeId b = c.add_input("b");
    const NodeId g1 = c.add_gate(GateType::And, {a, b}, "g1");
    const NodeId g2 = c.add_gate(GateType::Not, {g1}, "g2");
    c.mark_output(g2);
    const DominatorTree tree = analysis::compute_post_dominators(c);
    EXPECT_EQ(tree.idom[a.v], g1.v);
    EXPECT_EQ(tree.idom[b.v], g1.v);
    EXPECT_EQ(tree.idom[g1.v], g2.v);
    EXPECT_EQ(tree.idom[g2.v], DominatorTree::kSink);
    EXPECT_TRUE(tree.dominates(g2, a));
    EXPECT_TRUE(tree.dominates(g1, g1));  // reflexive
    EXPECT_FALSE(tree.dominates(a, g1));
    const std::vector<NodeId> chain = tree.chain(a);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0], g1);
    EXPECT_EQ(chain[1], g2);
}

TEST(PostDominators, ReconvergenceMeetsAtMergeGate) {
    Circuit c;
    const NodeId s = c.add_input("s");
    const NodeId n1 = c.add_gate(GateType::Not, {s}, "n1");
    const NodeId n2 = c.add_gate(GateType::Buf, {s}, "n2");
    const NodeId r = c.add_gate(GateType::And, {n1, n2}, "r");
    c.mark_output(r);
    const DominatorTree tree = analysis::compute_post_dominators(c);
    // Both branches reconverge at r: the stem's immediate post-dominator
    // skips past the branches straight to the merge gate.
    EXPECT_EQ(tree.idom[s.v], r.v);
    EXPECT_EQ(tree.idom[n1.v], r.v);
    EXPECT_EQ(tree.idom[n2.v], r.v);
}

TEST(PostDominators, StemFeedingTwoOutputsHasOnlySinkDominator) {
    Circuit c;
    const NodeId s = c.add_input("s");
    const NodeId o1 = c.add_gate(GateType::Not, {s}, "o1");
    const NodeId o2 = c.add_gate(GateType::Buf, {s}, "o2");
    c.mark_output(o1);
    c.mark_output(o2);
    const DominatorTree tree = analysis::compute_post_dominators(c);
    EXPECT_EQ(tree.idom[s.v], DominatorTree::kSink);
    EXPECT_TRUE(tree.chain(s).empty());
}

TEST(PostDominators, DeadLogicIsUnreachable) {
    Circuit c;
    const NodeId a = c.add_input("a");
    const NodeId live = c.add_gate(GateType::Not, {a}, "live");
    const NodeId dead = c.add_gate(GateType::Buf, {a}, "dead");
    c.mark_output(live);
    const DominatorTree tree = analysis::compute_post_dominators(c);
    EXPECT_EQ(tree.idom[dead.v], DominatorTree::kUnreachable);
    EXPECT_FALSE(tree.reachable(dead));
    EXPECT_TRUE(tree.reachable(a));
    EXPECT_FALSE(tree.dominates(live, dead));
    EXPECT_TRUE(tree.chain(dead).empty());
}

// Brute force: d post-dominates v iff removing d cuts every path from v
// to every primary output.
bool reaches_output_avoiding(const Circuit& c, NodeId v, NodeId avoid) {
    if (v == avoid) return false;
    std::vector<bool> seen(c.node_count(), false);
    std::vector<NodeId> stack{v};
    seen[v.v] = true;
    while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        if (c.is_output(cur)) return true;
        for (const NodeId next : c.fanouts(cur)) {
            if (next == avoid || seen[next.v]) continue;
            seen[next.v] = true;
            stack.push_back(next);
        }
    }
    return false;
}

TEST(PostDominators, AgreesWithBruteForceOnRandomDags) {
    for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
        gen::RandomDagOptions options;
        options.gates = 120;
        options.inputs = 12;
        options.seed = seed;
        const Circuit c = gen::random_dag(options);
        const DominatorTree tree = analysis::compute_post_dominators(c);
        for (const NodeId v : c.all_nodes()) {
            const bool live = reaches_output_avoiding(c, v, kNullNode);
            ASSERT_EQ(tree.reachable(v), live)
                << "seed " << seed << " node " << v.v;
            if (!live) continue;
            for (const NodeId d : c.all_nodes()) {
                if (d == v) continue;
                const bool brute = !reaches_output_avoiding(c, v, d);
                ASSERT_EQ(tree.dominates(d, v), brute)
                    << "seed " << seed << " dom " << d.v << " of " << v.v;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Implication engine
// ---------------------------------------------------------------------

TEST(Implications, AndDrivingOneForcesEveryFanin) {
    Circuit c;
    const NodeId a = c.add_input("a");
    const NodeId b = c.add_input("b");
    const NodeId g = c.add_gate(GateType::And, {a, b}, "g");
    c.mark_output(g);
    analysis::ImplicationEngine engine(c, analysis::propagate_constants(c));
    const Literal assume{g, true};
    const analysis::ImplicationResult r = engine.propagate({&assume, 1});
    EXPECT_FALSE(r.conflict);
    const std::vector<Literal> expected{{a, true}, {b, true}};
    for (const Literal& lit : expected)
        EXPECT_NE(std::find(r.implied.begin(), r.implied.end(), lit),
                  r.implied.end());
}

TEST(Implications, LastOpenFaninIsForcedByOutputZero) {
    // g = OR(a, b) driving 0 forces both; NAND with one sibling known
    // exercises the "last open fanin" rule.
    Circuit c;
    const NodeId a = c.add_input("a");
    const NodeId b = c.add_input("b");
    const NodeId g = c.add_gate(GateType::Nand, {a, b}, "g");
    c.mark_output(g);
    analysis::ImplicationEngine engine(c, analysis::propagate_constants(c));
    const std::vector<Literal> assume{{g, false}};
    const analysis::ImplicationResult r = engine.propagate(assume);
    EXPECT_FALSE(r.conflict);
    // NAND = 0 forces every fanin to 1.
    EXPECT_NE(std::find(r.implied.begin(), r.implied.end(),
                        Literal{a, true}),
              r.implied.end());
    EXPECT_NE(std::find(r.implied.begin(), r.implied.end(),
                        Literal{b, true}),
              r.implied.end());
}

TEST(Implications, XorParityCompletesOnceOneFaninRemains) {
    Circuit c;
    const NodeId a = c.add_input("a");
    const NodeId b = c.add_input("b");
    const NodeId g = c.add_gate(GateType::Xor, {a, b}, "g");
    c.mark_output(g);
    analysis::ImplicationEngine engine(c, analysis::propagate_constants(c));
    const std::vector<Literal> assume{{g, true}, {a, false}};
    const analysis::ImplicationResult r = engine.propagate(assume);
    EXPECT_FALSE(r.conflict);
    EXPECT_NE(std::find(r.implied.begin(), r.implied.end(),
                        Literal{b, true}),
              r.implied.end());
}

TEST(Implications, ContradictionYieldsConflict) {
    NodeId g = kNullNode;
    const Circuit c = contradiction_circuit(&g);
    analysis::ImplicationEngine engine(c, analysis::propagate_constants(c));
    const std::vector<Literal> assume{{g, true}};
    EXPECT_TRUE(engine.propagate(assume).conflict);
}

TEST(Implications, StateIsRestoredBetweenQueries) {
    NodeId g = kNullNode;
    const Circuit c = contradiction_circuit(&g);
    analysis::ImplicationEngine engine(c, analysis::propagate_constants(c));
    const std::vector<Literal> conflict{{g, true}};
    const std::vector<Literal> benign{{g, false}};
    const analysis::ImplicationResult before = engine.propagate(benign);
    EXPECT_TRUE(engine.propagate(conflict).conflict);
    const analysis::ImplicationResult after = engine.propagate(benign);
    EXPECT_EQ(before.conflict, after.conflict);
    EXPECT_EQ(before.implied, after.implied);
}

TEST(Implications, StepCapMarksQueryCapped) {
    const Circuit c = gen::and_chain(64);
    analysis::ImplicationEngine engine(c, analysis::propagate_constants(c));
    const std::vector<Literal> assume{
        {c.outputs().front(), true}};
    const analysis::ImplicationResult r = engine.propagate(assume, 1);
    EXPECT_TRUE(r.capped);
    EXPECT_FALSE(r.conflict);
}

// ---------------------------------------------------------------------
// run_analysis: learned constants, untestable faults, bounds
// ---------------------------------------------------------------------

TEST(AnalysisRun, LearnsContradictionConstantWithCertificate) {
    NodeId g = kNullNode;
    const Circuit c = contradiction_circuit(&g);
    // Plain ternary propagation cannot see it...
    EXPECT_EQ(analysis::propagate_constants(c)[g.v], Ternary::X);
    // ...failed-assumption probing proves it.
    const analysis::AnalysisResult result = analysis::run_analysis(c);
    EXPECT_EQ(result.constants[g.v], Ternary::Zero);
    EXPECT_NE(std::find(result.learned_constants.begin(),
                        result.learned_constants.end(), Literal{g, false}),
              result.learned_constants.end());
    bool has_cert = false;
    for (const Certificate& cert : result.certificates)
        if (cert.kind == CertKind::ConstantNet && cert.node == g) {
            has_cert = true;
            EXPECT_FALSE(cert.value);
        }
    EXPECT_TRUE(has_cert);
}

TEST(AnalysisRun, FaultsOnProvenConstantNetAreUntestable) {
    NodeId g = kNullNode;
    const Circuit c = contradiction_circuit(&g);
    const analysis::AnalysisResult result = analysis::run_analysis(c);
    // g is constant 0, so g stuck-at-0 can never be activated.
    EXPECT_NE(std::find(result.untestable.begin(), result.untestable.end(),
                        fault::Fault{g, false}),
              result.untestable.end());
}

TEST(AnalysisRun, ObsBoundsSandwichCop) {
    for (const char* name : {"c17", "chain24", "cmp32", "dag500"}) {
        const Circuit c = gen::suite_entry(name).build();
        const testability::CopResult cop = testability::compute_cop(c);
        const analysis::AnalysisResult result = analysis::run_analysis(c);
        const DominatorTree& tree = result.dominators;
        for (const NodeId v : c.all_nodes()) {
            if (!tree.reachable(v)) continue;
            // The witness-path lower bound is the COP argmax path, so it
            // attains the COP value bitwise.
            EXPECT_EQ(result.obs_lower[v.v], cop.obs[v.v])
                << name << " node " << v.v;
            EXPECT_LE(cop.obs[v.v], result.obs_upper[v.v])
                << name << " node " << v.v;
        }
    }
}

TEST(AnalysisRun, TruncatesUnderNodeCapWithoutLosingSoundness) {
    const Circuit c = gen::suite_entry("dag500").build();
    analysis::AnalysisOptions options;
    options.max_implication_nodes = 4;
    const analysis::AnalysisResult capped = analysis::run_analysis(c, options);
    EXPECT_TRUE(capped.truncated);
    // Facts derived under the cap are a subset of the uncapped run's.
    const analysis::AnalysisResult full = analysis::run_analysis(c);
    for (const Literal& lit : capped.learned_constants)
        EXPECT_NE(std::find(full.learned_constants.begin(),
                            full.learned_constants.end(), lit),
                  full.learned_constants.end());
}

TEST(AnalysisRun, CountersMatchResult) {
    const Circuit c = gen::suite_entry("dag500").build();
    obs::Sink sink;
    analysis::AnalysisOptions options;
    options.sink = &sink;
    const analysis::AnalysisResult result = analysis::run_analysis(c, options);
    EXPECT_EQ(sink.value(obs::Counter::ImplicationsLearned),
              result.implications_learned);
    EXPECT_EQ(sink.value(obs::Counter::FaultsProvedUntestable),
              result.untestable.size());
}

TEST(AnalysisRun, ZeroStepCapIsRejected) {
    analysis::AnalysisOptions options;
    options.max_implication_steps = 0;
    EXPECT_THROW(analysis::validate_analysis_options(options),
                 ValidationError);
    EXPECT_THROW(analysis::run_analysis(gen::suite_entry("c17").build(),
                                        options),
                 ValidationError);
}

TEST(AnalysisRun, LintWorkCapsAreValidatedNotClamped) {
    lint::LintOptions options;
    options.max_implication_steps = 0;
    EXPECT_THROW(lint::validate_lint_options(options), ValidationError);
}

// ---------------------------------------------------------------------
// Certificates
// ---------------------------------------------------------------------

void expect_all_certificates_replay(const Circuit& c,
                                    const std::vector<Certificate>& certs,
                                    const char* what) {
    for (const Certificate& cert : certs) {
        const analysis::CertCheck check = analysis::check_certificate(c, cert);
        EXPECT_TRUE(check.ok)
            << what << ": " << analysis::cert_kind_name(cert.kind)
            << " certificate for node " << cert.node.v
            << " failed: " << check.detail;
    }
}

TEST(Certificates, AnalysisCertificatesReplayOnSuiteCircuits) {
    for (const char* name : {"c17", "dec5", "chain24", "dag500"}) {
        const Circuit c = gen::suite_entry(name).build();
        const analysis::AnalysisResult result = analysis::run_analysis(c);
        expect_all_certificates_replay(c, result.certificates, name);
    }
}

TEST(Certificates, AnalysisCertificatesReplayOnDataCircuits) {
    for (const char* file :
         {"mux4.bench", "eq4.bench", "eq16.bench", "lintdemo.bench"}) {
        const Circuit c = load_data_circuit(file);
        const analysis::AnalysisResult result = analysis::run_analysis(c);
        expect_all_certificates_replay(c, result.certificates, file);
    }
}

TEST(Certificates, ObservePruningMatchesBitwiseCriterion) {
    for (const char* name : {"c17", "par64", "dag500"}) {
        const Circuit c = gen::suite_entry(name).build();
        const testability::CopResult cop = testability::compute_cop(c);
        const analysis::ObservePruning pruning =
            analysis::compute_observe_pruning(c, cop, 16);
        std::size_t count = 0;
        for (const NodeId v : c.all_nodes()) {
            EXPECT_EQ(pruning.zero_gain[v.v], cop.obs[v.v] == 1.0)
                << name << " node " << v.v;
            count += pruning.zero_gain[v.v];
        }
        EXPECT_EQ(pruning.count, count);
        expect_all_certificates_replay(c, pruning.certificates, name);
    }
}

TEST(Certificates, TransparentChainRequiresExactObservability) {
    const Circuit c = gen::suite_entry("c17").build();
    const testability::CopResult cop = testability::compute_cop(c);
    for (const NodeId v : c.all_nodes()) {
        if (cop.obs[v.v] == 1.0) continue;
        EXPECT_THROW(analysis::transparent_chain(c, cop, v), Error);
        break;
    }
}

TEST(Certificates, TamperedCertificateIsRejected) {
    NodeId g = kNullNode;
    const Circuit c = contradiction_circuit(&g);
    const analysis::AnalysisResult result = analysis::run_analysis(c);
    ASSERT_FALSE(result.certificates.empty());
    for (Certificate cert : result.certificates) {
        if (cert.kind != CertKind::ConstantNet || cert.node != g) continue;
        cert.value = !cert.value;  // claim the opposite constant
        EXPECT_FALSE(analysis::check_certificate(c, cert).ok);
        return;
    }
    FAIL() << "no ConstantNet certificate for the gadget net";
}

// ---------------------------------------------------------------------
// PODEM differential: analysis-untestable ==> PODEM-redundant
// ---------------------------------------------------------------------

void expect_podem_confirms_untestable(const Circuit& c,
                                      const std::vector<fault::Fault>& faults,
                                      const char* what) {
    atpg::AtpgOptions options;
    options.backtrack_limit = 200000;
    for (const fault::Fault& f : faults) {
        const atpg::TestCube cube = atpg::generate_test(c, f, options);
        EXPECT_EQ(cube.outcome, atpg::Outcome::Redundant)
            << what << ": analysis says " << fault::fault_name(c, f)
            << " is untestable but PODEM "
            << (cube.outcome == atpg::Outcome::Detected ? "found a test"
                                                        : "aborted");
    }
}

TEST(PodemDifferential, DataCircuitUntestablesAreRedundant) {
    for (const char* file :
         {"mux4.bench", "eq4.bench", "eq16.bench", "lintdemo.bench"}) {
        const Circuit c = load_data_circuit(file);
        const analysis::AnalysisResult result = analysis::run_analysis(c);
        expect_podem_confirms_untestable(c, result.untestable, file);
    }
}

TEST(PodemDifferential, SuiteUntestablesAreRedundant) {
    std::size_t proved = 0;
    for (const char* name : {"c17", "dec5", "dag500"}) {
        const Circuit c = gen::suite_entry(name).build();
        const analysis::AnalysisResult result = analysis::run_analysis(c);
        proved += result.untestable.size();
        expect_podem_confirms_untestable(c, result.untestable, name);
    }
    // The sweep must actually exercise the differential: dag500 carries
    // redundant reconvergent logic the prober finds.
    EXPECT_GT(proved, 0u);
}

// The 108-circuit random-DAG corpus of the simulator differential
// (same parameterisation as test_simd_sim.cpp): analysis-untestable
// faults are PODEM-confirmed on every corpus circuit; on a spot-check
// subset, every PODEM-detected fault is confirmed absent from the
// untestable set (the contrapositive, checked explicitly).
TEST(PodemDifferential, RandomDagCorpus) {
    for (std::uint64_t seed = 1; seed <= 36; ++seed) {
        for (const std::size_t gates : {40ul, 120ul, 350ul}) {
            gen::RandomDagOptions options;
            options.gates = gates;
            options.inputs = 8 + seed % 24;
            options.seed = seed * 7919 + gates;
            const Circuit c = gen::random_dag(options);
            const analysis::AnalysisResult result = analysis::run_analysis(c);
            const std::string what = "seed " + std::to_string(seed) + "/" +
                                     std::to_string(gates) + " gates";
            expect_podem_confirms_untestable(c, result.untestable,
                                             what.c_str());
            if (gates != 40 || seed % 6 != 1) continue;
            // Vice-versa spot-check on the small circuits: run PODEM
            // over the full universe and cross-check the verdicts.
            std::set<std::pair<std::uint32_t, bool>> untestable;
            for (const fault::Fault& f : result.untestable)
                untestable.insert({f.node.v, f.stuck_at1});
            atpg::AtpgOptions atpg_options;
            atpg_options.backtrack_limit = 200000;
            for (const fault::Fault& f : fault::all_faults(c)) {
                const atpg::TestCube cube =
                    atpg::generate_test(c, f, atpg_options);
                if (cube.outcome == atpg::Outcome::Detected)
                    EXPECT_FALSE(untestable.count({f.node.v, f.stuck_at1}))
                        << what << ": " << fault::fault_name(c, f)
                        << " is detectable yet claimed untestable";
            }
        }
    }
}

// ---------------------------------------------------------------------
// Planner plan identity: prune_via_analysis changes nothing but time
// ---------------------------------------------------------------------

PlannerOptions plan_options(int budget, unsigned threads,
                            bool incremental, bool prune) {
    PlannerOptions options;
    options.budget = budget;
    options.objective.num_patterns = 1024;
    options.threads = threads;
    options.incremental_eval = incremental;
    options.prune_via_analysis = prune;
    return options;
}

void expect_plan_identical(Planner& planner, const Circuit& c, int budget,
                           const char* what) {
    for (const unsigned threads : {1u, 2u, 8u}) {
        for (const bool incremental : {true, false}) {
            if (!incremental && threads != 1) continue;
            const Plan off = planner.plan(
                c, plan_options(budget, threads, incremental, false));
            const Plan on = planner.plan(
                c, plan_options(budget, threads, incremental, true));
            EXPECT_EQ(off.points, on.points)
                << what << " " << planner.name() << " threads " << threads
                << " incremental " << incremental;
            // Bitwise score identity, not approximate equality: pruning
            // removes only candidates whose score delta is exactly 0.0.
            EXPECT_EQ(off.predicted_score, on.predicted_score)
                << what << " " << planner.name() << " threads " << threads;
            EXPECT_EQ(off.candidates_pruned_analysis, 0u);
        }
    }
}

TEST(PlanIdentity, DpAndGreedyAreBitIdenticalWithPruning) {
    DpPlanner dp;
    GreedyPlanner greedy;
    for (const char* name : {"c17", "chain24", "aochain32", "cmp32"}) {
        const Circuit c = gen::suite_entry(name).build();
        expect_plan_identical(dp, c, 4, name);
        expect_plan_identical(greedy, c, 4, name);
    }
}

TEST(PlanIdentity, HoldsOnReconvergentDag500) {
    const Circuit c = gen::suite_entry("dag500").build();
    DpPlanner dp;
    GreedyPlanner greedy;
    expect_plan_identical(dp, c, 3, "dag500");
    expect_plan_identical(greedy, c, 3, "dag500");
}

TEST(PlanIdentity, TransparentCircuitPrunesEverythingAndPlansNothing) {
    // A parity tree is fully transparent: every net has COP
    // observability exactly 1.0, so with pruning on every observe
    // candidate is dropped — and the plan stays identical (empty).
    const Circuit c = gen::parity_tree(32);
    DpPlanner planner;
    PlannerOptions options = plan_options(8, 1, true, true);
    options.control_kinds.clear();  // observe-only planning
    const Plan plan = planner.plan(c, options);
    EXPECT_TRUE(plan.points.empty());
    EXPECT_GT(plan.candidates_pruned_analysis, 0u);
    options.prune_via_analysis = false;
    const Plan unpruned = planner.plan(c, options);
    EXPECT_EQ(plan.points, unpruned.points);
    EXPECT_EQ(plan.predicted_score, unpruned.predicted_score);
}

TEST(PlanIdentity, ThresholdSweepAcceptsAtSameBudget) {
    const Circuit c = gen::suite_entry("cmp32").build();
    DpPlanner planner;
    ThresholdGoal goal;
    goal.min_detection = 0.05;
    PlannerOptions base = plan_options(0, 2, true, false);
    const ThresholdResult off =
        solve_min_points(c, planner, base, goal, 4);
    base.prune_via_analysis = true;
    const ThresholdResult on = solve_min_points(c, planner, base, goal, 4);
    EXPECT_EQ(off.feasible, on.feasible);
    EXPECT_EQ(off.budget_used, on.budget_used);
    EXPECT_EQ(off.plan.points, on.plan.points);
    EXPECT_EQ(off.evaluation.score, on.evaluation.score);
}

TEST(PlanIdentity, PruneCertificatesReplayAgainstOriginalCircuit) {
    // The planner renumbers nodes when applying test points; its
    // certificates must nevertheless replay against the circuit the
    // caller handed in.
    for (const char* name : {"chain24", "dag500"}) {
        const Circuit c = gen::suite_entry(name).build();
        DpPlanner dp;
        GreedyPlanner greedy;
        for (Planner* planner : {static_cast<Planner*>(&dp),
                                 static_cast<Planner*>(&greedy)}) {
            const Plan plan =
                planner->plan(c, plan_options(3, 1, true, true));
            if (plan.candidates_pruned_analysis > 0)
                EXPECT_FALSE(plan.prune_certificates.empty())
                    << name << " " << planner->name();
            for (const Certificate& cert : plan.prune_certificates)
                EXPECT_EQ(cert.kind, CertKind::TransparentChain);
            expect_all_certificates_replay(c, plan.prune_certificates,
                                           name);
        }
    }
}

TEST(PlanIdentity, PrunedCounterIsReportedToSink) {
    const Circuit c = gen::suite_entry("dag500").build();
    obs::Sink sink;
    DpPlanner planner;
    PlannerOptions options = plan_options(3, 1, true, true);
    options.sink = &sink;
    const Plan plan = planner.plan(c, options);
    EXPECT_EQ(sink.value(obs::Counter::CandidatesPrunedAnalysis),
              plan.candidates_pruned_analysis);
}

}  // namespace
