// Robustness harness: the hardened error taxonomy, the structural
// validator with strict/lenient modes, cooperative deadlines with
// graceful degradation across every engine, and a miniature in-process
// fuzz pass over the readers. The full mutational fuzzer lives in
// tools/fuzz_bench_io.cpp; these tests pin down the contracts it relies
// on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "atpg/podem.hpp"
#include "fault/fault_sim.hpp"
#include "gen/benchmarks.hpp"
#include "lint/lint.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/circuit.hpp"
#include "netlist/validate.hpp"
#include "netlist/verilog_io.hpp"
#include "tpi/planners.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace tpi;
using netlist::Circuit;
using netlist::DiagSeverity;
using netlist::Diagnostics;
using netlist::ValidateMode;

// ---------------------------------------------------------------------
// Error taxonomy

TEST(ErrorTaxonomy, CodesAreStable) {
    EXPECT_EQ(Error("x").code(), ErrorCode::Generic);
    EXPECT_EQ(ParseError("f", 1, "x").code(), ErrorCode::Parse);
    EXPECT_EQ(ValidationError("x").code(), ErrorCode::Validation);
    EXPECT_EQ(LimitError("x").code(), ErrorCode::Limit);
    EXPECT_EQ(DeadlineError("x").code(), ErrorCode::Deadline);

    EXPECT_EQ(static_cast<int>(ErrorCode::Generic), 1);
    EXPECT_EQ(static_cast<int>(ErrorCode::Parse), 3);
    EXPECT_EQ(static_cast<int>(ErrorCode::Validation), 4);
    EXPECT_EQ(static_cast<int>(ErrorCode::Limit), 5);
    EXPECT_EQ(static_cast<int>(ErrorCode::Deadline), 5);
}

TEST(ErrorTaxonomy, ParseErrorCarriesSourceAndLine) {
    const ParseError e("top.bench", 7, "unbalanced parentheses");
    EXPECT_EQ(e.source(), "top.bench");
    EXPECT_EQ(e.line(), 7);
    EXPECT_STREQ(e.what(), "top.bench (line 7): unbalanced parentheses");

    const ParseError no_line("top.bench", 0, "cannot open file");
    EXPECT_STREQ(no_line.what(), "top.bench: cannot open file");
}

TEST(ErrorTaxonomy, ValidationErrorCarriesNodes) {
    const ValidationError e("dead logic", {"g1", "g2"});
    ASSERT_EQ(e.nodes().size(), 2u);
    EXPECT_EQ(e.nodes()[0], "g1");
}

TEST(ErrorTaxonomy, SubclassesAreCatchableAsError) {
    try {
        throw DeadlineError("out of time");
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::Deadline);
        return;
    }
    FAIL() << "DeadlineError not caught as tpi::Error";
}

// ---------------------------------------------------------------------
// Deadline

TEST(Deadline, DefaultIsUnlimited) {
    util::Deadline d;
    EXPECT_FALSE(d.limited());
    for (int i = 0; i < 1000; ++i) EXPECT_FALSE(d.expired());
}

TEST(Deadline, StepBudgetIsDeterministic) {
    util::Deadline d = util::Deadline::steps(5);
    EXPECT_TRUE(d.limited());
    for (int i = 0; i < 4; ++i) EXPECT_FALSE(d.expired());
    EXPECT_TRUE(d.expired());
    EXPECT_TRUE(d.expired());  // sticky
}

TEST(Deadline, ZeroWallClockExpiresWithinPollStride) {
    util::Deadline d(0.0);
    bool expired = false;
    // The clock is polled every 64th step, so expiry must arrive within
    // a bounded number of calls.
    for (int i = 0; i < 128 && !expired; ++i) expired = d.expired();
    EXPECT_TRUE(expired);
}

TEST(Deadline, CheckThrowsDeadlineError) {
    util::Deadline d = util::Deadline::steps(1);
    EXPECT_THROW(d.check("unit test"), DeadlineError);
}

TEST(Deadline, CancelExpiresImmediatelyAndStickily) {
    util::Deadline d(60'000.0);  // a minute of budget
    EXPECT_FALSE(d.already_expired());
    d.cancel();
    EXPECT_TRUE(d.already_expired());
    EXPECT_TRUE(d.expired());
    EXPECT_TRUE(d.expired_now());
    EXPECT_THROW(d.check("cancelled"), DeadlineError);
}

TEST(Deadline, CancelWorksOnUnlimitedDeadlines) {
    // The CLI's SIGINT handler cancels whatever deadline the active
    // command registered — which is an unlimited one when the user
    // passed no --deadline-ms. The sticky flag must win over the
    // "unlimited never expires" fast path.
    util::Deadline d;
    EXPECT_FALSE(d.expired());
    d.cancel();
    EXPECT_TRUE(d.already_expired());
    EXPECT_TRUE(d.expired());
}

// ---------------------------------------------------------------------
// Structural validator

Circuit dead_gate_circuit() {
    Circuit c("dead");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto live = c.add_gate(netlist::GateType::And, {a, b}, "live");
    c.add_gate(netlist::GateType::Or, {a, b}, "corpse");
    c.mark_output(live);
    return c;
}

TEST(Validate, CleanCircuitHasNoFindings) {
    const Circuit c = gen::suite_entry("c17").build();
    const Diagnostics diags = netlist::inspect(c);
    EXPECT_FALSE(diags.has_errors());
}

TEST(Validate, InspectReportsDeadGate) {
    const Circuit c = dead_gate_circuit();
    const Diagnostics diags = netlist::inspect(c);
    EXPECT_TRUE(diags.has_errors());
    bool found = false;
    for (const auto& d : diags.entries)
        if (d.check == "dead-gate") {
            found = true;
            ASSERT_FALSE(d.nodes.empty());
            EXPECT_EQ(d.nodes[0], "corpse");
        }
    EXPECT_TRUE(found);
}

TEST(Validate, StrictThrowsOnDeadGate) {
    Circuit c = dead_gate_circuit();
    try {
        netlist::validate(c, ValidateMode::Strict);
        FAIL() << "expected ValidationError";
    } catch (const ValidationError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Validation);
        ASSERT_FALSE(e.nodes().empty());
        EXPECT_EQ(e.nodes()[0], "corpse");
    }
}

TEST(Validate, LenientStripsDeadConeAndReports) {
    Circuit c = dead_gate_circuit();
    const std::size_t before = c.gate_count();
    const Diagnostics diags = netlist::validate(c, ValidateMode::Lenient);
    EXPECT_GT(diags.repairs(), 0u);
    EXPECT_LT(c.gate_count(), before);
    // The repaired circuit is now strictly valid.
    Circuit repaired = c;
    EXPECT_NO_THROW(netlist::validate(repaired, ValidateMode::Strict));
    // Live structure is untouched.
    EXPECT_EQ(c.input_count(), 2u);
    EXPECT_EQ(c.output_count(), 1u);
}

TEST(Validate, UnusedInputIsAWarningNotAnError) {
    Circuit c("unused");
    const auto a = c.add_input("a");
    c.add_input("idle");
    const auto g = c.add_gate(netlist::GateType::Not, {a}, "g");
    c.mark_output(g);
    const Diagnostics diags = netlist::inspect(c);
    EXPECT_FALSE(diags.has_errors());
    EXPECT_GT(diags.count(DiagSeverity::Warning), 0u);
    EXPECT_NO_THROW(netlist::validate(c, ValidateMode::Strict));
}

TEST(Validate, DegenerateGateIsAWarning) {
    Circuit c("degen");
    const auto a = c.add_input("a");
    const auto g = c.add_gate(netlist::GateType::And, {a, a}, "g");
    c.mark_output(g);
    const Diagnostics diags = netlist::inspect(c);
    bool found = false;
    for (const auto& d : diags.entries)
        if (d.check == "degenerate-gate") found = true;
    EXPECT_TRUE(found);
}

TEST(Validate, NoOutputsIsAnError) {
    Circuit c("sink");
    c.add_input("a");
    const Diagnostics diags = netlist::inspect(c);
    EXPECT_TRUE(diags.has_errors());
}

// ---------------------------------------------------------------------
// Reader integration: strict vs lenient

TEST(ReaderModes, UndrivenNetStrictThrowsLenientTiesOff) {
    const std::string text =
        "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
    EXPECT_THROW(
        netlist::read_bench_string(text, "t", ValidateMode::Strict),
        ParseError);

    Diagnostics diags;
    const Circuit c = netlist::read_bench_string(
        text, "t", ValidateMode::Lenient, &diags);
    EXPECT_EQ(c.output_count(), 1u);
    bool tied = false;
    for (const auto& d : diags.entries)
        if (d.check == "undriven-net") tied = true;
    EXPECT_TRUE(tied);
}

TEST(ReaderModes, DuplicateDefinitionLenientKeepsFirst) {
    const std::string text =
        "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\ng = BUF(a)\n";
    EXPECT_THROW(
        netlist::read_bench_string(text, "t", ValidateMode::Strict),
        ParseError);

    Diagnostics diags;
    const Circuit c = netlist::read_bench_string(
        text, "t", ValidateMode::Lenient, &diags);
    EXPECT_GT(diags.repairs(), 0u);
    // The first definition (NOT) won.
    const netlist::NodeId id = c.find("g");
    ASSERT_NE(id, netlist::kNullNode);
    EXPECT_EQ(c.type(id), netlist::GateType::Not);
}

TEST(ReaderModes, FloatingOutputLenientDropsIt) {
    const std::string text =
        "INPUT(a)\nOUTPUT(y)\nOUTPUT(nowhere)\ny = NOT(a)\n";
    EXPECT_THROW(
        netlist::read_bench_string(text, "t", ValidateMode::Strict),
        ParseError);

    Diagnostics diags;
    const Circuit c = netlist::read_bench_string(
        text, "t", ValidateMode::Lenient, &diags);
    EXPECT_EQ(c.output_count(), 1u);
}

TEST(ReaderModes, CycleThrowsInBothModes) {
    const std::string text =
        "INPUT(a)\nOUTPUT(g)\ng = AND(g, a)\n";
    EXPECT_THROW(
        netlist::read_bench_string(text, "t", ValidateMode::Strict),
        ParseError);
    EXPECT_THROW(
        netlist::read_bench_string(text, "t", ValidateMode::Lenient),
        ParseError);
}

TEST(ReaderModes, VerilogLenientRepairsUndrivenWire) {
    const std::string text =
        "module m(a, y);\n"
        "  input a;\n"
        "  output y;\n"
        "  wire ghost;\n"
        "  and g1(y, a, ghost);\n"
        "endmodule\n";
    EXPECT_THROW(netlist::read_verilog_string(text, ValidateMode::Strict),
                 ParseError);
    Diagnostics diags;
    const Circuit c =
        netlist::read_verilog_string(text, ValidateMode::Lenient, &diags);
    EXPECT_EQ(c.output_count(), 1u);
    EXPECT_GT(diags.repairs(), 0u);
}

// ---------------------------------------------------------------------
// Graceful degradation under deadlines

TEST(GracefulDegradation, PlannersReturnTruncatedBestSoFar) {
    const Circuit c = gen::suite_entry("dag500").build();
    DpPlanner dp;
    GreedyPlanner greedy;
    RandomPlanner random;
    for (Planner* planner :
         std::vector<Planner*>{&dp, &greedy, &random}) {
        util::Deadline deadline = util::Deadline::steps(1);
        PlannerOptions options;
        options.budget = 4;
        options.objective.num_patterns = 1024;
        options.deadline = &deadline;
        const Plan plan = planner->plan(c, options);
        EXPECT_TRUE(plan.truncated)
            << planner->name() << " ignored an expired deadline";
        EXPECT_LE(plan.total_cost(options.cost), options.budget);
    }
}

TEST(GracefulDegradation, ExhaustivePlannerTruncates) {
    const Circuit c = gen::suite_entry("c17").build();
    util::Deadline deadline = util::Deadline::steps(1);
    PlannerOptions options;
    options.budget = 2;
    options.objective.num_patterns = 256;
    options.deadline = &deadline;
    ExhaustivePlanner exhaustive;
    const Plan plan = exhaustive.plan(c, options);
    EXPECT_TRUE(plan.truncated);
}

TEST(GracefulDegradation, ExhaustivePlannerThrowsLimitErrorWhenTooLarge) {
    const Circuit c = gen::suite_entry("mul8").build();
    PlannerOptions options;
    options.budget = 2;
    ExhaustivePlanner exhaustive;
    try {
        exhaustive.plan(c, options);
        FAIL() << "expected LimitError";
    } catch (const LimitError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Limit);
    }
}

TEST(GracefulDegradation, UnlimitedDeadlineDoesNotTruncate) {
    const Circuit c = gen::suite_entry("c17").build();
    util::Deadline deadline;  // unlimited
    PlannerOptions options;
    options.budget = 2;
    options.objective.num_patterns = 256;
    options.deadline = &deadline;
    DpPlanner dp;
    EXPECT_FALSE(dp.plan(c, options).truncated);
}

TEST(GracefulDegradation, FaultSimTruncatesAndKeepsPartialCoverage) {
    const Circuit c = gen::suite_entry("mul8").build();
    util::Deadline deadline = util::Deadline::steps(1);
    const auto result =
        fault::random_pattern_coverage(c, 1024, 1, false, &deadline);
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.patterns_applied, 0u);  // partial block not counted
    // Without a deadline the same run completes.
    const auto full = fault::random_pattern_coverage(c, 1024, 1);
    EXPECT_FALSE(full.truncated);
    EXPECT_GE(full.coverage, result.coverage);
}

TEST(GracefulDegradation, ParallelFaultSimTruncatesHonestly) {
    // Deadline under parallelism: the first expiry observed on any
    // worker lane stops all of them, the partial block is not counted,
    // and the result is valid best-so-far — same contract as serial.
    const Circuit c = gen::suite_entry("mul8").build();
    const auto faults = fault::collapse_faults(c);
    util::Deadline deadline = util::Deadline::steps(1);
    fault::FaultSimOptions options;
    options.max_patterns = 1024;
    options.threads = 8;
    options.deadline = &deadline;
    sim::RandomPatternSource source(1);
    const auto result =
        fault::run_fault_simulation(c, faults, source, options);
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.patterns_applied, 0u);
    EXPECT_EQ(result.detect_pattern.size(), faults.size());
    for (const auto first : result.detect_pattern) EXPECT_EQ(first, -1);
    EXPECT_GE(result.coverage, 0.0);
    EXPECT_LE(result.coverage, 1.0);

    // The same run without a deadline completes and dominates.
    fault::FaultSimOptions unlimited = options;
    unlimited.deadline = nullptr;
    sim::RandomPatternSource source2(1);
    const auto full =
        fault::run_fault_simulation(c, faults, source2, unlimited);
    EXPECT_FALSE(full.truncated);
    EXPECT_GE(full.coverage, result.coverage);
}

TEST(GracefulDegradation, ParallelDpPlannerTruncates) {
    const Circuit c = gen::suite_entry("dag500").build();
    util::Deadline deadline = util::Deadline::steps(1);
    PlannerOptions options;
    options.budget = 4;
    options.objective.num_patterns = 1024;
    options.deadline = &deadline;
    options.threads = 8;
    DpPlanner dp;
    const Plan plan = dp.plan(c, options);
    EXPECT_TRUE(plan.truncated);
    EXPECT_LE(plan.total_cost(options.cost), options.budget);
}

TEST(GracefulDegradation, NearZeroWallDeadlineWithEightThreads) {
    // Wall-clock variant of the above: 10 microseconds cannot finish
    // 32768 patterns on mul8, so the run must come back truncated yet
    // structurally valid.
    const Circuit c = gen::suite_entry("mul8").build();
    util::Deadline deadline(0.01);
    const auto result = fault::random_pattern_coverage(
        c, 32768, 1, true, &deadline, 8);
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.patterns_applied % 64, 0u);
    EXPECT_EQ(result.coverage_curve.size(),
              result.patterns_applied / 64);
    EXPECT_GE(result.coverage, 0.0);
    EXPECT_LE(result.coverage, 1.0);
}

TEST(GracefulDegradation, AtpgSkipsRemainingFaultsOnExpiry) {
    const Circuit c = gen::suite_entry("add16").build();
    const auto faults = fault::collapse_faults(c);
    util::Deadline deadline = util::Deadline::steps(1);
    atpg::AtpgOptions options;
    options.deadline = &deadline;
    const auto summary = atpg::run_atpg(c, faults, options);
    EXPECT_TRUE(summary.truncated);
    EXPECT_GT(summary.skipped, 0u);
    EXPECT_EQ(summary.outcome.size(), faults.size());
    // Skipped faults read Aborted, never Detected.
    EXPECT_EQ(summary.outcome.back(), atpg::Outcome::Aborted);
    EXPECT_EQ(summary.detected + summary.redundant + summary.aborted +
                  summary.skipped,
              faults.size());
}

// ---------------------------------------------------------------------
// Mini fuzz: pathological inputs must parse or raise the taxonomy

void expect_contract(const std::string& text, bool verilog) {
    for (const auto mode :
         {ValidateMode::Strict, ValidateMode::Lenient}) {
        try {
            // Whatever the readers accept must also survive the lint
            // engine: no throw, and findings referencing real nodes.
            const Circuit circuit =
                verilog ? netlist::read_verilog_string(text, mode)
                        : netlist::read_bench_string(text, "fuzz", mode);
            const lint::LintReport report = lint::run_lint(circuit);
            ASSERT_EQ(report.ternary.size(), circuit.node_count());
            for (const lint::Finding& finding : report.findings) {
                ASSERT_EQ(finding.nodes.size(), finding.node_names.size());
                for (netlist::NodeId v : finding.nodes)
                    ASSERT_LT(v.v, circuit.node_count());
            }
        } catch (const ParseError&) {
        } catch (const ValidationError&) {
        } catch (const std::exception& e) {
            FAIL() << "foreign exception: " << e.what() << "\ninput:\n"
                   << text;
        }
    }
}

TEST(MiniFuzz, PathologicalNetlistsNeverCrash) {
    const std::vector<std::string> corpus = {
        "",
        "\r\n\r\n",
        std::string("\0\0\0", 3),  // embedded NULs
        "INPUT(",
        "INPUT()",
        "= AND(a, b)",
        "g = ",
        "g = AND",
        "g = AND()",
        "g = NOSUCHGATE(a)",
        "INPUT(a)\ng = NOT(a, a)",
        std::string(1 << 16, 'x'),
        "INPUT(a)\nOUTPUT(y)\ny = AND(" + std::string(4000, 'a') + ")",
        "module\n",
        "module m(;\nendmodule\n",
        "module m(a);\n  input a;\n  and g(a, a);\n",
        "\xff\xfe\x00garbage",
    };
    for (const auto& text : corpus) {
        expect_contract(text, false);
        expect_contract(text, true);
    }
}

TEST(MiniFuzz, RandomByteMutationsHoldTheContract) {
    const std::string base =
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
        "w = NAND(a, b)\ny = XOR(w, a)\n";
    util::Rng rng(42);
    for (int it = 0; it < 300; ++it) {
        std::string text = base;
        for (int m = 0; m < 4; ++m)
            text[rng.below(text.size())] =
                static_cast<char>(rng.below(256));
        expect_contract(text, false);
    }
}

}  // namespace
