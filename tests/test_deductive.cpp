#include <gtest/gtest.h>

#include "fault/deductive.hpp"
#include "fault/fault_sim.hpp"
#include "gen/arith.hpp"
#include "gen/benchmarks.hpp"
#include "gen/chains.hpp"
#include "gen/random_circuits.hpp"

namespace {

using namespace tpi;
using namespace tpi::netlist;

/// The heart of this file: two completely independent fault-simulation
/// engines (parallel-pattern single-fault propagation vs deductive fault
/// lists) must agree on the first-detection pattern of every fault.
void expect_engines_agree(const Circuit& circuit, std::size_t patterns,
                          std::uint64_t seed) {
    const auto faults = fault::collapse_faults(circuit);

    sim::RandomPatternSource source_a(seed);
    fault::FaultSimOptions options;
    options.max_patterns = patterns;
    options.stop_at_full_coverage = false;
    const auto ppsfp =
        fault::run_fault_simulation(circuit, faults, source_a, options);

    sim::RandomPatternSource source_b(seed);
    const auto deductive = fault::run_deductive_simulation(
        circuit, faults, source_b, patterns,
        /*stop_at_full_coverage=*/false);

    ASSERT_EQ(ppsfp.detect_pattern.size(), deductive.detect_pattern.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        EXPECT_EQ(ppsfp.detect_pattern[i], deductive.detect_pattern[i])
            << fault::fault_name(circuit, faults.representatives[i]);
    }
    EXPECT_DOUBLE_EQ(ppsfp.coverage, deductive.coverage);
    EXPECT_EQ(ppsfp.undetected, deductive.undetected);
}

TEST(Deductive, AgreesOnC17) {
    expect_engines_agree(gen::c17(), 256, 1);
}

TEST(Deductive, AgreesOnAndChain) {
    expect_engines_agree(gen::and_chain(12), 512, 2);
}

TEST(Deductive, AgreesOnAndOrChain) {
    expect_engines_agree(gen::and_or_chain(16, 4), 512, 3);
}

TEST(Deductive, AgreesOnParityTree) {
    expect_engines_agree(gen::parity_tree(16), 128, 4);
}

TEST(Deductive, AgreesOnAdder) {
    expect_engines_agree(gen::ripple_carry_adder(6), 256, 5);
}

TEST(Deductive, AgreesOnComparator) {
    expect_engines_agree(gen::equality_comparator(8), 1024, 6);
}

TEST(Deductive, AgreesOnMultiplier) {
    expect_engines_agree(gen::array_multiplier(4), 256, 7);
}

TEST(Deductive, AgreesOnDecoder) {
    expect_engines_agree(gen::decoder(3), 128, 8);
}

TEST(Deductive, HandlesUntestableFault) {
    // g = AND(a, const0): g/sa0 is untestable and must stay undetected.
    Circuit c;
    const NodeId a = c.add_input("a");
    const NodeId zero = c.add_const(false, "z");
    const NodeId g = c.add_gate(GateType::And, {a, zero}, "g");
    c.mark_output(g);
    const auto faults = fault::collapse_faults(c);
    sim::RandomPatternSource source(1);
    const auto result =
        fault::run_deductive_simulation(c, faults, source, 512);
    const auto g_sa0 = faults.class_index({g, false});
    ASSERT_GE(g_sa0, 0);
    EXPECT_EQ(result.detect_pattern[static_cast<std::size_t>(g_sa0)], -1);
    EXPECT_LT(result.coverage, 1.0);
}

TEST(Deductive, StopsEarlyAtFullCoverage) {
    const Circuit c = gen::parity_tree(8);
    const auto faults = fault::collapse_faults(c);
    sim::RandomPatternSource source(9);
    const auto result = fault::run_deductive_simulation(
        c, faults, source, 1 << 20, /*stop_at_full_coverage=*/true);
    EXPECT_DOUBLE_EQ(result.coverage, 1.0);
    EXPECT_LT(result.patterns_applied, std::size_t{1} << 12);
}

class DeductiveDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeductiveDifferential, AgreesOnRandomDags) {
    gen::RandomDagOptions options;
    options.gates = 90;
    options.inputs = 10;
    options.seed = GetParam();
    expect_engines_agree(gen::random_dag(options), 256, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeductiveDifferential,
                         ::testing::Range<std::uint64_t>(1, 9));

class DeductiveTreeDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeductiveTreeDifferential, AgreesOnRandomTrees) {
    gen::RandomTreeOptions options;
    options.gates = 40;
    options.seed = GetParam();
    expect_engines_agree(gen::random_tree(options), 256, GetParam() + 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeductiveTreeDifferential,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
