#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "fault/fault.hpp"
#include "gen/chains.hpp"
#include "netlist/circuit.hpp"
#include "testability/cop.hpp"
#include "testability/profile.hpp"

namespace {

using namespace tpi;
using namespace tpi::netlist;

const testability::PropagationProfile::Entry* find_entry(
    const std::vector<testability::PropagationProfile::Entry>& row,
    NodeId node) {
    const auto it = std::find_if(
        row.begin(), row.end(),
        [&](const auto& entry) { return entry.node == node; });
    return it == row.end() ? nullptr : &*it;
}

TEST(Profile, ArrivalDecaysAlongAndChain) {
    const Circuit c = gen::and_chain(8);
    const auto faults = fault::collapse_faults(c);
    const auto cop = testability::compute_cop(c);
    const auto profile = testability::compute_profile(c, cop, faults);

    // Track x0/sa1 (excitation 1/2) through the chain gates c1..c8.
    const NodeId x0 = c.find("x0");
    const auto cls = faults.class_index({x0, true});
    ASSERT_GE(cls, 0);
    const auto& row = profile.rows[static_cast<std::size_t>(cls)];

    const auto* at_site = find_entry(row, x0);
    ASSERT_NE(at_site, nullptr);
    EXPECT_DOUBLE_EQ(at_site->probability, 0.5);
    for (int i = 1; i <= 8; ++i) {
        const NodeId gate = c.find("c" + std::to_string(i));
        const auto* entry = find_entry(row, gate);
        ASSERT_NE(entry, nullptr) << "c" << i;
        EXPECT_DOUBLE_EQ(entry->probability, 0.5 * std::exp2(-i));
    }
}

TEST(Profile, EntriesRestrictedToFanoutCone) {
    Circuit c;
    const NodeId a = c.add_input("a");
    const NodeId b = c.add_input("b");
    const NodeId g = c.add_gate(GateType::And, {a, b}, "g");
    const NodeId h = c.add_gate(GateType::Not, {b}, "h");
    c.mark_output(g);
    c.mark_output(h);
    const auto faults = fault::collapse_faults(c);
    const auto cop = testability::compute_cop(c);
    const auto profile = testability::compute_profile(c, cop, faults);
    const auto cls = faults.class_index({a, true});
    ASSERT_GE(cls, 0);
    const auto& row = profile.rows[static_cast<std::size_t>(cls)];
    EXPECT_EQ(find_entry(row, h), nullptr);  // h is not in a's cone
    EXPECT_NE(find_entry(row, g), nullptr);
}

TEST(Profile, MinProbabilityPrunes) {
    const Circuit c = gen::and_chain(20);
    const auto faults = fault::collapse_faults(c);
    const auto cop = testability::compute_cop(c);
    const auto strict =
        testability::compute_profile(c, cop, faults, /*min=*/0.01);
    const auto loose =
        testability::compute_profile(c, cop, faults, /*min=*/1e-12);
    std::size_t strict_total = 0;
    std::size_t loose_total = 0;
    for (const auto& row : strict.rows) strict_total += row.size();
    for (const auto& row : loose.rows) loose_total += row.size();
    EXPECT_LT(strict_total, loose_total);
    for (const auto& row : strict.rows)
        for (const auto& entry : row) EXPECT_GE(entry.probability, 0.01);
}

TEST(Profile, RowsSortedByNodeId) {
    const Circuit c = gen::and_or_chain(12, 3);
    const auto faults = fault::collapse_faults(c);
    const auto cop = testability::compute_cop(c);
    const auto profile = testability::compute_profile(c, cop, faults);
    for (const auto& row : profile.rows)
        for (std::size_t i = 1; i < row.size(); ++i)
            EXPECT_LT(row[i - 1].node.v, row[i].node.v);
}

}  // namespace
