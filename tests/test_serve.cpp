// Tests for the serve subsystem: protocol parsing and framing, the
// fault-injection plan, the session cache, the Server robustness
// contract (golden transcripts, crash isolation, admission control,
// drain), and a socket round-trip through the Listener.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gen/benchmarks.hpp"
#include "netlist/test_point.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "serve/fault_plan.hpp"
#include "serve/listener.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "tpi/planners.hpp"
#include "util/error.hpp"

namespace {

using namespace tpi;
using serve::Code;

// The golden-transcript circuit: three gates, strict-clean, small
// enough that every derived number is cheap and deterministic. A macro
// so it can splice into the string literals of the golden transcript.
#define KBENCH_JSON                                    \
    "INPUT(a)\\nINPUT(b)\\nINPUT(c)\\nOUTPUT(y)\\n"   \
    "w1 = AND(a, b)\\nw2 = OR(w1, c)\\ny = NAND(w2, a)\\n"
constexpr const char* kBenchJson = KBENCH_JSON;

std::string open_line(const std::string& session,
                      const char* circuit_json = kBenchJson) {
    return std::string(R"({"method": "open", "session": ")") + session +
           R"(", "circuit": ")" + circuit_json + R"(", "report": false})";
}

/// Structured error code of a response line ("" when ok:true).
std::string response_code(const std::string& response) {
    obs::json::Value doc;
    std::string error;
    EXPECT_TRUE(obs::json::parse(response, doc, error))
        << response << "\n" << error;
    const obs::json::Value* ok = doc.find("ok");
    if (ok == nullptr || !ok->is_bool()) {
        ADD_FAILURE() << "no boolean ok in: " << response;
        return "?";
    }
    if (ok->boolean) return "";
    const obs::json::Value* err = doc.find("error");
    const obs::json::Value* code =
        err != nullptr ? err->find("code") : nullptr;
    if (code == nullptr || !code->is_string()) {
        ADD_FAILURE() << "no error code in: " << response;
        return "?";
    }
    return code->string;
}

// ---------------------------------------------------------------------
// Protocol: request parsing

TEST(ServeProtocol, ParsesAFullRequest) {
    const serve::Request request = serve::parse_request(
        R"({"id": 7, "method": "plan", "session": "s", "options": )"
        R"({"budget": 3, "patterns": 128, "planner": "greedy", )"
        R"("seed": 9, "deadline_ms": 250.5}})");
    EXPECT_EQ(request.id, 7u);
    EXPECT_EQ(request.method, "plan");
    EXPECT_EQ(request.session, "s");
    EXPECT_EQ(request.budget, 3);
    EXPECT_EQ(request.patterns, 128u);
    EXPECT_EQ(request.planner, "greedy");
    EXPECT_EQ(request.seed, 9u);
    EXPECT_DOUBLE_EQ(request.deadline_ms, 250.5);
}

TEST(ServeProtocol, RejectsNonObjectAndBadJson) {
    for (const char* line : {"[1, 2]", "42", "\"x\"", "{", "", "null"}) {
        try {
            serve::parse_request(line);
            FAIL() << "accepted: " << line;
        } catch (const serve::ServeError& e) {
            EXPECT_EQ(e.serve_code(), Code::Protocol) << line;
        }
    }
}

TEST(ServeProtocol, RejectsUnknownMethodAndUnknownKey) {
    try {
        serve::parse_request(R"({"method": "plant", "session": "s"})");
        FAIL();
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.serve_code(), Code::Usage);
    }
    // Typos in keys must fail loudly, not silently use defaults.
    try {
        serve::parse_request(R"({"method": "ping", "sesion": "s"})");
        FAIL();
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.serve_code(), Code::Usage);
    }
}

TEST(ServeProtocol, RequiresSessionExceptForPingAndInfo) {
    EXPECT_NO_THROW(serve::parse_request(R"({"method": "ping"})"));
    EXPECT_NO_THROW(serve::parse_request(R"({"method": "info"})"));
    try {
        serve::parse_request(R"({"method": "plan"})");
        FAIL();
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.serve_code(), Code::Usage);
    }
}

TEST(ServeProtocol, RejectsNonPositiveDeadline) {
    for (const char* bad : {"0", "-5", "1e999"}) {
        try {
            serve::parse_request(
                std::string(R"({"method": "lint", "session": "s", )"
                            R"("options": {"deadline_ms": )") +
                bad + "}}");
            FAIL() << "accepted deadline_ms " << bad;
        } catch (const serve::ServeError& e) {
            // 1e999 is not even valid JSON under the hardened parser.
            EXPECT_TRUE(e.serve_code() == Code::Validation ||
                        e.serve_code() == Code::Protocol)
                << bad;
        }
    }
}

TEST(ServeProtocol, PeeksIdFromSemanticallyBrokenLines) {
    // Valid JSON with semantic errors (unknown method, bad fields)
    // still yields the id for error correlation...
    EXPECT_EQ(serve::peek_request_id(R"({"id": 31, "method": "pla"})"),
              31u);
    // ...but a torn or non-JSON line cannot be correlated at all.
    EXPECT_EQ(serve::peek_request_id(R"({"id": 31, "method":)"),
              std::nullopt);
    EXPECT_EQ(serve::peek_request_id("garbage"), std::nullopt);
    EXPECT_EQ(serve::peek_request_id(R"({"id": -2})"), std::nullopt);
}

TEST(ServeProtocol, TaxonomyMappingIsStable) {
    EXPECT_EQ(serve::taxonomy_exit_code(Code::Usage), 2);
    EXPECT_EQ(serve::taxonomy_exit_code(Code::NotFound), 2);
    EXPECT_EQ(serve::taxonomy_exit_code(Code::Protocol), 3);
    EXPECT_EQ(serve::taxonomy_exit_code(Code::Parse), 3);
    EXPECT_EQ(serve::taxonomy_exit_code(Code::Validation), 4);
    EXPECT_EQ(serve::taxonomy_exit_code(Code::Limit), 5);
    EXPECT_EQ(serve::taxonomy_exit_code(Code::Deadline), 5);
    EXPECT_EQ(serve::taxonomy_exit_code(Code::Overloaded), 5);
    EXPECT_EQ(serve::taxonomy_exit_code(Code::Draining), 5);
    EXPECT_EQ(serve::taxonomy_exit_code(Code::Internal), 1);
}

TEST(ServeProtocol, ErrorResponseCarriesRetryHint) {
    const std::string response = serve::error_response(
        std::nullopt, Code::Overloaded, "queue full", 40.0);
    EXPECT_EQ(response,
              R"({"id": null, "ok": false, "error": {"code": )"
              R"("overloaded", "message": "queue full", )"
              R"("retry_after_ms": 40}})");
}

// ---------------------------------------------------------------------
// Protocol: line framing

TEST(ServeFramer, ReassemblesAcrossChunksAndStripsCr) {
    serve::LineFramer framer(64);
    std::vector<std::string> lines;
    EXPECT_TRUE(framer.append("abc", lines));
    EXPECT_TRUE(lines.empty());
    EXPECT_EQ(framer.pending_bytes(), 3u);
    EXPECT_TRUE(framer.append("def\r\nsecond\n\nthi", lines));
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "abcdef");
    EXPECT_EQ(lines[1], "second");
    EXPECT_EQ(lines[2], "");  // blank line; the listener skips these
    EXPECT_TRUE(framer.append("rd\n", lines));
    EXPECT_EQ(lines.back(), "third");
}

TEST(ServeFramer, OverflowIsStickyAndClearsTheBuffer) {
    serve::LineFramer framer(8);
    std::vector<std::string> lines;
    EXPECT_FALSE(framer.append("123456789", lines));
    EXPECT_TRUE(framer.overflowed());
    EXPECT_EQ(framer.pending_bytes(), 0u);
    // Even a newline cannot resurrect the stream.
    EXPECT_FALSE(framer.append("\nok\n", lines));
    EXPECT_TRUE(lines.empty());
}

// ---------------------------------------------------------------------
// FaultPlan

TEST(ServeFaultPlan, ParsesSpecsAndCountsDeterministically) {
    serve::FaultPlan plan;
    plan.add_rule("plan:delay:25:every=3");
    plan.add_rule("open:alloc");
    EXPECT_FALSE(plan.empty());
    // every=3: fires on hits 3, 6, ...
    EXPECT_FALSE(plan.poll("plan").has_value());
    EXPECT_FALSE(plan.poll("plan").has_value());
    const auto third = plan.poll("plan");
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->kind, serve::FaultPlan::Kind::Delay);
    EXPECT_DOUBLE_EQ(third->param, 25.0);
    EXPECT_FALSE(plan.poll("plan").has_value());
    // Unrelated sites never fire.
    EXPECT_FALSE(plan.poll("sim").has_value());
    const auto open = plan.poll("open");
    ASSERT_TRUE(open.has_value());
    EXPECT_EQ(open->kind, serve::FaultPlan::Kind::Alloc);
    EXPECT_EQ(plan.fired(), 2u);
}

TEST(ServeFaultPlan, RejectsBadSpecs) {
    serve::FaultPlan plan;
    EXPECT_THROW(plan.add_rule("nowhere:delay"), ValidationError);
    EXPECT_THROW(plan.add_rule("plan:explode"), ValidationError);
    EXPECT_THROW(plan.add_rule("plan:torn"), ValidationError);
    EXPECT_THROW(plan.add_rule("plan:delay:10:every=0"), ValidationError);
    EXPECT_THROW(plan.add_rule(""), ValidationError);
    EXPECT_NO_THROW(plan.add_rule("write:torn:every=2"));
}

// ---------------------------------------------------------------------
// Server: golden request/response transcript
//
// Byte-exact expectations (reports off). These are the wire contract:
// a change here is a protocol change and must be deliberate.

TEST(ServeGolden, TranscriptIsByteStable) {
    serve::Server server({});
    const std::pair<const char*, const char*> transcript[] = {
        {R"({"id": 1, "method": "open", "session": "g", "circuit": )"
         "\"" KBENCH_JSON "\""
         R"(, "format": "bench", "mode": "strict", "report": false})",
         R"({"id": 1, "ok": true, "result": {"session": "g", "nodes": )"
         R"(6, "gates": 3, "inputs": 3, "outputs": 1, "faults": 12, )"
         R"("collapsed_faults": 8, "repairs": 0}})"},
        {R"({"id": 2, "method": "plan", "session": "g", "options": )"
         R"({"budget": 2, "patterns": 64, "planner": "dp", "seed": 1}, )"
         R"("report": false})",
         R"({"id": 2, "ok": true, "result": {"planner": "dp", )"
         R"("points": [{"node": "w1", "kind": "OP"}, {"node": "w2", )"
         R"("kind": "OP"}], "predicted_score": 11.999999969612173, )"
         R"("truncated": false}})"},
        {R"({"id": 3, "method": "sim", "session": "g", "options": )"
         R"({"patterns": 64, "seed": 1}, "report": false})",
         R"({"id": 3, "ok": true, "result": {"coverage": 1, )"
         R"("patterns_applied": 64, "undetected": 0, "dropped": 8, )"
         R"("sim_width": 64, "truncated": false}})"},
        {R"({"id": 4, "method": "sim", "session": "g", "options": )"
         R"({"patterns": 64, "seed": 1, "sim_width": 512, )"
         R"("drop_after": 2}, "report": false})",
         R"({"id": 4, "ok": true, "result": {"coverage": 1, )"
         R"("patterns_applied": 64, "undetected": 0, "dropped": 8, )"
         R"("sim_width": 512, "truncated": false}})"},
        {R"({"id": 5, "method": "lint", "session": "g", )"
         R"("report": false})",
         R"({"id": 5, "ok": true, "result": {"findings": 1, )"
         R"("errors": 0, "warnings": 0, "truncated": false}})"},
        {R"({"id": 6, "method": "score", "session": "g", "points": )"
         R"([{"node": "w1", "kind": "OP"}], "options": )"
         R"({"patterns": 64}, "report": false})",
         R"({"id": 6, "ok": true, "result": {"score": )"
         R"(11.999994890121329, "estimated_coverage": )"
         R"(0.9999995741767774, "min_detection_probability": 0.1875, )"
         R"("points": 1, "engine_warm": false, "engine_version": 1}})"},
        {R"({"id": 7, "method": "score", "session": "g", "points": )"
         R"([{"node": "w1", "kind": "OP"}], "options": )"
         R"({"patterns": 64}, "report": false})",
         R"({"id": 7, "ok": true, "result": {"score": )"
         R"(11.999994890121329, "estimated_coverage": )"
         R"(0.9999995741767774, "min_detection_probability": 0.1875, )"
         R"("points": 1, "engine_warm": true, "engine_version": 1}})"},
        {R"({"id": 8, "method": "close", "session": "g", )"
         R"("report": false})",
         R"({"id": 8, "ok": true, "result": {"closed": true}})"},
    };
    for (const auto& [request, expected] : transcript)
        EXPECT_EQ(server.execute_line(request), expected) << request;
}

TEST(ServeGolden, ReportOnAttachesAParseableRunReport) {
    serve::Server server({});
    server.execute_line(open_line("r"));
    const std::string response = server.execute_line(
        R"({"id": 2, "method": "lint", "session": "r"})");
    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(response, doc, error)) << error;
    const obs::json::Value* report = doc.find("report");
    ASSERT_NE(report, nullptr);
    EXPECT_TRUE(report->is_object());
    const obs::json::Value* exit_code = report->find("exit_code");
    ASSERT_NE(exit_code, nullptr);
    EXPECT_EQ(exit_code->number, 0.0);
    // The embedded report is the PR 4 schema: normalisation for diffing
    // must be idempotent on the full response line as well.
    const std::string normalized = obs::normalized_for_diff(response);
    EXPECT_EQ(obs::normalized_for_diff(normalized), normalized);
}

TEST(ServeGolden, ErrorResponsesStillCarryAReport) {
    serve::Server server({});
    const std::string response = server.execute_line(
        R"({"id": 3, "method": "lint", "session": "missing"})");
    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(response, doc, error)) << error;
    EXPECT_EQ(response_code(response), "not_found");
    const obs::json::Value* report = doc.find("report");
    ASSERT_NE(report, nullptr);
    const obs::json::Value* exit_code = report->find("exit_code");
    ASSERT_NE(exit_code, nullptr);
    EXPECT_EQ(exit_code->number, 2.0);  // not_found -> taxonomy 2
}

// ---------------------------------------------------------------------
// Server: crash isolation / differential state

TEST(ServeIsolation, FailedRequestsLeaveSessionStateByteIdentical) {
    serve::FaultPlan faults;
    faults.add_rule("score:alloc:every=4");     // fires on the 4th score
    faults.add_rule("score:deadline:every=3");  // fires on the 3rd
    serve::ServerOptions options;
    options.faults = &faults;
    serve::Server server(options);
    server.execute_line(open_line("iso"));

    // Warm the engine (score hit 1: no fault).
    const std::string warm = server.execute_line(
        R"({"method": "score", "session": "iso", "points": )"
        R"([{"node": "w1", "kind": "OP"}], "report": false})");
    EXPECT_EQ(response_code(warm), "");
    const std::string fingerprint = server.session_fingerprint("iso");
    ASSERT_FALSE(fingerprint.empty());

    // Validation error (hit 2): rejected before any engine mutation.
    const std::string bad_node = server.execute_line(
        R"({"method": "score", "session": "iso", "points": )"
        R"([{"node": "nope", "kind": "OP"}], "report": false})");
    EXPECT_EQ(response_code(bad_node), "validation");

    // Forced deadline expiry (hit 3): the injected fault cancels the
    // request deadline, so scoring is refused before any engine
    // mutation.
    const std::string blown = server.execute_line(
        R"({"method": "score", "session": "iso", "points": )"
        R"([{"node": "w1", "kind": "OP"}], "report": false})");
    EXPECT_EQ(response_code(blown), "deadline");

    // Injected allocation failure (hit 4). The cached engine is
    // discarded, never half-committed: the version bump is part of the
    // fingerprint, so compare state after re-warming below.
    const std::string alloc = server.execute_line(
        R"({"method": "score", "session": "iso", "points": )"
        R"([{"node": "w1", "kind": "OP"}], "report": false})");
    EXPECT_EQ(response_code(alloc), "internal");

    // A successful score after the abuse: identical numbers, and the
    // COP/fault state fingerprint matches the pre-abuse one except for
    // the engine version counter (bumped by the discard).
    const std::string again = server.execute_line(
        R"({"method": "score", "session": "iso", "points": )"
        R"([{"node": "w1", "kind": "OP"}], "report": false})");
    EXPECT_EQ(response_code(again), "");
    const std::string after = server.session_fingerprint("iso");
    const auto strip_version = [](std::string text) {
        const std::size_t at = text.find("|engine:v");
        if (at == std::string::npos) return text;
        const std::size_t colon = text.find(':', at + 9);
        text.erase(at + 9, (colon == std::string::npos
                                ? text.size()
                                : colon) -
                               (at + 9));
        return text;
    };
    EXPECT_EQ(strip_version(after), strip_version(fingerprint));
}

TEST(ServeIsolation, ErroredRequestNeverTouchesCopOrFaultState) {
    serve::Server server({});
    server.execute_line(open_line("pure"));
    const std::string before = server.session_fingerprint("pure");
    for (const char* line :
         {R"({"method": "score", "session": "pure", "points": )"
          R"([{"node": "ghost", "kind": "OP"}]})",
          R"({"method": "plan", "session": "pure", "options": )"
          R"({"planner": "quantum"}})",
          R"({"method": "sim", "session": "pure", "options": )"
          R"({"deadline_ms": 1e-9}})"}) {
        server.execute_line(line);
    }
    EXPECT_EQ(server.session_fingerprint("pure"), before);
}

// ---------------------------------------------------------------------
// Server: session-cached plan vs the batch planner path

TEST(ServeDifferential, CachedPlanMatchesBatchPlannerBitForBit) {
    serve::Server server({});
    server.execute_line(
        R"({"method": "open", "session": "d", "circuit": "chain24", )"
        R"("format": "suite", "report": false})");
    const std::string response = server.execute_line(
        R"({"method": "plan", "session": "d", "options": {"budget": 2, )"
        R"("patterns": 256, "planner": "dp", "seed": 5}, )"
        R"("report": false})");
    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(response, doc, error)) << error;
    const obs::json::Value* result = doc.find("result");
    ASSERT_NE(result, nullptr) << response;

    const netlist::Circuit circuit = gen::suite_entry("chain24").build();
    PlannerOptions options;
    options.budget = 2;
    options.objective.num_patterns = 256;
    options.seed = 5;
    options.threads = 1;
    options.incremental_eval = true;
    const Plan local = DpPlanner().plan(circuit, options);
    ASSERT_FALSE(local.points.empty());

    const obs::json::Value* points = result->find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->array.size(), local.points.size());
    for (std::size_t i = 0; i < local.points.size(); ++i) {
        EXPECT_EQ(points->array[i].find("node")->string,
                  circuit.node_name(local.points[i].node));
        EXPECT_EQ(points->array[i].find("kind")->string,
                  netlist::tp_kind_name(local.points[i].kind));
    }
    EXPECT_EQ(result->find("predicted_score")->number,
              local.predicted_score);
}

// ---------------------------------------------------------------------
// Server: the analyze method (static analysis engine round-trip)

// AND(x, NOT x) is a contradiction: the analysis engine must learn
// g == 0, prove the masked faults untestable, and report the output as
// a zero-gain observe site (obs(z) along the transparent OR is 1).
#define KCONTRA_JSON                                  \
    "INPUT(x)\\nINPUT(y)\\nOUTPUT(z)\\nnx = NOT(x)\\n" \
    "g = AND(x, nx)\\nz = OR(g, y)\\n"

TEST(ServeAnalyze, RoundTripLearnsConstantsAndUntestableFaults) {
    serve::Server server({});
    EXPECT_EQ(response_code(server.execute_line(
                  open_line("an", KCONTRA_JSON))),
              "");
    const std::string response = server.execute_line(
        R"({"method": "analyze", "session": "an", "report": false})");
    EXPECT_EQ(response_code(response), "");

    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(response, doc, error)) << error;
    const obs::json::Value* result = doc.find("result");
    ASSERT_NE(result, nullptr) << response;
    EXPECT_GT(result->find("nodes")->number, 0.0);
    EXPECT_GT(result->find("implications_learned")->number, 0.0);
    EXPECT_GT(result->find("certificates")->number, 0.0);
    EXPECT_FALSE(result->find("truncated")->boolean);

    // g = AND(x, NOT x) must be learned as the constant 0.
    const obs::json::Value* constants =
        result->find("learned_constants");
    ASSERT_NE(constants, nullptr);
    bool g_is_zero = false;
    for (const obs::json::Value& c : constants->array)
        if (c.find("node")->string == "g" &&
            c.find("value")->number == 0.0)
            g_is_zero = true;
    EXPECT_TRUE(g_is_zero) << response;

    // Faults masked by the constant are reported untestable, and the
    // transparent OR chain makes the output a zero-gain observe site.
    ASSERT_NE(result->find("untestable_faults"), nullptr);
    EXPECT_FALSE(result->find("untestable_faults")->array.empty());
    EXPECT_GE(result->find("zero_gain_observe_sites")->number, 1.0);
}

TEST(ServeAnalyze, PlanWithAnalysisPruneMatchesUnprunedPlan) {
    serve::Server server({});
    server.execute_line(
        R"({"method": "open", "session": "ap", "circuit": "chain24", )"
        R"("format": "suite", "report": false})");
    const char* base =
        R"({"method": "plan", "session": "ap", "options": {"budget": 2, )"
        R"("patterns": 256, "planner": "dp", "seed": 5)";
    const std::string off = server.execute_line(
        std::string(base) + R"(}, "report": false})");
    const std::string on = server.execute_line(
        std::string(base) +
        R"(, "prune_analysis": true}, "report": false})");
    EXPECT_EQ(response_code(off), "");
    EXPECT_EQ(response_code(on), "");

    obs::json::Value doc_off;
    obs::json::Value doc_on;
    std::string error;
    ASSERT_TRUE(obs::json::parse(off, doc_off, error)) << error;
    ASSERT_TRUE(obs::json::parse(on, doc_on, error)) << error;
    const obs::json::Value* result_off = doc_off.find("result");
    const obs::json::Value* result_on = doc_on.find("result");
    ASSERT_NE(result_off, nullptr);
    ASSERT_NE(result_on, nullptr);

    // The prune is exact by construction: identical points, bitwise
    // identical score, and the pruned counter appears only when asked.
    EXPECT_EQ(result_off->find("predicted_score")->number,
              result_on->find("predicted_score")->number);
    const obs::json::Value* points_off = result_off->find("points");
    const obs::json::Value* points_on = result_on->find("points");
    ASSERT_EQ(points_off->array.size(), points_on->array.size());
    for (std::size_t i = 0; i < points_off->array.size(); ++i) {
        EXPECT_EQ(points_off->array[i].find("node")->string,
                  points_on->array[i].find("node")->string);
        EXPECT_EQ(points_off->array[i].find("kind")->string,
                  points_on->array[i].find("kind")->string);
    }
    EXPECT_EQ(result_off->find("candidates_pruned_analysis"), nullptr);
    ASSERT_NE(result_on->find("candidates_pruned_analysis"), nullptr);
}

TEST(ServeAnalyze, WorkCapsAreValidatedNotClamped) {
    serve::Server server({});
    server.execute_line(open_line("av"));
    // A zero step cap is structurally broken input: the analysis layer
    // rejects it (exit-4 contract), it is never silently clamped.
    EXPECT_EQ(response_code(server.execute_line(
                  R"({"method": "analyze", "session": "av", "options": )"
                  R"({"max_implication_steps": 0}, "report": false})")),
              "validation");
    // A typo in an option key fails loudly as usage, not defaults.
    EXPECT_EQ(response_code(server.execute_line(
                  R"({"method": "analyze", "session": "av", "options": )"
                  R"({"max_implication_stepz": 8}, "report": false})")),
              "usage");
    // The session must still be healthy after both errors.
    EXPECT_EQ(response_code(server.execute_line(
                  R"({"method": "analyze", "session": "av", )"
                  R"("report": false})")),
              "");
}

// ---------------------------------------------------------------------
// Server: admission control, shedding, drain

TEST(ServeAdmission, QueueFullShedsWithRetryHint) {
    serve::FaultPlan faults;
    faults.add_rule("plan:delay:30:every=1");
    serve::ServerOptions options;
    options.max_queue = 2;
    options.workers = 1;
    options.max_batch = 1;
    options.faults = &faults;
    serve::Server server(options);
    server.execute_line(open_line("adm"));
    server.start();

    constexpr int kBurst = 12;
    std::vector<std::string> responses(kBurst);
    std::atomic<int> answered{0};
    for (int i = 0; i < kBurst; ++i)
        server.submit(
            R"({"method": "plan", "session": "adm", "options": )"
            R"({"budget": 1, "patterns": 32}, "report": false})",
            [&responses, &answered, i](std::string&& response) {
                responses[i] = std::move(response);
                ++answered;
            });
    server.drain();
    ASSERT_EQ(answered.load(), kBurst);  // every callback fired once

    int ok = 0;
    int shed = 0;
    for (const std::string& response : responses) {
        const std::string code = response_code(response);
        if (code.empty())
            ++ok;
        else if (code == "overloaded") {
            ++shed;
            EXPECT_NE(response.find("retry_after_ms"), std::string::npos);
        } else
            ADD_FAILURE() << "unexpected code " << code << ": "
                          << response;
    }
    EXPECT_GT(ok, 0);
    EXPECT_GT(shed, 0);
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.shed_overload, static_cast<std::uint64_t>(shed));
    EXPECT_EQ(stats.accepted, stats.completed);
}

TEST(ServeAdmission, DrainFinishesAdmittedWorkThenRefuses) {
    serve::Server server({});
    server.execute_line(open_line("dr"));
    server.start();
    std::atomic<int> answered{0};
    std::vector<std::string> responses(4);
    for (int i = 0; i < 4; ++i)
        server.submit(
            R"({"method": "stats", "session": "dr", "report": false})",
            [&responses, &answered, i](std::string&& response) {
                responses[i] = std::move(response);
                ++answered;
            });
    server.drain();
    EXPECT_EQ(answered.load(), 4);
    for (const std::string& response : responses)
        EXPECT_EQ(response_code(response), "") << response;

    // After drain, submissions are refused with the draining code.
    std::string refused;
    server.submit(R"({"method": "ping"})",
                  [&refused](std::string&& response) {
                      refused = std::move(response);
                  });
    EXPECT_EQ(response_code(refused), "draining");
    EXPECT_TRUE(server.draining());
    EXPECT_EQ(server.stats().queue_depth, 0u);
}

// ---------------------------------------------------------------------
// Session cache: LRU eviction and limits

TEST(ServeCache, EvictsLeastRecentlyUsedSession) {
    serve::ServerOptions options;
    options.session_limits.max_sessions = 2;
    serve::Server server(options);
    server.execute_line(open_line("a"));
    server.execute_line(open_line("b"));
    // Touch "a" so "b" is now least recently used.
    server.execute_line(
        R"({"method": "stats", "session": "a", "report": false})");
    server.execute_line(open_line("c"));

    EXPECT_EQ(response_code(server.execute_line(
                  R"({"method": "stats", "session": "b"})")),
              "not_found");
    EXPECT_EQ(response_code(server.execute_line(
                  R"({"method": "stats", "session": "a"})")),
              "");
    EXPECT_EQ(response_code(server.execute_line(
                  R"({"method": "stats", "session": "c"})")),
              "");
    EXPECT_EQ(server.sessions().stats().evictions, 1u);
    EXPECT_EQ(server.sessions().stats().sessions, 2u);
}

TEST(ServeCache, ResidentNodeCapEvictsAndOversizeIsRefused) {
    serve::ServerOptions options;
    options.session_limits.max_sessions = 8;
    // chain24 has a few dozen nodes; two of them cannot coexist.
    options.session_limits.max_resident_nodes = 60;
    serve::Server server(options);
    const auto open_suite = [&](const char* name, const char* circuit) {
        return server.execute_line(
            std::string(R"({"method": "open", "session": ")") + name +
            R"(", "circuit": ")" + circuit +
            R"(", "format": "suite", "report": false})");
    };
    EXPECT_EQ(response_code(open_suite("one", "chain24")), "");
    EXPECT_EQ(response_code(open_suite("two", "chain24")), "");
    EXPECT_EQ(response_code(server.execute_line(
                  R"({"method": "stats", "session": "one"})")),
              "not_found");
    EXPECT_GE(server.sessions().stats().evictions, 1u);
    // A single circuit bigger than the cap is refused outright and
    // does not evict anything.
    const std::uint64_t evictions_before =
        server.sessions().stats().evictions;
    EXPECT_EQ(response_code(open_suite("big", "dag500")), "limit");
    EXPECT_EQ(server.sessions().stats().evictions, evictions_before);
    EXPECT_EQ(response_code(server.execute_line(
                  R"({"method": "stats", "session": "two"})")),
              "");
}

// ---------------------------------------------------------------------
// Listener: socket round-trip

class SocketClient {
public:
    explicit SocketClient(const std::string& path) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~SocketClient() {
        if (fd_ >= 0) ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    void send_line(const std::string& line) { send_all(line + "\n"); }

    void send_all(const std::string& data) {
        ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(data.size()));
    }

    std::string recv_line() {
        for (;;) {
            const std::size_t eol = buffer_.find('\n');
            if (eol != std::string::npos) {
                const std::string line = buffer_.substr(0, eol);
                buffer_.erase(0, eol + 1);
                return line;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) return {};
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

    bool eof() {
        char byte;
        for (;;) {
            const ssize_t n = ::recv(fd_, &byte, 1, 0);
            if (n == 0) return true;
            if (n < 0) return false;
        }
    }

private:
    int fd_ = -1;
    std::string buffer_;
};

std::string test_socket_path() {
    return "/tmp/tpidp_test_" + std::to_string(::getpid()) + ".sock";
}

TEST(ServeListener, UnixSocketRoundTripAndOrderedPipelining) {
    serve::Server server({});
    serve::ListenerOptions options;
    options.endpoint.unix_path = test_socket_path();
    serve::Listener listener(server, options);
    server.start();
    listener.start();

    SocketClient client(options.endpoint.unix_path);
    ASSERT_TRUE(client.ok());
    client.send_line(R"({"id": 1, "method": "ping", "report": false})");
    EXPECT_EQ(client.recv_line(),
              R"({"id": 1, "ok": true, "result": {"pong": true}})");

    // Pipelined requests come back in submission order.
    std::string burst;
    for (int i = 2; i <= 9; ++i)
        burst += R"({"id": )" + std::to_string(i) +
                 R"(, "method": "ping", "report": false})" + "\n";
    client.send_all(burst);
    for (int i = 2; i <= 9; ++i)
        EXPECT_EQ(client.recv_line(),
                  R"({"id": )" + std::to_string(i) +
                      R"(, "ok": true, "result": {"pong": true}})");

    listener.shutdown();
    ::unlink(options.endpoint.unix_path.c_str());
}

TEST(ServeListener, OversizedLineGetsOneProtocolErrorThenEof) {
    serve::Server server({});
    serve::ListenerOptions options;
    options.endpoint.unix_path = test_socket_path() + ".big";
    options.max_line_bytes = 128;
    serve::Listener listener(server, options);
    server.start();
    listener.start();

    SocketClient client(options.endpoint.unix_path);
    ASSERT_TRUE(client.ok());
    client.send_line(std::string(256, 'x'));
    const std::string response = client.recv_line();
    EXPECT_EQ(response_code(response), "protocol");
    EXPECT_TRUE(client.eof());

    listener.shutdown();
    ::unlink(options.endpoint.unix_path.c_str());
}

TEST(ServeListener, TcpLoopbackWithKernelPickedPort) {
    serve::Server server({});
    serve::ListenerOptions options;
    options.endpoint.tcp = true;
    options.endpoint.tcp_port = 0;
    serve::Listener listener(server, options);
    server.start();
    listener.start();
    ASSERT_NE(listener.port(), 0);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(listener.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string ping = "{\"method\": \"ping\"}\n";
    ASSERT_EQ(::send(fd, ping.data(), ping.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(ping.size()));
    std::string buffer;
    char chunk[512];
    while (buffer.find('\n') == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        ASSERT_GT(n, 0);
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
    EXPECT_NE(buffer.find("\"pong\": true"), std::string::npos);
    ::close(fd);
    listener.shutdown();
}

}  // namespace
