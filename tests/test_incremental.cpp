// Differential suite for the incremental evaluation engine.
//
// The contract under test: with eval_epsilon == 0, every quantity the
// engine maintains — COP state, per-fault detection probabilities, the
// objective score, full plan evaluations, and the exported CopResult —
// is *bit-identical* to the reference path that materialises the plan
// with apply_test_points and recomputes COP from scratch. The planner
// tests then assert the consequence: every planner produces the
// identical plan with the engine on and off, at every thread count.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "gen/benchmarks.hpp"
#include "gen/random_circuits.hpp"
#include "netlist/transform.hpp"
#include "obs/obs.hpp"
#include "testability/cop.hpp"
#include "testability/incremental_cop.hpp"
#include "tpi/eval_engine.hpp"
#include "tpi/evaluate.hpp"
#include "tpi/planners.hpp"
#include "tpi/threshold.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace tpi;
using netlist::Circuit;
using netlist::NodeId;
using netlist::TestPoint;
using netlist::TpKind;

void expect_identical_eval(const PlanEvaluation& oracle,
                           const PlanEvaluation& engine) {
    ASSERT_EQ(oracle.detection_probability.size(),
              engine.detection_probability.size());
    EXPECT_EQ(oracle.detection_probability, engine.detection_probability);
    EXPECT_EQ(oracle.score, engine.score);
    EXPECT_EQ(oracle.estimated_coverage, engine.estimated_coverage);
    EXPECT_EQ(oracle.min_detection_probability,
              engine.min_detection_probability);
}

/// The candidate kinds cycled through by the stress drivers.
constexpr TpKind kKinds[] = {TpKind::Observe, TpKind::ControlAnd,
                            TpKind::ControlOr, TpKind::ControlXor};

// ---------------------------------------------------------------------
// IncrementalCop vs compute_cop(apply_test_points(...))

class IncrementalCopDifferential
    : public ::testing::TestWithParam<const char*> {};

TEST_P(IncrementalCopDifferential, AppliedPointsMatchFromScratchCop) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    testability::IncrementalCop inc(circuit);

    // Spread every kind across the circuit, committing as we go; after
    // each commit the maintained state must equal the from-scratch COP
    // of the materialised transform at every original site.
    std::vector<TestPoint> points;
    util::Rng rng(7);
    std::vector<bool> has_control(circuit.node_count(), false);
    std::vector<bool> has_observe(circuit.node_count(), false);
    for (int step = 0; step < 12; ++step) {
        const NodeId node{
            static_cast<std::uint32_t>(rng.below(circuit.node_count()))};
        const TpKind kind = kKinds[rng.below(4)];
        auto& present =
            netlist::is_control(kind) ? has_control : has_observe;
        if (present[node.v]) continue;
        present[node.v] = true;

        points.push_back({node, kind});
        inc.apply(points.back());
        inc.commit();

        const netlist::TransformResult dft =
            netlist::apply_test_points(circuit, points);
        const testability::CopResult cop =
            testability::compute_cop(dft.circuit);
        for (NodeId v : circuit.all_nodes()) {
            const NodeId site = dft.node_map[v.v];
            ASSERT_EQ(cop.c1[site.v], inc.c1(v))
                << "c1 mismatch at node " << v.v << " step " << step;
            ASSERT_EQ(cop.obs[site.v], inc.site_obs(v))
                << "obs mismatch at node " << v.v << " step " << step;
        }
    }
}

TEST_P(IncrementalCopDifferential, RollbackRestoresStateBitwise) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    testability::IncrementalCop inc(circuit);
    const std::vector<double> c1_before = [&] {
        std::vector<double> out;
        for (NodeId v : circuit.all_nodes()) out.push_back(inc.c1(v));
        return out;
    }();
    const std::vector<double> obs_before = [&] {
        std::vector<double> out;
        for (NodeId v : circuit.all_nodes()) out.push_back(inc.site_obs(v));
        return out;
    }();

    util::Rng rng(23);
    for (int trial = 0; trial < 8; ++trial) {
        // Push a small random stack, then unwind it completely.
        std::vector<bool> has_control(circuit.node_count(), false);
        std::vector<bool> has_observe(circuit.node_count(), false);
        std::size_t pushed = 0;
        for (int step = 0; step < 5; ++step) {
            const NodeId node{static_cast<std::uint32_t>(
                rng.below(circuit.node_count()))};
            const TpKind kind = kKinds[rng.below(4)];
            auto& present =
                netlist::is_control(kind) ? has_control : has_observe;
            if (present[node.v]) continue;
            present[node.v] = true;
            inc.apply({node, kind});
            ++pushed;
        }
        while (pushed-- > 0) inc.rollback();
        ASSERT_EQ(inc.depth(), 0u);
        std::size_t i = 0;
        for (NodeId v : circuit.all_nodes()) {
            ASSERT_EQ(c1_before[i], inc.c1(v)) << "trial " << trial;
            ASSERT_EQ(obs_before[i], inc.site_obs(v)) << "trial " << trial;
            ++i;
        }
    }
}

TEST_P(IncrementalCopDifferential, ExportCopMatchesFromScratch) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    testability::IncrementalCop inc(circuit);
    std::vector<TestPoint> points;
    util::Rng rng(41);
    std::vector<bool> has_control(circuit.node_count(), false);
    std::vector<bool> has_observe(circuit.node_count(), false);
    for (int step = 0; step < 6; ++step) {
        const NodeId node{
            static_cast<std::uint32_t>(rng.below(circuit.node_count()))};
        const TpKind kind = kKinds[rng.below(4)];
        auto& present =
            netlist::is_control(kind) ? has_control : has_observe;
        if (present[node.v]) continue;
        present[node.v] = true;
        points.push_back({node, kind});
        inc.apply(points.back());
        inc.commit();
    }

    const netlist::TransformResult dft =
        netlist::apply_test_points(circuit, points);
    const testability::CopResult reference =
        testability::compute_cop(dft.circuit);
    const testability::CopResult exported = inc.export_cop(dft);
    // Whole-vector bitwise equality: original nets, override gates, and
    // the fresh test-signal inputs alike.
    EXPECT_EQ(reference.c1, exported.c1);
    EXPECT_EQ(reference.obs, exported.obs);
}

INSTANTIATE_TEST_SUITE_P(BundledBenches, IncrementalCopDifferential,
                         ::testing::Values("c17", "cmp32", "chain24",
                                           "dag500"));

// ---------------------------------------------------------------------
// EvalEngine vs evaluate_plan

class EvalEngineDifferential
    : public ::testing::TestWithParam<const char*> {};

TEST_P(EvalEngineDifferential, InterleavedStackMatchesOracle) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);
    const Objective objective;
    EvalEngine engine(circuit, faults, objective);

    // Random interleaving of push / pop / commit. The oracle plan is the
    // committed points followed by the open stack, in order; after every
    // operation the engine's full evaluation must equal evaluate_plan on
    // that plan bit-for-bit.
    std::vector<TestPoint> committed;
    std::vector<TestPoint> open;
    std::vector<bool> has_control(circuit.node_count(), false);
    std::vector<bool> has_observe(circuit.node_count(), false);
    util::Rng rng(3);
    for (int step = 0; step < 40; ++step) {
        const std::size_t op = rng.below(4);
        if (op == 0 && !open.empty()) {
            const TestPoint tp = open.back();
            open.pop_back();
            engine.pop();
            (netlist::is_control(tp.kind) ? has_control
                                          : has_observe)[tp.node.v] = false;
        } else if (op == 1 && open.size() == 1) {
            committed.push_back(open.back());
            open.pop_back();
            engine.commit();
        } else {
            const NodeId node{static_cast<std::uint32_t>(
                rng.below(circuit.node_count()))};
            const TpKind kind = kKinds[rng.below(4)];
            auto& present =
                netlist::is_control(kind) ? has_control : has_observe;
            if (present[node.v]) continue;
            present[node.v] = true;
            open.push_back({node, kind});
            engine.push(open.back());
        }

        std::vector<TestPoint> plan = committed;
        plan.insert(plan.end(), open.begin(), open.end());
        const PlanEvaluation oracle =
            evaluate_plan(circuit, faults, plan, objective);
        const PlanEvaluation incremental = engine.evaluation();
        ASSERT_EQ(oracle.score, incremental.score) << "step " << step;
        expect_identical_eval(oracle, incremental);
    }
}

TEST_P(EvalEngineDifferential, ScoreCandidateMatchesOracleAndRestores) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);
    const Objective objective;
    EvalEngine engine(circuit, faults, objective);

    const double base = engine.score();
    util::Rng rng(11);
    for (int trial = 0; trial < 16; ++trial) {
        const NodeId node{
            static_cast<std::uint32_t>(rng.below(circuit.node_count()))};
        const TpKind kind = kKinds[rng.below(4)];
        const TestPoint tp{node, kind};
        const double expected =
            evaluate_plan(circuit, faults, {{tp}}, objective).score;
        EXPECT_EQ(expected, engine.score_candidate(tp));
        // score_candidate is push + score + pop: the base state must be
        // restored exactly.
        EXPECT_EQ(base, engine.score());
    }
}

TEST_P(EvalEngineDifferential, BatchScoresAreLaneIndependent) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);
    const Objective objective;
    EvalEngine engine(circuit, faults, objective);

    std::vector<TestPoint> candidates;
    util::Rng rng(17);
    for (int i = 0; i < 24; ++i) {
        const NodeId node{
            static_cast<std::uint32_t>(rng.below(circuit.node_count()))};
        candidates.push_back({node, kKinds[rng.below(4)]});
    }
    const std::vector<double> serial =
        engine.score_batch(candidates, 1);
    for (unsigned threads : {2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_EQ(serial, engine.score_batch(candidates, threads));
    }
    // And against the oracle.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const double expected =
            evaluate_plan(circuit, faults, {{candidates[i]}}, objective)
                .score;
        EXPECT_EQ(expected, serial[i]) << "candidate " << i;
    }
}

TEST_P(EvalEngineDifferential, BatchAfterCommitsResyncsLanes) {
    const Circuit circuit = gen::suite_entry(GetParam()).build();
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);
    const Objective objective;
    EvalEngine engine(circuit, faults, objective);

    std::vector<TestPoint> candidates;
    util::Rng rng(29);
    for (int i = 0; i < 12; ++i) {
        const NodeId node{
            static_cast<std::uint32_t>(rng.below(circuit.node_count()))};
        candidates.push_back({node, kKinds[rng.below(4)]});
    }
    // Warm the lane clones on the empty base, then commit a point and
    // re-batch: stale clones must resync before scoring.
    (void)engine.score_batch(candidates, 8);
    std::vector<TestPoint> committed;
    for (const TestPoint& tp : candidates) {
        if (netlist::is_control(tp.kind)) continue;
        committed.push_back(tp);
        engine.push(tp);
        engine.commit();
        break;
    }
    ASSERT_EQ(committed.size(), 1u) << "no observe candidate drawn";
    // Drop candidates that would duplicate the committed placement (the
    // transform contract rejects those on both paths).
    std::vector<TestPoint> remaining;
    for (const TestPoint& tp : candidates) {
        if (tp.node == committed[0].node &&
            netlist::is_control(tp.kind) ==
                netlist::is_control(committed[0].kind))
            continue;
        remaining.push_back(tp);
    }
    const std::vector<double> parallel =
        engine.score_batch(remaining, 8);
    for (std::size_t i = 0; i < remaining.size(); ++i) {
        std::vector<TestPoint> plan = committed;
        plan.push_back(remaining[i]);
        const double expected =
            evaluate_plan(circuit, faults, plan, objective).score;
        EXPECT_EQ(expected, parallel[i]) << "candidate " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(BundledBenches, EvalEngineDifferential,
                         ::testing::Values("c17", "cmp32", "dag500"));

TEST(EvalEngineDifferential, ThresholdObjectiveAlsoBitIdentical) {
    const Circuit circuit = gen::suite_entry("cmp32").build();
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);
    Objective objective;
    objective.kind = Objective::Kind::ThresholdLinear;
    objective.threshold = 1.0 / 512.0;
    EvalEngine engine(circuit, faults, objective);
    util::Rng rng(5);
    for (int trial = 0; trial < 8; ++trial) {
        const NodeId node{
            static_cast<std::uint32_t>(rng.below(circuit.node_count()))};
        const TestPoint tp{node, kKinds[rng.below(4)]};
        EXPECT_EQ(evaluate_plan(circuit, faults, {{tp}}, objective).score,
                  engine.score_candidate(tp));
    }
}

TEST(EvalEngineDifferential, EpsilonCutoffStaysNearTheOracle) {
    const Circuit circuit = gen::suite_entry("dag500").build();
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);
    const Objective objective;
    EvalEngine engine(circuit, faults, objective, nullptr,
                      /*epsilon=*/1e-6);
    util::Rng rng(13);
    for (int trial = 0; trial < 8; ++trial) {
        const NodeId node{
            static_cast<std::uint32_t>(rng.below(circuit.node_count()))};
        const TestPoint tp{node, kKinds[rng.below(4)]};
        const double oracle =
            evaluate_plan(circuit, faults, {{tp}}, objective).score;
        // Approximate mode: close, not bitwise.
        EXPECT_NEAR(oracle, engine.score_candidate(tp),
                    1e-3 * (1.0 + std::abs(oracle)));
    }
}

TEST(EvalEngineDifferential, EngineCountersAreRecorded) {
    const Circuit circuit = gen::suite_entry("c17").build();
    const fault::CollapsedFaults faults = fault::singleton_faults(circuit);
    obs::Sink sink;
    EvalEngine engine(circuit, faults, Objective{}, &sink);
    engine.score_candidate({NodeId{0}, TpKind::Observe});
    engine.push({NodeId{0}, TpKind::Observe});
    engine.commit();
    EXPECT_EQ(sink.value(obs::Counter::EngineEvaluations), 1u);
    EXPECT_EQ(sink.value(obs::Counter::EngineRollbacks), 1u);
    EXPECT_EQ(sink.value(obs::Counter::EngineCommits), 1u);
    EXPECT_GT(sink.value(obs::Counter::EngineNodesTouched), 0u);
}

// ---------------------------------------------------------------------
// Planners: identical plans with the engine on and off

template <typename PlannerT>
void expect_planner_engine_invariant(const char* bench, int budget,
                                     std::initializer_list<unsigned>
                                         thread_counts) {
    const Circuit circuit = gen::suite_entry(bench).build();
    PlannerT planner;
    PlannerOptions options;
    options.budget = budget;
    options.objective.num_patterns = 2048;

    options.incremental_eval = false;
    options.threads = 1;
    const Plan reference = planner.plan(circuit, options);

    options.incremental_eval = true;
    for (unsigned threads : thread_counts) {
        SCOPED_TRACE(std::string(bench) +
                     " threads=" + std::to_string(threads));
        options.threads = threads;
        const Plan incremental = planner.plan(circuit, options);
        EXPECT_EQ(reference.points, incremental.points);
        EXPECT_EQ(reference.predicted_score, incremental.predicted_score);
        EXPECT_EQ(reference.truncated, incremental.truncated);
    }
}

TEST(PlannerEngineDifferential, GreedyIsInvariant) {
    for (const char* bench : {"c17", "cmp32", "dag500"})
        expect_planner_engine_invariant<GreedyPlanner>(bench, 6,
                                                       {1u, 2u, 8u});
}

TEST(PlannerEngineDifferential, DpIsInvariant) {
    for (const char* bench : {"cmp32", "aochain32", "dag500"})
        expect_planner_engine_invariant<DpPlanner>(bench, 6, {1u, 2u, 8u});
}

TEST(PlannerEngineDifferential, RandomIsInvariant) {
    expect_planner_engine_invariant<RandomPlanner>("cmp32", 6, {1u, 8u});
}

TEST(PlannerEngineDifferential, ExhaustiveIsInvariant) {
    expect_planner_engine_invariant<ExhaustivePlanner>("c17", 2, {1u});
}

TEST(PlannerEngineDifferential, GreedyWithPruningIsInvariant) {
    const Circuit circuit = gen::suite_entry("cmp32").build();
    GreedyPlanner planner;
    PlannerOptions options;
    options.budget = 4;
    options.objective.num_patterns = 1024;
    options.prune_via_lint = true;

    options.incremental_eval = false;
    const Plan reference = planner.plan(circuit, options);
    options.incremental_eval = true;
    const Plan incremental = planner.plan(circuit, options);
    EXPECT_EQ(reference.points, incremental.points);
    EXPECT_EQ(reference.predicted_score, incremental.predicted_score);
}

TEST(PlannerEngineDifferential, ThresholdSweepIsInvariant) {
    const Circuit circuit = gen::suite_entry("cmp32").build();
    DpPlanner planner;
    PlannerOptions options;
    options.objective.num_patterns = 1024;
    ThresholdGoal goal;
    goal.estimated_coverage = 0.9;

    options.incremental_eval = false;
    const ThresholdResult reference =
        solve_min_points(circuit, planner, options, goal, 6);
    options.incremental_eval = true;
    const ThresholdResult incremental =
        solve_min_points(circuit, planner, options, goal, 6);
    EXPECT_EQ(reference.feasible, incremental.feasible);
    EXPECT_EQ(reference.budget_used, incremental.budget_used);
    EXPECT_EQ(reference.plan.points, incremental.plan.points);
    EXPECT_EQ(reference.evaluation.score, incremental.evaluation.score);
}

// ---------------------------------------------------------------------
// Cost-model validation at plan entry

TEST(PlannerOptionsValidation, ZeroObserveCostIsRejected) {
    const Circuit circuit = gen::suite_entry("c17").build();
    PlannerOptions options;
    options.cost.observe = 0;
    GreedyPlanner greedy;
    EXPECT_THROW(greedy.plan(circuit, options), ValidationError);
    DpPlanner dp;
    EXPECT_THROW(dp.plan(circuit, options), ValidationError);
    RandomPlanner random;
    EXPECT_THROW(random.plan(circuit, options), ValidationError);
    ExhaustivePlanner exhaustive;
    EXPECT_THROW(exhaustive.plan(circuit, options), ValidationError);
}

TEST(PlannerOptionsValidation, NegativeControlCostIsRejected) {
    const Circuit circuit = gen::suite_entry("c17").build();
    PlannerOptions options;
    options.cost.control = -3;
    GreedyPlanner greedy;
    EXPECT_THROW(greedy.plan(circuit, options), ValidationError);
    DpPlanner dp;
    EXPECT_THROW(dp.plan(circuit, options), ValidationError);
}

TEST(PlannerOptionsValidation, NegativeEpsilonIsRejected) {
    const Circuit circuit = gen::suite_entry("c17").build();
    PlannerOptions options;
    options.eval_epsilon = -1e-9;
    GreedyPlanner greedy;
    EXPECT_THROW(greedy.plan(circuit, options), ValidationError);
}

TEST(PlannerOptionsValidation, ErrorCodeMapsToValidationExit) {
    try {
        validate_planner_options(
            [] {
                PlannerOptions o;
                o.cost.control = 0;
                return o;
            }(),
            "Test");
        FAIL() << "expected ValidationError";
    } catch (const ValidationError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Validation);
        EXPECT_NE(std::string(e.what()).find("cost model"),
                  std::string::npos);
    }
}

}  // namespace
