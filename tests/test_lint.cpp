#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <optional>
#include <string>
#include <vector>

#include "atpg/podem.hpp"
#include "fault/fault.hpp"
#include "gen/arith.hpp"
#include "gen/benchmarks.hpp"
#include "gen/chains.hpp"
#include "gen/random_circuits.hpp"
#include "lint/lint.hpp"
#include "lint/report.hpp"
#include "lint/ternary.hpp"
#include "sim/logic_sim.hpp"
#include "testability/cop.hpp"
#include "tpi/evaluate.hpp"
#include "tpi/planners.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"

namespace {

using namespace tpi;
using namespace tpi::netlist;
using lint::Ternary;

/// The planted lint gadget zoo: one trigger per built-in rule.
///   tie (CONST0), k = AND(u1, tie)  -> constant nets
///   u1 = XOR(a, c), only consumer k -> unobservable (blocked) net
///   dup1 = AND(a, b), dup2 = AND(b, a) -> duplicate gates
///   s -> n1/n2 -> rec                 -> reconvergent fanout
Circuit lint_gadget_circuit() {
    Circuit c("gadgets");
    const NodeId a = c.add_input("a");
    const NodeId b = c.add_input("b");
    const NodeId ci = c.add_input("c");
    const NodeId d = c.add_input("d");
    const NodeId tie = c.add_const(false, "tie");
    const NodeId u1 = c.add_gate(GateType::Xor, {a, ci}, "u1");
    const NodeId k = c.add_gate(GateType::And, {u1, tie}, "k");
    const NodeId dup1 = c.add_gate(GateType::And, {a, b}, "dup1");
    const NodeId dup2 = c.add_gate(GateType::And, {b, a}, "dup2");
    const NodeId s = c.add_gate(GateType::Or, {ci, d}, "s");
    const NodeId n1 = c.add_gate(GateType::Nand, {s, a}, "n1");
    const NodeId n2 = c.add_gate(GateType::And, {s, b}, "n2");
    const NodeId rec = c.add_gate(GateType::Or, {n1, n2}, "rec");
    const NodeId live = c.add_gate(GateType::Or, {dup1, dup2}, "live");
    const NodeId m = c.add_gate(GateType::Or, {rec, live}, "m");
    const NodeId out = c.add_gate(GateType::Or, {m, k}, "out");
    c.mark_output(out);
    return c;
}

/// Exhaustive ground truth: simulate all 2^n input patterns and report
/// the node's value when it is the same under every one of them.
std::optional<bool> exhaustive_constant(const Circuit& circuit, NodeId v) {
    const std::size_t n = circuit.input_count();
    EXPECT_LE(n, 16u) << "exhaustive_constant: too many inputs";
    const std::uint64_t total = std::uint64_t{1} << n;
    sim::LogicSimulator simulator(circuit);
    std::vector<std::uint64_t> words(n);
    std::uint64_t ones = 0;
    std::uint64_t count = 0;
    for (std::uint64_t base = 0; base < total; base += 64) {
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t w = 0;
            for (std::uint64_t j = 0; j < 64 && base + j < total; ++j)
                if (((base + j) >> i) & 1) w |= std::uint64_t{1} << j;
            words[i] = w;
        }
        simulator.simulate_block(words);
        const std::uint64_t valid = std::min<std::uint64_t>(64, total - base);
        const std::uint64_t mask =
            valid == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << valid) - 1;
        ones += std::popcount(simulator.value(v) & mask);
        count += valid;
    }
    if (ones == 0) return false;
    if (ones == count) return true;
    return std::nullopt;
}

// ---- ternary evaluation ------------------------------------------------

TEST(Ternary, GateDominanceRules) {
    using lint::eval_ternary;
    const Ternary zx[] = {Ternary::Zero, Ternary::X};
    const Ternary ox[] = {Ternary::One, Ternary::X};
    const Ternary xx[] = {Ternary::X, Ternary::X};
    const Ternary oo[] = {Ternary::One, Ternary::One};
    // A controlling input decides the gate regardless of X siblings.
    EXPECT_EQ(eval_ternary(GateType::And, zx), Ternary::Zero);
    EXPECT_EQ(eval_ternary(GateType::Nand, zx), Ternary::One);
    EXPECT_EQ(eval_ternary(GateType::Or, ox), Ternary::One);
    EXPECT_EQ(eval_ternary(GateType::Nor, ox), Ternary::Zero);
    // No controlling input, some X input: unknown.
    EXPECT_EQ(eval_ternary(GateType::And, ox), Ternary::X);
    EXPECT_EQ(eval_ternary(GateType::Or, zx), Ternary::X);
    // Parity gates are X as soon as any input is X.
    EXPECT_EQ(eval_ternary(GateType::Xor, zx), Ternary::X);
    EXPECT_EQ(eval_ternary(GateType::Xor, ox), Ternary::X);
    EXPECT_EQ(eval_ternary(GateType::Xnor, xx), Ternary::X);
    EXPECT_EQ(eval_ternary(GateType::Xor, oo), Ternary::Zero);
    // Unary gates.
    const Ternary one[] = {Ternary::One};
    const Ternary unknown[] = {Ternary::X};
    EXPECT_EQ(eval_ternary(GateType::Not, one), Ternary::Zero);
    EXPECT_EQ(eval_ternary(GateType::Buf, one), Ternary::One);
    EXPECT_EQ(eval_ternary(GateType::Not, unknown), Ternary::X);
}

TEST(Ternary, EvaluateMatchesConcreteSimulation) {
    // With fully defined inputs the ternary evaluator is an ordinary
    // logic simulator.
    const Circuit circuit = gen::c17();
    const std::size_t n = circuit.input_count();
    for (std::uint32_t assignment = 0; assignment < (1u << n); ++assignment) {
        std::vector<Ternary> in(n);
        for (std::size_t i = 0; i < n; ++i)
            in[i] = lint::to_ternary(((assignment >> i) & 1) != 0);
        const std::vector<Ternary> values =
            lint::evaluate_ternary(circuit, in);
        for (NodeId v : circuit.all_nodes()) {
            ASSERT_TRUE(lint::is_defined(values[v.v]));
            std::vector<std::uint64_t> words(n);
            for (std::size_t i = 0; i < n; ++i)
                words[i] = ((assignment >> i) & 1) ? ~std::uint64_t{0} : 0;
            sim::LogicSimulator simulator(circuit);
            simulator.simulate_block(words);
            EXPECT_EQ(lint::ternary_bool(values[v.v]),
                      (simulator.value(v) & 1) != 0);
        }
    }
}

TEST(Ternary, ConstantPropagationOnGadgets) {
    const Circuit circuit = lint_gadget_circuit();
    const std::vector<Ternary> value = lint::propagate_constants(circuit);
    EXPECT_EQ(value[circuit.find("tie").v], Ternary::Zero);
    EXPECT_EQ(value[circuit.find("k").v], Ternary::Zero);
    EXPECT_EQ(value[circuit.find("u1").v], Ternary::X);
    EXPECT_EQ(value[circuit.find("out").v], Ternary::X);
    for (NodeId pi : circuit.inputs()) EXPECT_EQ(value[pi.v], Ternary::X);
}

TEST(Ternary, ProvenConstantsHoldExhaustively) {
    // Soundness: every net the lattice proves constant is constant under
    // all 2^n input assignments (checked by exhaustive simulation).
    const Circuit circuits[] = {lint_gadget_circuit(), gen::c17(),
                                gen::equality_comparator(4)};
    for (const Circuit& circuit : circuits) {
        const std::vector<Ternary> value = lint::propagate_constants(circuit);
        for (NodeId v : circuit.all_nodes()) {
            if (!lint::is_defined(value[v.v])) continue;
            const std::optional<bool> truth = exhaustive_constant(circuit, v);
            ASSERT_TRUE(truth.has_value())
                << circuit.name() << ": " << circuit.node_name(v);
            EXPECT_EQ(*truth, lint::ternary_bool(value[v.v]));
        }
    }
}

TEST(Ternary, ObservableMaskOnGadgets) {
    const Circuit circuit = lint_gadget_circuit();
    const std::vector<Ternary> value = lint::propagate_constants(circuit);
    const std::vector<bool> obs = lint::observable_mask(circuit, value);
    // u1's only path runs through AND(u1, tie) with tie proven 0.
    EXPECT_FALSE(obs[circuit.find("u1").v]);
    // k is constant but still observable (its OR sibling is free).
    EXPECT_TRUE(obs[circuit.find("k").v]);
    EXPECT_TRUE(obs[circuit.find("live").v]);
    EXPECT_TRUE(obs[circuit.find("out").v]);
    EXPECT_TRUE(obs[circuit.find("a").v]);
}

TEST(Ternary, BlockedNetsHaveExactlyZeroCopObservability) {
    // The structural blocking argument and COP agree: a lint-blocked net
    // has COP observability exactly 0, and a lint-proven constant has
    // COP controllability exactly 0 or 1.
    const Circuit circuits[] = {lint_gadget_circuit(),
                                gen::random_dag({.gates = 200,
                                                 .inputs = 12,
                                                 .window = 24,
                                                 .seed = 7})};
    for (const Circuit& circuit : circuits) {
        const std::vector<Ternary> value = lint::propagate_constants(circuit);
        const std::vector<bool> obs = lint::observable_mask(circuit, value);
        const testability::CopResult cop = testability::compute_cop(circuit);
        for (NodeId v : circuit.all_nodes()) {
            if (!obs[v.v]) {
                EXPECT_EQ(cop.obs[v.v], 0.0);
            }
            if (lint::is_defined(value[v.v])) {
                EXPECT_EQ(cop.c1[v.v],
                          lint::ternary_bool(value[v.v]) ? 1.0 : 0.0);
            }
        }
    }
}

// ---- the lint driver and built-in rules --------------------------------

TEST(Lint, GadgetCircuitTriggersEveryBuiltinRule) {
    const Circuit circuit = lint_gadget_circuit();
    const lint::LintReport report = lint::run_lint(circuit);
    EXPECT_EQ(report.count_rule("constant-net"), 1u);       // k (tie skipped)
    EXPECT_EQ(report.count_rule("unobservable-net"), 1u);   // u1
    EXPECT_EQ(report.count_rule("redundant-fault"), 3u);    // u1 both, k sa0
    EXPECT_EQ(report.count_rule("duplicate-gate"), 1u);     // dup2 ~ dup1
    EXPECT_GE(report.count_rule("reconvergent-fanout"), 1u);
    EXPECT_FALSE(report.truncated);
}

TEST(Lint, FindingsAreWellFormed) {
    const Circuit circuits[] = {
        lint_gadget_circuit(), gen::c17(), gen::equality_comparator(8),
        gen::random_dag({.gates = 300, .inputs = 16, .seed = 3})};
    for (const Circuit& circuit : circuits) {
        const lint::LintReport report = lint::run_lint(circuit);
        for (const lint::Finding& finding : report.findings) {
            EXPECT_NE(lint::RuleRegistry::global().find(finding.rule),
                      nullptr);
            EXPECT_FALSE(finding.message.empty());
            ASSERT_EQ(finding.nodes.size(), finding.node_names.size());
            EXPECT_FALSE(finding.nodes.empty());
            for (std::size_t i = 0; i < finding.nodes.size(); ++i) {
                ASSERT_LT(finding.nodes[i].v, circuit.node_count());
                EXPECT_EQ(finding.node_names[i],
                          circuit.node_name(finding.nodes[i]));
            }
        }
        EXPECT_EQ(report.count(lint::Severity::Info) +
                      report.count(lint::Severity::Warning) +
                      report.count(lint::Severity::Error),
                  report.findings.size());
        EXPECT_EQ(report.ternary.size(), circuit.node_count());
        EXPECT_EQ(report.observable.size(), circuit.node_count());
    }
}

TEST(Lint, EveryRedundantFaultIsPodemRedundant) {
    // Cross-check against the complete decision procedure: everything the
    // lint engine condemns, PODEM must prove redundant too.
    const Circuit circuits[] = {
        lint_gadget_circuit(),
        gen::random_dag({.gates = 120, .inputs = 10, .seed = 11}),
        gen::random_dag({.gates = 120, .inputs = 10, .seed = 12})};
    for (const Circuit& circuit : circuits) {
        const lint::LintReport report = lint::run_lint(circuit);
        for (const fault::Fault& fault : report.redundant_faults) {
            const atpg::TestCube cube = atpg::generate_test(circuit, fault);
            EXPECT_EQ(cube.outcome, atpg::Outcome::Redundant)
                << circuit.name() << ": "
                << fault::fault_name(circuit, fault);
        }
    }
}

TEST(Lint, GadgetRedundantFaultsAreExactlyTheDeadCone) {
    const Circuit circuit = lint_gadget_circuit();
    const lint::LintReport report = lint::run_lint(circuit);
    const NodeId u1 = circuit.find("u1");
    const NodeId k = circuit.find("k");
    std::vector<fault::Fault> expected = {
        {u1, false}, {u1, true}, {k, false}};
    auto sorted = report.redundant_faults;
    auto key = [](const fault::Fault& f) {
        return std::pair(f.node.v, f.stuck_at1);
    };
    std::sort(sorted.begin(), sorted.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
    std::sort(expected.begin(), expected.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
    EXPECT_EQ(sorted, expected);
}

TEST(Lint, ReconvergenceGadget) {
    const Circuit circuit = lint_gadget_circuit();
    const lint::LintReport report = lint::run_lint(circuit);
    const NodeId s = circuit.find("s");
    const NodeId rec = circuit.find("rec");
    const auto it = std::find_if(
        report.reconvergent_stems.begin(), report.reconvergent_stems.end(),
        [&](const lint::ReconvergentStem& stem) { return stem.stem == s; });
    ASSERT_NE(it, report.reconvergent_stems.end());
    EXPECT_EQ(it->reconvergence, rec);
    EXPECT_EQ(it->depth, circuit.level(rec) - circuit.level(s));
    EXPECT_EQ(it->branches, 2);
}

TEST(Lint, FanoutFreeCircuitsHaveNoReconvergence) {
    const Circuit circuits[] = {gen::and_chain(24),
                                gen::random_tree({.gates = 40, .seed = 5})};
    for (const Circuit& circuit : circuits) {
        const lint::LintReport report = lint::run_lint(circuit);
        EXPECT_TRUE(report.reconvergent_stems.empty()) << circuit.name();
        EXPECT_EQ(report.count_rule("reconvergent-fanout"), 0u);
    }
}

TEST(Lint, DuplicateDetectionIsTransitive) {
    // dup2 dedupes onto dup1, so AND(dup2, x) must dedupe onto
    // AND(dup1, x) through the representative remap.
    Circuit c("transitive");
    const NodeId a = c.add_input("a");
    const NodeId b = c.add_input("b");
    const NodeId x = c.add_input("x");
    const NodeId dup1 = c.add_gate(GateType::And, {a, b}, "dup1");
    const NodeId dup2 = c.add_gate(GateType::And, {b, a}, "dup2");
    const NodeId top1 = c.add_gate(GateType::Or, {dup1, x}, "top1");
    const NodeId top2 = c.add_gate(GateType::Or, {x, dup2}, "top2");
    c.mark_output(c.add_gate(GateType::Xor, {top1, top2}, "out"));
    const lint::LintReport report = lint::run_lint(c);
    EXPECT_EQ(report.duplicate_gates, 2u);
    EXPECT_EQ(report.count_rule("duplicate-gate"), 2u);
}

TEST(Lint, RuleSelectionAndUnknownRule) {
    const Circuit circuit = lint_gadget_circuit();
    lint::LintOptions options;
    options.rules = {"constant-net"};
    const lint::LintReport report = lint::run_lint(circuit, options);
    EXPECT_EQ(report.count_rule("constant-net"), report.findings.size());
    // Shared artifacts are computed regardless of rule selection.
    EXPECT_EQ(report.ternary.size(), circuit.node_count());

    lint::LintOptions bad;
    bad.rules = {"no-such-rule"};
    EXPECT_THROW(lint::run_lint(circuit, bad), tpi::Error);
}

TEST(Lint, CustomRuleInLocalRegistry) {
    lint::RuleRegistry registry;
    registry.add({"gate-census", "counts gates", lint::Severity::Info,
                  [](const lint::RuleContext& context,
                     lint::LintReport& report) {
                      lint::Finding finding;
                      finding.rule = "gate-census";
                      finding.severity = lint::Severity::Info;
                      finding.nodes = {context.circuit.outputs().front()};
                      finding.node_names = {std::string(
                          context.circuit.node_name(
                              finding.nodes.front()))};
                      finding.message =
                          std::to_string(context.circuit.gate_count()) +
                          " gates";
                      report.findings.push_back(std::move(finding));
                  }});
    EXPECT_THROW(
        registry.add({"gate-census", "duplicate id", lint::Severity::Info,
                      [](const lint::RuleContext&, lint::LintReport&) {}}),
        tpi::Error);
    const Circuit circuit = gen::c17();
    const lint::LintReport report =
        lint::run_lint(circuit, {}, registry);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "gate-census");
}

TEST(Lint, PerRuleFindingCapSetsTruncated) {
    const Circuit circuit = lint_gadget_circuit();
    lint::LintOptions options;
    options.max_findings_per_rule = 1;
    const lint::LintReport report = lint::run_lint(circuit, options);
    EXPECT_TRUE(report.truncated);
    for (const lint::LintRule& rule :
         lint::RuleRegistry::global().rules())
        EXPECT_LE(report.count_rule(rule.id), 1u) << rule.id;
    // The artifact vectors stay complete even when findings are capped.
    EXPECT_EQ(report.redundant_faults.size(), 3u);
}

TEST(Lint, ExpiredDeadlineReturnsTruncatedReport) {
    const Circuit circuit = lint_gadget_circuit();
    util::Deadline deadline = util::Deadline::steps(1);
    lint::LintOptions options;
    options.deadline = &deadline;
    const lint::LintReport report = lint::run_lint(circuit, options);
    EXPECT_TRUE(report.truncated);
}

// ---- reporters ---------------------------------------------------------

TEST(LintReport, TextAndJsonAreStableAndParseable) {
    const Circuit circuit = lint_gadget_circuit();
    const lint::LintReport report = lint::run_lint(circuit);
    const std::string text = lint::to_text(report, circuit);
    EXPECT_NE(text.find("constant-net"), std::string::npos);
    EXPECT_NE(text.find("per-rule totals:"), std::string::npos);
    const std::string json = lint::to_json(report, circuit);
    EXPECT_NE(json.find("\"findings\""), std::string::npos);
    EXPECT_NE(json.find("\"by_rule\""), std::string::npos);
    // Balanced braces/brackets outside strings — cheap well-formedness.
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char ch = json[i];
        if (in_string) {
            if (ch == '\\')
                ++i;
            else if (ch == '"')
                in_string = false;
            continue;
        }
        if (ch == '"') in_string = true;
        if (ch == '{' || ch == '[') ++depth;
        if (ch == '}' || ch == ']') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

// ---- planner pruning ---------------------------------------------------

/// A circuit where the dead cone is worthless to the planner at small
/// budgets: the live half is a random-pattern-resistant 16-input AND
/// tree whose first two test points are worth ~28 coverage points each,
/// the dead half is three gates behind a tie-0 worth ~7. With budget 2
/// the unpruned optimum spends everything in the tree, so pruning must
/// be exactly score-neutral (the DESIGN.md §10 condition holds). From
/// budget 3 on, resurrecting the cone becomes the unpruned planner's
/// best third move and the scores legitimately diverge — that regime is
/// quantified in bench_t11_lint, not asserted here.
Circuit pruned_planning_circuit() {
    Circuit c("pruned");
    std::vector<NodeId> layer;
    for (int i = 0; i < 16; ++i)
        layer.push_back(c.add_input("a" + std::to_string(i)));
    while (layer.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(
                c.add_gate(GateType::And, {layer[i], layer[i + 1]}));
        if (layer.size() % 2 != 0) next.push_back(layer.back());
        layer = std::move(next);
    }
    const NodeId root = layer.front();
    const NodeId da = c.add_input("da");
    const NodeId db = c.add_input("db");
    const NodeId tie = c.add_const(false, "tie");
    const NodeId u = c.add_gate(GateType::Xor, {da, db}, "u");
    const NodeId dead = c.add_gate(GateType::And, {u, tie}, "dead");
    c.mark_output(c.add_gate(GateType::Or, {root, dead}, "out"));
    return c;
}

template <typename PlannerT>
void expect_pruning_is_neutral(int budget) {
    const Circuit circuit = pruned_planning_circuit();
    PlannerT planner;
    PlannerOptions options;
    options.budget = budget;
    options.objective.num_patterns = 1024;
    const Plan unpruned = planner.plan(circuit, options);
    options.prune_via_lint = true;
    const Plan pruned = planner.plan(circuit, options);

    // Identical plans, identical scores, strictly smaller candidate set.
    EXPECT_EQ(pruned.points, unpruned.points);
    EXPECT_DOUBLE_EQ(pruned.predicted_score, unpruned.predicted_score);
    EXPECT_EQ(unpruned.candidates_pruned, 0u);
    EXPECT_GE(pruned.candidates_pruned, 3u);  // tie, u, dead
    EXPECT_LT(pruned.candidates_considered, unpruned.candidates_considered);
    EXPECT_EQ(pruned.candidates_considered + pruned.candidates_pruned,
              unpruned.candidates_considered);
    for (const TestPoint& tp : pruned.points) {
        EXPECT_NE(tp.node, circuit.find("tie"));
        EXPECT_NE(tp.node, circuit.find("u"));
        EXPECT_NE(tp.node, circuit.find("dead"));
    }
}

TEST(LintPruning, DpPlannerScoreIdentical) {
    expect_pruning_is_neutral<DpPlanner>(2);
}

TEST(LintPruning, GreedyPlannerScoreIdentical) {
    expect_pruning_is_neutral<GreedyPlanner>(2);
}

TEST(LintPruning, ComputePruningMatchesReportArtifacts) {
    const Circuit circuit = lint_gadget_circuit();
    const lint::LintReport report = lint::run_lint(circuit);
    const lint::Pruning pruning = lint::compute_pruning(circuit);
    ASSERT_EQ(pruning.drop_candidate.size(), circuit.node_count());
    std::size_t dropped = 0;
    for (NodeId v : circuit.all_nodes()) {
        const bool expect_drop =
            lint::is_defined(report.ternary[v.v]) || !report.observable[v.v];
        EXPECT_EQ(pruning.drop_candidate[v.v], expect_drop)
            << circuit.node_name(v);
        if (expect_drop) ++dropped;
    }
    EXPECT_EQ(pruning.dropped, dropped);
    EXPECT_EQ(pruning.redundant_faults, report.redundant_faults);
}

}  // namespace
