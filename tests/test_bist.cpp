#include <gtest/gtest.h>

#include "atpg/podem.hpp"
#include "bist/misr.hpp"
#include "bist/reseed.hpp"
#include "bist/session.hpp"
#include "gen/arith.hpp"
#include "gen/benchmarks.hpp"
#include "gen/chains.hpp"
#include "util/rng.hpp"

namespace {

using namespace tpi;
using namespace tpi::bist;

// ------------------------------------------------------------- Misr ----

TEST(Misr, DeterministicAndOrderSensitive) {
    Misr a(16), b(16);
    for (std::uint64_t r : {1u, 2u, 3u}) {
        a.absorb(r);
        b.absorb(r);
    }
    EXPECT_EQ(a.signature(), b.signature());
    Misr c(16);
    for (std::uint64_t r : {3u, 2u, 1u}) c.absorb(r);
    EXPECT_NE(a.signature(), c.signature());
}

TEST(Misr, SingleBitErrorChangesSignature) {
    // One flipped response bit always changes a linear signature.
    Misr a(16), b(16);
    a.absorb(0b0100);
    b.absorb(0b0110);
    for (int i = 0; i < 20; ++i) {
        a.absorb(0);
        b.absorb(0);
    }
    EXPECT_NE(a.signature(), b.signature());
}

TEST(Misr, FoldResponse) {
    const bool response[] = {true, false, true, true};
    // width 2: outputs 0,2 -> bit 0; outputs 1,3 -> bit 1.
    EXPECT_EQ(fold_response(response, 2), 0b10u);  // 1^1=0 on bit0, 0^1=1
    EXPECT_EQ(fold_response(response, 4), 0b1101u);
    EXPECT_THROW(fold_response(response, 0), tpi::Error);
}

TEST(Misr, AbsorbBitsMatchesFoldPlusAbsorb) {
    const bool response[] = {true, true, false, true, false};
    Misr a(8), b(8);
    a.absorb_bits(response);
    b.absorb(fold_response(response, 8));
    EXPECT_EQ(a.signature(), b.signature());
}

// ---------------------------------------------------------- Session ----

TEST(Session, SignatureImpliesStrobeDetection) {
    const netlist::Circuit c = gen::c17();
    const auto faults = fault::collapse_faults(c);
    sim::RandomPatternSource source(3);
    SessionOptions options;
    options.patterns = 512;
    options.misr_width = 16;
    const SessionResult result = run_session(c, faults, source, options);

    // Everything in c17 is strobe-detectable within 512 patterns, and a
    // 16-bit signature should not alias on 16 faults.
    EXPECT_EQ(result.strobe_detected, faults.size());
    EXPECT_EQ(result.aliased, 0u);
    EXPECT_DOUBLE_EQ(result.signature_coverage(faults), 1.0);
}

TEST(Session, TinySignatureAliases) {
    // A 3-bit signature over ~190 detectable faults must alias: the
    // per-fault aliasing probability is ~2^-3.
    const netlist::Circuit c = gen::equality_comparator(8);
    const auto faults = fault::collapse_faults(c);
    sim::RandomPatternSource source(5);
    SessionOptions options;
    options.patterns = 2048;
    options.misr_width = 3;
    const SessionResult result = run_session(c, faults, source, options);
    EXPECT_GT(result.strobe_detected, 40u);
    EXPECT_GT(result.aliased, 0u);
    EXPECT_LT(result.aliasing_rate(), 0.5);
    // A differing signature is impossible without a differing response.
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (result.signature_detects[i]) {
            // strobe-detection is implied; verified via coverage relation
            EXPECT_LE(result.signature_coverage(faults),
                      static_cast<double>(result.strobe_detected) /
                          faults.size() * 1.0001 +
                          1e-9);
            break;
        }
    }
}

TEST(Session, WiderMisrAliasesLess) {
    const netlist::Circuit c = gen::equality_comparator(8);
    const auto faults = fault::collapse_faults(c);
    SessionOptions narrow;
    narrow.patterns = 1024;
    narrow.misr_width = 3;
    SessionOptions wide = narrow;
    wide.misr_width = 24;
    sim::RandomPatternSource s1(9), s2(9);
    const auto result_narrow = run_session(c, faults, s1, narrow);
    const auto result_wide = run_session(c, faults, s2, wide);
    EXPECT_LE(result_wide.aliased, result_narrow.aliased);
    EXPECT_EQ(result_wide.aliased, 0u);
}

// -------------------------------------------------------- Gf2Solver ----

TEST(Gf2, SolvesSmallSystem) {
    // x0 ^ x1 = 1, x1 = 1  ->  x0 = 0, x1 = 1.
    Gf2Solver solver(2);
    EXPECT_TRUE(solver.add(0b11, true));
    EXPECT_TRUE(solver.add(0b10, true));
    const std::uint64_t x = solver.solve();
    EXPECT_EQ(x & 1, 0u);
    EXPECT_EQ((x >> 1) & 1, 1u);
    EXPECT_FALSE(solver.has_free_variable());
}

TEST(Gf2, DetectsInconsistency) {
    Gf2Solver solver(2);
    EXPECT_TRUE(solver.add(0b11, false));   // x0 ^ x1 = 0
    EXPECT_TRUE(solver.add(0b01, true));    // x0 = 1  =>  x1 = 1
    EXPECT_FALSE(solver.add(0b10, false));  // x1 = 0 contradicts
    EXPECT_TRUE(solver.add(0b10, true));    // x1 = 1 is implied, redundant
}

TEST(Gf2, RedundantConstraintsAccepted) {
    Gf2Solver solver(3);
    EXPECT_TRUE(solver.add(0b101, true));
    EXPECT_TRUE(solver.add(0b101, true));  // same row again
    EXPECT_TRUE(solver.has_free_variable());
}

TEST(Gf2, SolutionsSatisfyConstraints) {
    util::Rng rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        Gf2Solver solver(24);
        std::vector<std::pair<std::uint64_t, bool>> accepted;
        for (int k = 0; k < 16; ++k) {
            const std::uint64_t row = rng.next() & 0xFFFFFF;
            const bool rhs = rng.chance(0.5);
            if (row != 0 && solver.add(row, rhs))
                accepted.emplace_back(row, rhs);
        }
        for (bool free_value : {false, true}) {
            const std::uint64_t x = solver.solve(free_value);
            for (const auto& [row, rhs] : accepted)
                EXPECT_EQ(std::popcount(row & x) & 1, rhs ? 1 : 0);
        }
    }
}

// ----------------------------------------------------- SymbolicLfsr ----

TEST(SymbolicLfsr, TracksConcreteLfsr) {
    for (unsigned width : {5u, 16u, 24u}) {
        SymbolicLfsr symbolic(width);
        util::Rng rng(width);
        for (int step = 0; step < 40; ++step) {
            symbolic.step();
            for (int trial = 0; trial < 4; ++trial) {
                const std::uint64_t seed =
                    (rng.next() | 1) &
                    ((width == 64) ? ~0ull : ((1ull << width) - 1));
                util::Lfsr concrete(width, seed);
                for (int s = 0; s <= step; ++s) concrete.step();
                for (unsigned b = 0; b < width; ++b) {
                    const unsigned expect =
                        (concrete.state() >> b) & 1u;
                    const unsigned predicted =
                        std::popcount(symbolic.coefficients(b) & seed) &
                        1u;
                    ASSERT_EQ(predicted, expect)
                        << "width " << width << " step " << step
                        << " bit " << b;
                }
            }
        }
    }
}

// -------------------------------------------------------- Reseeding ----

atpg::TestCube make_cube(std::initializer_list<int> bits) {
    atpg::TestCube cube;
    cube.outcome = atpg::Outcome::Detected;
    for (int b : bits)
        cube.inputs.push_back(static_cast<std::int8_t>(b));
    return cube;
}

TEST(Reseed, SingleCubeRoundTrip) {
    const std::vector<atpg::TestCube> cubes{
        make_cube({1, 0, -1, 1, -1, 0, 1, 1})};
    const ReseedResult plan = plan_reseeding(8, cubes);
    ASSERT_EQ(plan.encoded(), 1u);
    const auto& placement = plan.placements[0];
    const auto pattern =
        expand_seed(plan.lfsr_width,
                    plan.seeds[static_cast<std::size_t>(placement.seed)],
                    placement.position, 8);
    for (std::size_t i = 0; i < 8; ++i)
        if (cubes[0].inputs[i] >= 0) {
            EXPECT_EQ(pattern[i], cubes[0].inputs[i] == 1) << i;
        }
}

TEST(Reseed, PacksManyCubesIntoFewSeeds) {
    // Sparse cubes (few specified bits) are highly compatible.
    util::Rng rng(3);
    std::vector<atpg::TestCube> cubes;
    for (int k = 0; k < 12; ++k) {
        atpg::TestCube cube;
        cube.outcome = atpg::Outcome::Detected;
        cube.inputs.assign(24, -1);
        for (int s = 0; s < 4; ++s)
            cube.inputs[rng.below(24)] =
                static_cast<std::int8_t>(rng.below(2));
        cubes.push_back(std::move(cube));
    }
    const ReseedResult plan = plan_reseeding(24, cubes);
    EXPECT_EQ(plan.encoded(), cubes.size());
    EXPECT_LT(plan.seeds.size(), cubes.size())
        << "compatible cubes should share seeds";
    // Every placement must expand to a matching pattern.
    for (std::size_t ci = 0; ci < cubes.size(); ++ci) {
        const auto& placement = plan.placements[ci];
        ASSERT_GE(placement.seed, 0);
        const auto pattern = expand_seed(
            plan.lfsr_width,
            plan.seeds[static_cast<std::size_t>(placement.seed)],
            placement.position, 24);
        for (std::size_t i = 0; i < 24; ++i) {
            if (cubes[ci].inputs[i] >= 0) {
                EXPECT_EQ(pattern[i], cubes[ci].inputs[i] == 1);
            }
        }
    }
}

TEST(Reseed, TapSharingConflictIsReported) {
    // 10 inputs on a 5-bit register: inputs 0 and 5 share a tap; a cube
    // demanding opposite values there cannot be encoded.
    atpg::TestCube conflicted;
    conflicted.inputs.assign(10, -1);
    conflicted.inputs[0] = 0;
    conflicted.inputs[5] = 1;
    ReseedOptions options;
    options.width = 5;
    const ReseedResult plan =
        plan_reseeding(10, {conflicted}, options);
    EXPECT_EQ(plan.encoded(), 0u);
    EXPECT_EQ(plan.placements[0].seed, -1);
}

TEST(Reseed, AtpgCubesDetectTheirFaultsAfterExpansion) {
    // End-to-end: hard chain faults -> PODEM cubes -> seeds -> expanded
    // patterns -> verified detection.
    const netlist::Circuit c = gen::and_chain(16);
    const auto faults = fault::collapse_faults(c);
    std::vector<atpg::TestCube> cubes;
    std::vector<fault::Fault> targets;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const atpg::TestCube cube =
            atpg::generate_test(c, faults.representatives[i]);
        if (cube.outcome == atpg::Outcome::Detected) {
            cubes.push_back(cube);
            targets.push_back(faults.representatives[i]);
        }
    }
    const ReseedResult plan = plan_reseeding(c.input_count(), cubes);
    EXPECT_EQ(plan.encoded(), cubes.size());
    for (std::size_t k = 0; k < cubes.size(); ++k) {
        const auto& placement = plan.placements[k];
        ASSERT_GE(placement.seed, 0);
        const auto pattern = expand_seed(
            plan.lfsr_width,
            plan.seeds[static_cast<std::size_t>(placement.seed)],
            placement.position, c.input_count());
        atpg::TestCube expanded;
        expanded.inputs.resize(pattern.size());
        for (std::size_t i = 0; i < pattern.size(); ++i)
            expanded.inputs[i] = pattern[i] ? 1 : 0;
        EXPECT_TRUE(atpg::cube_detects(c, targets[k], expanded))
            << fault::fault_name(c, targets[k]);
    }
}

TEST(Reseed, ExpandMatchesLfsrPatternSource) {
    const unsigned width = 12;
    const std::uint64_t seed = 0x5A5;
    sim::LfsrPatternSource source(width, seed);
    std::vector<std::uint64_t> words(7);
    source.next_block(words);
    for (std::size_t position = 0; position < 64; ++position) {
        const auto pattern = expand_seed(width, seed, position, 7);
        for (std::size_t i = 0; i < 7; ++i)
            EXPECT_EQ(((words[i] >> position) & 1) != 0, pattern[i])
                << "position " << position << " input " << i;
    }
}

}  // namespace
